//! The ingestion loop: poll a [`FeedSource`], decode with quarantine,
//! batch under backpressure, apply through `ShardedService::apply_feed`.
//!
//! The driver is the piece that makes a messy producer safe to point at a
//! serving process:
//!
//! * **bounded queue** — decoded events wait in a queue of configurable
//!   capacity; a producer bursting faster than the service applies cannot
//!   grow memory without limit;
//! * **overflow coalescing** — when the queue is full the driver first
//!   *coalesces*: a `Cancel` re-announces a train's published schedule, so
//!   any queued events for that train **before** its last queued `Cancel`
//!   are dead weight — dropping them changes intermediate states only,
//!   never the final one. Only if coalescing frees nothing does the driver
//!   force a synchronous flush (it never silently drops a live event);
//! * **retry with backoff** — transient source errors are retried up to a
//!   budget with doubling sleeps; permanent errors (and an exhausted
//!   budget) surface as a typed [`DriverError`].
//!
//! Everything observable is counted in [`FeedStats`].

use std::collections::VecDeque;
use std::fmt;
use std::time::{Duration, Instant};

use pt_spcs::{RouterError, ShardId, ShardedService};
use pt_timetable::DelayEvent;

use crate::source::{FeedPoll, FeedSource, SourceError};
use crate::wire::{FeedDecoder, Quarantine};

/// Tuning knobs of a [`FeedDriver`]; `Default` is sized for the synthetic
/// presets and the replay bench.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedDriverConfig {
    /// Most events per `apply_feed` call; the queue flushes whenever it
    /// holds at least this many.
    pub batch_events: usize,
    /// Queue capacity; reaching it triggers coalescing, then a forced
    /// flush.
    pub queue_events: usize,
    /// Transient-error retries per poll before giving up.
    pub max_retries: u32,
    /// First retry backoff; doubles per consecutive retry. Zero disables
    /// sleeping (tests, replay).
    pub backoff: Duration,
    /// Sleep between polls in [`FeedDriver::run`]. Zero polls hot
    /// (replay).
    pub poll_interval: Duration,
}

impl Default for FeedDriverConfig {
    fn default() -> FeedDriverConfig {
        FeedDriverConfig {
            batch_events: 256,
            queue_events: 1024,
            max_retries: 3,
            backoff: Duration::from_millis(50),
            poll_interval: Duration::from_millis(200),
        }
    }
}

impl FeedDriverConfig {
    /// A config for replaying recorded feeds at full speed: no sleeps
    /// anywhere, everything else default.
    pub fn replay() -> FeedDriverConfig {
        FeedDriverConfig {
            backoff: Duration::ZERO,
            poll_interval: Duration::ZERO,
            ..FeedDriverConfig::default()
        }
    }
}

/// Everything a [`FeedDriver`] counts; cheap to clone, printed by the
/// replay harness and asserted by CI.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FeedStats {
    /// Successful polls (batches and idles).
    pub polls: u64,
    /// Polls that returned [`FeedPoll::Idle`].
    pub idle_polls: u64,
    /// Transient source errors absorbed by retrying.
    pub transient_errors: u64,
    /// Wire lines received (including blanks/comments/garbage).
    pub lines: u64,
    /// Lines that decoded into events.
    pub events_decoded: u64,
    /// Malformed lines, with per-kind counters and samples.
    pub quarantine: Quarantine,
    /// Events whose producer timestamp ran backwards relative to the
    /// previous event (accepted — `apply_feed` is order-insensitive per
    /// train state — but counted, because a healthy producer is ordered).
    pub out_of_order: u64,
    /// `apply_feed` calls made.
    pub batches_applied: u64,
    /// Events delivered to `apply_feed`.
    pub events_applied: u64,
    /// Batches after which at least one shard changed.
    pub changed_batches: u64,
    /// Queued events dropped by overflow coalescing (each was superseded
    /// by a later queued `Cancel` of the same train).
    pub coalesced_dropped: u64,
    /// Times a full queue forced a synchronous flush.
    pub forced_flushes: u64,
    /// High-water mark of the queue.
    pub max_queue_len: usize,
    /// Wall time spent inside `apply_feed`, in nanoseconds.
    pub apply_ns: u128,
}

impl fmt::Display for FeedStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "polls {} (idle {}, transient errors {})",
            self.polls, self.idle_polls, self.transient_errors
        )?;
        writeln!(f, "lines {} → events {} ({})", self.lines, self.events_decoded, self.quarantine)?;
        writeln!(
            f,
            "applied {} events in {} batches ({} changed) in {:.1} ms",
            self.events_applied,
            self.batches_applied,
            self.changed_batches,
            self.apply_ns as f64 / 1e6
        )?;
        write!(
            f,
            "queue high-water {} (coalesced {}, forced flushes {}, out-of-order {})",
            self.max_queue_len, self.coalesced_dropped, self.forced_flushes, self.out_of_order
        )
    }
}

/// Why a driver run stopped early. Malformed *lines* never produce this —
/// they are quarantined — only the source or the service failing does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriverError {
    /// The source failed permanently, or exhausted the retry budget.
    Source(SourceError),
    /// `apply_feed` rejected a batch (cannot happen for roster-validated
    /// events; surfaced for honesty).
    Apply(RouterError),
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Source(e) => write!(f, "feed source failed: {e}"),
            DriverError::Apply(e) => write!(f, "apply_feed rejected batch: {e}"),
        }
    }
}

impl std::error::Error for DriverError {}

/// What one [`FeedDriver::tick`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickOutcome {
    /// A batch of lines was ingested.
    Progress,
    /// The source had nothing new.
    Idle,
    /// The source is exhausted; the queue may still hold events
    /// ([`FeedDriver::drain`] flushes them).
    End,
}

/// The polling ingestion loop. Borrows the service — `apply_feed` takes
/// `&self` (per-shard writer locks serialize internally), so a driver can
/// run on a plain thread next to serving threads with no extra locking.
pub struct FeedDriver<'a> {
    svc: &'a ShardedService,
    decoder: FeedDecoder,
    config: FeedDriverConfig,
    queue: VecDeque<(ShardId, DelayEvent)>,
    last_time: Option<pt_core::Time>,
    stats: FeedStats,
}

impl<'a> FeedDriver<'a> {
    /// A driver feeding `svc`, with the decoder's roster derived from the
    /// service (shard count and per-shard train counts), so invalid ids
    /// are quarantined before they ever reach `apply_feed`.
    pub fn new(svc: &'a ShardedService, config: FeedDriverConfig) -> FeedDriver<'a> {
        let roster: Vec<u32> = svc
            .shard_ids()
            .map(|s| svc.network(s).map(|n| n.timetable().num_trains() as u32).unwrap_or(0))
            .collect();
        FeedDriver {
            svc,
            decoder: FeedDecoder::with_roster(roster),
            config,
            queue: VecDeque::new(),
            last_time: None,
            stats: FeedStats::default(),
        }
    }

    /// The counters so far.
    pub fn stats(&self) -> &FeedStats {
        &self.stats
    }

    /// Events currently queued (decoded, not yet applied).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// One poll-decode-enqueue-flush cycle. Retries transient source
    /// errors with doubling backoff up to the configured budget; malformed
    /// lines are quarantined, never fatal.
    pub fn tick(&mut self, src: &mut dyn FeedSource) -> Result<TickOutcome, DriverError> {
        let poll = self.poll_with_retry(src)?;
        self.stats.polls += 1;
        let outcome = match poll {
            FeedPoll::Idle => {
                self.stats.idle_polls += 1;
                TickOutcome::Idle
            }
            FeedPoll::End => TickOutcome::End,
            FeedPoll::Batch(lines) => {
                self.ingest(&lines)?;
                TickOutcome::Progress
            }
        };
        // Flush full batching windows (leave a partial window queued for
        // the next tick to fill — that is the batching).
        while self.queue.len() >= self.config.batch_events {
            self.flush_batch()?;
        }
        Ok(outcome)
    }

    /// Runs the loop until the source reports [`FeedPoll::End`], then
    /// drains the queue. Returns the final stats.
    pub fn run(&mut self, src: &mut dyn FeedSource) -> Result<FeedStats, DriverError> {
        loop {
            match self.tick(src)? {
                TickOutcome::End => break,
                TickOutcome::Progress | TickOutcome::Idle => {
                    if !self.config.poll_interval.is_zero() {
                        std::thread::sleep(self.config.poll_interval);
                    }
                }
            }
        }
        self.drain()?;
        Ok(self.stats.clone())
    }

    /// Flushes every queued event.
    pub fn drain(&mut self) -> Result<(), DriverError> {
        while !self.queue.is_empty() {
            self.flush_batch()?;
        }
        Ok(())
    }

    fn poll_with_retry(&mut self, src: &mut dyn FeedSource) -> Result<FeedPoll, DriverError> {
        let mut backoff = self.config.backoff;
        let mut attempt = 0u32;
        loop {
            match src.poll() {
                Ok(p) => return Ok(p),
                Err(e) if e.transient && attempt < self.config.max_retries => {
                    attempt += 1;
                    self.stats.transient_errors += 1;
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                        backoff *= 2;
                    }
                }
                Err(e) => return Err(DriverError::Source(e)),
            }
        }
    }

    fn ingest(&mut self, lines: &[String]) -> Result<(), DriverError> {
        self.stats.lines += lines.len() as u64;
        let events = self.decoder.decode_batch(lines, &mut self.stats.quarantine);
        self.stats.events_decoded += events.len() as u64;
        for ev in events {
            if let Some(last) = self.last_time {
                if ev.time < last {
                    self.stats.out_of_order += 1;
                }
            }
            self.last_time = Some(self.last_time.map_or(ev.time, |l| l.max(ev.time)));
            // Enqueue first so an incoming Cancel participates in its own
            // overflow coalescing (it is exactly what supersedes backlog).
            self.queue.push_back((ev.shard, ev.event));
            self.stats.max_queue_len = self.stats.max_queue_len.max(self.queue.len());
            if self.queue.len() > self.config.queue_events {
                self.coalesce();
                if self.queue.len() > self.config.queue_events {
                    // Nothing (enough) to coalesce away: apply synchronously
                    // rather than drop a live event or grow without bound.
                    self.stats.forced_flushes += 1;
                    self.flush_batch()?;
                }
            }
        }
        Ok(())
    }

    /// Drops queued events made irrelevant by a *later* queued `Cancel` of
    /// the same (shard, train): the cancel re-announces the published
    /// schedule, so the final state after the flush is identical — only
    /// intermediate states (which the overflowing queue was going to
    /// batch through anyway) differ. Returns how many events were freed.
    fn coalesce(&mut self) -> u64 {
        use std::collections::HashMap;
        // Last Cancel position per (shard, train).
        let mut last_cancel: HashMap<(u32, u32), usize> = HashMap::new();
        for (i, (shard, ev)) in self.queue.iter().enumerate() {
            if let DelayEvent::Cancel { train } = ev {
                last_cancel.insert((shard.0, train.0), i);
            }
        }
        if last_cancel.is_empty() {
            return 0;
        }
        let before = self.queue.len();
        let mut i = 0usize;
        self.queue.retain(|(shard, ev)| {
            let idx = i;
            i += 1;
            match last_cancel.get(&(shard.0, ev.train().0)) {
                Some(&c) => idx >= c, // keep the Cancel itself and later events
                None => true,
            }
        });
        let dropped = (before - self.queue.len()) as u64;
        self.stats.coalesced_dropped += dropped;
        dropped
    }

    fn flush_batch(&mut self) -> Result<(), DriverError> {
        let n = self.queue.len().min(self.config.batch_events);
        if n == 0 {
            return Ok(());
        }
        let batch: Vec<(ShardId, DelayEvent)> = self.queue.drain(..n).collect();
        let start = Instant::now();
        let summary = self.svc.apply_feed(&batch).map_err(DriverError::Apply)?;
        self.stats.apply_ns += start.elapsed().as_nanos();
        self.stats.batches_applied += 1;
        self.stats.events_applied += batch.len() as u64;
        if summary.changed() {
            self.stats.changed_batches += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::RecordedFeed;
    use crate::wire::{encode_csv, WireEvent};
    use pt_core::{Dur, Time, TrainId};
    use pt_timetable::synthetic::presets::all_presets;
    use pt_timetable::Recovery;

    fn small_service() -> ShardedService {
        let nets: Vec<_> = all_presets(0.05)
            .into_iter()
            .take(2)
            .map(|p| pt_spcs::Network::new(p.timetable))
            .collect();
        ShardedService::builder().build(nets)
    }

    fn delay_line(shard: u32, train: u32, h: u32, m: u32, delay_s: u32) -> String {
        encode_csv(&WireEvent {
            time: Time::hm(h, m),
            shard: ShardId(shard),
            event: DelayEvent::Delay {
                train: TrainId(train),
                from_hop: 0,
                delay: Dur(delay_s),
                recovery: Recovery::None,
            },
        })
    }

    fn cancel_line(shard: u32, train: u32, h: u32, m: u32) -> String {
        encode_csv(&WireEvent {
            time: Time::hm(h, m),
            shard: ShardId(shard),
            event: DelayEvent::Cancel { train: TrainId(train) },
        })
    }

    #[test]
    fn replay_applies_and_counts() {
        let svc = small_service();
        let gen_before: Vec<u64> =
            svc.shard_ids().map(|s| svc.network(s).unwrap().generation()).collect();
        let lines = vec![
            delay_line(0, 0, 8, 0, 300),
            delay_line(1, 1, 8, 5, 120),
            "total garbage".to_string(),
            cancel_line(0, 0, 8, 10),
        ];
        let mut src = RecordedFeed::new(lines, 2);
        let mut driver = FeedDriver::new(&svc, FeedDriverConfig::replay());
        let stats = driver.run(&mut src).unwrap();
        assert_eq!(stats.lines, 4);
        assert_eq!(stats.events_decoded, 3);
        assert_eq!(stats.quarantine.total, 1);
        assert_eq!(stats.events_applied, 3);
        assert!(stats.batches_applied >= 1);
        assert!(stats.changed_batches >= 1);
        let gen_after: Vec<u64> =
            svc.shard_ids().map(|s| svc.network(s).unwrap().generation()).collect();
        assert!(gen_after.iter().zip(&gen_before).any(|(a, b)| a > b));
    }

    #[test]
    fn roster_quarantines_unknown_ids() {
        let svc = small_service();
        let lines = vec![
            delay_line(9, 0, 8, 0, 60),         // unknown shard
            delay_line(0, 9_999_999, 8, 1, 60), // unknown train
            cancel_line(0, 0, 8, 2),            // fine
        ];
        let mut src = RecordedFeed::new(lines, 10);
        let mut driver = FeedDriver::new(&svc, FeedDriverConfig::replay());
        let stats = driver.run(&mut src).unwrap();
        assert_eq!(stats.quarantine.count("unknown_shard"), 1);
        assert_eq!(stats.quarantine.count("unknown_train"), 1);
        assert_eq!(stats.events_applied, 1);
    }

    #[test]
    fn transient_errors_retry_and_recover() {
        let svc = small_service();
        let lines: Vec<String> = (0..10).map(|i| delay_line(0, i % 3, 8, i, 60)).collect();
        let inner = RecordedFeed::new(lines, 1);
        let mut src = crate::source::FlakySource::new(inner, 3);
        let mut driver = FeedDriver::new(&svc, FeedDriverConfig::replay());
        let stats = driver.run(&mut src).unwrap();
        assert_eq!(stats.events_applied, 10, "faults were absorbed");
        assert!(stats.transient_errors > 0);
        assert_eq!(stats.transient_errors, src.injected);
    }

    #[test]
    fn permanent_error_is_fatal_and_typed() {
        struct Dead;
        impl FeedSource for Dead {
            fn poll(&mut self) -> Result<FeedPoll, SourceError> {
                Err(SourceError::permanent("gone"))
            }
        }
        let svc = small_service();
        let mut driver = FeedDriver::new(&svc, FeedDriverConfig::replay());
        let err = driver.run(&mut Dead).unwrap_err();
        assert!(matches!(err, DriverError::Source(ref e) if !e.transient));
        assert!(err.to_string().contains("gone"));
    }

    #[test]
    fn retry_budget_exhaustion_is_fatal() {
        struct AlwaysFlaky;
        impl FeedSource for AlwaysFlaky {
            fn poll(&mut self) -> Result<FeedPoll, SourceError> {
                Err(SourceError::transient("still down"))
            }
        }
        let svc = small_service();
        let mut driver = FeedDriver::new(&svc, FeedDriverConfig::replay());
        let err = driver.run(&mut AlwaysFlaky).unwrap_err();
        assert!(matches!(err, DriverError::Source(ref e) if e.transient));
        assert_eq!(driver.stats().transient_errors, 3, "budget was spent first");
    }

    #[test]
    fn out_of_order_counted_not_fatal() {
        let svc = small_service();
        let lines = vec![
            delay_line(0, 0, 9, 0, 60),
            delay_line(0, 1, 8, 0, 60), // timestamp runs backwards
            delay_line(0, 2, 10, 0, 60),
        ];
        let mut src = RecordedFeed::new(lines, 10);
        let mut driver = FeedDriver::new(&svc, FeedDriverConfig::replay());
        let stats = driver.run(&mut src).unwrap();
        assert_eq!(stats.out_of_order, 1);
        assert_eq!(stats.events_applied, 3);
    }

    #[test]
    fn overflow_coalesces_via_cancel_rule_then_forces_flush() {
        let svc = small_service();
        let mut cfg = FeedDriverConfig::replay();
        cfg.queue_events = 4;
        cfg.batch_events = 100; // keep flushing out of the way
        let mut lines: Vec<String> = (0..4).map(|i| delay_line(0, 0, 8, i, 60 + i)).collect();
        lines.push(cancel_line(0, 0, 8, 30)); // supersedes all four delays
        lines.extend((0..3).map(|i| delay_line(0, 1, 9, i, 60)));
        let mut src = RecordedFeed::new(lines, 100);
        let mut driver = FeedDriver::new(&svc, FeedDriverConfig { ..cfg.clone() });
        let stats = driver.run(&mut src).unwrap();
        // Queue hit capacity when the cancel arrived; the four delays it
        // supersedes were coalesced away, so nothing was force-flushed.
        assert!(stats.coalesced_dropped >= 3, "stats: {stats:?}");
        assert_eq!(stats.forced_flushes, 0);
        // Final state equals cancel-then-delays regardless of the drops.
        assert_eq!(stats.events_applied as usize, 8 - stats.coalesced_dropped as usize);

        // Without any cancels, overflow must force a flush instead.
        let mut cfg2 = FeedDriverConfig::replay();
        cfg2.queue_events = 2;
        cfg2.batch_events = 100;
        let lines2: Vec<String> = (0..5).map(|i| delay_line(0, i % 3, 8, i, 60)).collect();
        let mut src2 = RecordedFeed::new(lines2, 100);
        let mut driver2 = FeedDriver::new(&svc, cfg2);
        let stats2 = driver2.run(&mut src2).unwrap();
        assert!(stats2.forced_flushes > 0);
        assert_eq!(stats2.events_applied, 5, "no event was silently dropped");
    }
}
