//! The wire format: recorded GTFS-RT-style event lines and their decoder.
//!
//! The build environment has no network, so ingestion works from *recorded*
//! feeds: plain text, one event per line, in either of two self-describing
//! shapes the decoder distinguishes by the first non-blank byte:
//!
//! * **CSV** — `time,shard,kind,train[,from_hop,delay_s,catchup_s]`, e.g.
//!   `08:15:00,0,delay,17,2,300,60` or `08:20:00,1,cancel,4`;
//! * **JSON lines** (a line starting with `{`) — a flat object with the
//!   same fields, e.g.
//!   `{"time":"08:15:00","shard":0,"kind":"delay","train":17,"from_hop":2,"delay_s":300,"catchup_s":60}`.
//!
//! Blank lines and `#` comments are skipped. Decoding **never panics**:
//! every malformed line becomes a typed [`DecodeError`] which the
//! [`FeedDecoder`] *quarantines* — counted per error kind, a bounded sample
//! kept for diagnostics — while the rest of the batch proceeds. A real
//! producer emits garbage eventually; quarantine is the contract that
//! garbage never takes the serving loop down with it.

use std::collections::HashMap;
use std::fmt;

use pt_core::{Dur, Time, TrainId};
use pt_spcs::ShardId;
use pt_timetable::{DelayEvent, Recovery};

/// One decoded feed line: when it was produced, which shard it targets and
/// the event itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireEvent {
    /// Producer timestamp of the line (period-local wall clock).
    pub time: Time,
    /// The shard owning the train the event concerns.
    pub shard: ShardId,
    /// The payload, ready for `ShardedService::apply_feed`.
    pub event: DelayEvent,
}

/// Why one line failed to decode. Each variant is a distinct quarantine
/// counter in [`Quarantine`]; none of them is ever a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The line ended before all required fields of its kind were present.
    Truncated {
        /// Fields found.
        got: usize,
        /// Fields the event kind requires.
        need: usize,
    },
    /// The timestamp field is not a valid `HH:MM:SS` clock reading.
    BadTime(String),
    /// A numeric field failed to parse.
    BadField {
        /// Which field (`"shard"`, `"train"`, `"from_hop"`, …).
        field: &'static str,
        /// The offending token, as it appeared on the wire.
        token: String,
    },
    /// The `kind` field names neither `delay` nor `cancel`.
    UnknownKind(String),
    /// The shard id is outside the service's shard range.
    UnknownShard {
        /// The id on the wire.
        shard: u32,
        /// Number of shards the roster knows.
        shards: u32,
    },
    /// The train id does not exist in the target shard's timetable.
    UnknownTrain {
        /// The id on the wire.
        train: u32,
        /// The target shard.
        shard: u32,
        /// Trains that shard actually has.
        trains: u32,
    },
    /// A JSON line is structurally malformed (unterminated string,
    /// missing colon, trailing garbage, …).
    BadJson(String),
}

impl DecodeError {
    /// The stable counter label of this error kind (column name in
    /// [`Quarantine`] reports).
    pub fn kind(&self) -> &'static str {
        match self {
            DecodeError::Truncated { .. } => "truncated",
            DecodeError::BadTime(_) => "bad_time",
            DecodeError::BadField { .. } => "bad_field",
            DecodeError::UnknownKind(_) => "unknown_kind",
            DecodeError::UnknownShard { .. } => "unknown_shard",
            DecodeError::UnknownTrain { .. } => "unknown_train",
            DecodeError::BadJson(_) => "bad_json",
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { got, need } => {
                write!(f, "truncated line: {got} fields, need {need}")
            }
            DecodeError::BadTime(t) => write!(f, "bad timestamp {t:?} (want HH:MM:SS)"),
            DecodeError::BadField { field, token } => {
                write!(f, "field {field}: cannot parse {token:?}")
            }
            DecodeError::UnknownKind(k) => {
                write!(f, "unknown event kind {k:?} (want delay|cancel)")
            }
            DecodeError::UnknownShard { shard, shards } => {
                write!(f, "shard {shard} out of range (service has {shards})")
            }
            DecodeError::UnknownTrain { train, shard, trains } => {
                write!(f, "train {train} unknown in shard {shard} ({trains} trains)")
            }
            DecodeError::BadJson(msg) => write!(f, "bad json: {msg}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Where malformed lines go instead of taking the driver down: per-kind
/// counters plus a bounded sample of offending lines for diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Quarantine {
    /// Total lines quarantined.
    pub total: u64,
    /// Counter per [`DecodeError::kind`] label.
    pub by_kind: HashMap<&'static str, u64>,
    /// Up to [`Quarantine::SAMPLE_CAP`] examples: `(line_no, line, error)`.
    pub samples: Vec<(u64, String, DecodeError)>,
}

impl Quarantine {
    /// How many offending lines are kept verbatim for diagnostics.
    pub const SAMPLE_CAP: usize = 32;

    /// Records one quarantined line.
    pub fn push(&mut self, line_no: u64, line: &str, err: DecodeError) {
        self.total += 1;
        *self.by_kind.entry(err.kind()).or_insert(0) += 1;
        if self.samples.len() < Self::SAMPLE_CAP {
            self.samples.push((line_no, line.to_string(), err));
        }
    }

    /// Count for one error-kind label.
    pub fn count(&self, kind: &str) -> u64 {
        self.by_kind.get(kind).copied().unwrap_or(0)
    }

    /// `true` iff nothing was ever quarantined.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

impl fmt::Display for Quarantine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "quarantine: clean");
        }
        write!(f, "quarantine: {} lines (", self.total)?;
        let mut kinds: Vec<_> = self.by_kind.iter().collect();
        kinds.sort();
        for (i, (kind, n)) in kinds.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{kind}: {n}")?;
        }
        write!(f, ")")
    }
}

/// Decodes recorded wire lines into [`WireEvent`]s, quarantining whatever
/// does not parse or validate.
///
/// With a *roster* (trains per shard, from the live service) the decoder
/// also validates shard and train ids — a feed naming a train the
/// timetable does not have is producer garbage and must not reach
/// `apply_feed`. Without a roster only syntax is checked.
#[derive(Debug, Clone, Default)]
pub struct FeedDecoder {
    /// `roster[shard] = num_trains` of that shard; empty = no validation.
    roster: Vec<u32>,
    /// Running input line number (1-based), for quarantine samples.
    line_no: u64,
}

impl FeedDecoder {
    /// A decoder that checks syntax only.
    pub fn new() -> FeedDecoder {
        FeedDecoder::default()
    }

    /// A decoder that additionally validates shard ids against
    /// `trains_per_shard.len()` and train ids against the shard's count.
    pub fn with_roster(trains_per_shard: Vec<u32>) -> FeedDecoder {
        FeedDecoder { roster: trains_per_shard, line_no: 0 }
    }

    /// Lines seen so far (including skipped blanks/comments).
    pub fn lines_seen(&self) -> u64 {
        self.line_no
    }

    /// Decodes one line. `Ok(None)` for blanks and `#` comments,
    /// `Err` for anything malformed — never panics, whatever the input.
    pub fn decode_line(&self, line: &str) -> Result<Option<WireEvent>, DecodeError> {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return Ok(None);
        }
        let fields =
            if trimmed.starts_with('{') { json_fields(trimmed)? } else { csv_fields(trimmed) };
        self.event_from_fields(&fields).map(Some)
    }

    /// Decodes a batch of lines, quarantining failures; the successes are
    /// returned in input order. This is the driver's entry point: it
    /// cannot fail and cannot panic.
    pub fn decode_batch(
        &mut self,
        lines: &[String],
        quarantine: &mut Quarantine,
    ) -> Vec<WireEvent> {
        let mut out = Vec::with_capacity(lines.len());
        for line in lines {
            self.line_no += 1;
            match self.decode_line(line) {
                Ok(Some(ev)) => out.push(ev),
                Ok(None) => {}
                Err(e) => quarantine.push(self.line_no, line, e),
            }
        }
        out
    }

    /// `(time, shard, kind, train[, from_hop, delay_s, catchup_s])` in
    /// field order, whichever syntax carried them.
    fn event_from_fields(&self, f: &FieldMap) -> Result<WireEvent, DecodeError> {
        let need = 4; // time, shard, kind, train — common to both kinds
        if f.len() < need {
            return Err(DecodeError::Truncated { got: f.len(), need });
        }
        let time = parse_time(f.get("time"))
            .ok_or_else(|| DecodeError::BadTime(f.get("time").to_string()))?;
        let shard: u32 = parse_num(f.get("shard"), "shard")?;
        let train: u32 = parse_num(f.get("train"), "train")?;
        if !self.roster.is_empty() {
            let shards = self.roster.len() as u32;
            if shard >= shards {
                return Err(DecodeError::UnknownShard { shard, shards });
            }
            let trains = self.roster[shard as usize];
            if train >= trains {
                return Err(DecodeError::UnknownTrain { train, shard, trains });
            }
        }
        let kind = f.get("kind");
        let event = match kind {
            "cancel" => DelayEvent::Cancel { train: TrainId(train) },
            "delay" => {
                if f.len() < 7 {
                    return Err(DecodeError::Truncated { got: f.len(), need: 7 });
                }
                let from_hop: u16 = parse_num(f.get("from_hop"), "from_hop")?;
                let delay_s: u32 = parse_num(f.get("delay_s"), "delay_s")?;
                let catchup_s: u32 = parse_num(f.get("catchup_s"), "catchup_s")?;
                let recovery = if catchup_s == 0 {
                    Recovery::None
                } else {
                    Recovery::CatchUp { per_hop: Dur(catchup_s) }
                };
                DelayEvent::Delay { train: TrainId(train), from_hop, delay: Dur(delay_s), recovery }
            }
            other => return Err(DecodeError::UnknownKind(other.to_string())),
        };
        Ok(WireEvent { time, shard: ShardId(shard), event })
    }
}

/// Encodes one event as a CSV wire line (the recorder's inverse of the
/// decoder; round-trips exactly).
pub fn encode_csv(ev: &WireEvent) -> String {
    let t = format_time(ev.time);
    match ev.event {
        DelayEvent::Cancel { train } => format!("{t},{},cancel,{}", ev.shard.0, train.0),
        DelayEvent::Delay { train, from_hop, delay, recovery } => {
            let catchup = match recovery {
                Recovery::None => 0,
                Recovery::CatchUp { per_hop } => per_hop.0,
            };
            format!("{t},{},delay,{},{from_hop},{},{catchup}", ev.shard.0, train.0, delay.0)
        }
    }
}

/// Encodes one event as a JSON wire line.
pub fn encode_json(ev: &WireEvent) -> String {
    let t = format_time(ev.time);
    match ev.event {
        DelayEvent::Cancel { train } => format!(
            "{{\"time\":\"{t}\",\"shard\":{},\"kind\":\"cancel\",\"train\":{}}}",
            ev.shard.0, train.0
        ),
        DelayEvent::Delay { train, from_hop, delay, recovery } => {
            let catchup = match recovery {
                Recovery::None => 0,
                Recovery::CatchUp { per_hop } => per_hop.0,
            };
            format!(
                "{{\"time\":\"{t}\",\"shard\":{},\"kind\":\"delay\",\"train\":{},\
                 \"from_hop\":{from_hop},\"delay_s\":{},\"catchup_s\":{catchup}}}",
                ev.shard.0, train.0, delay.0
            )
        }
    }
}

fn format_time(t: Time) -> String {
    let s = t.secs();
    format!("{:02}:{:02}:{:02}", s / 3600, (s / 60) % 60, s % 60)
}

fn parse_time(s: &str) -> Option<Time> {
    let mut it = s.trim().split(':');
    let h: u32 = it.next()?.parse().ok()?;
    let m: u32 = it.next()?.parse().ok()?;
    let sec: u32 = it.next()?.parse().ok()?;
    if it.next().is_some() || m >= 60 || sec >= 60 || h > 48 {
        return None;
    }
    Some(Time::hms(h, m, sec))
}

fn parse_num<T: std::str::FromStr>(token: &str, field: &'static str) -> Result<T, DecodeError> {
    token.trim().parse().map_err(|_| DecodeError::BadField { field, token: token.to_string() })
}

/// Decoded fields of one line, addressable by name regardless of the
/// carrying syntax (CSV positions map to the canonical field order).
struct FieldMap {
    entries: Vec<(&'static str, String)>,
}

const FIELD_ORDER: [&str; 7] =
    ["time", "shard", "kind", "train", "from_hop", "delay_s", "catchup_s"];

impl FieldMap {
    fn len(&self) -> usize {
        self.entries.len()
    }

    /// The field's token, or `""` when absent (callers check `len` first
    /// for required prefixes; absent optional fields fail their parse).
    fn get(&self, name: &str) -> &str {
        self.entries.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str()).unwrap_or("")
    }
}

fn csv_fields(line: &str) -> FieldMap {
    let entries = line
        .split(',')
        .take(FIELD_ORDER.len())
        .enumerate()
        .map(|(i, tok)| (FIELD_ORDER[i], tok.trim().to_string()))
        .collect();
    FieldMap { entries }
}

/// A minimal flat-object JSON reader (no vendored `serde_json` exists):
/// string and unsigned-integer values only, which is exactly the wire
/// schema. Anything deeper is producer garbage → [`DecodeError::BadJson`].
fn json_fields(line: &str) -> Result<FieldMap, DecodeError> {
    let bad = |msg: &str| DecodeError::BadJson(msg.to_string());
    let inner = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| bad("not a {...} object"))?;
    let mut entries = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        // Key: a quoted string.
        rest = rest.strip_prefix('"').ok_or_else(|| bad("expected quoted key"))?;
        let kend = rest.find('"').ok_or_else(|| bad("unterminated key"))?;
        let key = &rest[..kend];
        rest = rest[kend + 1..].trim_start();
        rest = rest.strip_prefix(':').ok_or_else(|| bad("expected ':' after key"))?.trim_start();
        // Value: a quoted string or a bare integer.
        let value;
        if let Some(v) = rest.strip_prefix('"') {
            let vend = v.find('"').ok_or_else(|| bad("unterminated string value"))?;
            value = v[..vend].to_string();
            rest = v[vend + 1..].trim_start();
        } else {
            let vend = rest.find([',', ' ', '\t']).unwrap_or(rest.len());
            let tok = &rest[..vend];
            if tok.is_empty() || !tok.bytes().all(|b| b.is_ascii_digit()) {
                return Err(bad(&format!("value {tok:?} is neither string nor integer")));
            }
            value = tok.to_string();
            rest = rest[vend..].trim_start();
        }
        let canon = FIELD_ORDER.iter().find(|&&f| f == key);
        if let Some(&canon) = canon {
            entries.push((canon, value));
        } // unknown keys are ignored — forward compatibility
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
            if rest.is_empty() {
                return Err(bad("trailing comma"));
            }
        } else if !rest.is_empty() {
            return Err(bad("expected ',' between members"));
        }
    }
    Ok(FieldMap { entries })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(shard: u32) -> WireEvent {
        WireEvent {
            time: Time::hms(8, 15, 0),
            shard: ShardId(shard),
            event: DelayEvent::Delay {
                train: TrainId(17),
                from_hop: 2,
                delay: Dur(300),
                recovery: Recovery::CatchUp { per_hop: Dur(60) },
            },
        }
    }

    #[test]
    fn csv_and_json_round_trip() {
        let d = FeedDecoder::new();
        for e in [
            ev(0),
            WireEvent {
                time: Time::hms(23, 59, 59),
                shard: ShardId(3),
                event: DelayEvent::Cancel { train: TrainId(4) },
            },
            WireEvent {
                time: Time::hms(0, 0, 0),
                shard: ShardId(1),
                event: DelayEvent::Delay {
                    train: TrainId(0),
                    from_hop: 0,
                    delay: Dur(60),
                    recovery: Recovery::None,
                },
            },
        ] {
            assert_eq!(d.decode_line(&encode_csv(&e)).unwrap(), Some(e));
            assert_eq!(d.decode_line(&encode_json(&e)).unwrap(), Some(e));
        }
    }

    #[test]
    fn blanks_and_comments_skip() {
        let d = FeedDecoder::new();
        assert_eq!(d.decode_line("").unwrap(), None);
        assert_eq!(d.decode_line("   ").unwrap(), None);
        assert_eq!(d.decode_line("# recorded 2026-08-08").unwrap(), None);
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        let d = FeedDecoder::new();
        let cases: &[(&str, &str)] = &[
            ("08:15:00,0,delay", "truncated"),
            ("08:15:00,0,delay,17,2,300", "truncated"),
            ("8am,0,delay,17,2,300,0", "bad_time"),
            ("25:99:00,0,cancel,4", "bad_time"),
            ("99:00:00,0,cancel,4", "bad_time"),
            ("08:15:00,x,delay,17,2,300,0", "bad_field"),
            ("08:15:00,0,delay,-1,2,300,0", "bad_field"),
            ("08:15:00,0,boom,17,2,300,0", "unknown_kind"),
            ("{\"time\":\"08:15:00\",\"shard\":0", "bad_json"),
            ("{\"time\":08:15,\"shard\":0,\"kind\":\"cancel\",\"train\":1}", "bad_json"),
            ("{\"time\":\"08:15:00\",\"shard\":0,\"kind\":\"cancel\",\"train\":1,}", "bad_json"),
            ("{bad}", "bad_json"),
        ];
        for (line, want) in cases {
            let err = d.decode_line(line).unwrap_err();
            assert_eq!(err.kind(), *want, "line {line:?} → {err}");
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn roster_validates_shard_and_train() {
        let d = FeedDecoder::with_roster(vec![10, 5]);
        assert!(d.decode_line("08:00:00,1,cancel,4").unwrap().is_some());
        assert_eq!(d.decode_line("08:00:00,2,cancel,4").unwrap_err().kind(), "unknown_shard");
        assert_eq!(d.decode_line("08:00:00,1,cancel,5").unwrap_err().kind(), "unknown_train");
    }

    #[test]
    fn batch_quarantines_and_continues() {
        let mut d = FeedDecoder::new();
        let mut q = Quarantine::default();
        let lines: Vec<String> = vec![
            "08:00:00,0,cancel,1".into(),
            "garbage".into(),
            "# comment".into(),
            "08:01:00,0,delay,2,0,120,0".into(),
            "nope,0,cancel,1".into(),
        ];
        let evs = d.decode_batch(&lines, &mut q);
        assert_eq!(evs.len(), 2);
        assert_eq!(q.total, 2);
        assert_eq!(q.count("truncated") + q.count("bad_time"), 2);
        assert_eq!(q.samples.len(), 2);
        assert_eq!(q.samples[0].0, 2, "line numbers are 1-based");
        assert!(q.to_string().contains("quarantine: 2 lines"));
    }

    #[test]
    fn json_ignores_unknown_keys() {
        let d = FeedDecoder::new();
        let line =
            "{\"time\":\"08:00:00\",\"shard\":0,\"kind\":\"cancel\",\"train\":1,\"vendor\":\"x\"}";
        assert!(d.decode_line(line).unwrap().is_some());
    }
}
