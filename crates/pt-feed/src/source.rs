//! Where feed lines come from: the [`FeedSource`] abstraction and the
//! offline implementations the no-network build ships — a recorded feed
//! replayed in chunks, and a fault-injection wrapper for exercising the
//! driver's retry path.

use std::fmt;

/// One poll's worth of feed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeedPoll {
    /// New wire lines arrived since the last poll.
    Batch(Vec<String>),
    /// The source is healthy but has nothing new; poll again later.
    Idle,
    /// The source is exhausted (end of a recorded day); stop polling.
    End,
}

/// A source failure. `transient` failures are retried with backoff by the
/// driver; permanent ones abort the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceError {
    /// `true` if retrying may succeed (timeout, connection reset);
    /// `false` for unrecoverable failures (file vanished, auth revoked).
    pub transient: bool,
    /// Human-readable cause.
    pub msg: String,
}

impl SourceError {
    /// A retryable failure.
    pub fn transient(msg: impl Into<String>) -> SourceError {
        SourceError { transient: true, msg: msg.into() }
    }

    /// An unrecoverable failure.
    pub fn permanent(msg: impl Into<String>) -> SourceError {
        SourceError { transient: false, msg: msg.into() }
    }
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.transient { "transient" } else { "permanent" };
        write!(f, "{kind} source error: {}", self.msg)
    }
}

impl std::error::Error for SourceError {}

/// A producer of wire lines, polled by the
/// [`FeedDriver`](crate::FeedDriver) on its timer. Implementations own
/// whatever transport they like; the driver only sees lines.
pub trait FeedSource {
    /// Fetches whatever arrived since the last poll.
    fn poll(&mut self) -> Result<FeedPoll, SourceError>;
}

/// A recorded feed (one day of wire lines) replayed `lines_per_poll` at a
/// time — the offline stand-in for a live GTFS-RT endpoint, and the
/// replay harness's source.
#[derive(Debug, Clone)]
pub struct RecordedFeed {
    lines: Vec<String>,
    pos: usize,
    lines_per_poll: usize,
}

impl RecordedFeed {
    /// Replays `lines`, yielding at most `lines_per_poll` per poll
    /// (clamped to ≥ 1).
    pub fn new(lines: Vec<String>, lines_per_poll: usize) -> RecordedFeed {
        RecordedFeed { lines, pos: 0, lines_per_poll: lines_per_poll.max(1) }
    }

    /// Parses a whole recorded file into a feed (splits on newlines).
    pub fn from_text(text: &str, lines_per_poll: usize) -> RecordedFeed {
        RecordedFeed::new(text.lines().map(str::to_string).collect(), lines_per_poll)
    }

    /// Lines not yet replayed.
    pub fn remaining(&self) -> usize {
        self.lines.len() - self.pos
    }
}

impl FeedSource for RecordedFeed {
    fn poll(&mut self) -> Result<FeedPoll, SourceError> {
        if self.pos >= self.lines.len() {
            return Ok(FeedPoll::End);
        }
        let end = (self.pos + self.lines_per_poll).min(self.lines.len());
        let batch = self.lines[self.pos..end].to_vec();
        self.pos = end;
        Ok(FeedPoll::Batch(batch))
    }
}

/// Wraps a source and injects a transient error every `every`-th poll —
/// deterministic fault injection for the driver's retry-with-backoff path.
#[derive(Debug)]
pub struct FlakySource<S> {
    inner: S,
    every: u64,
    polls: u64,
    /// Transient errors injected so far.
    pub injected: u64,
}

impl<S: FeedSource> FlakySource<S> {
    /// Fails every `every`-th poll (1 = every poll; clamped to ≥ 2 so
    /// progress stays possible).
    pub fn new(inner: S, every: u64) -> FlakySource<S> {
        FlakySource { inner, every: every.max(2), polls: 0, injected: 0 }
    }
}

impl<S: FeedSource> FeedSource for FlakySource<S> {
    fn poll(&mut self) -> Result<FeedPoll, SourceError> {
        self.polls += 1;
        if self.polls.is_multiple_of(self.every) {
            self.injected += 1;
            return Err(SourceError::transient(format!("injected fault on poll {}", self.polls)));
        }
        self.inner.poll()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorded_feed_chunks_then_ends() {
        let mut src = RecordedFeed::new((0..5).map(|i| i.to_string()).collect(), 2);
        assert_eq!(src.poll().unwrap(), FeedPoll::Batch(vec!["0".into(), "1".into()]));
        assert_eq!(src.remaining(), 3);
        assert_eq!(src.poll().unwrap(), FeedPoll::Batch(vec!["2".into(), "3".into()]));
        assert_eq!(src.poll().unwrap(), FeedPoll::Batch(vec!["4".into()]));
        assert_eq!(src.poll().unwrap(), FeedPoll::End);
        assert_eq!(src.poll().unwrap(), FeedPoll::End);
    }

    #[test]
    fn flaky_source_injects_periodically() {
        let inner = RecordedFeed::new((0..6).map(|i| i.to_string()).collect(), 1);
        let mut src = FlakySource::new(inner, 3);
        let mut errors = 0;
        let mut lines = 0;
        loop {
            match src.poll() {
                Ok(FeedPoll::Batch(b)) => lines += b.len(),
                Ok(FeedPoll::End) => break,
                Ok(FeedPoll::Idle) => {}
                Err(e) => {
                    assert!(e.transient);
                    errors += 1;
                }
            }
        }
        assert_eq!(lines, 6, "every recorded line still arrives");
        assert_eq!(errors as u64, src.injected);
        assert!(errors > 0);
    }
}
