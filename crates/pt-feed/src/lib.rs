//! Realtime feed ingestion for the sharded serving stack.
//!
//! The serving layers (snapshots, copy-on-write publishes, shards, the
//! gateway) consume [`DelayEvent`](pt_timetable::DelayEvent) batches; this
//! crate produces them from the outside world — specifically from
//! *recorded* GTFS-RT-style feeds, since the build environment is offline.
//! Three layers:
//!
//! * [`wire`] — the line format (CSV with a JSON-lines fallback), its
//!   encoder, and the [`FeedDecoder`] whose malformed-input *quarantine*
//!   (typed [`DecodeError`]s, per-kind counters, bounded samples) is the
//!   robustness contract: no producer garbage ever panics a serving
//!   thread;
//! * [`source`] — the [`FeedSource`] poll abstraction plus offline
//!   implementations ([`RecordedFeed`], fault-injecting [`FlakySource`]);
//! * [`driver`] — the [`FeedDriver`] loop: poll on a timer, decode,
//!   batch into bounded windows with backpressure (bounded queue,
//!   cancel-rule overflow coalescing, retry-with-backoff), apply via
//!   `ShardedService::apply_feed`, count everything in [`FeedStats`].
//!
//! The replay harness (`examples/replay_day.rs`, the `replay` phase of the
//! throughput bench) is these three layers pointed at one recorded day.

#![warn(missing_docs)]

pub mod driver;
pub mod source;
pub mod wire;

pub use driver::{DriverError, FeedDriver, FeedDriverConfig, FeedStats, TickOutcome};
pub use source::{FeedPoll, FeedSource, FlakySource, RecordedFeed, SourceError};
pub use wire::{encode_csv, encode_json, DecodeError, FeedDecoder, Quarantine, WireEvent};
