//! The result of a one-to-all profile search.

use pt_core::{Period, Profile, StationId, Time};

/// Reduced arrival profiles `dist(S, T, ·)` from one source station to
/// every station of the network.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSet {
    source: StationId,
    period: Period,
    profiles: Vec<Profile>,
}

impl ProfileSet {
    /// Bundles profiles indexed by station id.
    pub fn new(source: StationId, period: Period, profiles: Vec<Profile>) -> Self {
        debug_assert!(profiles.iter().all(|p| p.is_reduced(period)));
        ProfileSet { source, period, profiles }
    }

    /// The source station `S`.
    #[inline]
    pub fn source(&self) -> StationId {
        self.source
    }

    /// The timetable period.
    #[inline]
    pub fn period(&self) -> Period {
        self.period
    }

    /// The reduced profile `dist(S, T, ·)`; empty iff `T` is unreachable.
    ///
    /// Convention: the profile of the *source itself* contains one point per
    /// useful departure (`dep == arr`), not the mathematical identity
    /// `dist(S, S, τ) = τ` — evaluating it between departures reports the
    /// next departure event rather than 0 travel time. Route planning never
    /// queries the source, so the searches keep this cheaper form.
    #[inline]
    pub fn profile(&self, t: StationId) -> &Profile {
        &self.profiles[t.idx()]
    }

    /// All profiles, indexed by station id.
    #[inline]
    pub fn profiles(&self) -> &[Profile] {
        &self.profiles
    }

    /// Earliest arrival at `t` when departing the source at `dep` — one
    /// evaluation of the profile function.
    pub fn earliest_arrival(&self, t: StationId, dep: Time) -> Time {
        self.profiles[t.idx()].eval_arr(dep, self.period)
    }

    /// Total number of connection points over all profiles.
    pub fn total_points(&self) -> usize {
        self.profiles.iter().map(Profile::len).sum()
    }

    /// Number of reachable stations (non-empty profiles).
    pub fn reachable(&self) -> usize {
        self.profiles.iter().filter(|p| !p.is_empty()).count()
    }
}
