//! Parallel SPCS driver (paper §3.2).
//!
//! `conn(S)` is partitioned into `p` subsets; `p` pool workers each run the
//! self-pruning connection-setting search on their subset with private
//! labels (no sharing, no locks — connections in different threads cannot
//! prune each other, which is exactly the self-pruning loss the paper
//! analyses). A master step then merges the per-thread labels in global
//! connection order and applies connection reduction, restoring FIFO; its
//! cost is recorded separately in [`QueryStats::merge_ns`].
//!
//! Work is dispatched onto the process-global persistent worker pool
//! ([`rayon::global`]; no per-query — or even per-engine — thread
//! spawning), and every worker reuses its [`SearchWorkspace`] across
//! queries. Concurrency per query is bounded by its job count (`p`
//! partition classes, or `p` claim loops for a batch), never by pool
//! ownership. `many_to_all_across` adds the second parallelization level:
//! whole queries are distributed over the pool, each answered by a blocked
//! single-worker search (`one_to_all_blocked`).

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use pt_core::{Period, Profile, ProfilePoint, StationId};
use pt_timetable::Connection;

use crate::connection_setting;
use crate::kernel::KernelMode;
use crate::network::Network;
use crate::partition::PartitionStrategy;
use crate::profile_set::ProfileSet;
use crate::stats::QueryStats;
use crate::workspace::SearchWorkspace;

/// Result of a one-to-all profile query.
#[derive(Debug, Clone)]
pub struct OneToAllResult {
    /// Reduced profiles to every station, shared so result caches can hand
    /// out the same set without copying.
    pub profiles: Arc<ProfileSet>,
    /// Operation counts, summed over threads (the paper's convention).
    pub stats: QueryStats,
    /// Settled-element count per thread — the balance diagnostic behind the
    /// partition-strategy discussion in §3.2.
    pub thread_settled: Vec<u64>,
}

/// Distributes `n` independent work items over the pool: one claim loop
/// per workspace, items claimed from a shared atomic counter, each answered
/// on that worker's own workspace. The common scaffold of
/// [`many_to_all_across`] and `S2sEngine::batch`.
pub(crate) fn run_batch<T, F>(workspaces: &mut [SearchWorkspace], n: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut SearchWorkspace) -> T + Sync,
{
    // Claim contiguous chunks rather than single items: one atomic RMW per
    // chunk instead of per item, and consecutive indices stay on one worker
    // (warm per-source state for batches that repeat or sort their inputs).
    // ~4 chunks per worker keeps the tail balanced under skewed item cost.
    let workers = workspaces.len().max(1);
    let chunk = (n / (workers * 4)).max(1);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    rayon::global().scope(|scope| {
        for ws in workspaces.iter_mut() {
            let (next, slots, job) = (&next, &slots, &job);
            scope.spawn(move || loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = n.min(start + chunk);
                for (i, slot) in slots[start..end].iter().enumerate() {
                    let result = job(start + i, ws);
                    *slot.lock().unwrap() = Some(result);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("every item index was claimed by a worker"))
        .collect()
}

/// Runs the one-to-all profile search with `p` partition classes on the
/// global pool. `workspaces` must provide at least `p` entries; each class
/// uses exactly one.
pub(crate) fn one_to_all(
    net: &Network,
    source: StationId,
    p: usize,
    strategy: PartitionStrategy,
    self_pruning: bool,
    kernel: KernelMode,
    workspaces: &mut [SearchWorkspace],
) -> OneToAllResult {
    let tt = net.timetable();
    let period = tt.period();
    let ns = net.num_stations();
    let conn_range = tt.conn_ids(source);
    let conns = tt.conn(source);
    let ranges = strategy.partition(conns, p, period);
    assert!(workspaces.len() >= ranges.len(), "one workspace per partition class required");

    // Run the workers (inline when single-threaded).
    let mut per_stats = vec![QueryStats::default(); ranges.len()];
    if p == 1 {
        per_stats[0] = connection_setting::run_range(
            net,
            conn_range.start,
            conn_range.end,
            self_pruning,
            kernel,
            &mut workspaces[0],
        );
    } else {
        rayon::global().scope(|scope| {
            for ((ws, st), r) in
                workspaces[..ranges.len()].iter_mut().zip(per_stats.iter_mut()).zip(&ranges)
            {
                let (lo, hi) = (conn_range.start + r.start, conn_range.start + r.end);
                scope.spawn(move || {
                    *st = connection_setting::run_range(net, lo, hi, self_pruning, kernel, ws);
                });
            }
        });
    }

    let thread_settled: Vec<u64> = per_stats.iter().map(|r| r.settled).collect();
    let mut stats = QueryStats::sum(per_stats);

    // Master merge: per station, concatenate the per-thread labels in global
    // connection order, then reduce. The merged label need not be FIFO
    // (threads do not prune each other), the reduction restores it.
    let merge_start = Instant::now();
    let used = &workspaces[..ranges.len()];
    let profiles = if kernel.soa_merge() {
        master_merge(used, &ranges, conns, ns, period, p)
    } else {
        let mut profiles = Vec::with_capacity(ns);
        for s in 0..ns {
            let points = used.iter().zip(&ranges).flat_map(|(ws, r)| {
                let k = r.len();
                (0..k).map(move |i| {
                    let dep = conns[r.start as usize + i].dep;
                    let arr = ws.station_arr[i * ns + s];
                    (dep, arr)
                })
            });
            profiles.push(connection_setting::reduce_station_profile(points, period));
        }
        profiles
    };
    stats.merge_ns = merge_start.elapsed().as_nanos() as u64;
    OneToAllResult {
        profiles: Arc::new(ProfileSet::new(source, period, profiles)),
        stats,
        thread_settled,
    }
}

/// The SoA master merge: reduces the per-class station labels into profiles
/// through one reusable scratch buffer per merge job
/// ([`Profile::from_unreduced_in`] — one allocation per job instead of one
/// per station), and splits the stations into contiguous chunks on the
/// global pool when the query ran parallel anyway (`jobs > 1`). Stations
/// are independent, so the chunked merge is trivially order-preserving.
fn master_merge(
    used: &[SearchWorkspace],
    ranges: &[Range<u32>],
    conns: &[Connection],
    ns: usize,
    period: Period,
    jobs: usize,
) -> Vec<Profile> {
    // Gather + reduce stations `lo..hi` of one chunk.
    let merge_chunk = |lo: usize, hi: usize, out: &mut Vec<Profile>| {
        let mut scratch: Vec<ProfilePoint> = Vec::new();
        for s in lo..hi {
            for (ws, r) in used.iter().zip(ranges) {
                for i in 0..r.len() {
                    let arr = ws.station_arr[i * ns + s];
                    if !arr.is_infinite() {
                        scratch.push(ProfilePoint::new(conns[r.start as usize + i].dep, arr));
                    }
                }
            }
            out.push(Profile::from_unreduced_in(&mut scratch, period));
        }
    };
    // More chunks than pool workers is pure scheduling overhead (on a
    // single-core host the whole parallel branch is), and below ~64
    // stations the spawn overhead beats the merge itself.
    let jobs = jobs.min(rayon::global().threads());
    if jobs > 1 && ns >= 64 {
        let chunk = ns.div_ceil(jobs);
        let slots: Vec<Mutex<Option<Vec<Profile>>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
        rayon::global().scope(|scope| {
            for (j, slot) in slots.iter().enumerate() {
                let merge_chunk = &merge_chunk;
                scope.spawn(move || {
                    let lo = (j * chunk).min(ns);
                    let hi = (lo + chunk).min(ns);
                    let mut out = Vec::with_capacity(hi - lo);
                    merge_chunk(lo, hi, &mut out);
                    *slot.lock().unwrap() = Some(out);
                });
            }
        });
        slots.into_iter().flat_map(|m| m.into_inner().unwrap().expect("chunk merged")).collect()
    } else {
        let mut out = Vec::with_capacity(ns);
        merge_chunk(0, ns, &mut out);
        out
    }
}

/// One-to-all answered entirely by **one** worker, but with the `conn(S)`
/// partition executed as `blocks` back-to-back *blocked* searches on the
/// same workspace. Per-class label spaces (and heaps) are a factor `blocks`
/// smaller than one monolithic search, which more than pays for the lost
/// cross-class self-pruning — the same trade the parallel split makes, kept
/// even when the classes run sequentially. The per-class station labels
/// line up into the query-level buffer in global connection order, so the
/// merge is identical to the parallel master step (and the result is
/// bit-identical to a `blocks`-thread query with the same strategy).
pub(crate) fn one_to_all_blocked(
    net: &Network,
    source: StationId,
    blocks: usize,
    strategy: PartitionStrategy,
    self_pruning: bool,
    kernel: KernelMode,
    ws: &mut SearchWorkspace,
) -> OneToAllResult {
    let tt = net.timetable();
    let period = tt.period();
    let ns = net.num_stations();
    let conn_range = tt.conn_ids(source);
    let conns = tt.conn(source);
    let ranges = strategy.partition(conns, blocks, period);
    let k = conns.len();

    ws.fresh_station_arr(k * ns);
    let mut per_stats = Vec::with_capacity(ranges.len());
    for r in &ranges {
        let (lo, hi) = (conn_range.start + r.start, conn_range.start + r.end);
        per_stats.push(connection_setting::run_range_into(
            net,
            lo,
            hi,
            self_pruning,
            kernel,
            ws,
            r.start as usize * ns,
        ));
    }
    let thread_settled: Vec<u64> = per_stats.iter().map(|r| r.settled).collect();
    let mut stats = QueryStats::sum(per_stats);

    // The query-level buffer is one contiguous k×ns block, i.e. a single
    // "class" covering 0..k — the SoA merge runs sequentially here (jobs=1):
    // blocked searches already execute inside a batch worker.
    let merge_start = Instant::now();
    let profiles = if kernel.soa_merge() {
        let full_range = 0..k as u32;
        master_merge(
            std::slice::from_ref(ws),
            std::slice::from_ref(&full_range),
            conns,
            ns,
            period,
            1,
        )
    } else {
        let mut profiles = Vec::with_capacity(ns);
        for s in 0..ns {
            let points = (0..k).map(|i| (conns[i].dep, ws.station_arr[i * ns + s]));
            profiles.push(connection_setting::reduce_station_profile(points, period));
        }
        profiles
    };
    stats.merge_ns = merge_start.elapsed().as_nanos() as u64;
    OneToAllResult {
        profiles: Arc::new(ProfileSet::new(source, period, profiles)),
        stats,
        thread_settled,
    }
}

/// The second parallelization level: distributes whole one-to-all queries
/// over the pool. Each worker owns one workspace and answers sources pulled
/// from a shared queue with the blocked search ([`one_to_all_blocked`]) —
/// no cross-worker coordination and no merge barrier per query, which
/// maximizes sustained throughput when there are at least as many queries
/// as workers.
pub(crate) fn many_to_all_across(
    net: &Network,
    sources: &[StationId],
    blocks: usize,
    strategy: PartitionStrategy,
    self_pruning: bool,
    kernel: KernelMode,
    workspaces: &mut [SearchWorkspace],
) -> Vec<OneToAllResult> {
    run_batch(workspaces, sources.len(), |i, ws| {
        one_to_all_blocked(net, sources[i], blocks, strategy, self_pruning, kernel, ws)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connection_setting::ProfileEngine;
    use pt_core::{Dur, Period, Time};
    use pt_timetable::synthetic::city::{generate_city, CityConfig};
    use pt_timetable::TimetableBuilder;

    fn small_city() -> Network {
        Network::new(generate_city(&CityConfig::sized(36, 5, 7)))
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let net = small_city();
        let sources = [StationId(0), StationId(7), StationId(20)];
        for &s in &sources {
            let seq = ProfileEngine::new().one_to_all(&net, s);
            for p in [2, 3, 4, 8] {
                let par = ProfileEngine::new().threads(p).one_to_all(&net, s);
                assert_eq!(seq, par, "source {s}, {p} threads");
            }
        }
    }

    #[test]
    fn all_strategies_agree_on_results() {
        let net = small_city();
        let s = StationId(3);
        let base = ProfileEngine::new().one_to_all(&net, s);
        for strat in [
            PartitionStrategy::EqualTimeSlots,
            PartitionStrategy::EqualConnections,
            PartitionStrategy::KMeans { iters: 10 },
        ] {
            let got = ProfileEngine::new().threads(4).strategy(strat).one_to_all(&net, s);
            assert_eq!(base, got, "{strat:?}");
        }
    }

    #[test]
    fn more_threads_settle_more_but_balanced() {
        let net = small_city();
        let s = StationId(1);
        let r1 = ProfileEngine::new().one_to_all_with_stats(&net, s);
        let r4 = ProfileEngine::new().threads(4).one_to_all_with_stats(&net, s);
        // Cross-thread self-pruning is lost: total settled grows (or stays).
        assert!(r4.stats.settled >= r1.stats.settled);
        assert_eq!(r4.thread_settled.len(), 4);
        assert_eq!(r4.thread_settled.iter().sum::<u64>(), r4.stats.settled);
    }

    #[test]
    fn merge_time_is_recorded() {
        let net = small_city();
        let r = ProfileEngine::new().threads(2).one_to_all_with_stats(&net, StationId(5));
        assert!(r.stats.merge_ns > 0, "master merge must be timed");
    }

    #[test]
    fn warm_parallel_engine_reuses_all_workspaces() {
        let net = small_city();
        let engine = ProfileEngine::new().threads(4);
        let first = engine.one_to_all(&net, StationId(2));
        let warm = engine.workspace_grow_events();
        for _ in 0..5 {
            assert_eq!(engine.one_to_all(&net, StationId(2)), first);
        }
        assert_eq!(engine.workspace_grow_events(), warm, "hot path must not allocate");
    }

    #[test]
    fn batch_across_queries_matches_sequential_ground_truth() {
        let net = small_city();
        let sources: Vec<StationId> = (0..12).map(|i| StationId(i * 3 % 36)).collect();
        let engine = ProfileEngine::new().threads(4);
        let batch = engine.many_to_all_with_stats(&net, &sources);
        assert_eq!(batch.len(), sources.len());
        for (r, &s) in batch.iter().zip(&sources) {
            let seq = ProfileEngine::new().one_to_all(&net, s);
            assert_eq!(r.profiles, seq, "batch result for source {s}");
            assert_eq!(r.profiles.source(), s);
        }
    }

    #[test]
    fn degenerate_source_without_departures() {
        let mut b = TimetableBuilder::new(Period::DAY);
        let a = b.add_named_station("A", Dur::ZERO);
        let c = b.add_named_station("B", Dur::ZERO);
        let d = b.add_named_station("sink", Dur::ZERO);
        b.add_simple_trip(&[a, c], Time::hm(8, 0), &[Dur::minutes(5)], Dur::ZERO).unwrap();
        let net = Network::new(b.build().unwrap());
        // `sink` has no outgoing connections at all.
        let prof = ProfileEngine::new().threads(2).one_to_all(&net, d);
        assert!(prof.profile(a).is_empty());
        assert!(prof.profile(c).is_empty());
    }
}
