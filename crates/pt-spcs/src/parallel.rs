//! Parallel SPCS driver (paper §3.2).
//!
//! `conn(S)` is partitioned into `p` subsets; `p` worker threads each run
//! the self-pruning connection-setting search on their subset with private
//! labels (no sharing, no locks — connections in different threads cannot
//! prune each other, which is exactly the self-pruning loss the paper
//! analyses). A master step then merges the per-thread labels in global
//! connection order and applies connection reduction, restoring FIFO.

use pt_core::StationId;

use crate::connection_setting::{self, CsRangeResult};
use crate::network::Network;
use crate::partition::PartitionStrategy;
use crate::profile_set::ProfileSet;
use crate::stats::QueryStats;

/// Result of a one-to-all profile query.
#[derive(Debug, Clone)]
pub struct OneToAllResult {
    /// Reduced profiles to every station.
    pub profiles: ProfileSet,
    /// Operation counts, summed over threads (the paper's convention).
    pub stats: QueryStats,
    /// Settled-element count per thread — the balance diagnostic behind the
    /// partition-strategy discussion in §3.2.
    pub thread_settled: Vec<u64>,
}

/// Runs the one-to-all profile search on `p` threads.
pub(crate) fn one_to_all(
    net: &Network,
    source: StationId,
    p: usize,
    strategy: PartitionStrategy,
    self_pruning: bool,
) -> OneToAllResult {
    let tt = net.timetable();
    let period = tt.period();
    let ns = net.num_stations();
    let conn_range = tt.conn_ids(source);
    let conns = tt.conn(source);
    let ranges = strategy.partition(conns, p, period);

    // Run the workers (inline when single-threaded).
    let results: Vec<CsRangeResult> = if p == 1 {
        vec![connection_setting::run_range(net, conn_range.start, conn_range.end, self_pruning)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|r| {
                    let (lo, hi) = (conn_range.start + r.start, conn_range.start + r.end);
                    scope.spawn(move || connection_setting::run_range(net, lo, hi, self_pruning))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker thread panicked")).collect()
        })
    };

    let thread_settled: Vec<u64> = results.iter().map(|r| r.stats.settled).collect();
    let stats = QueryStats::sum(results.iter().map(|r| r.stats));

    // Master merge: per station, concatenate the per-thread labels in global
    // connection order, then reduce. The merged label need not be FIFO
    // (threads do not prune each other), the reduction restores it.
    let mut profiles = Vec::with_capacity(ns);
    for s in 0..ns {
        let points = results.iter().zip(&ranges).flat_map(|(res, r)| {
            let k = r.len();
            (0..k).map(move |i| {
                let dep = conns[r.start as usize + i].dep;
                let arr = res.station_arr[i * ns + s];
                (dep, arr)
            })
        });
        profiles.push(connection_setting::reduce_station_profile(points, period));
    }
    OneToAllResult { profiles: ProfileSet::new(source, period, profiles), stats, thread_settled }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connection_setting::ProfileEngine;
    use pt_core::{Dur, Period, Time};
    use pt_timetable::synthetic::city::{generate_city, CityConfig};
    use pt_timetable::TimetableBuilder;

    fn small_city() -> Network {
        Network::new(generate_city(&CityConfig::sized(36, 5, 7)))
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let net = small_city();
        let sources = [StationId(0), StationId(7), StationId(20)];
        for &s in &sources {
            let seq = ProfileEngine::new(&net).one_to_all(s);
            for p in [2, 3, 4, 8] {
                let par = ProfileEngine::new(&net).threads(p).one_to_all(s);
                assert_eq!(seq, par, "source {s}, {p} threads");
            }
        }
    }

    #[test]
    fn all_strategies_agree_on_results() {
        let net = small_city();
        let s = StationId(3);
        let base = ProfileEngine::new(&net).one_to_all(s);
        for strat in [
            PartitionStrategy::EqualTimeSlots,
            PartitionStrategy::EqualConnections,
            PartitionStrategy::KMeans { iters: 10 },
        ] {
            let got = ProfileEngine::new(&net).threads(4).strategy(strat).one_to_all(s);
            assert_eq!(base, got, "{strat:?}");
        }
    }

    #[test]
    fn more_threads_settle_more_but_balanced() {
        let net = small_city();
        let s = StationId(1);
        let r1 = ProfileEngine::new(&net).one_to_all_with_stats(s);
        let r4 = ProfileEngine::new(&net).threads(4).one_to_all_with_stats(s);
        // Cross-thread self-pruning is lost: total settled grows (or stays).
        assert!(r4.stats.settled >= r1.stats.settled);
        assert_eq!(r4.thread_settled.len(), 4);
        assert_eq!(r4.thread_settled.iter().sum::<u64>(), r4.stats.settled);
    }

    #[test]
    fn degenerate_source_without_departures() {
        let mut b = TimetableBuilder::new(Period::DAY);
        let a = b.add_named_station("A", Dur::ZERO);
        let c = b.add_named_station("B", Dur::ZERO);
        let d = b.add_named_station("sink", Dur::ZERO);
        b.add_simple_trip(&[a, c], Time::hm(8, 0), &[Dur::minutes(5)], Dur::ZERO).unwrap();
        let net = Network::new(b.build().unwrap());
        // `sink` has no outgoing connections at all.
        let prof = ProfileEngine::new(&net).threads(2).one_to_all(d);
        assert!(prof.profile(a).is_empty());
        assert!(prof.profile(c).is_empty());
    }
}
