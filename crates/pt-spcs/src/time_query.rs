//! Time-queries: `dist(S, ·, τ)` by time-dependent Dijkstra (paper §2).
//!
//! The label-setting baseline: visits graph nodes in non-decreasing arrival
//! order from the source. Boarding at the source station is free (no
//! transfer time before the first train), matching the connection-setting
//! initialization that starts directly at route nodes.

use pt_core::{NodeId, StationId, Time, INFINITY};
use pt_heap::BinaryHeap;

use crate::network::Network;
use crate::stats::QueryStats;

/// Result of a one-to-all time-query.
#[derive(Debug, Clone)]
pub struct TimeQueryResult {
    /// Earliest absolute arrival per *station* ([`INFINITY`] = unreachable).
    pub arrival: Vec<Time>,
    /// Operation counters.
    pub stats: QueryStats,
}

impl TimeQueryResult {
    /// Arrival at one station.
    #[inline]
    pub fn arrival_at(&self, s: StationId) -> Time {
        self.arrival[s.idx()]
    }
}

/// Computes earliest arrivals at every station when departing `source` at
/// absolute time `dep`.
pub fn earliest_arrivals(net: &Network, source: StationId, dep: Time) -> TimeQueryResult {
    run(net, source, dep, None)
}

/// Earliest arrival at `target` when departing `source` at `dep`
/// ([`INFINITY`] if unreachable). Stops as soon as the target is settled.
pub fn earliest_arrival(net: &Network, source: StationId, dep: Time, target: StationId) -> Time {
    run(net, source, dep, Some(target)).arrival[target.idx()]
}

fn run(net: &Network, source: StationId, dep: Time, target: Option<StationId>) -> TimeQueryResult {
    let g = net.graph();
    let n = g.num_nodes();
    let mut arr: Vec<Time> = vec![INFINITY; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new(n);
    let mut stats = QueryStats::default();

    let src = g.station_node(source);
    heap.push_or_decrease(src.idx(), dep.secs() as u64);
    stats.pushes += 1;

    let target_node = target.map(|t| g.station_node(t));
    while let Some((slot, key)) = heap.pop() {
        let v = NodeId::from_idx(slot);
        let t = Time(key as u32);
        arr[slot] = t;
        settled[slot] = true;
        stats.settled += 1;
        if target_node == Some(v) {
            break;
        }
        let from_source = v == src;
        for e in g.edges(v) {
            let ta = if from_source {
                // Boarding at the source needs no transfer buffer.
                g.eval_edge_free_transfer(e, t)
            } else {
                g.eval_edge(e, t)
            };
            if ta.is_infinite() || settled[e.head.idx()] {
                continue;
            }
            stats.relaxed += 1;
            if heap.contains(e.head.idx()) {
                if heap.push_or_decrease(e.head.idx(), ta.secs() as u64) {
                    stats.decreases += 1;
                }
            } else {
                heap.push_or_decrease(e.head.idx(), ta.secs() as u64);
                stats.pushes += 1;
            }
        }
    }

    TimeQueryResult { arrival: arr[..net.num_stations()].to_vec(), stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_core::{Dur, Period};
    use pt_timetable::TimetableBuilder;

    /// A ── B ── C line, hourly 08:00–10:00, 10 min per leg, 1 min dwell,
    /// plus a slow direct A → C train at 08:05 taking 50 min.
    fn net() -> (Network, Vec<StationId>) {
        let mut b = TimetableBuilder::new(Period::DAY);
        let s: Vec<_> =
            (0..3).map(|i| b.add_named_station(format!("{i}"), Dur::minutes(5))).collect();
        for h in [8, 9, 10] {
            b.add_simple_trip(
                &[s[0], s[1], s[2]],
                Time::hm(h, 0),
                &[Dur::minutes(10), Dur::minutes(10)],
                Dur::minutes(1),
            )
            .unwrap();
        }
        b.add_simple_trip(&[s[0], s[2]], Time::hm(8, 5), &[Dur::minutes(50)], Dur::ZERO).unwrap();
        (Network::new(b.build().unwrap()), s)
    }

    #[test]
    fn rides_the_next_train() {
        let (net, s) = net();
        // Departing 07:30: ride 08:00, B at 08:10, C at 08:21.
        let r = earliest_arrivals(&net, s[0], Time::hm(7, 30));
        assert_eq!(r.arrival_at(s[0]), Time::hm(7, 30));
        assert_eq!(r.arrival_at(s[1]), Time::hm(8, 10));
        assert_eq!(r.arrival_at(s[2]), Time::hm(8, 21));
    }

    #[test]
    fn no_transfer_time_at_source() {
        let (net, s) = net();
        // Departing exactly 08:00 still catches the 08:00 train even though
        // T(A) = 5 min.
        let r = earliest_arrivals(&net, s[0], Time::hm(8, 0));
        assert_eq!(r.arrival_at(s[1]), Time::hm(8, 10));
    }

    #[test]
    fn boarding_at_source_station_is_free() {
        let (net, s) = net();
        // Departing B itself at 08:10 catches the train leaving B at 08:11
        // (T(B) = 5 min does not apply at the source).
        let arr = earliest_arrival(&net, s[1], Time::hm(8, 10), s[2]);
        assert_eq!(arr, Time::hm(8, 21));
    }

    #[test]
    fn transfer_time_applies_when_changing_trains() {
        // Line 1: A→B 08:00→08:10. Line 2: B→C at 08:12 and 08:30 (10 min).
        // T(B) = 5 min: arriving 08:10 misses the 08:12, rides the 08:30.
        let mut b = TimetableBuilder::new(Period::DAY);
        let a = b.add_named_station("A", Dur::minutes(5));
        let bb = b.add_named_station("B", Dur::minutes(5));
        let c = b.add_named_station("C", Dur::minutes(5));
        b.add_simple_trip(&[a, bb], Time::hm(8, 0), &[Dur::minutes(10)], Dur::ZERO).unwrap();
        for m in [12, 30] {
            b.add_simple_trip(&[bb, c], Time::hm(8, m), &[Dur::minutes(10)], Dur::ZERO).unwrap();
        }
        let net = Network::new(b.build().unwrap());
        assert_eq!(earliest_arrival(&net, a, Time::hm(7, 50), c), Time::hm(8, 40));
    }

    #[test]
    fn slow_direct_train_loses() {
        let (net, s) = net();
        // 08:05 direct arrives 08:55; via B arrives 08:21 → Dijkstra picks it.
        let arr = earliest_arrival(&net, s[0], Time::hm(8, 0), s[2]);
        assert_eq!(arr, Time::hm(8, 21));
        // But departing 08:01 (just missed the 08:00), direct at 08:05 wins:
        // 08:55 versus the 09:00 local arriving 09:21.
        let arr = earliest_arrival(&net, s[0], Time::hm(8, 1), s[2]);
        assert_eq!(arr, Time::hm(8, 55));
    }

    #[test]
    fn unreachable_is_infinite() {
        let mut b = TimetableBuilder::new(Period::DAY);
        let a = b.add_named_station("A", Dur::ZERO);
        let c = b.add_named_station("B", Dur::ZERO);
        let d = b.add_named_station("isolated-target", Dur::ZERO);
        b.add_simple_trip(&[a, c], Time::hm(8, 0), &[Dur::minutes(10)], Dur::ZERO).unwrap();
        b.add_simple_trip(&[d, a], Time::hm(8, 0), &[Dur::minutes(10)], Dur::ZERO).unwrap();
        let net = Network::new(b.build().unwrap());
        assert!(earliest_arrival(&net, a, Time::hm(7, 0), d).is_infinite());
    }

    #[test]
    fn wraps_past_the_last_train_of_the_day() {
        let (net, s) = net();
        // Departing 11:00: last train was 10:00, so ride tomorrow's 08:00.
        let arr = earliest_arrival(&net, s[0], Time::hm(11, 0), s[1]);
        assert_eq!(arr, Time::hm(24 + 8, 10));
    }
}
