//! The paper's search algorithms.
//!
//! * [`time_query`] — time-dependent Dijkstra (`dist(S, ·, τ)`), the
//!   label-setting baseline of §2 and the ground truth for tests,
//! * [`label_correcting`] — the label-correcting profile search the paper
//!   compares against in Table 1 (propagates whole functions),
//! * [`connection_setting`] — **SPCS**, the self-pruning connection-setting
//!   one-to-all profile search (§3.1),
//! * [`partition`] — the `conn(S)` partition strategies for parallel
//!   execution (§3.2): equal time-slots, equal number of connections,
//!   1-D k-means,
//! * [`parallel`] — the multi-threaded driver: one SPCS per thread on its
//!   connection subset, merge + connection reduction at the master (§3.2),
//! * [`kernel`] — the branch-light structure-of-arrays label kernels: a
//!   time-bucketed frontier replaces the binary heap, relaxations sweep
//!   edges grouped by kind into contiguous `u32` lanes, and a single
//!   masked comparison commits improvements
//!   ([`KernelMode::{Scalar, Soa, Auto}`](KernelMode) on both engines;
//!   the scalar path stays the arbiter of correctness),
//! * [`s2s`] — station-to-station queries (§4): stopping criterion,
//!   distance-table pruning via `via(T)`, target pruning,
//! * [`workspace`] — persistent, epoch-stamped per-worker search state;
//!   engines reuse it so the repeated-query hot path allocates nothing,
//! * [`cache`] — the concurrently readable, generation-keyed LRU over
//!   shared profile sets behind [`ProfileEngine::with_cache`]; delay
//!   updates ([`Network::apply_delay`] and batched feeds,
//!   [`Network::apply_feed`] — one bump per feed) invalidate it by bumping
//!   the generation,
//! * [`distance_table`] — precomputed full profile tables between transfer
//!   stations, kept fresh under live feeds by the row- *and* column-scoped
//!   incremental [`DistanceTable::refresh`] (stale tables surface as a
//!   typed [`StaleTable`] from the fallible s2s entry points),
//! * [`network`] also hosts [`ConcurrentNetwork`]: snapshot-isolated
//!   serving, where readers pin immutable epoch-stamped
//!   [`NetworkSnapshot`]s while one writer patches a private master and
//!   publishes with an atomic swap,
//! * [`shard`] — the multi-network serving layer: a [`ShardedService`]
//!   owns N snapshot-published shards behind a station-to-shard directory,
//!   routes queries/batches/feeds to the owning shard's persistent engines
//!   (all serving methods `&self`, one `apply_feed` with one scoped table
//!   refresh per shard per feed, per-shard cache stripes, batches pin all
//!   touched shards' snapshots up front); cross-shard pairs are refused
//!   with a typed redirect ([`RouterError`]) unless a gateway is built,
//! * [`gateway`] — the cross-shard gateway: border-station alias groups
//!   ([`BorderSpec`]), precomputed per-shard border profile sets riding
//!   the distance-table freshness machinery, and the stitch
//!   (link at junctions, dominance-reduce, merge) that makes
//!   [`ShardedService::s2s`] answer cross-shard pairs exactly,
//! * [`transfer_selection`] / [`contraction`] — choosing the transfer
//!   stations by station-graph contraction or by degree,
//! * [`multicriteria`] — the paper's future-work extension: Pareto
//!   (arrival, transfers) time-queries.

#![warn(missing_docs)]

pub mod cache;
pub mod connection_setting;
pub mod contraction;
pub mod distance_table;
pub mod gateway;
pub mod journey;
pub mod kernel;
pub mod label_correcting;
pub mod multicriteria;
pub mod network;
pub mod parallel;
pub mod partition;
pub mod profile_set;
pub mod s2s;
pub mod shard;
pub mod stats;
pub mod time_query;
pub mod transfer_selection;
pub mod workspace;

pub use cache::{CacheStats, ProfileCache};
pub use connection_setting::ProfileEngine;
pub use distance_table::{DistanceTable, StaleTable};
pub use gateway::{BorderSpec, GatewayStats};
pub use journey::{earliest_journey, Journey, Leg};
pub use kernel::KernelMode;
pub use network::{
    ConcurrentNetwork, DelayUpdate, FeedSummary, Network, NetworkSnapshot, PublishOutcome,
};
pub use parallel::OneToAllResult;
pub use partition::PartitionStrategy;
pub use profile_set::ProfileSet;
pub use s2s::{QueryKind, S2sCache, S2sEngine, S2sResult};
pub use shard::{
    Routed, RouterError, ShardFeedOutcome, ShardId, ShardedFeedSummary, ShardedService,
    ShardedServiceBuilder,
};
pub use stats::QueryStats;
pub use transfer_selection::TransferSelection;
pub use workspace::{SearchWorkspace, WorkspacePool};
