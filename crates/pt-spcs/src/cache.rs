//! Generation-keyed, concurrently readable LRU caches over query results.
//!
//! Real query traffic repeats heavily — the same `(source)` one-to-all
//! requests arrive again and again (commuting-demand workloads). A
//! [`ProfileCache`] memoizes whole [`ProfileSet`]s behind `Arc`s, keyed by
//! `(source, network epoch, timetable generation)`: a hit hands out the
//! shared result with no search and no copy, and a delay update
//! ([`Network::apply_delay`](crate::network::Network::apply_delay)) bumps
//! the generation, so every stale entry simply stops matching — no explicit
//! invalidation pass — and ages out through normal LRU pressure. The epoch
//! ([`Network::epoch`](crate::network::Network::epoch)) is a process-unique
//! per-instance stamp: engines are network-free, so one cached engine may
//! legally serve several networks, and freshly built (or cloned) networks
//! whose generations coincide must still never alias in the cache.
//!
//! Since the snapshot-isolation refactor every cache stripe is
//! **concurrently readable**: the entry map sits behind an `RwLock`, the
//! hit/miss/eviction counters and the per-entry LRU stamps are atomics, so
//! `get` takes only the shared read lock and `&self` — many reader threads
//! probe one stripe in parallel while `insert` briefly takes the write
//! lock. Under a single thread the logical tick stream is identical to the
//! old exclusive cache, so LRU order stays total and deterministic.
//!
//! The cache is opt-in per engine
//! ([`ProfileEngine::with_cache`](crate::ProfileEngine::with_cache)) and
//! fixed-capacity; eviction is least-recently-used, tracked by a logical
//! tick. Hit/miss/eviction counts surface both per query (in
//! [`QueryStats`](crate::QueryStats)) and cumulatively ([`CacheStats`]).
//! The same core backs the station-to-station result cache
//! ([`S2sCache`](crate::s2s::S2sCache)).

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use pt_core::StationId;

use crate::profile_set::ProfileSet;

/// Cumulative counters and occupancy of a [`ProfileCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a search.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Current number of cached profile sets.
    pub entries: usize,
    /// Maximum number of cached profile sets.
    pub capacity: usize,
}

impl CacheStats {
    /// Accumulates another cache's counters into `self` — the aggregate
    /// view over a *striped* cache (one stripe per shard, see
    /// [`crate::shard::ShardedService::cache_stats`]): counters and
    /// occupancy add, the capacity is the striped total.
    pub fn absorb(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.entries += other.entries;
        self.capacity += other.capacity;
    }

    /// `hits / (hits + misses)`, 0.0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    /// Logical last-use stamp; every touch stores a freshly drawn
    /// cache-wide tick, so single-threaded LRU order stays total and
    /// deterministic (concurrent touches interleave but stay unique).
    last_used: AtomicU64,
}

/// The shared interior-mutable LRU core behind [`ProfileCache`] and the
/// station-to-station result cache: an `RwLock`-ed map with atomic
/// counters. `get` needs only the read lock; `insert` takes the write
/// lock and runs the `O(capacity)` victim scan.
#[derive(Debug)]
pub(crate) struct LruCore<K, V> {
    capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    entries: RwLock<HashMap<K, Entry<V>>>,
}

impl<K: Copy + Eq + Hash, V: Clone> LruCore<K, V> {
    pub(crate) fn new(capacity: usize) -> LruCore<K, V> {
        assert!(capacity > 0, "cache capacity must be positive");
        LruCore {
            capacity,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            entries: RwLock::new(HashMap::with_capacity(capacity)),
        }
    }

    /// Shared-lock lookup, refreshing the entry's LRU stamp on a hit.
    pub(crate) fn get(&self, key: K) -> Option<V> {
        let entries = self.entries.read().unwrap();
        // The tick must be drawn *under* the lock: drawn before it, a hit
        // could stall between `fetch_add` and the read lock while other
        // probes and an insert's victim scan run — the hit's stale stamp
        // then marks the entry it is about to touch as the LRU victim, and
        // the hottest entry gets evicted.
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        match entries.get(&key) {
            Some(e) => {
                e.last_used.store(tick, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Exclusive-lock store; returns `true` iff an eviction happened.
    /// Re-inserting an existing key replaces the value in place.
    pub(crate) fn insert(&self, key: K, value: V) -> bool {
        let mut entries = self.entries.write().unwrap();
        // Under the lock for the same reason as in `get`: a tick drawn
        // before it can stamp this entry older than touches that really
        // happened earlier, misordering the next victim scan.
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(e) = entries.get_mut(&key) {
            e.value = value;
            e.last_used.store(tick, Ordering::Relaxed);
            return false;
        }
        let mut evicted = false;
        if entries.len() >= self.capacity {
            // O(capacity) scan — capacities are small and fixed, and the
            // unique ticks make the minimum (the LRU victim) unambiguous.
            let lru = entries
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(&k, _)| k)
                .expect("cache is non-empty when full");
            entries.remove(&lru);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            evicted = true;
        }
        entries.insert(key, Entry { value, last_used: AtomicU64::new(tick) });
        evicted
    }

    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
            capacity: self.capacity,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.read().unwrap().len()
    }

    pub(crate) fn clear(&self) {
        self.entries.write().unwrap().clear();
    }
}

impl<K: Copy + Eq + Hash, V: Clone> Clone for LruCore<K, V> {
    /// Snapshots entries, stamps and counters — a clone observes the same
    /// state but shares nothing with the original.
    fn clone(&self) -> Self {
        let entries = self.entries.read().unwrap();
        let copied: HashMap<K, Entry<V>> = entries
            .iter()
            .map(|(&k, e)| {
                let stamp = e.last_used.load(Ordering::Relaxed);
                (k, Entry { value: e.value.clone(), last_used: AtomicU64::new(stamp) })
            })
            .collect();
        LruCore {
            capacity: self.capacity,
            tick: AtomicU64::new(self.tick.load(Ordering::Relaxed)),
            hits: AtomicU64::new(self.hits.load(Ordering::Relaxed)),
            misses: AtomicU64::new(self.misses.load(Ordering::Relaxed)),
            evictions: AtomicU64::new(self.evictions.load(Ordering::Relaxed)),
            entries: RwLock::new(copied),
        }
    }
}

/// A cache key: `(source, network epoch, timetable generation)`.
type Key = (StationId, u64, u64);

/// A fixed-capacity, concurrently readable LRU over `Arc<ProfileSet>`
/// keyed by `(source, network epoch, timetable generation)`. All methods
/// take `&self`; see the module docs for the locking discipline.
#[derive(Debug, Clone)]
pub struct ProfileCache {
    core: LruCore<Key, Arc<ProfileSet>>,
}

impl ProfileCache {
    /// An empty cache holding at most `capacity` profile sets.
    pub fn new(capacity: usize) -> ProfileCache {
        ProfileCache { core: LruCore::new(capacity) }
    }

    /// Looks up the profiles of `source` on the network identified by
    /// `(epoch, generation)`, refreshing the entry's LRU position. Counts
    /// a hit or a miss. Takes only the shared read lock — safe to call
    /// from many reader threads at once.
    pub fn get(&self, source: StationId, epoch: u64, generation: u64) -> Option<Arc<ProfileSet>> {
        self.core.get((source, epoch, generation))
    }

    /// Stores a result, evicting the least-recently-used entry when full.
    /// Returns `true` iff an eviction happened. Re-inserting an existing
    /// key replaces the value in place (no eviction).
    pub fn insert(
        &self,
        source: StationId,
        epoch: u64,
        generation: u64,
        set: Arc<ProfileSet>,
    ) -> bool {
        self.core.insert((source, epoch, generation), set)
    }

    /// Cumulative counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        self.core.stats()
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.core.len()
    }

    /// `true` iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.core.len() == 0
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        self.core.clear()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_core::{Period, Profile};

    fn set(source: u32) -> Arc<ProfileSet> {
        Arc::new(ProfileSet::new(
            StationId(source),
            Period::DAY,
            vec![Profile::EMPTY, Profile::EMPTY],
        ))
    }

    #[test]
    fn hit_returns_the_shared_set() {
        let c = ProfileCache::new(2);
        let s = set(0);
        c.insert(StationId(0), 7, 0, Arc::clone(&s));
        let hit = c.get(StationId(0), 7, 0).expect("hit");
        assert!(Arc::ptr_eq(&hit, &s), "a hit must be the identical set, not a copy");
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn generation_bump_misses() {
        let c = ProfileCache::new(4);
        c.insert(StationId(0), 7, 0, set(0));
        assert!(c.get(StationId(0), 7, 0).is_some());
        // A delay bumped the generation: same source, different key.
        assert!(c.get(StationId(0), 7, 1).is_none());
        // Same source and generation on a *different network instance*
        // (another epoch) must also miss: no cross-network aliasing.
        assert!(c.get(StationId(0), 8, 0).is_none());
        let st = c.stats();
        assert_eq!((st.hits, st.misses), (1, 2));
    }

    #[test]
    fn evicts_least_recently_used() {
        let c = ProfileCache::new(2);
        c.insert(StationId(0), 7, 0, set(0));
        c.insert(StationId(1), 7, 0, set(1));
        // Touch 0 so 1 becomes the LRU victim.
        assert!(c.get(StationId(0), 7, 0).is_some());
        assert!(c.insert(StationId(2), 7, 0, set(2)), "full cache must evict");
        assert!(c.get(StationId(1), 7, 0).is_none(), "LRU entry evicted");
        assert!(c.get(StationId(0), 7, 0).is_some(), "recently used entry kept");
        assert!(c.get(StationId(2), 7, 0).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let c = ProfileCache::new(1);
        c.insert(StationId(0), 7, 0, set(0));
        assert!(!c.insert(StationId(0), 7, 0, set(0)));
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn stats_and_hit_rate() {
        let c = ProfileCache::new(2);
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.insert(StationId(0), 7, 0, set(0));
        let _ = c.get(StationId(0), 7, 0);
        let _ = c.get(StationId(1), 7, 0);
        let st = c.stats();
        assert_eq!((st.hits, st.misses, st.entries, st.capacity), (1, 1, 1, 2));
        assert!((st.hit_rate() - 0.5).abs() < 1e-12);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats().hits, 1, "clear keeps counters");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ProfileCache::new(0);
    }

    #[test]
    fn concurrent_readers_share_one_stripe() {
        // Many threads hammering `get` through `&self` while the entry is
        // hot: every reader must see the identical shared set and the hit
        // counter must account for every probe.
        let c = ProfileCache::new(4);
        let s = set(0);
        c.insert(StationId(0), 7, 0, Arc::clone(&s));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        let hit = c.get(StationId(0), 7, 0).expect("hot entry");
                        assert!(Arc::ptr_eq(&hit, &s));
                    }
                });
            }
        });
        assert_eq!(c.stats().hits, 400);
    }

    #[test]
    fn a_hit_cannot_be_stamped_older_than_earlier_touches() {
        // Regression: the tick for a hit used to be drawn *before* taking
        // the read lock. A hit that blocked behind a writer then stamped
        // its entry with a tick older than touches that happened while it
        // waited — so the entry hit *last* in wall-clock order scanned as
        // the LRU victim and the hottest entry got evicted. Ticks are now
        // drawn under the lock: the blocked hit below must end up newer
        // than the touch performed while it was blocked.
        let c = LruCore::<u32, u32>::new(2);
        c.insert(0, 10); // the entry we will hit last
        c.insert(1, 11);
        // Pin the map so the hit blocks mid-`get`.
        let blocker = c.entries.write().unwrap();
        std::thread::scope(|scope| {
            let reader = scope.spawn(|| {
                assert_eq!(c.get(0), Some(10)); // blocks behind `blocker`
            });
            // Let the reader reach the lock (and, pre-fix, draw its
            // too-early tick).
            std::thread::sleep(std::time::Duration::from_millis(50));
            // A touch of entry 1 that wall-clock-precedes the blocked hit.
            let t = c.tick.fetch_add(1, Ordering::Relaxed) + 1;
            blocker.get(&1).unwrap().last_used.store(t, Ordering::Relaxed);
            drop(blocker);
            reader.join().unwrap();
        });
        // The hit on 0 completed last, so 1 must be the victim now.
        assert!(c.insert(2, 12), "full cache evicts");
        assert_eq!(c.get(0), Some(10), "the last-hit entry must survive");
        assert_eq!(c.get(1), None, "the earlier touch is the victim");
    }

    #[test]
    fn clone_shares_nothing() {
        let a = ProfileCache::new(2);
        a.insert(StationId(0), 7, 0, set(0));
        let b = a.clone();
        b.insert(StationId(1), 7, 0, set(1));
        assert_eq!(a.len(), 1, "insert into the clone must not leak back");
        assert_eq!(b.len(), 2);
        assert_eq!(a.stats().hits, b.stats().hits);
    }
}
