//! Generation-keyed LRU cache over profile query results.
//!
//! Real query traffic repeats heavily — the same `(source)` one-to-all
//! requests arrive again and again (commuting-demand workloads). A
//! [`ProfileCache`] memoizes whole [`ProfileSet`]s behind `Arc`s, keyed by
//! `(source, network epoch, timetable generation)`: a hit hands out the
//! shared result with no search and no copy, and a delay update
//! ([`Network::apply_delay`](crate::network::Network::apply_delay)) bumps
//! the generation, so every stale entry simply stops matching — no explicit
//! invalidation pass — and ages out through normal LRU pressure. The epoch
//! ([`Network::epoch`](crate::network::Network::epoch)) is a process-unique
//! per-instance stamp: engines are network-free, so one cached engine may
//! legally serve several networks, and freshly built (or cloned) networks
//! whose generations coincide must still never alias in the cache.
//!
//! The cache is opt-in per engine
//! ([`ProfileEngine::with_cache`](crate::ProfileEngine::with_cache)) and
//! fixed-capacity; eviction is least-recently-used, tracked by a logical
//! tick. Hit/miss/eviction counts surface both per query (in
//! [`QueryStats`](crate::QueryStats)) and cumulatively ([`CacheStats`]).

use std::collections::HashMap;
use std::sync::Arc;

use pt_core::StationId;

use crate::profile_set::ProfileSet;

/// Cumulative counters and occupancy of a [`ProfileCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a search.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Current number of cached profile sets.
    pub entries: usize,
    /// Maximum number of cached profile sets.
    pub capacity: usize,
}

impl CacheStats {
    /// Accumulates another cache's counters into `self` — the aggregate
    /// view over a *striped* cache (one stripe per shard, see
    /// [`crate::shard::ShardedService::cache_stats`]): counters and
    /// occupancy add, the capacity is the striped total.
    pub fn absorb(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.entries += other.entries;
        self.capacity += other.capacity;
    }

    /// `hits / (hits + misses)`, 0.0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    set: Arc<ProfileSet>,
    /// Logical last-use time; unique per entry (every touch bumps the
    /// cache-wide tick), so LRU order is total and deterministic.
    last_used: u64,
}

/// A cache key: `(source, network epoch, timetable generation)`.
type Key = (StationId, u64, u64);

/// A fixed-capacity LRU over `Arc<ProfileSet>` keyed by
/// `(source, network epoch, timetable generation)`.
#[derive(Debug, Clone)]
pub struct ProfileCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<Key, Entry>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ProfileCache {
    /// An empty cache holding at most `capacity` profile sets.
    pub fn new(capacity: usize) -> ProfileCache {
        assert!(capacity > 0, "cache capacity must be positive");
        ProfileCache {
            capacity,
            tick: 0,
            entries: HashMap::with_capacity(capacity),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up the profiles of `source` on the network identified by
    /// `(epoch, generation)`, refreshing the entry's LRU position. Counts
    /// a hit or a miss.
    pub fn get(
        &mut self,
        source: StationId,
        epoch: u64,
        generation: u64,
    ) -> Option<Arc<ProfileSet>> {
        self.tick += 1;
        match self.entries.get_mut(&(source, epoch, generation)) {
            Some(e) => {
                e.last_used = self.tick;
                self.hits += 1;
                Some(Arc::clone(&e.set))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a result, evicting the least-recently-used entry when full.
    /// Returns `true` iff an eviction happened. Re-inserting an existing
    /// key replaces the value in place (no eviction).
    pub fn insert(
        &mut self,
        source: StationId,
        epoch: u64,
        generation: u64,
        set: Arc<ProfileSet>,
    ) -> bool {
        self.tick += 1;
        let key = (source, epoch, generation);
        if let Some(e) = self.entries.get_mut(&key) {
            e.set = set;
            e.last_used = self.tick;
            return false;
        }
        let mut evicted = false;
        if self.entries.len() >= self.capacity {
            // O(capacity) scan — capacities are small and fixed, and the
            // unique ticks make the minimum (the LRU victim) unambiguous.
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k)
                .expect("cache is non-empty when full");
            self.entries.remove(&lru);
            self.evictions += 1;
            evicted = true;
        }
        self.entries.insert(key, Entry { set, last_used: self.tick });
        evicted
    }

    /// Cumulative counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.entries.len(),
            capacity: self.capacity,
        }
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_core::{Period, Profile};

    fn set(source: u32) -> Arc<ProfileSet> {
        Arc::new(ProfileSet::new(
            StationId(source),
            Period::DAY,
            vec![Profile::EMPTY, Profile::EMPTY],
        ))
    }

    #[test]
    fn hit_returns_the_shared_set() {
        let mut c = ProfileCache::new(2);
        let s = set(0);
        c.insert(StationId(0), 7, 0, Arc::clone(&s));
        let hit = c.get(StationId(0), 7, 0).expect("hit");
        assert!(Arc::ptr_eq(&hit, &s), "a hit must be the identical set, not a copy");
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn generation_bump_misses() {
        let mut c = ProfileCache::new(4);
        c.insert(StationId(0), 7, 0, set(0));
        assert!(c.get(StationId(0), 7, 0).is_some());
        // A delay bumped the generation: same source, different key.
        assert!(c.get(StationId(0), 7, 1).is_none());
        // Same source and generation on a *different network instance*
        // (another epoch) must also miss: no cross-network aliasing.
        assert!(c.get(StationId(0), 8, 0).is_none());
        let st = c.stats();
        assert_eq!((st.hits, st.misses), (1, 2));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = ProfileCache::new(2);
        c.insert(StationId(0), 7, 0, set(0));
        c.insert(StationId(1), 7, 0, set(1));
        // Touch 0 so 1 becomes the LRU victim.
        assert!(c.get(StationId(0), 7, 0).is_some());
        assert!(c.insert(StationId(2), 7, 0, set(2)), "full cache must evict");
        assert!(c.get(StationId(1), 7, 0).is_none(), "LRU entry evicted");
        assert!(c.get(StationId(0), 7, 0).is_some(), "recently used entry kept");
        assert!(c.get(StationId(2), 7, 0).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let mut c = ProfileCache::new(1);
        c.insert(StationId(0), 7, 0, set(0));
        assert!(!c.insert(StationId(0), 7, 0, set(0)));
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn stats_and_hit_rate() {
        let mut c = ProfileCache::new(2);
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.insert(StationId(0), 7, 0, set(0));
        let _ = c.get(StationId(0), 7, 0);
        let _ = c.get(StationId(1), 7, 0);
        let st = c.stats();
        assert_eq!((st.hits, st.misses, st.entries, st.capacity), (1, 1, 1, 2));
        assert!((st.hit_rate() - 0.5).abs() < 1e-12);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats().hits, 1, "clear keeps counters");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ProfileCache::new(0);
    }
}
