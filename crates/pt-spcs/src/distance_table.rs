//! Distance tables between transfer stations (paper §4).
//!
//! `D : S_trans × S_trans × Π → N0` returns, for each pair of transfer
//! stations, the arrival time at the second when departing the first at a
//! given time — *without* transfer times at either endpoint. We store one
//! reduced arrival profile per ordered pair; an evaluation is one binary
//! search.
//!
//! The table is precomputed "by running our parallel one-to-all algorithm
//! from every transfer station" (§5.2). Here the build rides on
//! [`ProfileEngine::many_to_all`]: the batch layer distributes the source
//! stations over the persistent worker pool with a sequential SPCS per
//! source and per-worker workspace reuse — the same total work, better
//! scheduling and no per-source allocation.

use pt_core::{Period, Profile, StationId, Time, INFINITY};

use crate::connection_setting::ProfileEngine;
use crate::network::Network;
use crate::transfer_selection::TransferSelection;

/// A full profile table between transfer stations.
///
/// The table is a snapshot of the network it was built from: after a
/// [`Network::apply_delay`](crate::network::Network::apply_delay) its
/// profiles are stale and pruning with it is unsound — rebuild it, or drop
/// it and let queries fall back to the stopping criterion. The table
/// records the `(epoch, generation)` of the network it was built from, and
/// [`S2sEngine`](crate::S2sEngine) refuses (panics) to prune with a table
/// whose stamp does not match the queried network.
#[derive(Debug, Clone)]
pub struct DistanceTable {
    period: Period,
    /// Sorted transfer stations.
    stations: Vec<StationId>,
    /// Station → table index (`u32::MAX` = not a transfer station).
    index: Vec<u32>,
    /// Row-major `|S_trans|²` profiles.
    profiles: Vec<Profile>,
    /// Wall-clock preprocessing time.
    build_time: std::time::Duration,
    /// `(Network::epoch, Network::generation)` at build time.
    built_for: (u64, u64),
}

impl DistanceTable {
    /// Precomputes the table for the given selection strategy.
    pub fn build(net: &Network, selection: &TransferSelection) -> DistanceTable {
        let stations = selection.select(net);
        Self::build_for(net, stations)
    }

    /// Precomputes the table for an explicit (sorted, deduped) station set.
    pub fn build_for(net: &Network, stations: Vec<StationId>) -> DistanceTable {
        let start = std::time::Instant::now();
        let period = net.timetable().period();
        let n = stations.len();
        let mut index = vec![u32::MAX; net.num_stations()];
        for (i, s) in stations.iter().enumerate() {
            index[s.idx()] = i as u32;
        }

        // One sequential SPCS per source, sources batched over the pool.
        let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        let mut engine = ProfileEngine::new().threads(workers);
        let sets = engine.many_to_all(net, &stations);

        let mut profiles = Vec::with_capacity(n * n);
        for set in &sets {
            profiles.extend(stations.iter().map(|&dst| set.profile(dst).clone()));
        }
        DistanceTable {
            period,
            stations,
            index,
            profiles,
            build_time: start.elapsed(),
            built_for: (net.epoch(), net.generation()),
        }
    }

    /// Panics unless this table was built from exactly this network state
    /// (same [`Network::epoch`](Network::epoch) and generation). Called by
    /// the s2s engine before every table-pruned query: a stale table would
    /// silently produce wrong arrivals, a panic makes the bug loud.
    pub fn assert_fresh(&self, net: &Network) {
        assert_eq!(
            self.built_for,
            (net.epoch(), net.generation()),
            "stale distance table: built for network (epoch, generation) {:?}, queried \
             against {:?} — rebuild (or drop) distance tables after delay updates",
            self.built_for,
            (net.epoch(), net.generation())
        );
    }

    /// Number of transfer stations.
    #[inline]
    pub fn len(&self) -> usize {
        self.stations.len()
    }

    /// `true` iff no transfer stations were selected.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.stations.is_empty()
    }

    /// The sorted transfer stations.
    #[inline]
    pub fn stations(&self) -> &[StationId] {
        &self.stations
    }

    /// `true` iff `s ∈ S_trans`.
    #[inline]
    pub fn is_transfer(&self, s: StationId) -> bool {
        self.index[s.idx()] != u32::MAX
    }

    /// Boolean mask over all stations.
    pub fn transfer_mask(&self) -> Vec<bool> {
        self.index.iter().map(|&i| i != u32::MAX).collect()
    }

    /// The stored profile `D(a, b, ·)`; both must be transfer stations.
    #[inline]
    pub fn profile(&self, a: StationId, b: StationId) -> &Profile {
        let ia = self.index[a.idx()];
        let ib = self.index[b.idx()];
        debug_assert!(ia != u32::MAX && ib != u32::MAX, "not transfer stations");
        &self.profiles[ia as usize * self.stations.len() + ib as usize]
    }

    /// `D(a, b, t)`: earliest arrival at `b` when departing `a` at absolute
    /// time `t` (no transfer buffers at the endpoints). `a == b` yields `t`;
    /// unreachable pairs yield [`INFINITY`].
    #[inline]
    pub fn eval(&self, a: StationId, b: StationId, t: Time) -> Time {
        if a == b {
            return t;
        }
        if t.is_infinite() {
            return INFINITY;
        }
        self.profile(a, b).eval_arr(t, self.period)
    }

    /// Wall-clock time spent in [`DistanceTable::build`].
    pub fn build_time(&self) -> std::time::Duration {
        self.build_time
    }

    /// Memory footprint of the stored profiles in bytes (the space column
    /// of Table 2).
    pub fn size_bytes(&self) -> usize {
        self.profiles.iter().map(Profile::size_bytes).sum::<usize>()
            + self.index.len() * std::mem::size_of::<u32>()
            + self.stations.len() * std::mem::size_of::<StationId>()
    }

    /// Megabytes variant of [`DistanceTable::size_bytes`].
    pub fn size_mib(&self) -> f64 {
        self.size_bytes() as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_timetable::synthetic::city::{generate_city, CityConfig};

    fn net() -> Network {
        Network::new(generate_city(&CityConfig::sized(36, 5, 11)))
    }

    #[test]
    fn table_matches_one_to_all_profiles() {
        let net = net();
        let table = DistanceTable::build(&net, &TransferSelection::Fraction(0.2));
        assert!(!table.is_empty());
        for &a in table.stations().iter().take(3) {
            let set = ProfileEngine::new().one_to_all(&net, a);
            for &b in table.stations() {
                assert_eq!(table.profile(a, b), set.profile(b), "{a}→{b}");
            }
        }
    }

    #[test]
    fn eval_is_identity_on_diagonal() {
        let net = net();
        let table = DistanceTable::build(&net, &TransferSelection::Fraction(0.1));
        let s = table.stations()[0];
        let t = Time::hm(9, 30);
        assert_eq!(table.eval(s, s, t), t);
    }

    #[test]
    fn eval_agrees_with_time_queries() {
        let net = net();
        let table = DistanceTable::build(&net, &TransferSelection::Fraction(0.15));
        let deps = [Time::hm(7, 0), Time::hm(12, 31), Time::hm(23, 45)];
        for &a in table.stations().iter().take(2) {
            for &b in table.stations().iter().take(4) {
                if a == b {
                    continue;
                }
                for &dep in &deps {
                    let want = crate::time_query::earliest_arrival(&net, a, dep, b);
                    assert_eq!(table.eval(a, b, dep), want, "{a}→{b} at {dep}");
                }
            }
        }
    }

    #[test]
    fn size_accounting_is_positive() {
        let net = net();
        let table = DistanceTable::build(&net, &TransferSelection::Fraction(0.1));
        assert!(table.size_bytes() > 0);
        assert!(table.size_mib() > 0.0);
        assert!(table.build_time() > std::time::Duration::ZERO);
    }

    #[test]
    fn mask_is_consistent() {
        let net = net();
        let table = DistanceTable::build(&net, &TransferSelection::Fraction(0.1));
        let mask = table.transfer_mask();
        for s in net.station_ids() {
            assert_eq!(mask[s.idx()], table.is_transfer(s));
        }
        assert_eq!(mask.iter().filter(|&&b| b).count(), table.len());
    }
}
