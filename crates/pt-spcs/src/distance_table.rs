//! Distance tables between transfer stations (paper §4).
//!
//! `D : S_trans × S_trans × Π → N0` returns, for each pair of transfer
//! stations, the arrival time at the second when departing the first at a
//! given time — *without* transfer times at either endpoint. We store one
//! reduced arrival profile per ordered pair; an evaluation is one binary
//! search.
//!
//! The table is precomputed "by running our parallel one-to-all algorithm
//! from every transfer station" (§5.2). Here the build rides on
//! [`ProfileEngine::many_to_all`]: the batch layer distributes the source
//! stations over the persistent worker pool with a sequential SPCS per
//! source and per-worker workspace reuse — the same total work, better
//! scheduling and no per-source allocation.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pt_core::{Period, Profile, StationId, Time, INFINITY};

use crate::connection_setting::ProfileEngine;
use crate::network::Network;
use crate::transfer_selection::TransferSelection;

/// A distance table was asked to serve a network state it was not built
/// (or last refreshed) for. Pruning with a stale table silently produces
/// wrong arrivals, so the engines refuse; a feed-driven server catches
/// this and calls [`DistanceTable::refresh`] (same epoch) or rebuilds
/// (different network instance) instead of crashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaleTable {
    /// `(Network::epoch, Network::generation)` the table was built for.
    pub built_for: (u64, u64),
    /// The `(epoch, generation)` of the network that was queried.
    pub queried: (u64, u64),
}

impl StaleTable {
    /// `true` iff [`DistanceTable::refresh`] can reconcile the table (same
    /// network instance, only the generation moved); `false` means a
    /// different network entirely — rebuild from scratch.
    pub fn refreshable(&self) -> bool {
        self.built_for.0 == self.queried.0
    }
}

impl fmt::Display for StaleTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stale distance table: built for network (epoch, generation) {:?}, queried \
             against {:?} — refresh (or rebuild) distance tables after delay updates",
            self.built_for, self.queried
        )
    }
}

impl std::error::Error for StaleTable {}

/// A full profile table between transfer stations.
///
/// The table is a snapshot of the network it was built from: after a
/// [`Network::apply_delay`](crate::network::Network::apply_delay) /
/// [`Network::apply_feed`](crate::network::Network::apply_feed) its
/// profiles are stale and pruning with it is unsound. The table records the
/// `(epoch, generation)` of the network it was built from, and
/// [`S2sEngine`](crate::S2sEngine) refuses to prune with a table whose
/// stamp does not match the queried network — as a typed [`StaleTable`]
/// from [`S2sEngine::try_query`](crate::S2sEngine::try_query), as a panic
/// from the infallible paths. [`DistanceTable::refresh`] reconciles the
/// table after a feed by recomputing only the rows whose profiles can have
/// changed; rebuilding (or dropping — queries then fall back to the
/// stopping criterion, staying correct) always works too.
/// Internally the table is copy-on-write: rows are individually
/// `Arc`-shared, so cloning the table (for a snapshot publish) is
/// O(|S_trans|) refcount bumps and a refresh copies exactly the rows it
/// recomputes. Freshness is a *generation range* `[valid_lo, valid_hi]`:
/// when a refresh finds zero affected rows, the table's contents are
/// provably identical at the old and new generation, so the range is
/// extended in place (an atomic store through `&self`) and the very same
/// allocation stays fresh for both a snapshot pinned at the old
/// generation and a publish at the new one.
#[derive(Debug)]
pub struct DistanceTable {
    period: Period,
    /// Sorted transfer stations.
    stations: Arc<Vec<StationId>>,
    /// Station → table index (`u32::MAX` = not a transfer station).
    index: Arc<Vec<u32>>,
    /// One row per transfer station, each holding `|S_trans|` profiles.
    rows: Vec<Arc<Vec<Profile>>>,
    /// Wall-clock preprocessing time.
    build_time: std::time::Duration,
    /// `Network::epoch` at build time.
    built_epoch: u64,
    /// Lowest generation the stored profiles are known to be exact for.
    valid_lo: u64,
    /// Highest generation the stored profiles are known to be exact for
    /// (`>= valid_lo`). Atomic so a zero-row refresh can extend the range
    /// through a shared `Arc` without unsharing it; extending never
    /// invalidates a pinned reader (the range only grows).
    valid_hi: AtomicU64,
}

impl Clone for DistanceTable {
    fn clone(&self) -> Self {
        DistanceTable {
            period: self.period,
            stations: Arc::clone(&self.stations),
            index: Arc::clone(&self.index),
            rows: self.rows.clone(),
            build_time: self.build_time,
            built_epoch: self.built_epoch,
            valid_lo: self.valid_lo,
            valid_hi: AtomicU64::new(self.valid_hi.load(Ordering::Relaxed)),
        }
    }
}

/// What a refresh must rewrite: the affected rows plus the forward
/// column mask (empty mask = keep every column; the log was exhausted).
pub(crate) type RefreshPlan = (Vec<StationId>, Vec<bool>);

/// Scopes an incremental refresh of any per-station profile table (the
/// distance table's rows, the gateway's border sets): given the stations
/// the table stores profiles **from** (`rows`) and the generation its
/// contents are valid to (`since`), returns the rows a refresh must
/// recompute plus the forward column mask of stations whose profiles can
/// have changed (empty mask = recompute every column; the network's
/// bounded feed log was exhausted).
///
/// The affected rows come from the network itself: it records, per
/// generation, the departure stations of every re-timed connection
/// ([`Network::touched_since`]), so a table any number of feeds behind
/// still sees the **complete** union. A profile from `a` can only change
/// if some journey from `a` rides a re-timed connection, i.e. if `a`
/// reaches a touched station in the station graph — which is invariant
/// under delays, so a reverse reachability search from the touched set
/// (following incoming edges) finds exactly the rows to recompute; the
/// forward closure (outgoing edges) bounds the columns symmetrically.
pub(crate) fn refresh_scope(net: &Network, rows: &[StationId], since: u64) -> RefreshPlan {
    match net.touched_since(since) {
        // Reverse reachability: every station with a path *into* the
        // touched set can route through a re-timed connection.
        Some(touched) => {
            let sg = net.station_graph();
            let mut reaches = vec![false; net.num_stations()];
            let mut stack: Vec<StationId> = Vec::with_capacity(touched.len());
            for &s in &touched {
                if !reaches[s.idx()] {
                    reaches[s.idx()] = true;
                    stack.push(s);
                }
            }
            // Forward reachability for the columns, from the same
            // touched seed.
            let mut fwd = vec![false; net.num_stations()];
            let mut fwd_stack: Vec<StationId> = Vec::with_capacity(touched.len());
            for &s in &touched {
                if !fwd[s.idx()] {
                    fwd[s.idx()] = true;
                    fwd_stack.push(s);
                }
            }
            while let Some(v) = fwd_stack.pop() {
                for (u, _) in sg.out(v) {
                    if !fwd[u.idx()] {
                        fwd[u.idx()] = true;
                        fwd_stack.push(u);
                    }
                }
            }
            while let Some(v) = stack.pop() {
                for &u in sg.incoming(v) {
                    if !reaches[u.idx()] {
                        reaches[u.idx()] = true;
                        stack.push(u);
                    }
                }
            }
            (rows.iter().copied().filter(|s| reaches[s.idx()]).collect(), fwd)
        }
        // Too far behind the network's log: recompute everything.
        None => (rows.to_vec(), Vec::new()),
    }
}

impl DistanceTable {
    /// Precomputes the table for the given selection strategy.
    pub fn build(net: &Network, selection: &TransferSelection) -> DistanceTable {
        let stations = selection.select(net);
        Self::build_for(net, stations)
    }

    /// Precomputes the table for an explicit (sorted, deduped) station set.
    pub fn build_for(net: &Network, stations: Vec<StationId>) -> DistanceTable {
        let start = std::time::Instant::now();
        let period = net.timetable().period();
        let n = stations.len();
        let mut index = vec![u32::MAX; net.num_stations()];
        for (i, s) in stations.iter().enumerate() {
            index[s.idx()] = i as u32;
        }

        // One sequential SPCS per source, sources batched over the pool.
        let sets = build_engine().many_to_all(net, &stations);

        let rows: Vec<Arc<Vec<Profile>>> = sets
            .iter()
            .map(|set| {
                let row: Vec<Profile> =
                    stations.iter().map(|&dst| set.profile(dst).clone()).collect();
                debug_assert_eq!(row.len(), n);
                Arc::new(row)
            })
            .collect();
        DistanceTable {
            period,
            stations: Arc::new(stations),
            index: Arc::new(index),
            rows,
            build_time: start.elapsed(),
            built_epoch: net.epoch(),
            valid_lo: net.generation(),
            valid_hi: AtomicU64::new(net.generation()),
        }
    }

    /// Incrementally reconciles the table with a network that was mutated
    /// by delay feeds since the table was built (or last refreshed),
    /// recomputing **only the rows that can have changed** instead of
    /// dropping the whole table — what keeps §4 pruning hot under a live
    /// feed.
    ///
    /// The affected rows come from the network itself: it records, per
    /// generation, the departure stations of every re-timed connection
    /// ([`Network::touched_since`]), so a table any number of feeds behind
    /// still sees the **complete** union — the caller cannot accidentally
    /// under-report. A profile `D(a, b)` can only change if some journey
    /// from `a` rides a re-timed connection, i.e. if `a` reaches a touched
    /// station in the station graph — which is invariant under delays, so
    /// a reverse reachability search from the touched set (following
    /// incoming edges) finds exactly the rows to recompute; every other
    /// row provably matches a from-scratch rebuild.
    ///
    /// Columns are scoped symmetrically: a changed `D(a, b)` also needs the
    /// changed journey to *continue* from the re-timed connection's
    /// departure station to `b`, so only columns in the **forward** closure
    /// of the touched set (following outgoing station-graph edges) can
    /// differ — entries in other columns are overwritten with their own
    /// old value by a full-row refresh, so skipping them is free and
    /// provably entry-for-entry identical to a rebuild. When the table is
    /// further behind than the network's bounded log, every row and column
    /// is recomputed (still in one batched pass).
    ///
    /// Returns the number of rows recomputed (0 when the table is already
    /// fresh). Errors with a non-[`refreshable`](StaleTable::refreshable)
    /// [`StaleTable`] when `net` is a *different network instance* (another
    /// epoch) — refresh can only follow mutations of the network the table
    /// was built from.
    pub fn refresh(&mut self, net: &Network) -> Result<usize, StaleTable> {
        match self.refresh_plan(net)? {
            None => Ok(0),
            Some((affected, fwd)) => {
                if affected.is_empty() {
                    // Contents provably identical at the new generation:
                    // extend the validity range instead of copying anything.
                    self.extend_valid_to(net.generation());
                } else {
                    self.apply_refresh(net, &affected, &fwd);
                }
                Ok(affected.len())
            }
        }
    }

    /// The shared-`Arc` form of [`DistanceTable::refresh`], for publishers
    /// that hand the same allocation to concurrent readers: when the
    /// refresh touches zero rows the `Arc` is **not** unshared — the
    /// validity range is extended in place, so `Arc::ptr_eq` holds across
    /// the refresh and a snapshot pinned at the old generation keeps
    /// sharing the table with the new publish. Rows are copied only when
    /// some row actually changed.
    pub fn refresh_shared(
        table: &mut Arc<DistanceTable>,
        net: &Network,
    ) -> Result<usize, StaleTable> {
        match table.refresh_plan(net)? {
            None => Ok(0),
            Some((affected, fwd)) => {
                if affected.is_empty() {
                    table.extend_valid_to(net.generation());
                } else {
                    Arc::make_mut(table).apply_refresh(net, &affected, &fwd);
                }
                Ok(affected.len())
            }
        }
    }

    /// Computes which rows a refresh must recompute: `None` when the table
    /// is already fresh, otherwise the affected rows plus the forward
    /// column mask from the shared [`refresh_scope`] machinery.
    fn refresh_plan(&self, net: &Network) -> Result<Option<RefreshPlan>, StaleTable> {
        let queried = (net.epoch(), net.generation());
        if self.built_epoch != net.epoch() {
            return Err(StaleTable { built_for: self.built_for(), queried });
        }
        let hi = self.valid_hi.load(Ordering::Relaxed);
        if self.valid_lo <= queried.1 && queried.1 <= hi {
            return Ok(None); // already fresh
        }
        Ok(Some(refresh_scope(net, &self.stations, hi)))
    }

    /// Recomputes the affected rows (copy-on-write: only these rows are
    /// unshared) and stamps the table fresh for exactly `net.generation()`.
    fn apply_refresh(&mut self, net: &Network, affected: &[StationId], fwd: &[bool]) {
        let start = std::time::Instant::now();
        let keep_all_columns = fwd.is_empty();
        let sets = build_engine().many_to_all(net, affected);
        for (&a, set) in affected.iter().zip(&sets) {
            let ia = self.index[a.idx()] as usize;
            let row = Arc::make_mut(&mut self.rows[ia]);
            for (j, &b) in self.stations.iter().enumerate() {
                if keep_all_columns || fwd[b.idx()] {
                    row[j] = set.profile(b).clone();
                }
            }
        }
        let gen = net.generation();
        self.valid_lo = gen;
        self.valid_hi.store(gen, Ordering::Relaxed);
        self.build_time += start.elapsed();
    }

    /// Extends the validity range to cover `gen` (a zero-row refresh: the
    /// contents are provably unchanged). Works through `&self`, so a shared
    /// `Arc<DistanceTable>` stays shared.
    fn extend_valid_to(&self, gen: u64) {
        // Monotone max: the range only ever grows.
        self.valid_hi.fetch_max(gen, Ordering::Relaxed);
    }

    /// `Ok` iff this table was built (or last [`DistanceTable::refresh`]ed)
    /// from exactly this network state (same
    /// [`Network::epoch`](Network::epoch) and generation); the typed
    /// [`StaleTable`] otherwise. Checked by the s2s engine before every
    /// table-pruned query.
    pub fn check_fresh(&self, net: &Network) -> Result<(), StaleTable> {
        let queried = (net.epoch(), net.generation());
        if self.built_epoch == queried.0
            && self.valid_lo <= queried.1
            && queried.1 <= self.valid_hi.load(Ordering::Relaxed)
        {
            Ok(())
        } else {
            Err(StaleTable { built_for: self.built_for(), queried })
        }
    }

    /// Panicking form of [`DistanceTable::check_fresh`], for paths that
    /// cannot recover: a stale table would silently produce wrong
    /// arrivals, the panic makes the bug loud.
    pub fn assert_fresh(&self, net: &Network) {
        if let Err(e) = self.check_fresh(net) {
            panic!("{e}");
        }
    }

    /// The `(Network::epoch, Network::generation)` this table was built
    /// for (or last [`DistanceTable::refresh`]ed to) — the *newest* stamp
    /// [`DistanceTable::check_fresh`] accepts (freshness is a generation
    /// range; this reports its upper end).
    #[inline]
    pub fn built_for(&self) -> (u64, u64) {
        (self.built_epoch, self.valid_hi.load(Ordering::Relaxed))
    }

    /// How many of this table's rows are `Arc`-shared with `other`'s
    /// (same allocation). Diagnostic for the copy-on-write bookkeeping:
    /// after a publish whose refresh touched `k` rows, the previous
    /// snapshot shares `len() − k` rows with the new one.
    /// A fully unshared copy: every row is reallocated. The
    /// pre-copy-on-write publish cost, kept as a bench reference.
    pub fn deep_clone(&self) -> DistanceTable {
        DistanceTable {
            period: self.period,
            stations: Arc::new((*self.stations).clone()),
            index: Arc::new((*self.index).clone()),
            rows: self.rows.iter().map(|r| Arc::new((**r).clone())).collect(),
            build_time: self.build_time,
            built_epoch: self.built_epoch,
            valid_lo: self.valid_lo,
            valid_hi: AtomicU64::new(self.valid_hi.load(Ordering::Relaxed)),
        }
    }

    /// Number of rows this table shares (by allocation, [`Arc::ptr_eq`])
    /// with `other` — how much of a copy-on-write publish was *not* copied.
    pub fn shared_rows_with(&self, other: &DistanceTable) -> usize {
        self.rows.iter().zip(&other.rows).filter(|(a, b)| Arc::ptr_eq(a, b)).count()
    }

    /// Number of transfer stations.
    #[inline]
    pub fn len(&self) -> usize {
        self.stations.len()
    }

    /// `true` iff no transfer stations were selected.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.stations.is_empty()
    }

    /// The sorted transfer stations.
    #[inline]
    pub fn stations(&self) -> &[StationId] {
        &self.stations
    }

    /// `true` iff `s ∈ S_trans`.
    #[inline]
    pub fn is_transfer(&self, s: StationId) -> bool {
        self.index[s.idx()] != u32::MAX
    }

    /// Boolean mask over all stations.
    pub fn transfer_mask(&self) -> Vec<bool> {
        self.index.iter().map(|&i| i != u32::MAX).collect()
    }

    /// The stored profile `D(a, b, ·)`; both must be transfer stations.
    #[inline]
    pub fn profile(&self, a: StationId, b: StationId) -> &Profile {
        let ia = self.index[a.idx()];
        let ib = self.index[b.idx()];
        debug_assert!(ia != u32::MAX && ib != u32::MAX, "not transfer stations");
        &self.rows[ia as usize][ib as usize]
    }

    /// `D(a, b, t)`: earliest arrival at `b` when departing `a` at absolute
    /// time `t` (no transfer buffers at the endpoints). `a == b` yields `t`;
    /// unreachable pairs yield [`INFINITY`].
    #[inline]
    pub fn eval(&self, a: StationId, b: StationId, t: Time) -> Time {
        if a == b {
            return t;
        }
        if t.is_infinite() {
            return INFINITY;
        }
        self.profile(a, b).eval_arr(t, self.period)
    }

    /// Cumulative wall-clock time spent in [`DistanceTable::build`] and
    /// every subsequent [`DistanceTable::refresh`].
    pub fn build_time(&self) -> std::time::Duration {
        self.build_time
    }

    /// Memory footprint of the stored profiles in bytes (the space column
    /// of Table 2).
    pub fn size_bytes(&self) -> usize {
        self.rows.iter().flat_map(|row| row.iter()).map(Profile::size_bytes).sum::<usize>()
            + self.index.len() * std::mem::size_of::<u32>()
            + self.stations.len() * std::mem::size_of::<StationId>()
    }

    /// Megabytes variant of [`DistanceTable::size_bytes`].
    pub fn size_mib(&self) -> f64 {
        self.size_bytes() as f64 / (1024.0 * 1024.0)
    }
}

/// The engine `build`/`refresh` distribute their one-to-all searches on
/// (shared with the gateway's border-set builds).
pub(crate) fn build_engine() -> ProfileEngine {
    let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    ProfileEngine::new().threads(workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_timetable::synthetic::city::{generate_city, CityConfig};

    fn net() -> Network {
        Network::new(generate_city(&CityConfig::sized(36, 5, 11)))
    }

    #[test]
    fn table_matches_one_to_all_profiles() {
        let net = net();
        let table = DistanceTable::build(&net, &TransferSelection::Fraction(0.2));
        assert!(!table.is_empty());
        for &a in table.stations().iter().take(3) {
            let set = ProfileEngine::new().one_to_all(&net, a);
            for &b in table.stations() {
                assert_eq!(table.profile(a, b), set.profile(b), "{a}→{b}");
            }
        }
    }

    #[test]
    fn eval_is_identity_on_diagonal() {
        let net = net();
        let table = DistanceTable::build(&net, &TransferSelection::Fraction(0.1));
        let s = table.stations()[0];
        let t = Time::hm(9, 30);
        assert_eq!(table.eval(s, s, t), t);
    }

    #[test]
    fn eval_agrees_with_time_queries() {
        let net = net();
        let table = DistanceTable::build(&net, &TransferSelection::Fraction(0.15));
        let deps = [Time::hm(7, 0), Time::hm(12, 31), Time::hm(23, 45)];
        for &a in table.stations().iter().take(2) {
            for &b in table.stations().iter().take(4) {
                if a == b {
                    continue;
                }
                for &dep in &deps {
                    let want = crate::time_query::earliest_arrival(&net, a, dep, b);
                    assert_eq!(table.eval(a, b, dep), want, "{a}→{b} at {dep}");
                }
            }
        }
    }

    #[test]
    fn size_accounting_is_positive() {
        let net = net();
        let table = DistanceTable::build(&net, &TransferSelection::Fraction(0.1));
        assert!(table.size_bytes() > 0);
        assert!(table.size_mib() > 0.0);
        assert!(table.build_time() > std::time::Duration::ZERO);
    }

    #[test]
    fn refresh_matches_full_rebuild_entry_for_entry() {
        use pt_core::{Dur, TrainId};
        use pt_timetable::{DelayEvent, Recovery};
        let mut net = net();
        let mut table = DistanceTable::build(&net, &TransferSelection::Fraction(0.2));
        // Two *separate* feeds before a single refresh: the table is two
        // generations behind, and the refresh must cover the union of both
        // feeds' touched stations (it asks the network, so a caller cannot
        // under-report the first feed).
        let first = net.apply_feed(&[DelayEvent::Delay {
            train: TrainId(0),
            from_hop: 0,
            delay: Dur::minutes(17),
            recovery: Recovery::None,
        }]);
        let second = net.apply_feed(&[DelayEvent::Delay {
            train: TrainId(3),
            from_hop: 1,
            delay: Dur::minutes(40),
            recovery: Recovery::CatchUp { per_hop: Dur::minutes(5) },
        }]);
        assert!(first.changed() && second.changed());
        assert!(table.check_fresh(&net).is_err(), "feeds must stale the table");
        let rows = table.refresh(&net).expect("same epoch");
        assert!(rows > 0, "the feeds must affect at least one transfer station");
        assert!(table.check_fresh(&net).is_ok());
        let rebuilt = DistanceTable::build_for(&net, table.stations().to_vec());
        for &a in table.stations() {
            for &b in table.stations() {
                assert_eq!(table.profile(a, b), rebuilt.profile(a, b), "{a}→{b}");
            }
        }
        // A second refresh with nothing new is free.
        assert_eq!(table.refresh(&net).unwrap(), 0);
    }

    #[test]
    fn refresh_rejects_a_different_network_instance() {
        let net1 = net();
        let net2 = net();
        let mut table = DistanceTable::build(&net1, &TransferSelection::Fraction(0.1));
        let err = table.refresh(&net2).unwrap_err();
        assert!(!err.refreshable(), "another epoch can never be reconciled");
        assert!(err.to_string().contains("stale distance table"));
    }

    #[test]
    fn mask_is_consistent() {
        let net = net();
        let table = DistanceTable::build(&net, &TransferSelection::Fraction(0.1));
        let mask = table.transfer_mask();
        for s in net.station_ids() {
            assert_eq!(mask[s.idx()], table.is_transfer(s));
        }
        assert_eq!(mask.iter().filter(|&&b| b).count(), table.len());
    }
}
