//! The label-correcting profile search (paper §2 and Table 1's `LC` row).
//!
//! Instead of scalar labels, whole arrival profiles are propagated through
//! the network: relaxing an edge links the tail's profile with the edge
//! function and merges it into the head's profile; a node whose profile
//! improved is (re)inserted into the queue. The label-setting property is
//! lost — nodes are re-settled — and, as the paper observes, the running
//! time is driven by the number of connection points moved around.
//!
//! Initialization mirrors the connection-setting search: each outgoing
//! connection contributes the point `(τdep, τdep)` at the route node it
//! departs from, so both algorithms compute the same `dist(S, ·, ·)`.

use pt_core::{NodeId, Profile, ProfilePoint, StationId};
use pt_heap::BinaryHeap;

use crate::network::Network;
use crate::profile_set::ProfileSet;
use crate::stats::QueryStats;

/// Result of a label-correcting one-to-all profile search.
#[derive(Debug, Clone)]
pub struct LcResult {
    /// Reduced profiles to every station.
    pub profiles: ProfileSet,
    /// `settled` counts the *sizes* of the popped labels (the paper's
    /// comparable "number of connections" figure for LC); `pushes` and
    /// `decreases` count queue operations.
    pub stats: QueryStats,
}

/// Runs the label-correcting profile search from `source`.
pub fn profile_search(net: &Network, source: StationId) -> LcResult {
    let g = net.graph();
    let tt = net.timetable();
    let period = tt.period();
    let n = g.num_nodes();
    let mut stats = QueryStats::default();

    let mut labels: Vec<Profile> = vec![Profile::EMPTY; n];
    let mut heap = BinaryHeap::new(n);

    // Initialization: seed route nodes with the departure events of conn(S).
    let conn_ids = tt.conn_ids(source);
    let mut seeds: Vec<(NodeId, Vec<ProfilePoint>)> = Vec::new();
    for cid in conn_ids {
        let c = tt.connection(pt_core::ConnId(cid));
        let r = g.conn_start_node(pt_core::ConnId(cid));
        match seeds.iter_mut().find(|(node, _)| *node == r) {
            Some((_, pts)) => pts.push(ProfilePoint::new(c.dep, c.dep)),
            None => seeds.push((r, vec![ProfilePoint::new(c.dep, c.dep)])),
        }
    }
    for (node, pts) in seeds {
        let prof = Profile::from_unreduced(pts, period);
        let key = prof.min_arr().secs() as u64;
        labels[node.idx()] = prof;
        heap.push_or_decrease(node.idx(), key);
        stats.pushes += 1;
    }

    while let Some((v, _)) = heap.pop() {
        stats.settled += labels[v].len() as u64;
        let label = labels[v].clone();
        for e in g.edges(NodeId::from_idx(v)) {
            let linked = match e.weight {
                pt_graph::EdgeWeight::Const(d) => label.link_const(d, period),
                pt_graph::EdgeWeight::Td(idx) => label.link_plf(g.plf(idx), period),
            };
            if linked.is_empty() {
                continue;
            }
            stats.relaxed += 1;
            let w = e.head.idx();
            if labels[w].merge(&linked, period) {
                let key = labels[w].min_arr().secs() as u64;
                if heap.contains(w) {
                    if heap.push_or_decrease(w, key) {
                        stats.decreases += 1;
                    }
                } else {
                    heap.push_or_decrease(w, key);
                    stats.pushes += 1;
                }
            }
        }
    }

    let ns = net.num_stations();
    let profiles: Vec<Profile> = labels.into_iter().take(ns).collect();
    LcResult { profiles: ProfileSet::new(source, period, profiles), stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connection_setting::ProfileEngine;
    use pt_core::{Dur, Period, Time};
    use pt_timetable::synthetic::city::{generate_city, CityConfig};
    use pt_timetable::TimetableBuilder;

    #[test]
    fn lc_matches_connection_setting_on_a_line() {
        let mut b = TimetableBuilder::new(Period::DAY);
        let s: Vec<_> =
            (0..3).map(|i| b.add_named_station(format!("{i}"), Dur::minutes(3))).collect();
        for h in [7, 8, 9, 10] {
            b.add_simple_trip(
                &[s[0], s[1], s[2]],
                Time::hm(h, 0),
                &[Dur::minutes(12), Dur::minutes(9)],
                Dur::minutes(1),
            )
            .unwrap();
        }
        let net = Network::new(b.build().unwrap());
        let lc = profile_search(&net, s[0]);
        let cs = ProfileEngine::new().one_to_all(&net, s[0]);
        assert_eq!(lc.profiles, *cs);
    }

    #[test]
    fn lc_matches_connection_setting_on_random_city() {
        let net = Network::new(generate_city(&CityConfig::sized(30, 4, 13)));
        for src in [0u32, 5, 17] {
            let s = StationId(src);
            let lc = profile_search(&net, s);
            let cs = ProfileEngine::new().threads(3).one_to_all(&net, s);
            assert_eq!(lc.profiles, *cs, "source {s}");
        }
    }

    #[test]
    fn lc_settles_more_connection_points_than_cs() {
        let net = Network::new(generate_city(&CityConfig::sized(30, 4, 23)));
        let s = StationId(2);
        let lc = profile_search(&net, s);
        let cs = ProfileEngine::new().one_to_all_with_stats(&net, s);
        // The paper's headline observation (Table 1): LC moves an order of
        // magnitude more connections through the queue.
        assert!(
            lc.stats.settled > cs.stats.settled,
            "LC {} vs CS {}",
            lc.stats.settled,
            cs.stats.settled
        );
    }
}
