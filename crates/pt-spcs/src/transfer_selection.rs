//! Choosing the transfer stations `S_trans` (paper §4).
//!
//! The paper proposes two strategies, both implemented here:
//!
//! * **Contraction**: contract `c` stations of the station graph; whatever
//!   survives is important. `Fraction(0.05)` reproduces the "5 %" rows of
//!   Table 2 — a good compromise between table size and pruning power.
//! * **Degree**: mark every station with station-graph degree `> k`
//!   (the `deg > 2` rows of Table 2).

use pt_core::StationId;

use crate::contraction::contract_stations;
use crate::network::Network;

/// Strategy for selecting transfer stations.
#[derive(Debug, Clone, PartialEq)]
pub enum TransferSelection {
    /// Keep this share of all stations, chosen by contraction importance
    /// (`0.05` = the paper's 5 % row).
    Fraction(f64),
    /// All stations with undirected station-graph degree strictly greater
    /// than `k`.
    DegreeAbove(usize),
    /// An explicit, caller-provided set.
    Explicit(Vec<StationId>),
}

impl TransferSelection {
    /// Resolves the strategy to a sorted station set.
    pub fn select(&self, net: &Network) -> Vec<StationId> {
        let n = net.num_stations();
        let mut picked = match self {
            TransferSelection::Fraction(f) => {
                assert!((0.0..=1.0).contains(f), "fraction out of range");
                let keep = ((n as f64) * f).round() as usize;
                let removed = contract_stations(net.station_graph(), n - keep.min(n));
                let mut is_removed = vec![false; n];
                for s in &removed {
                    is_removed[s.idx()] = true;
                }
                (0..n as u32).map(StationId).filter(|s| !is_removed[s.idx()]).collect::<Vec<_>>()
            }
            TransferSelection::DegreeAbove(k) => {
                let sg = net.station_graph();
                (0..n as u32).map(StationId).filter(|&s| sg.degree(s) > *k).collect()
            }
            TransferSelection::Explicit(set) => set.clone(),
        };
        picked.sort_unstable();
        picked.dedup();
        picked
    }

    /// Marks the selection as a boolean mask over stations.
    pub fn select_mask(&self, net: &Network) -> (Vec<StationId>, Vec<bool>) {
        let picked = self.select(net);
        let mut mask = vec![false; net.num_stations()];
        for s in &picked {
            mask[s.idx()] = true;
        }
        (picked, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_timetable::synthetic::city::{generate_city, CityConfig};

    fn net() -> Network {
        Network::new(generate_city(&CityConfig::sized(49, 7, 3)))
    }

    #[test]
    fn fraction_yields_requested_share() {
        let net = net();
        let picked = TransferSelection::Fraction(0.2).select(&net);
        let want = (net.num_stations() as f64 * 0.2).round() as usize;
        assert_eq!(picked.len(), want);
        // Sorted and unique.
        assert!(picked.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn fraction_one_keeps_everything() {
        let net = net();
        let picked = TransferSelection::Fraction(1.0).select(&net);
        assert_eq!(picked.len(), net.num_stations());
    }

    #[test]
    fn degree_threshold_filters() {
        let net = net();
        let low = TransferSelection::DegreeAbove(2).select(&net);
        let high = TransferSelection::DegreeAbove(5).select(&net);
        assert!(high.len() <= low.len());
        let sg = net.station_graph();
        assert!(low.iter().all(|&s| sg.degree(s) > 2));
    }

    #[test]
    fn explicit_is_normalized() {
        let net = net();
        let sel = TransferSelection::Explicit(vec![StationId(5), StationId(1), StationId(5)]);
        let (picked, mask) = sel.select_mask(&net);
        assert_eq!(picked, vec![StationId(1), StationId(5)]);
        assert!(mask[1] && mask[5] && !mask[0]);
    }

    #[test]
    fn contraction_prefers_busy_stations() {
        // Average station-graph degree of the picked 10% should not be
        // below the network average — contraction keeps the well-connected.
        let net = net();
        let sg = net.station_graph();
        let picked = TransferSelection::Fraction(0.1).select(&net);
        let avg_all: f64 =
            (0..net.num_stations() as u32).map(|s| sg.degree(StationId(s)) as f64).sum::<f64>()
                / net.num_stations() as f64;
        let avg_picked: f64 =
            picked.iter().map(|&s| sg.degree(s) as f64).sum::<f64>() / picked.len() as f64;
        assert!(
            avg_picked >= avg_all,
            "picked avg degree {avg_picked:.2} < network avg {avg_all:.2}"
        );
    }
}
