//! SPCS — the self-pruning connection-setting profile search (paper §3.1).
//!
//! One Dijkstra-like search over `(node, connection)` pairs, keyed by
//! arrival time:
//!
//! * **Initialization**: `conn(S)` is ordered by departure time; for each
//!   outgoing connection `c_i` the queue receives `(r, i)` with key
//!   `τdep(c_i)`, where `r` is the route node `c_i` departs from.
//! * **Connection-setting**: each `(v, i)` is settled at most once; the
//!   label-setting property holds per connection.
//! * **Self-pruning**: a `maxconn(v)` label holds the highest connection
//!   index settled at `v`. Settling `(v, i)` with `i ≤ maxconn(v)` proves
//!   the connection useless at `v` (a later departure arrived no later), so
//!   its edges are not relaxed and `arr(v, i)` is marked unreachable.
//! * **Connection reduction** turns the raw labels at each station into the
//!   reduced (FIFO) profile `dist(S, T, ·)`.
//!
//! All per-query state lives in a reusable [`SearchWorkspace`]; a warm
//! engine answers a query without any full-size allocation.

use std::sync::Arc;

use pt_core::{NodeId, Period, Profile, ProfilePoint, StationId, Time, INFINITY};

use crate::cache::{CacheStats, ProfileCache};
use crate::kernel::{self, KernelMode};
use crate::network::Network;
use crate::parallel::{self, OneToAllResult};
use crate::partition::PartitionStrategy;
use crate::profile_set::ProfileSet;
use crate::stats::QueryStats;
use crate::workspace::{SearchWorkspace, WorkspacePool};

/// Label value marking "connection pruned at this node" (`arr(v,i) := ∞`
/// in the paper). Distinct from [`INFINITY`] = "not discovered", so a
/// pruned pair is never re-settled.
pub(crate) const PRUNED: Time = Time(u32::MAX - 1);

/// One-to-all profile search engine.
///
/// The engine is **persistent**, **network-free** and — since the
/// snapshot-isolation refactor — **shareable**: every query entry point
/// takes `&self`, so one engine can serve many reader threads at once.
/// Per-query search state lives in [`SearchWorkspace`]s checked out of an
/// internal [`WorkspacePool`] for the duration of a query and returned
/// warm, so repeated queries still run allocation-free, while concurrent
/// queries each hold private workspaces. Parallel work runs on the
/// process-global persistent work-stealing pool ([`rayon::global`]), so no
/// threads are ever spawned per query. Build the engine once and stream
/// queries through it — the workspaces survive [`Network::apply_delay`]
/// updates between queries (the fully dynamic scenario: a `Patched` update
/// keeps every workspace size).
///
/// With [`ProfileEngine::with_cache`], results are memoized behind `Arc`s
/// keyed by `(source, network epoch, generation)`; a repeat query on an
/// unchanged network returns the identical [`ProfileSet`] without running
/// a search, and a delay update invalidates by bumping the generation. The
/// cache is concurrently readable (see [`ProfileCache`]), so cached reads
/// also need no exclusive access.
///
/// Builder-style configuration:
///
/// ```
/// use pt_core::{Dur, Period, Time};
/// use pt_spcs::{Network, ProfileEngine};
/// use pt_timetable::TimetableBuilder;
/// # let mut b = TimetableBuilder::new(Period::DAY);
/// # let a = b.add_named_station("A", Dur::minutes(2));
/// # let t = b.add_named_station("B", Dur::minutes(2));
/// # b.add_simple_trip(&[a, t], Time::hm(8, 0), &[Dur::minutes(30)], Dur::ZERO).unwrap();
/// # let net = Network::new(b.build().unwrap());
/// # let source = a;
/// let engine = ProfileEngine::new().threads(4).with_cache(128);
/// let profiles = engine.one_to_all(&net, source);
/// assert!(!profiles.profile(t).eval_arr(Time::hm(7, 0), Period::DAY).is_infinite());
/// ```
#[derive(Debug, Clone)]
pub struct ProfileEngine {
    threads: usize,
    strategy: PartitionStrategy,
    self_pruning: bool,
    kernel: KernelMode,
    /// Idle workspaces, checked out per query.
    pool: WorkspacePool,
    /// Opt-in generation-keyed result cache.
    cache: Option<ProfileCache>,
}

impl Default for ProfileEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl ProfileEngine {
    /// A single-threaded engine with self-pruning, the paper's default
    /// *equal number of connections* partition and no result cache.
    pub fn new() -> Self {
        ProfileEngine {
            threads: 1,
            strategy: PartitionStrategy::EqualConnections,
            self_pruning: true,
            kernel: KernelMode::Auto,
            pool: WorkspacePool::new(),
            cache: None,
        }
    }

    /// Sets the number of worker threads `p` (§3.2).
    pub fn threads(mut self, p: usize) -> Self {
        assert!(p >= 1, "need at least one thread");
        self.threads = p;
        self
    }

    /// Sets the `conn(S)` partition strategy (§3.2).
    pub fn strategy(mut self, s: PartitionStrategy) -> Self {
        self.strategy = s;
        self
    }

    /// Enables/disables self-pruning (ablation; the paper always prunes).
    pub fn self_pruning(mut self, on: bool) -> Self {
        self.self_pruning = on;
        self
    }

    /// Selects the label kernel: the scalar binary-heap reference, the
    /// bucketed SoA kernel, or (default) automatic per-query selection.
    /// Results are identical either way; see [`KernelMode`].
    pub fn kernel(mut self, mode: KernelMode) -> Self {
        self.kernel = mode;
        self
    }

    /// Enables the generation-keyed LRU result cache, holding at most
    /// `capacity` profile sets. Keys include the network's process-unique
    /// epoch and its timetable generation, so [`Network::apply_delay`]
    /// invalidates every stale entry for free and results can never alias
    /// across distinct networks served by one engine.
    pub fn with_cache(mut self, capacity: usize) -> Self {
        self.cache = Some(ProfileCache::new(capacity));
        self
    }

    /// Cumulative cache counters; `None` without [`ProfileEngine::with_cache`].
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(ProfileCache::stats)
    }

    /// Total backing-array growth events over all idle workspaces.
    /// Constant across repeated queries once the engine is warm — the
    /// reuse guarantee asserted by tests and the `throughput` bench. Read
    /// between queries: workspaces of an in-flight query are checked out
    /// of the pool along with their counters.
    pub fn workspace_grow_events(&self) -> u64 {
        self.pool.grow_events()
    }

    /// Runs a one-to-all profile search from `source`.
    ///
    /// Takes `&self`: many reader threads may query one engine
    /// concurrently, each against its own pinned network (snapshot).
    pub fn one_to_all(&self, net: &Network, source: StationId) -> Arc<ProfileSet> {
        self.one_to_all_with_stats(net, source).profiles
    }

    /// Like [`ProfileEngine::one_to_all`], also returning operation counts
    /// and the per-thread balance. A cache hit reports `cache_hits = 1` and
    /// zero search work.
    pub fn one_to_all_with_stats(&self, net: &Network, source: StationId) -> OneToAllResult {
        let (epoch, generation) = (net.epoch(), net.generation());
        if let Some(cache) = &self.cache {
            if let Some(profiles) = cache.get(source, epoch, generation) {
                let stats = QueryStats { cache_hits: 1, ..QueryStats::default() };
                return OneToAllResult { profiles, stats, thread_settled: Vec::new() };
            }
        }
        let mut r = self.search_one_to_all(net, source);
        if let Some(cache) = &self.cache {
            r.stats.cache_misses = 1;
            if cache.insert(source, epoch, generation, Arc::clone(&r.profiles)) {
                r.stats.cache_evictions = 1;
            }
        }
        r
    }

    /// The uncached search backend of the one-to-all paths.
    fn search_one_to_all(&self, net: &Network, source: StationId) -> OneToAllResult {
        let mut workspaces = self.pool.checkout(self.threads);
        let r = parallel::one_to_all(
            net,
            source,
            self.threads,
            self.strategy,
            self.self_pruning,
            self.kernel,
            &mut workspaces,
        );
        self.pool.checkin(workspaces);
        r
    }

    /// Batch one-to-all: profiles from every source in `sources`.
    ///
    /// With `p` threads and at least `p` (uncached) sources this
    /// parallelizes *across* queries — each worker answers whole sources
    /// from a shared work queue on its own workspace, executing the
    /// `conn(S)` partition as `p` *blocked* sequential searches (same
    /// per-class label sizes as the split search, no merge barrier, no
    /// cross-worker coordination). Results are identical to per-source
    /// [`ProfileEngine::one_to_all`] calls, and this is the
    /// throughput-optimal way to answer many independent queries (the
    /// regime of the ROADMAP's query streams and of
    /// [`DistanceTable::build`](crate::DistanceTable::build)). With fewer
    /// sources than threads it falls back to within-query parallelism, one
    /// source at a time. When the cache is enabled, hits are resolved up
    /// front and only the misses are searched.
    pub fn many_to_all(&self, net: &Network, sources: &[StationId]) -> Vec<Arc<ProfileSet>> {
        self.many_to_all_with_stats(net, sources).into_iter().map(|r| r.profiles).collect()
    }

    /// Like [`ProfileEngine::many_to_all`], returning full per-query
    /// results.
    pub fn many_to_all_with_stats(
        &self,
        net: &Network,
        sources: &[StationId],
    ) -> Vec<OneToAllResult> {
        let (epoch, generation) = (net.epoch(), net.generation());

        // Resolve cache hits up front; only the misses hit the pool. With
        // the cache on, misses are also deduplicated — a source repeated
        // within one batch (the regime the cache targets) is searched once
        // and fanned out, its duplicates counting as hits.
        let mut out: Vec<Option<OneToAllResult>> = sources.iter().map(|_| None).collect();
        let mut miss: Vec<usize> = Vec::new();
        if let Some(cache) = &self.cache {
            let mut searching: Vec<StationId> = Vec::new();
            for (i, &s) in sources.iter().enumerate() {
                if searching.contains(&s) {
                    continue; // duplicate of an in-batch miss: resolve below
                }
                match cache.get(s, epoch, generation) {
                    Some(profiles) => {
                        let stats = QueryStats { cache_hits: 1, ..QueryStats::default() };
                        out[i] =
                            Some(OneToAllResult { profiles, stats, thread_settled: Vec::new() });
                    }
                    None => {
                        miss.push(i);
                        searching.push(s);
                    }
                }
            }
        } else {
            miss.extend(0..sources.len());
        }

        let miss_sources: Vec<StationId> = miss.iter().map(|&i| sources[i]).collect();
        let computed: Vec<OneToAllResult> =
            if self.threads > 1 && miss_sources.len() >= self.threads {
                let mut workspaces = self.pool.checkout(self.threads);
                let r = parallel::many_to_all_across(
                    net,
                    &miss_sources,
                    self.threads,
                    self.strategy,
                    self.self_pruning,
                    self.kernel,
                    &mut workspaces,
                );
                self.pool.checkin(workspaces);
                r
            } else {
                miss_sources.iter().map(|&s| self.search_one_to_all(net, s)).collect()
            };

        let mut searched: Vec<(StationId, Arc<ProfileSet>)> = Vec::new();
        for (&i, mut r) in miss.iter().zip(computed) {
            if let Some(cache) = &self.cache {
                r.stats.cache_misses = 1;
                if cache.insert(sources[i], epoch, generation, Arc::clone(&r.profiles)) {
                    r.stats.cache_evictions = 1;
                }
                searched.push((sources[i], Arc::clone(&r.profiles)));
            }
            out[i] = Some(r);
        }
        if let Some(cache) = &self.cache {
            // Duplicates skipped above: serve them from the cache (counting
            // a hit), or — if a smaller-than-batch cache already evicted the
            // entry — from the batch's own results.
            for (i, &s) in sources.iter().enumerate() {
                if out[i].is_none() {
                    let profiles = cache.get(s, epoch, generation).unwrap_or_else(|| {
                        let (_, set) = searched
                            .iter()
                            .find(|(src, _)| *src == s)
                            .expect("every duplicate shadows an in-batch search");
                        Arc::clone(set)
                    });
                    let stats = QueryStats { cache_hits: 1, ..QueryStats::default() };
                    out[i] = Some(OneToAllResult { profiles, stats, thread_settled: Vec::new() });
                }
            }
        }
        out.into_iter().map(|r| r.expect("every source resolved")).collect()
    }
}

/// Runs the (self-pruning) connection-setting search restricted to the
/// global connection-id range `lo..hi` (a contiguous subset of `conn(S)`),
/// on the given workspace.
///
/// This is the workhorse of both the sequential and the parallel algorithm:
/// each worker thread calls it on its partition class. On return,
/// `ws.station_arr[i * ns + s]` holds the arrival label of local connection
/// `i` at station `s` ([`INFINITY`] = unreachable or pruned).
pub(crate) fn run_range(
    net: &Network,
    lo: u32,
    hi: u32,
    self_pruning: bool,
    kernel_mode: KernelMode,
    ws: &mut SearchWorkspace,
) -> QueryStats {
    let ns = net.graph().num_stations();
    ws.fresh_station_arr((hi - lo) as usize * ns);
    run_range_into(net, lo, hi, self_pruning, kernel_mode, ws, 0)
}

/// [`run_range`] writing its station labels at `out_base` of an already
/// prepared `ws.station_arr` — lets one worker run several partition
/// classes of a query back to back into a single query-level buffer
/// (*blocked* execution, used by the batch layer). Dispatches between the
/// scalar heap path and the bucketed SoA kernel per [`KernelMode`].
pub(crate) fn run_range_into(
    net: &Network,
    lo: u32,
    hi: u32,
    self_pruning: bool,
    kernel_mode: KernelMode,
    ws: &mut SearchWorkspace,
    out_base: usize,
) -> QueryStats {
    let slots = (hi - lo) as usize * net.graph().num_nodes();
    if kernel_mode.use_soa(slots, kernel::ring_size(net)) {
        kernel::run_range_soa(net, lo, hi, self_pruning, ws, out_base)
    } else {
        run_range_into_scalar(net, lo, hi, self_pruning, ws, out_base)
    }
}

/// The binary-heap reference implementation of [`run_range_into`] — the
/// arbiter of correctness for the SoA kernel.
fn run_range_into_scalar(
    net: &Network,
    lo: u32,
    hi: u32,
    self_pruning: bool,
    ws: &mut SearchWorkspace,
    out_base: usize,
) -> QueryStats {
    let g = net.graph();
    let tt = net.timetable();
    let nv = g.num_nodes();
    let ns = g.num_stations();
    let k = (hi - lo) as usize;
    let mut stats = QueryStats::default();

    // Labels arr(v, i) for the local connections, maxconn(v), and the queue
    // all live in the workspace; begin() invalidates the previous query in
    // O(1) via the generation counter.
    ws.begin(k * nv, nv, false);

    // Initialization: one queue item per outgoing connection, at the route
    // node it departs from, keyed by its departure time.
    for i in 0..k {
        let c = pt_core::ConnId(lo + i as u32);
        let r = g.conn_start_node(c);
        let dep = tt.connection(c).dep;
        let slot = i * nv + r.idx();
        // Two connections of one thread may depart from the same route node;
        // distinct `i` gives distinct slots, so no key collision is possible.
        ws.heap.push_or_decrease(slot, dep.secs() as u64);
        stats.pushes += 1;
    }

    while let Some((slot, key)) = ws.heap.pop() {
        stats.settled += 1;
        let i = slot / nv;
        let v = slot % nv;
        let t = Time(key as u32);

        if self_pruning {
            let mc = ws.maxconn(v);
            if mc != u32::MAX && i as u32 <= mc {
                // A later connection already settled v: this one cannot be
                // part of any reduced profile through v.
                stats.self_pruned += 1;
                ws.set_arr(slot, PRUNED);
                continue;
            }
            ws.set_maxconn(v, i as u32);
        }
        ws.set_arr(slot, t);

        let base = i * nv;
        for e in g.edges(NodeId::from_idx(v)) {
            let ta = g.eval_edge(e, t);
            if ta.is_infinite() {
                continue;
            }
            let wslot = base + e.head.idx();
            if ws.arr(wslot) != INFINITY {
                continue; // already settled (or pruned) for connection i
            }
            stats.relaxed += 1;
            if ws.heap.contains(wslot) {
                if ws.heap.push_or_decrease(wslot, ta.secs() as u64) {
                    stats.decreases += 1;
                }
            } else {
                ws.heap.push_or_decrease(wslot, ta.secs() as u64);
                stats.pushes += 1;
            }
        }
    }

    // Extract labels at station nodes (station nodes are 0..ns).
    for i in 0..k {
        let src = i * nv;
        let dst = out_base + i * ns;
        for s in 0..ns {
            let a = ws.arr(src + s);
            if a < PRUNED {
                ws.station_arr[dst + s] = a;
            }
        }
    }
    stats
}

/// Builds the reduced profile of one station out of per-connection labels.
///
/// `points` lists, in global connection order, `(departure, arrival)` pairs;
/// infinite arrivals are skipped. This is the paper's connection reduction
/// applied to the merged label `arr(v, ·)`.
pub(crate) fn reduce_station_profile(
    points: impl Iterator<Item = (Time, Time)>,
    period: Period,
) -> Profile {
    let raw: Vec<ProfilePoint> = points
        .filter(|(_, arr)| !arr.is_infinite())
        .map(|(dep, arr)| ProfilePoint::new(dep, arr))
        .collect();
    Profile::from_unreduced(raw, period)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_core::Dur;
    use pt_timetable::TimetableBuilder;

    /// Line A→B→C every 30 min 08:00–10:00 (10-min legs, no dwell) and a
    /// detour line A→D→C at 07:45 arriving late.
    fn net() -> (Network, Vec<StationId>) {
        let mut b = TimetableBuilder::new(Period::DAY);
        let s: Vec<_> =
            (0..4).map(|i| b.add_named_station(format!("{i}"), Dur::minutes(2))).collect();
        for m in [0u32, 30, 60, 90, 120] {
            b.add_simple_trip(
                &[s[0], s[1], s[2]],
                Time::hm(8, 0) + Dur::minutes(m),
                &[Dur::minutes(10), Dur::minutes(10)],
                Dur::ZERO,
            )
            .unwrap();
        }
        b.add_simple_trip(
            &[s[0], s[3], s[2]],
            Time::hm(7, 45),
            &[Dur::minutes(30), Dur::minutes(30)],
            Dur::ZERO,
        )
        .unwrap();
        (Network::new(b.build().unwrap()), s)
    }

    #[test]
    fn profile_has_one_point_per_useful_departure() {
        let (net, s) = net();
        let engine = ProfileEngine::new();
        let prof = engine.one_to_all(&net, s[0]);
        let to_b = prof.profile(s[1]);
        // Five line departures, each useful for reaching B.
        assert_eq!(to_b.len(), 5);
        assert_eq!(prof.earliest_arrival(s[1], Time::hm(8, 10)), Time::hm(8, 40));
    }

    #[test]
    fn dominated_detour_is_reduced_away() {
        let (net, s) = net();
        let engine = ProfileEngine::new();
        let prof = engine.one_to_all(&net, s[0]);
        let to_c = prof.profile(s[2]);
        // The 07:45 detour arrives at C at 08:45; the 08:00 direct arrives
        // 08:20 — the detour departure is dominated and must be gone.
        assert!(to_c.points().iter().all(|p| p.dep != Time::hm(7, 45)));
        assert_eq!(to_c.len(), 5);
        // But the detour is the only way to reach D.
        let to_d = prof.profile(s[3]);
        assert_eq!(to_d.len(), 1);
        assert_eq!(to_d.points()[0].arr, Time::hm(8, 15));
    }

    #[test]
    fn profile_matches_time_queries_at_every_departure() {
        let (net, s) = net();
        let engine = ProfileEngine::new();
        let prof = engine.one_to_all(&net, s[0]);
        for tau in [Time::hm(7, 0), Time::hm(7, 45), Time::hm(8, 1), Time::hm(9, 55)] {
            for &target in &s[1..] {
                let want = crate::time_query::earliest_arrival(&net, s[0], tau, target);
                let got = prof.profile(target).eval_arr(tau, Period::DAY);
                assert_eq!(got, want, "target {target} at {tau}");
            }
        }
    }

    #[test]
    fn self_pruning_reduces_work_but_not_results() {
        let (net, s) = net();
        let with = ProfileEngine::new().one_to_all_with_stats(&net, s[0]);
        let without = ProfileEngine::new().self_pruning(false).one_to_all_with_stats(&net, s[0]);
        assert_eq!(with.profiles, without.profiles);
        assert!(with.stats.relaxed <= without.stats.relaxed);
        assert!(with.stats.self_pruned > 0);
    }

    #[test]
    fn source_profile_is_trivial() {
        let (net, s) = net();
        let prof = ProfileEngine::new().one_to_all(&net, s[0]);
        // Every point of the source profile departs and arrives at the same
        // time (you are already there).
        for p in prof.profile(s[0]).points() {
            assert_eq!(p.dep, p.arr);
        }
    }

    #[test]
    fn warm_engine_answers_queries_without_allocating() {
        let (net, s) = net();
        let engine = ProfileEngine::new();
        let first = engine.one_to_all(&net, s[0]);
        let warm_grows = engine.workspace_grow_events();
        assert!(warm_grows > 0, "the first query must have sized the workspace");
        // Ten more queries from the same source: identical results, zero
        // further backing-array growth — the workspace-reuse guarantee.
        for _ in 0..10 {
            let again = engine.one_to_all(&net, s[0]);
            assert_eq!(again, first);
        }
        assert_eq!(engine.workspace_grow_events(), warm_grows);
    }

    #[test]
    fn engine_reuse_across_different_sources_is_consistent() {
        let (net, s) = net();
        let reused = ProfileEngine::new().threads(2);
        // Interleave sources so stale labels of one query would corrupt the
        // next if the epoch clearing were wrong.
        for &src in &[s[0], s[3], s[0], s[1], s[0]] {
            let fresh = ProfileEngine::new().threads(2).one_to_all(&net, src);
            assert_eq!(reused.one_to_all(&net, src), fresh, "source {src}");
        }
    }

    #[test]
    fn many_to_all_matches_individual_queries() {
        let (net, s) = net();
        let sources: Vec<StationId> = vec![s[0], s[1], s[3], s[0]];
        let individual: Vec<Arc<ProfileSet>> =
            sources.iter().map(|&src| ProfileEngine::new().one_to_all(&net, src)).collect();
        // Across-query parallelism (sources >= threads)...
        let batch = ProfileEngine::new().threads(2).many_to_all(&net, &sources);
        assert_eq!(batch, individual);
        // ...and the within-query fallback (sources < threads).
        let few = ProfileEngine::new().threads(8).many_to_all(&net, &sources[..1]);
        assert_eq!(few[0], individual[0]);
    }

    #[test]
    fn cache_hits_skip_the_search_and_share_the_set() {
        let (net, s) = net();
        let engine = ProfileEngine::new().with_cache(8);
        let first = engine.one_to_all_with_stats(&net, s[0]);
        assert_eq!((first.stats.cache_hits, first.stats.cache_misses), (0, 1));
        assert!(first.stats.settled > 0);
        let again = engine.one_to_all_with_stats(&net, s[0]);
        // No search ran: zero settled/relaxed, one hit, the identical set.
        assert_eq!(again.stats.settled, 0);
        assert_eq!((again.stats.cache_hits, again.stats.cache_misses), (1, 0));
        assert!(Arc::ptr_eq(&again.profiles, &first.profiles));
        let cs = engine.cache_stats().expect("cache enabled");
        assert_eq!((cs.hits, cs.misses, cs.entries), (1, 1, 1));
    }

    #[test]
    fn delay_bumps_generation_and_invalidates_cache() {
        use pt_core::TrainId;
        use pt_timetable::Recovery;
        let (mut net, s) = net();
        let engine = ProfileEngine::new().with_cache(8);
        let before = engine.one_to_all(&net, s[0]);
        let g0 = net.generation();
        assert_ne!(
            net.apply_delay(TrainId(0), 0, Dur::minutes(7), Recovery::None),
            crate::network::DelayUpdate::Unchanged
        );
        assert!(net.generation() > g0);
        // Same source, new generation: the stale entry cannot match.
        let after = engine.one_to_all_with_stats(&net, s[0]);
        assert_eq!(after.stats.cache_misses, 1);
        assert_ne!(&after.profiles, &before, "the delay must change the profiles");
        // The fresh result matches an uncached engine on the patched net.
        assert_eq!(after.profiles, ProfileEngine::new().one_to_all(&net, s[0]));
    }

    #[test]
    fn many_to_all_resolves_hits_and_searches_misses() {
        let (net, s) = net();
        let engine = ProfileEngine::new().with_cache(8);
        let _ = engine.one_to_all(&net, s[0]);
        let results = engine.many_to_all_with_stats(&net, &[s[0], s[1], s[0]]);
        assert_eq!(results[0].stats.cache_hits, 1);
        assert_eq!(results[1].stats.cache_misses, 1);
        assert_eq!(results[2].stats.cache_hits, 1, "duplicate source hits within the batch");
        for (r, &src) in results.iter().zip(&[s[0], s[1], s[0]]) {
            assert_eq!(r.profiles, ProfileEngine::new().one_to_all(&net, src));
        }
    }

    #[test]
    fn cache_never_aliases_across_networks() {
        // Engines are network-free: one cached engine may serve several
        // networks. Distinct networks share generation 0, so the key's
        // epoch component must keep their entries apart.
        let make = |leg_min: u32| {
            let mut b = pt_timetable::TimetableBuilder::new(Period::DAY);
            let a = b.add_named_station("A", Dur::minutes(2));
            let t = b.add_named_station("T", Dur::minutes(2));
            b.add_simple_trip(&[a, t], Time::hm(8, 0), &[Dur::minutes(leg_min)], Dur::ZERO)
                .unwrap();
            (Network::new(b.build().unwrap()), a, t)
        };
        let (net1, a, t) = make(30);
        let (net2, _, _) = make(60);
        assert_ne!(net1.epoch(), net2.epoch());
        assert_ne!(net1.epoch(), net1.clone().epoch(), "clones get fresh epochs");
        let engine = ProfileEngine::new().with_cache(8);
        let on1 = engine.one_to_all(&net1, a);
        let on2 = engine.one_to_all(&net2, a);
        assert_eq!(on1.profile(t).points()[0].arr, Time::hm(8, 30));
        assert_eq!(on2.profile(t).points()[0].arr, Time::hm(9, 0), "stale cross-network hit");
    }

    #[test]
    fn many_to_all_dedupes_in_batch_duplicate_misses() {
        let (net, s) = net();
        let engine = ProfileEngine::new().with_cache(8);
        // Cold cache, duplicated source: exactly one search may run.
        let results = engine.many_to_all_with_stats(&net, &[s[0], s[0], s[0]]);
        assert_eq!(results[0].stats.cache_misses, 1);
        assert!(results[0].stats.settled > 0);
        for r in &results[1..] {
            assert_eq!(r.stats.cache_hits, 1, "duplicates resolve without a search");
            assert_eq!(r.stats.settled, 0);
            assert_eq!(r.profiles, results[0].profiles);
        }
        let cs = engine.cache_stats().unwrap();
        assert_eq!(cs.entries, 1);
        // Tiny cache + duplicates: evicted in-batch entries still resolve.
        let small = ProfileEngine::new().with_cache(1);
        let many = small.many_to_all_with_stats(&net, &[s[0], s[1], s[0], s[1]]);
        for (r, &src) in many.iter().zip(&[s[0], s[1], s[0], s[1]]) {
            assert_eq!(r.profiles, ProfileEngine::new().one_to_all(&net, src));
        }
    }

    #[test]
    fn cache_eviction_is_reported_in_query_stats() {
        let (net, s) = net();
        let engine = ProfileEngine::new().with_cache(1);
        let _ = engine.one_to_all(&net, s[0]);
        let r = engine.one_to_all_with_stats(&net, s[1]);
        assert_eq!(r.stats.cache_evictions, 1, "capacity-1 cache must evict");
        let cs = engine.cache_stats().unwrap();
        assert_eq!((cs.evictions, cs.entries, cs.capacity), (1, 1, 1));
    }
}
