//! Operation counters, matching the columns of the paper's tables.

use std::ops::AddAssign;

/// Counters collected by one query (summed over all threads, as in the
/// paper's "settled connections" column).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct QueryStats {
    /// Queue elements taken from the priority queue ("settled connections",
    /// Tables 1 and 2). For the label-correcting baseline this counts the
    /// sizes of the popped connection labels instead.
    pub settled: u64,
    /// Settled elements discarded by self-pruning (§3.1).
    pub self_pruned: u64,
    /// Settled elements discarded by the stopping criterion (§4, Thm 2).
    pub stop_pruned: u64,
    /// Searches pruned by the distance table (§4, Thm 3) or target pruning
    /// (§4, Thm 4).
    pub table_pruned: u64,
    /// Edge relaxations.
    pub relaxed: u64,
    /// Priority-queue inserts.
    pub pushes: u64,
    /// Priority-queue decrease-key operations.
    pub decreases: u64,
    /// Wall-clock nanoseconds spent in the sequential master step (merging
    /// per-thread labels and reducing them to profiles, §3.2) — the merge
    /// overhead the paper discusses qualitatively but never quantifies.
    pub merge_ns: u64,
    /// Queries answered from the profile cache (no search ran). Always 0
    /// without [`ProfileEngine::with_cache`](crate::ProfileEngine::with_cache).
    pub cache_hits: u64,
    /// Queries that consulted the cache and fell through to a search.
    pub cache_misses: u64,
    /// Cache entries evicted while storing this query's result.
    pub cache_evictions: u64,
    /// Bucket phases swept by the SoA kernel (one settle + relax + commit
    /// round per non-empty time bucket). Always 0 on the scalar path.
    pub bucket_phases: u64,
    /// 64-wide candidate chunks pushed through the SoA commit loop.
    pub lane_chunks: u64,
    /// Labels discarded by the kernel's masked select (the branch-light
    /// form of self-pruning; also counted in `self_pruned`/`stop_pruned`).
    pub masked_prunes: u64,
}

impl AddAssign for QueryStats {
    fn add_assign(&mut self, rhs: QueryStats) {
        self.settled += rhs.settled;
        self.self_pruned += rhs.self_pruned;
        self.stop_pruned += rhs.stop_pruned;
        self.table_pruned += rhs.table_pruned;
        self.relaxed += rhs.relaxed;
        self.pushes += rhs.pushes;
        self.decreases += rhs.decreases;
        self.merge_ns += rhs.merge_ns;
        self.cache_hits += rhs.cache_hits;
        self.cache_misses += rhs.cache_misses;
        self.cache_evictions += rhs.cache_evictions;
        self.bucket_phases += rhs.bucket_phases;
        self.lane_chunks += rhs.lane_chunks;
        self.masked_prunes += rhs.masked_prunes;
    }
}

impl QueryStats {
    /// Sum of several per-thread stats.
    pub fn sum(parts: impl IntoIterator<Item = QueryStats>) -> QueryStats {
        let mut total = QueryStats::default();
        for p in parts {
            total += p;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_adds_fieldwise() {
        let a = QueryStats { settled: 1, relaxed: 2, pushes: 3, ..Default::default() };
        let b = QueryStats { settled: 10, self_pruned: 5, ..Default::default() };
        let s = QueryStats::sum([a, b]);
        assert_eq!(s.settled, 11);
        assert_eq!(s.self_pruned, 5);
        assert_eq!(s.relaxed, 2);
        assert_eq!(s.pushes, 3);
    }
}
