//! Branch-light structure-of-arrays label kernels (ROADMAP item 3).
//!
//! The scalar searches in [`connection_setting`](crate::connection_setting)
//! and [`s2s`](crate::s2s) pop one `(connection, node)` slot at a time from
//! a binary heap and dispatch on the edge kind per relaxation — correct,
//! but every step is a data-dependent branch chasing pointers through the
//! heap. This module replaces the heap with a **time-bucketed frontier**
//! (a Dial-style ring of width-1-second buckets over the key space) and
//! restructures each bucket's work into three wide sweeps over contiguous
//! `u32` lanes:
//!
//! 1. **Settle sweep** — every live slot in the current bucket is settled
//!    at once; self-pruning becomes a masked select on the dense
//!    `arr`/`maxconn` arrays (`arr ← prune ? PRUNED : key`) instead of a
//!    taken/not-taken branch per pop.
//! 2. **Relax sweep** — outgoing edges are walked grouped by kind via
//!    [`EdgeKindCsr`](pt_graph::EdgeKindCsr): all constant edges of the
//!    frontier share the settle key, so their lane is a pure gather +
//!    saturating add ([`Time::lane_add`]) the compiler can vectorize; the
//!    time-dependent lane follows with one PLF evaluation per edge.
//!    Candidates accumulate as `(slot, key)` pairs in chunked lanes.
//! 3. **Commit sweep** — one comparison per candidate (`key < tent[slot]`)
//!    folds together "candidate unreachable" (`key = u32::MAX` from the
//!    saturating add), "slot already settled or pruned" (a settled slot's
//!    tentative key is ≤ the current bucket, hence ≤ every candidate) and
//!    "no improvement", with no other branches in the loop.
//!
//! Correctness relies on the keys being monotone: every candidate key is
//! `≥` the current bucket key, so buckets are settled in Dijkstra order and
//! the ring never needs more than `ring_size` buckets (the maximum edge
//! span plus the one-period spread of the initial departures). Within one
//! bucket the settle order differs from the heap's tie order; the per-slot
//! labels may differ on ties, but the *reduced profiles* are identical —
//! `conn(S)` is departure-ordered, so among equal-key ties the reduction
//! keeps the latest departure either way. The scalar path remains the
//! arbiter of correctness: `tests/kernel_identity.rs` and the conncheck
//! `--kernel` ablation assert equality on random and patched timetables.

use std::str::FromStr;

use pt_core::{Time, INFINITY};

use crate::connection_setting::PRUNED;
use crate::network::Network;
use crate::stats::QueryStats;
use crate::workspace::SearchWorkspace;

/// Which label kernel an engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// The binary-heap reference path.
    Scalar,
    /// The bucketed structure-of-arrays path.
    Soa,
    /// Per query class: SoA when the slot space is large enough to amortize
    /// the ring scan, scalar otherwise.
    #[default]
    Auto,
}

impl KernelMode {
    /// Resolves the mode for one query class of `slots = k·|V|` label slots
    /// against a bucket ring of `ring` buckets. The SoA kernel's fixed
    /// overhead is the occupancy-bitmap scan (`ring/64` words); `Auto`
    /// takes the kernel only when the touched slots can amortize it.
    pub(crate) fn use_soa(self, slots: usize, ring: usize) -> bool {
        match self {
            KernelMode::Scalar => false,
            KernelMode::Soa => true,
            KernelMode::Auto => slots >= ring,
        }
    }

    /// `true` unless the scalar path is forced — the SoA master-merge has
    /// no ring overhead, so `Auto` always takes it.
    pub(crate) fn soa_merge(self) -> bool {
        self != KernelMode::Scalar
    }
}

impl FromStr for KernelMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Ok(KernelMode::Scalar),
            "soa" => Ok(KernelMode::Soa),
            "auto" => Ok(KernelMode::Auto),
            other => Err(format!("unknown kernel mode {other:?} (scalar|soa|auto)")),
        }
    }
}

impl std::fmt::Display for KernelMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            KernelMode::Scalar => "scalar",
            KernelMode::Soa => "soa",
            KernelMode::Auto => "auto",
        })
    }
}

/// Number of buckets the ring needs for `net`: strictly more than the
/// widest spread of pending keys, which is bounded by the maximum edge
/// span ([`EdgeKindCsr::max_edge_span_secs`](pt_graph::EdgeKindCsr)) and —
/// because all initial departures are injected up front — by the
/// one-period spread of `conn(S)`. Rounded up to a power of two so the
/// bucket index is a mask.
pub(crate) fn ring_size(net: &Network) -> usize {
    let g = net.graph();
    let span = g.max_edge_span_secs() as usize;
    (span.max(g.period().len() as usize - 1) + 1).next_power_of_two()
}

/// The SoA counterpart of
/// [`run_range_into`](crate::connection_setting::run_range_into): the
/// (self-pruning) connection-setting search over the global connection-id
/// range `lo..hi`, writing station labels at `out_base` of an already
/// prepared `ws.station_arr`. Label-for-label identical to the scalar path
/// up to tie order (see the module docs).
pub(crate) fn run_range_soa(
    net: &Network,
    lo: u32,
    hi: u32,
    self_pruning: bool,
    ws: &mut SearchWorkspace,
    out_base: usize,
) -> QueryStats {
    let g = net.graph();
    let nv = g.num_nodes();
    let ns = g.num_stations();
    let k = (hi - lo) as usize;
    let mut stats = QueryStats::default();

    ws.begin(k * nv, nv, false);
    if k == 0 {
        return stats;
    }
    let ring = ring_size(net);
    ws.ensure_kernel(ring);

    let mut state = RingState::init(net, lo, k, ws, ring, &mut stats);
    while state.pending > 0 {
        let b = (state.cur & state.mask) as usize;
        // Drain bucket b completely: zero-weight (alight) edges commit
        // back into the current bucket.
        while !ws.buckets[b].is_empty() {
            stats.bucket_phases += 1;

            // Phase 1a — pruning pre-sweep: raise `maxconn(v)` to the
            // highest live connection of this bucket, so equal-key ties
            // prune maximally. (The heap's tie order is arbitrary and may
            // settle a low connection before the high one that would have
            // pruned it; the bucket sweep sees all ties at once and always
            // picks the best order.)
            let mut bvec = std::mem::take(&mut ws.buckets[b]);
            if self_pruning {
                for &s32 in &bvec {
                    let slot = s32 as usize;
                    if ws.arr(slot) == INFINITY {
                        let i = (slot / nv) as u32;
                        let mc = ws.maxconn(slot % nv);
                        if (mc == u32::MAX) | (i > mc) {
                            ws.set_maxconn(slot % nv, i);
                        }
                    }
                }
            }
            // Phase 1b — settle sweep with the masked self-pruning select.
            state.frontier.clear();
            for &s32 in &bvec {
                let slot = s32 as usize;
                if ws.arr(slot) != INFINITY {
                    continue; // superseded entry: slot settled at an earlier key
                }
                debug_assert_eq!(ws.tent(slot), state.cur);
                stats.settled += 1;
                let i = (slot / nv) as u32;
                let v = slot % nv;
                if self_pruning {
                    // After the pre-sweep `maxconn(v) ≥ i`; only the
                    // maximum survives.
                    if i < ws.maxconn(v) {
                        stats.self_pruned += 1;
                        stats.masked_prunes += 1;
                        ws.set_arr(slot, PRUNED);
                        continue;
                    }
                }
                ws.set_arr(slot, Time(state.cur));
                state.frontier.push(s32);
            }
            state.pending -= bvec.len();
            bvec.clear();
            ws.buckets[b] = bvec;

            // Phases 2 + 3 — relax by edge kind, then commit.
            state.relax_and_commit(net, nv, ws, &mut stats);
        }
        if !state.advance(ws, b) {
            break;
        }
    }
    state.finish(ws);

    // Extract labels at station nodes (station nodes are 0..ns).
    for i in 0..k {
        let src = i * nv;
        let dst = out_base + i * ns;
        for s in 0..ns {
            let a = ws.arr(src + s);
            if a < PRUNED {
                ws.station_arr[dst + s] = a;
            }
        }
    }
    stats
}

/// The SoA counterpart of the plain-mode `s2s_range`: SPCS over `lo..hi`
/// specialized to `target`, with the stopping criterion and (always-on)
/// self-pruning. On return `ws.arr_t[i]` holds the best arrival at the
/// target per local connection. Via/target table pruning stays scalar —
/// its per-pop table probes are inherently branchy, so those query kinds
/// never dispatch here.
pub(crate) fn s2s_range_soa(
    net: &Network,
    lo: u32,
    hi: u32,
    target: pt_core::StationId,
    stopping: bool,
    ws: &mut SearchWorkspace,
) -> QueryStats {
    let g = net.graph();
    let nv = g.num_nodes();
    let k = (hi - lo) as usize;
    let target_v = g.station_node(target).idx();
    let mut stats = QueryStats::default();

    ws.begin(k * nv, nv, false);
    ws.fresh_arr_t(k);
    if k == 0 {
        return stats;
    }
    let ring = ring_size(net);
    ws.ensure_kernel(ring);

    // Highest local connection settled at the target (stopping criterion).
    let mut tm: i64 = -1;

    let mut state = RingState::init(net, lo, k, ws, ring, &mut stats);
    while state.pending > 0 {
        let b = (state.cur & state.mask) as usize;
        while !ws.buckets[b].is_empty() {
            stats.bucket_phases += 1;

            // Pruning pre-sweep, as in the one-to-all kernel: raise
            // `maxconn(v)` to the bucket's highest live connection so ties
            // prune maximally. A boosted bound stays sound even if its own
            // entry is stop-pruned below — any `j < i ≤ tm` it prunes was
            // covered by the stopping criterion anyway.
            let mut bvec = std::mem::take(&mut ws.buckets[b]);
            for &s32 in &bvec {
                let slot = s32 as usize;
                if ws.arr(slot) == INFINITY {
                    let i = (slot / nv) as u32;
                    let mc = ws.maxconn(slot % nv);
                    if (mc == u32::MAX) | (i > mc) {
                        ws.set_maxconn(slot % nv, i);
                    }
                }
            }
            state.frontier.clear();
            for &s32 in &bvec {
                let slot = s32 as usize;
                if ws.arr(slot) != INFINITY {
                    continue;
                }
                debug_assert_eq!(ws.tent(slot), state.cur);
                stats.settled += 1;
                let i = (slot / nv) as u32;
                let v = slot % nv;
                // Stopping criterion (Thm 2), as a masked select like
                // self-pruning below. Ties inside one bucket settle in
                // bucket order rather than heap order; the reduced profile
                // is invariant under that reordering (module docs).
                if stopping & ((i as i64) <= tm) {
                    stats.stop_pruned += 1;
                    stats.masked_prunes += 1;
                    ws.set_arr(slot, PRUNED);
                    continue;
                }
                if i < ws.maxconn(v) {
                    stats.self_pruned += 1;
                    stats.masked_prunes += 1;
                    ws.set_arr(slot, PRUNED);
                    continue;
                }
                ws.set_arr(slot, Time(state.cur));
                // Settling the target finishes connection i: record the
                // arrival and do not relax its edges.
                if v == target_v {
                    let iu = i as usize;
                    ws.arr_t[iu] = ws.arr_t[iu].min(Time(state.cur));
                    tm = tm.max(i as i64);
                    continue;
                }
                state.frontier.push(s32);
            }
            state.pending -= bvec.len();
            bvec.clear();
            ws.buckets[b] = bvec;

            state.relax_and_commit(net, nv, ws, &mut stats);
        }
        if !state.advance(ws, b) {
            break;
        }
    }
    state.finish(ws);
    stats
}

/// Shared bucket-ring driver state of the two kernels.
struct RingState {
    cur: u32,
    mask: u32,
    ring: usize,
    pending: usize,
    frontier: Vec<u32>,
    lane_slots: Vec<u32>,
    lane_keys: Vec<u32>,
}

impl RingState {
    /// Injects every outgoing connection of `lo..lo+k` up front (their
    /// departure keys all lie within one period of the earliest, which the
    /// ring covers) and positions the cursor on the earliest key.
    fn init(
        net: &Network,
        lo: u32,
        k: usize,
        ws: &mut SearchWorkspace,
        ring: usize,
        stats: &mut QueryStats,
    ) -> RingState {
        let g = net.graph();
        let tt = net.timetable();
        let nv = g.num_nodes();
        let mask = (ring - 1) as u32;
        let mut cur = u32::MAX;
        for i in 0..k {
            let c = pt_core::ConnId(lo + i as u32);
            let r = g.conn_start_node(c);
            let dep = tt.connection(c).dep.secs();
            let slot = i * nv + r.idx();
            ws.set_tent(slot, dep);
            let b = (dep & mask) as usize;
            ws.buckets[b].push(slot as u32);
            ws.occ[b >> 6] |= 1 << (b & 63);
            stats.pushes += 1;
            cur = cur.min(dep);
        }
        RingState {
            cur,
            mask,
            ring,
            pending: k,
            frontier: std::mem::take(&mut ws.frontier),
            lane_slots: std::mem::take(&mut ws.lane_slots),
            lane_keys: std::mem::take(&mut ws.lane_keys),
        }
    }

    /// Relax sweep grouped by edge kind + commit sweep, for the slots in
    /// `self.frontier` (all settled at key `self.cur`).
    fn relax_and_commit(
        &mut self,
        net: &Network,
        nv: usize,
        ws: &mut SearchWorkspace,
        stats: &mut QueryStats,
    ) {
        let g = net.graph();
        let kinds = g.kind_csr();
        let period = g.period();
        let cur = self.cur;

        self.lane_slots.clear();
        self.lane_keys.clear();
        // Constant lane: every candidate shares the settle key, so this is
        // a gather + saturating add with no data-dependent branches.
        for &s32 in &self.frontier {
            let slot = s32 as usize;
            let v = slot % nv;
            let base = (slot - v) as u32;
            let (heads, secs) = kinds.const_edges(v);
            for j in 0..heads.len() {
                self.lane_slots.push(base + heads[j]);
                self.lane_keys.push(Time::lane_add(cur, secs[j]));
            }
        }
        // Time-dependent lane: one PLF evaluation per edge; an unserved
        // edge yields `u32::MAX`, which the commit comparison absorbs.
        for &s32 in &self.frontier {
            let slot = s32 as usize;
            let v = slot % nv;
            let base = (slot - v) as u32;
            let (heads, plf_idx) = kinds.td_edges(v);
            for j in 0..heads.len() {
                self.lane_slots.push(base + heads[j]);
                self.lane_keys.push(g.plf(plf_idx[j]).eval_arr_secs(cur, period));
            }
        }
        stats.lane_chunks += (self.lane_slots.len() as u64).div_ceil(64);

        // Commit: one comparison folds unreachable, settled/pruned and
        // non-improving candidates (tent of a settled slot is ≤ cur ≤ key).
        for idx in 0..self.lane_slots.len() {
            let key = self.lane_keys[idx];
            let wslot = self.lane_slots[idx] as usize;
            let t0 = ws.tent(wslot);
            if key < t0 {
                ws.set_tent(wslot, key);
                let bb = (key & self.mask) as usize;
                ws.buckets[bb].push(wslot as u32);
                ws.occ[bb >> 6] |= 1 << (bb & 63);
                self.pending += 1;
                stats.relaxed += 1;
                if t0 == u32::MAX {
                    stats.pushes += 1;
                } else {
                    stats.decreases += 1;
                }
            }
        }
    }

    /// Retires the drained bucket `b` and hops the cursor to the next
    /// occupied bucket; `false` ends the search (ring empty).
    fn advance(&mut self, ws: &mut SearchWorkspace, b: usize) -> bool {
        ws.occ[b >> 6] &= !(1u64 << (b & 63));
        if self.pending == 0 {
            return false;
        }
        self.cur = self.cur.wrapping_add(next_occupied_step(&ws.occ, self.ring, b) as u32);
        true
    }

    /// Returns the taken scratch vectors to the workspace.
    fn finish(self, ws: &mut SearchWorkspace) {
        debug_assert_eq!(self.pending, 0);
        debug_assert!(ws.occ.iter().all(|&w| w == 0), "ring not drained");
        ws.frontier = self.frontier;
        ws.lane_slots = self.lane_slots;
        ws.lane_keys = self.lane_keys;
    }
}

/// Steps (≥ 1) from bucket `b` to the next occupied bucket, cyclically,
/// by scanning the occupancy bitmap a word at a time. The caller
/// guarantees at least one bucket is occupied and bucket `b` is not.
fn next_occupied_step(occ: &[u64], ring: usize, b: usize) -> usize {
    let words = ring.div_ceil(64);
    let w0 = b / 64;
    let bit0 = b % 64;
    // Bits strictly above b in its word (bits ≥ ring are never set, so a
    // sub-word ring falls through to the wrap loop correctly).
    let above = (occ[w0] >> bit0) >> 1;
    if above != 0 {
        return 1 + above.trailing_zeros() as usize;
    }
    for dw in 1..=words {
        let w = (w0 + dw) % words;
        if occ[w] != 0 {
            let pos = w * 64 + occ[w].trailing_zeros() as usize;
            return (pos + ring - b) & (ring - 1);
        }
    }
    unreachable!("next_occupied_step on an empty ring");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_mode_parses_and_displays() {
        for (s, m) in
            [("scalar", KernelMode::Scalar), ("SoA", KernelMode::Soa), ("AUTO", KernelMode::Auto)]
        {
            assert_eq!(s.parse::<KernelMode>().unwrap(), m);
        }
        assert!("vector".parse::<KernelMode>().is_err());
        assert_eq!(KernelMode::Soa.to_string(), "soa");
        assert_eq!(KernelMode::default(), KernelMode::Auto);
    }

    #[test]
    fn auto_mode_gates_on_slot_count() {
        assert!(!KernelMode::Auto.use_soa(100, 1024));
        assert!(KernelMode::Auto.use_soa(2048, 1024));
        assert!(KernelMode::Soa.use_soa(1, 1 << 20));
        assert!(!KernelMode::Scalar.use_soa(1 << 30, 64));
        assert!(KernelMode::Auto.soa_merge());
        assert!(!KernelMode::Scalar.soa_merge());
    }

    #[test]
    fn bitmap_step_scans_cyclically() {
        // Ring of 128 buckets, occupancy in two words.
        let ring = 128;
        let mut occ = vec![0u64; 2];
        let set = |occ: &mut Vec<u64>, b: usize| occ[b >> 6] |= 1 << (b & 63);
        set(&mut occ, 5);
        set(&mut occ, 70);
        assert_eq!(next_occupied_step(&occ, ring, 3), 2);
        assert_eq!(next_occupied_step(&occ, ring, 5), 65);
        assert_eq!(next_occupied_step(&occ, ring, 70), 63); // wraps to 5
                                                            // Sub-word ring: 16 buckets in one word.
        let mut small = vec![0u64; 1];
        small[0] |= 1 << 2;
        assert_eq!(next_occupied_step(&small, 16, 9), 9); // 9 → 2 cyclically
        assert_eq!(next_occupied_step(&small, 16, 0), 2);
    }
}
