//! Partitioning `conn(S)` onto `p` threads (paper §3.2).
//!
//! The parallel speed-up is bounded by the slowest thread, so the partition
//! should balance per-thread work. The paper proposes three heuristics; all
//! return `p` contiguous ranges of the departure-time-ordered `conn(S)`:
//!
//! * **equal time-slots** — split the period `Π` into `p` equal intervals;
//!   unbalanced in practice because departures cluster in rush hours,
//! * **equal number of connections** — split `conn(S)` into `p` equally
//!   sized chunks; the paper's default compromise,
//! * **k-means** — 1-D k-means on departure times; slightly better balance,
//!   "rather insignificant" query-time gains (§3.2).

use pt_core::Period;
use pt_timetable::Connection;
use std::ops::Range;

/// How to distribute `conn(S)` over threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// Split the period into `p` equal time intervals.
    EqualTimeSlots,
    /// Split `conn(S)` into `p` chunks of (almost) equal cardinality.
    #[default]
    EqualConnections,
    /// 1-D k-means clustering of departure times (`iters` Lloyd rounds).
    KMeans {
        /// Number of Lloyd iterations to run.
        iters: u32,
    },
}

impl PartitionStrategy {
    /// Partitions the departure-ordered `conns` into exactly `p` contiguous
    /// (possibly empty) index ranges covering `0..conns.len()`.
    pub fn partition(&self, conns: &[Connection], p: usize, period: Period) -> Vec<Range<u32>> {
        assert!(p >= 1);
        debug_assert!(conns.windows(2).all(|w| w[0].dep <= w[1].dep), "conn(S) must be sorted");
        let n = conns.len() as u32;
        if p == 1 || conns.is_empty() {
            let mut out = Vec::with_capacity(p);
            out.push(0..n);
            out.extend(std::iter::repeat_n(n..n, p - 1));
            return out;
        }
        let boundaries: Vec<u32> = match *self {
            PartitionStrategy::EqualConnections => {
                (1..p).map(|j| (n as u64 * j as u64 / p as u64) as u32).collect()
            }
            PartitionStrategy::EqualTimeSlots => {
                let pi = period.len() as u64;
                (1..p)
                    .map(|j| {
                        let cut = (pi * j as u64 / p as u64) as u32;
                        conns.partition_point(|c| c.dep.secs() < cut) as u32
                    })
                    .collect()
            }
            PartitionStrategy::KMeans { iters } => kmeans_boundaries(conns, p, iters),
        };
        ranges_from_boundaries(&boundaries, n)
    }

    /// Balance diagnostic: sizes of the partition classes.
    pub fn class_sizes(&self, conns: &[Connection], p: usize, period: Period) -> Vec<usize> {
        self.partition(conns, p, period).iter().map(|r| r.len()).collect()
    }
}

fn ranges_from_boundaries(boundaries: &[u32], n: u32) -> Vec<Range<u32>> {
    let mut out = Vec::with_capacity(boundaries.len() + 1);
    let mut lo = 0u32;
    for &b in boundaries {
        let b = b.clamp(lo, n);
        out.push(lo..b);
        lo = b;
    }
    out.push(lo..n);
    out
}

/// Lloyd's algorithm on the sorted 1-D departure times; clusters of sorted
/// 1-D data are contiguous, so the result is a boundary list.
fn kmeans_boundaries(conns: &[Connection], p: usize, iters: u32) -> Vec<u32> {
    let n = conns.len();
    let dep = |i: usize| conns[i].dep.secs() as f64;
    // Init: quantile seeds.
    let mut centroids: Vec<f64> = (0..p).map(|j| dep(n * (2 * j + 1) / (2 * p).max(1))).collect();
    let mut boundaries = vec![0u32; p - 1];
    for _ in 0..iters.max(1) {
        // Assignment: boundary between cluster j and j+1 is the midpoint.
        for j in 0..p - 1 {
            let mid = (centroids[j] + centroids[j + 1]) / 2.0;
            boundaries[j] = conns.partition_point(|c| (c.dep.secs() as f64) < mid) as u32;
        }
        // Monotonicity guard (centroids may collide on skewed data).
        for j in 1..p - 1 {
            if boundaries[j] < boundaries[j - 1] {
                boundaries[j] = boundaries[j - 1];
            }
        }
        // Update step.
        let mut lo = 0usize;
        for j in 0..p {
            let hi = if j < p - 1 { boundaries[j] as usize } else { n };
            if hi > lo {
                let sum: f64 = (lo..hi).map(dep).sum();
                centroids[j] = sum / (hi - lo) as f64;
            }
            lo = hi;
        }
        centroids.sort_unstable_by(f64::total_cmp);
    }
    boundaries.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_core::{StationId, Time, TrainId};

    fn conns(deps: &[u32]) -> Vec<Connection> {
        let mut deps = deps.to_vec();
        deps.sort_unstable();
        deps.iter()
            .map(|&d| Connection {
                from: StationId(0),
                to: StationId(1),
                dep: Time(d),
                arr: Time(d + 60),
                train: TrainId(0),
                seq: 0,
            })
            .collect()
    }

    fn check_cover(ranges: &[Range<u32>], n: u32) {
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, n);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "ranges must be contiguous");
        }
    }

    #[test]
    fn equal_connections_balances_cardinality() {
        let cs = conns(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let ranges = PartitionStrategy::EqualConnections.partition(&cs, 4, Period::DAY);
        check_cover(&ranges, 10);
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 2 || s == 3), "{sizes:?}");
    }

    #[test]
    fn equal_time_slots_follows_the_clock() {
        // All departures in the first quarter of the day.
        let cs = conns(&[100, 200, 300, 400]);
        let ranges = PartitionStrategy::EqualTimeSlots.partition(&cs, 4, Period::DAY);
        check_cover(&ranges, 4);
        // Everything lands in thread 0 — the unbalance the paper describes.
        assert_eq!(ranges[0].len(), 4);
        assert!(ranges[1..].iter().all(|r| r.is_empty()));
    }

    #[test]
    fn kmeans_separates_two_rush_hours() {
        // Two clusters: around 08:00 and around 17:00.
        let mut deps: Vec<u32> = (0..50).map(|i| 8 * 3600 + i * 60).collect();
        deps.extend((0..50).map(|i| 17 * 3600 + i * 60));
        let cs = conns(&deps);
        let ranges = PartitionStrategy::KMeans { iters: 20 }.partition(&cs, 2, Period::DAY);
        check_cover(&ranges, 100);
        assert_eq!(ranges[0].len(), 50);
        assert_eq!(ranges[1].len(), 50);
    }

    #[test]
    fn single_thread_gets_everything() {
        let cs = conns(&[5, 10, 20]);
        for strat in [
            PartitionStrategy::EqualConnections,
            PartitionStrategy::EqualTimeSlots,
            PartitionStrategy::KMeans { iters: 5 },
        ] {
            let ranges = strat.partition(&cs, 1, Period::DAY);
            assert_eq!(ranges, vec![0..3]);
        }
    }

    #[test]
    fn more_threads_than_connections() {
        let cs = conns(&[5, 10]);
        for strat in [
            PartitionStrategy::EqualConnections,
            PartitionStrategy::EqualTimeSlots,
            PartitionStrategy::KMeans { iters: 5 },
        ] {
            let ranges = strat.partition(&cs, 8, Period::DAY);
            check_cover(&ranges, 2);
            assert_eq!(ranges.len(), 8);
            assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), 2);
        }
    }

    #[test]
    fn empty_connection_set() {
        let ranges = PartitionStrategy::EqualConnections.partition(&[], 4, Period::DAY);
        assert_eq!(ranges.len(), 4);
        assert!(ranges.iter().all(|r| r.is_empty()));
    }
}
