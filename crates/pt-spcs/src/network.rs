//! Bundled search structures of one transportation network.

use pt_core::StationId;
use pt_graph::{StationGraph, TdGraph};
use pt_timetable::{Routes, Timetable};

/// A timetable together with every derived structure the searches need:
/// the route partition, the realistic time-dependent graph and the station
/// graph. Build it once, query it many times; all queries take `&Network`.
#[derive(Debug, Clone)]
pub struct Network {
    timetable: Timetable,
    routes: Routes,
    graph: TdGraph,
    stations: StationGraph,
}

impl Network {
    /// Builds all derived structures from a timetable.
    pub fn new(timetable: Timetable) -> Network {
        let routes = Routes::partition(&timetable);
        let graph = TdGraph::build(&timetable, &routes);
        let stations = StationGraph::build(&timetable);
        Network { timetable, routes, graph, stations }
    }

    /// Like [`Network::new`], borrowing the timetable (clones it).
    pub fn build(timetable: &Timetable) -> Network {
        Self::new(timetable.clone())
    }

    /// The underlying timetable.
    #[inline]
    pub fn timetable(&self) -> &Timetable {
        &self.timetable
    }

    /// The route partition.
    #[inline]
    pub fn routes(&self) -> &Routes {
        &self.routes
    }

    /// The realistic time-dependent graph.
    #[inline]
    pub fn graph(&self) -> &TdGraph {
        &self.graph
    }

    /// The station graph `G_S`.
    #[inline]
    pub fn station_graph(&self) -> &StationGraph {
        &self.stations
    }

    /// Number of stations.
    #[inline]
    pub fn num_stations(&self) -> usize {
        self.timetable.num_stations()
    }

    /// Iterates over all stations.
    pub fn station_ids(&self) -> impl Iterator<Item = StationId> + '_ {
        self.timetable.station_ids()
    }
}
