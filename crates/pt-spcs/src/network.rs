//! Bundled search structures of one transportation network.

use std::sync::atomic::{AtomicU64, Ordering};

use pt_core::{Dur, StationId, TrainId};
use pt_graph::{StationGraph, TdGraph};
use pt_timetable::{Recovery, Routes, Timetable};

/// Source of process-unique [`Network::epoch`] stamps.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(0);

/// How [`Network::apply_delay`] serviced an update — the fully dynamic
/// scenario of the paper (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayUpdate {
    /// The delay matched no connection (or was fully absorbed by the
    /// recovery): nothing changed, the generation did not move.
    Unchanged,
    /// The fast path: the timetable was patched in place and only the
    /// delayed route's PLFs were rewritten ([`TdGraph::repatch`]). Node and
    /// edge counts are untouched, so warm engine workspaces stay sized.
    Patched,
    /// The delay made the route partition stale (a train now overtakes a
    /// companion on its route, or departures collide): routes and
    /// time-dependent graph were rebuilt from the patched timetable.
    Rebuilt,
}

/// A timetable together with every derived structure the searches need:
/// the route partition, the realistic time-dependent graph and the station
/// graph. Build it once, query it many times; all queries take `&Network`,
/// and [`Network::apply_delay`] mutates it in place between queries.
#[derive(Debug)]
pub struct Network {
    timetable: Timetable,
    routes: Routes,
    graph: TdGraph,
    stations: StationGraph,
    /// Process-unique instance stamp (fresh on construction *and* on
    /// clone): two distinct `Network` values never share an epoch, even
    /// when their timetable generations coincide. Caches key on
    /// `(epoch, generation)` so a network-free engine queried against
    /// several networks can never serve a result across them.
    epoch: u64,
}

impl Clone for Network {
    /// Clones every structure but stamps a fresh [`Network::epoch`]: the
    /// clone can be mutated independently, so cached results must not
    /// alias between original and copy.
    fn clone(&self) -> Network {
        Network {
            timetable: self.timetable.clone(),
            routes: self.routes.clone(),
            graph: self.graph.clone(),
            stations: self.stations.clone(),
            epoch: NEXT_EPOCH.fetch_add(1, Ordering::Relaxed),
        }
    }
}

impl Network {
    /// Builds all derived structures from a timetable.
    pub fn new(timetable: Timetable) -> Network {
        let routes = Routes::partition(&timetable);
        let graph = TdGraph::build(&timetable, &routes);
        let stations = StationGraph::build(&timetable);
        let epoch = NEXT_EPOCH.fetch_add(1, Ordering::Relaxed);
        Network { timetable, routes, graph, stations, epoch }
    }

    /// Like [`Network::new`], borrowing the timetable (clones it).
    pub fn build(timetable: &Timetable) -> Network {
        Self::new(timetable.clone())
    }

    /// Applies a delay to the live network: `train` runs `delay` late from
    /// its `from_hop`-th hop onward, recovering per [`Recovery`]. The
    /// timetable is patched in place ([`Timetable::patch_delay`]) and the
    /// derived structures follow incrementally where possible:
    ///
    /// * [`Routes`] rewrite their remapped connection ids,
    /// * if the delayed route is still FIFO, [`TdGraph::repatch`] rewrites
    ///   only the route's hop PLFs ([`DelayUpdate::Patched`]); otherwise
    ///   routes and graph are rebuilt ([`DelayUpdate::Rebuilt`]),
    /// * the station graph is invariant (delays shift times, never
    ///   durations or the edge set) and is always kept.
    ///
    /// Every change bumps [`Network::generation`], invalidating
    /// generation-keyed caches. Precomputed [`crate::DistanceTable`]s are
    /// *not* managed here — rebuild or drop them after a delay.
    pub fn apply_delay(
        &mut self,
        train: TrainId,
        from_hop: u16,
        delay: Dur,
        recovery: Recovery,
    ) -> DelayUpdate {
        let patch = self.timetable.patch_delay(train, from_hop, delay, recovery);
        if !patch.changed {
            return DelayUpdate::Unchanged;
        }
        self.routes.repatch(&self.timetable, &patch);
        if self.routes.route_is_fifo(&self.timetable, self.routes.route_of(train)) {
            self.graph.repatch(&self.timetable, &self.routes, train, &patch);
            DelayUpdate::Patched
        } else {
            self.routes = Routes::partition(&self.timetable);
            self.graph = TdGraph::build(&self.timetable, &self.routes);
            DelayUpdate::Rebuilt
        }
    }

    /// The timetable's update generation (see [`Timetable::generation`]).
    #[inline]
    pub fn generation(&self) -> u64 {
        self.timetable.generation()
    }

    /// The process-unique instance stamp of this network. Combined with
    /// [`Network::generation`] it identifies exactly one network state:
    /// construction and [`Clone`] both assign a fresh epoch, mutation bumps
    /// the generation.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The underlying timetable.
    #[inline]
    pub fn timetable(&self) -> &Timetable {
        &self.timetable
    }

    /// The route partition.
    #[inline]
    pub fn routes(&self) -> &Routes {
        &self.routes
    }

    /// The realistic time-dependent graph.
    #[inline]
    pub fn graph(&self) -> &TdGraph {
        &self.graph
    }

    /// The station graph `G_S`.
    #[inline]
    pub fn station_graph(&self) -> &StationGraph {
        &self.stations
    }

    /// Number of stations.
    #[inline]
    pub fn num_stations(&self) -> usize {
        self.timetable.num_stations()
    }

    /// Iterates over all stations.
    pub fn station_ids(&self) -> impl Iterator<Item = StationId> + '_ {
        self.timetable.station_ids()
    }
}
