//! Bundled search structures of one transportation network, plus the
//! snapshot-isolated concurrent wrapper ([`ConcurrentNetwork`]) a live
//! service queries while a feed stream mutates it.

use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use arc_swap::ArcSwap;

use pt_core::{Dur, RouteId, StationId, TrainId};
use pt_graph::{StationGraph, TdGraph};
use pt_timetable::{
    CalendarError, Date, DayTimetable, DelayEvent, Recovery, Routes, ServiceCalendar, Timetable,
};

use crate::distance_table::DistanceTable;
use crate::transfer_selection::TransferSelection;

/// Source of process-unique [`Network::epoch`] stamps.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(0);

/// How many mutations back [`Network::touched_since`] can answer. Bounds
/// the per-network memory of the touched-station log; a consumer further
/// behind than this falls back to a full recompute.
const FEED_LOG_CAP: usize = 64;

/// Scoped refits accumulate extra routes; once they exceed this floor
/// *and* an eighth of the partition, the next overtaking fallback runs a
/// full [`Routes::partition`] instead, re-coalescing every split (including
/// those whose delays were since cancelled) at the same graph-rebuild cost.
const REFIT_HEAL_FLOOR: usize = 16;

/// How [`Network::apply_delay`] serviced an update — the fully dynamic
/// scenario of the paper (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayUpdate {
    /// The delay matched no connection (or was fully absorbed by the
    /// recovery): nothing changed, the generation did not move.
    Unchanged,
    /// The fast path: the timetable was patched in place and only the
    /// delayed route's PLFs were rewritten ([`TdGraph::repatch`]). Node and
    /// edge counts are untouched, so warm engine workspaces stay sized.
    Patched,
    /// The delay made the route partition stale (a train now overtakes a
    /// companion on its route, or departures collide): the offending route
    /// was re-split ([`Routes::refit`]) and the time-dependent graph
    /// rebuilt from the patched timetable.
    Rebuilt,
}

/// What [`Network::apply_feed`] did with one batch of [`DelayEvent`]s —
/// the per-event outcomes plus the aggregate counters a feed-driven server
/// (and the `throughput` bench) reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedSummary {
    /// Per event, in feed order, how it was serviced. An event whose train
    /// ended up with unchanged times (a no-op delay, a cancellation of a
    /// never-delayed train, or a delay+cancel pair that nets out) is
    /// [`DelayUpdate::Unchanged`]; an event on a route that stayed FIFO is
    /// [`DelayUpdate::Patched`]; an event on an offending (refit) route is
    /// [`DelayUpdate::Rebuilt`].
    pub events: Vec<DelayUpdate>,
    /// Distinct routes carrying a net-changed train.
    pub touched_routes: usize,
    /// Touched routes that stayed FIFO and were rewritten in place — each
    /// exactly once ([`TdGraph::repatch_routes`]).
    pub repatched_routes: usize,
    /// Touched routes that lost FIFO and were re-split in place
    /// ([`Routes::refit`]); non-zero means the graph was rebuilt once.
    pub refit_routes: usize,
    /// Departure stations of every net-changed connection, sorted and
    /// deduplicated. Informational — the network records the same data per
    /// generation in its own bounded log ([`Network::touched_since`]), which
    /// is what [`DistanceTable::refresh`](crate::DistanceTable::refresh)
    /// consults, so stale tables several feeds behind refresh correctly
    /// without the caller accumulating these.
    pub touched_stations: Vec<StationId>,
}

impl FeedSummary {
    /// `true` iff the feed changed at least one connection time (exactly
    /// when the generation was bumped — once).
    pub fn changed(&self) -> bool {
        self.touched_routes > 0
    }

    /// `true` iff the overtaking fallback ran (graph rebuilt once).
    pub fn rebuilt(&self) -> bool {
        self.refit_routes > 0
    }

    fn unchanged(num_events: usize) -> FeedSummary {
        FeedSummary {
            events: vec![DelayUpdate::Unchanged; num_events],
            touched_routes: 0,
            repatched_routes: 0,
            refit_routes: 0,
            touched_stations: Vec::new(),
        }
    }
}

/// A timetable together with every derived structure the searches need:
/// the route partition, the realistic time-dependent graph and the station
/// graph. Build it once, query it many times; all queries take `&Network`,
/// and [`Network::apply_delay`] mutates it in place between queries.
#[derive(Debug)]
pub struct Network {
    timetable: Timetable,
    routes: Routes,
    graph: TdGraph,
    /// Shared: the station graph is invariant under delays (durations and
    /// the edge set never change), so every clone of this network — and
    /// every published snapshot — aliases the same allocation forever.
    stations: Arc<StationGraph>,
    /// Process-unique instance stamp (fresh on construction *and* on
    /// clone): two distinct `Network` values never share an epoch, even
    /// when their timetable generations coincide. Caches key on
    /// `(epoch, generation)` so a network-free engine queried against
    /// several networks can never serve a result across them.
    epoch: u64,
    /// The last [`FEED_LOG_CAP`] mutations as `(generation after the
    /// mutation, its touched stations)` — consecutive generations, since
    /// every mutation flows through [`Network::apply_feed`] and bumps
    /// exactly once. Backs [`Network::touched_since`], the source of truth
    /// for incremental distance-table refreshes. Entries are immutable
    /// once recorded, so clones share them by refcount.
    feed_log: Vec<(u64, Arc<[StationId]>)>,
    /// Routes added by scoped [`Routes::refit`]s since the last full
    /// partition; drives the fragmentation heal (see [`REFIT_HEAL_FLOOR`]).
    refit_extra_routes: usize,
}

impl Clone for Network {
    /// Clones every structure but stamps a fresh [`Network::epoch`]: the
    /// clone can be mutated independently, so cached results must not
    /// alias between original and copy. The copy is copy-on-write —
    /// cloning shares the inner allocations by refcount; either side
    /// unshares exactly the pieces it later mutates.
    fn clone(&self) -> Network {
        Network {
            timetable: self.timetable.clone(),
            routes: self.routes.clone(),
            graph: self.graph.clone(),
            stations: self.stations.clone(),
            epoch: NEXT_EPOCH.fetch_add(1, Ordering::Relaxed),
            feed_log: self.feed_log.clone(),
            refit_extra_routes: self.refit_extra_routes,
        }
    }
}

impl Network {
    /// Builds all derived structures from a timetable.
    pub fn new(timetable: Timetable) -> Network {
        let routes = Routes::partition(&timetable);
        let graph = TdGraph::build(&timetable, &routes);
        let stations = StationGraph::build(&timetable);
        let epoch = NEXT_EPOCH.fetch_add(1, Ordering::Relaxed);
        Network {
            timetable,
            routes,
            graph,
            stations: Arc::new(stations),
            epoch,
            feed_log: Vec::new(),
            refit_extra_routes: 0,
        }
    }

    /// Like [`Network::new`], borrowing the timetable (clones it).
    pub fn build(timetable: &Timetable) -> Network {
        Self::new(timetable.clone())
    }

    /// Applies a delay to the live network: `train` runs `delay` late from
    /// its `from_hop`-th hop onward, recovering per [`Recovery`]. The
    /// timetable is patched in place ([`Timetable::patch_delay`]) and the
    /// derived structures follow incrementally where possible:
    ///
    /// * [`Routes`] rewrite their remapped connection ids,
    /// * if the delayed route is still FIFO, [`TdGraph::repatch`] rewrites
    ///   only the route's hop PLFs ([`DelayUpdate::Patched`]); otherwise
    ///   routes and graph are rebuilt ([`DelayUpdate::Rebuilt`]),
    /// * the station graph is invariant (delays shift times, never
    ///   durations or the edge set) and is always kept.
    ///
    /// Every change bumps [`Network::generation`], invalidating
    /// generation-keyed caches. Precomputed [`crate::DistanceTable`]s are
    /// *not* managed here — rebuild or drop them after a delay.
    pub fn apply_delay(
        &mut self,
        train: TrainId,
        from_hop: u16,
        delay: Dur,
        recovery: Recovery,
    ) -> DelayUpdate {
        self.apply_feed(&[DelayEvent::Delay { train, from_hop, delay, recovery }]).events[0]
    }

    /// Withdraws every previous delay announcement for `train`
    /// ([`DelayEvent::Cancel`] applied alone): its hops return to the
    /// published schedule. A never-delayed train is a no-op
    /// ([`DelayUpdate::Unchanged`], no generation bump).
    pub fn apply_cancel(&mut self, train: TrainId) -> DelayUpdate {
        self.apply_feed(&[DelayEvent::Cancel { train }]).events[0]
    }

    /// Applies a whole realtime feed to the live network in **one pass** —
    /// the batched form of [`Network::apply_delay`], sized for GTFS-RT-style
    /// streams of hundreds of updates:
    ///
    /// * [`Timetable::patch_feed`] coalesces the events per train, rewrites
    ///   every net-changed connection once, re-sorts each touched `conn(S)`
    ///   bucket once and bumps the generation **once** (so
    ///   generation-keyed caches are invalidated once per feed, not once
    ///   per event),
    /// * [`Routes::repatch_feed`] follows the merged remap and returns the
    ///   touched routes, each exactly once,
    /// * touched routes that kept the FIFO property are rewritten in place
    ///   by [`TdGraph::repatch_routes`] — **at most one repatch per touched
    ///   route** regardless of how many events hit it,
    /// * the overtaking fallback is scoped to the offending routes: only
    ///   they are re-split ([`Routes::refit`]); the graph is then rebuilt
    ///   once (route-node topology changed), every other route keeping its
    ///   trains,
    /// * the station graph is invariant (delays and cancellations shift
    ///   times, never durations or the edge set) and is always kept.
    ///
    /// The returned [`FeedSummary`] carries a per-event [`DelayUpdate`]
    /// (net semantics: events whose train ended up back on its previous
    /// times report [`DelayUpdate::Unchanged`]) and the feed's touched
    /// stations; the same stations are recorded per generation in the
    /// network's bounded log ([`Network::touched_since`]) for incremental
    /// [`DistanceTable::refresh`](crate::DistanceTable::refresh)es. A feed
    /// with net effect nil leaves the network — and its generation —
    /// untouched.
    pub fn apply_feed(&mut self, events: &[DelayEvent]) -> FeedSummary {
        let patch = self.timetable.patch_feed(events);
        if !patch.changed {
            return FeedSummary::unchanged(events.len());
        }
        let touched = self.routes.repatch_feed(&self.timetable, &patch);
        let (fifo, offending): (Vec<RouteId>, Vec<RouteId>) =
            touched.iter().partition(|&&r| self.routes.route_is_fifo(&self.timetable, r));

        // Attribute outcomes before refit renumbers trains' routes.
        let events_out: Vec<DelayUpdate> = events
            .iter()
            .zip(&patch.event_changed)
            .map(|(ev, &changed)| {
                let train = ev.train();
                if !changed || patch.trains.binary_search(&train).is_err() {
                    DelayUpdate::Unchanged
                } else if offending.contains(&self.routes.route_of(train)) {
                    DelayUpdate::Rebuilt
                } else {
                    DelayUpdate::Patched
                }
            })
            .collect();

        if offending.is_empty() {
            self.graph.repatch_routes(&self.timetable, &self.routes, &fifo, &patch.remapped);
        } else {
            // Scoped fallback: re-split only the offending routes, then
            // rebuild the graph (its route-node topology changed). The
            // still-FIFO touched routes are covered by the rebuild too.
            let routes_before = self.routes.len();
            self.routes.refit(&self.timetable, &offending);
            self.refit_extra_routes += self.routes.len() - routes_before;
            // Scoped refits only ever split; nothing re-merges trains whose
            // delays were later cancelled, so a long-lived stream would
            // fragment the partition monotonically. Heal by amortization:
            // once the accumulated splits are substantial, spend one full
            // partition here — the graph is being rebuilt anyway.
            if self.refit_extra_routes >= REFIT_HEAL_FLOOR
                && self.refit_extra_routes * 8 > self.routes.len()
            {
                self.routes = Routes::partition(&self.timetable);
                self.refit_extra_routes = 0;
            }
            self.graph = TdGraph::build(&self.timetable, &self.routes);
        }
        self.feed_log.push((self.generation(), patch.touched_stations.clone().into()));
        if self.feed_log.len() > FEED_LOG_CAP {
            self.feed_log.remove(0);
        }
        FeedSummary {
            events: events_out,
            touched_routes: touched.len(),
            repatched_routes: if offending.is_empty() { fifo.len() } else { 0 },
            refit_routes: offending.len(),
            touched_stations: patch.touched_stations,
        }
    }

    /// The union of touched stations (departure stations of re-timed
    /// connections) over every mutation after `generation`, or `None` when
    /// the bounded log no longer reaches back that far — the consumer must
    /// then assume everything changed. `Some(vec![])` means the network
    /// has not changed since `generation`. Backs
    /// [`DistanceTable::refresh`](crate::DistanceTable::refresh), which
    /// needs the *complete* union since its build generation — asking the
    /// network instead of trusting callers to accumulate per-feed
    /// summaries closes the it-looked-fresh-but-wasn't hole.
    pub fn touched_since(&self, generation: u64) -> Option<Vec<StationId>> {
        let current = self.generation();
        if generation > current {
            return None; // a future generation: not this network's past
        }
        if generation == current {
            return Some(Vec::new());
        }
        // Entries carry consecutive generations (each mutation bumps once),
        // so coverage of (generation, current] is a contiguity walk.
        let mut covered = generation;
        let mut union: Vec<StationId> = Vec::new();
        for (g, stations) in &self.feed_log {
            if *g <= generation {
                continue;
            }
            if *g != covered + 1 {
                return None; // trimmed out of the bounded log
            }
            covered = *g;
            union.extend(stations.iter().copied());
        }
        if covered != current {
            return None;
        }
        union.sort_unstable();
        union.dedup();
        Some(union)
    }

    /// The timetable's update generation (see [`Timetable::generation`]).
    #[inline]
    pub fn generation(&self) -> u64 {
        self.timetable.generation()
    }

    /// The process-unique instance stamp of this network. Combined with
    /// [`Network::generation`] it identifies exactly one network state:
    /// construction and [`Clone`] both assign a fresh epoch, mutation bumps
    /// the generation.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The underlying timetable.
    #[inline]
    pub fn timetable(&self) -> &Timetable {
        &self.timetable
    }

    /// The network of one concrete query day: filters the timetable by
    /// `calendar` (see [`Timetable::for_day`]) and rebuilds every derived
    /// search structure over the surviving trains. The returned network is
    /// independent — a fresh epoch, generation history reset — and its
    /// train ids are day-local; use the returned [`DayTimetable`]'s remap
    /// to translate feed events recorded against the full dataset.
    pub fn for_day(
        &self,
        calendar: &ServiceCalendar,
        date: Date,
    ) -> Result<(Network, DayTimetable), CalendarError> {
        let day = self.timetable.for_day(calendar, date)?;
        Ok((Network::new(day.timetable.clone()), day))
    }

    /// The route partition.
    #[inline]
    pub fn routes(&self) -> &Routes {
        &self.routes
    }

    /// The realistic time-dependent graph.
    #[inline]
    pub fn graph(&self) -> &TdGraph {
        &self.graph
    }

    /// The station graph `G_S`.
    #[inline]
    pub fn station_graph(&self) -> &StationGraph {
        &self.stations
    }

    /// Number of stations.
    #[inline]
    pub fn num_stations(&self) -> usize {
        self.timetable.num_stations()
    }

    /// Iterates over all stations.
    pub fn station_ids(&self) -> impl Iterator<Item = StationId> + '_ {
        self.timetable.station_ids()
    }

    /// Clones every structure but **keeps** the epoch — for publishing an
    /// immutable [`NetworkSnapshot`] of this exact logical state. Sound
    /// only because snapshots are never mutated: the `(epoch, generation)`
    /// pair still identifies exactly one state, so cached results may be
    /// shared between the master and its published snapshots. Never use
    /// this for a copy that will be mutated independently (that is what
    /// [`Clone`] is for — it stamps a fresh epoch).
    ///
    /// This is a *spine* clone: O(stations + routes + trains) refcount
    /// bumps, no payload copies. The master unshares only the buckets,
    /// route blocks and PLFs it rewrites on later feeds, so successive
    /// snapshots share everything a feed did not touch.
    pub(crate) fn clone_same_epoch(&self) -> Network {
        Network {
            timetable: self.timetable.clone(),
            routes: self.routes.clone(),
            graph: self.graph.clone(),
            stations: self.stations.clone(),
            epoch: self.epoch,
            feed_log: self.feed_log.clone(),
            refit_extra_routes: self.refit_extra_routes,
        }
    }

    /// A fully *unshared* copy (same epoch): every bucket, route block,
    /// PLF and log entry is reallocated, nothing aliases `self`. This is
    /// exactly what a snapshot publish cost before the copy-on-write
    /// refactor; the `throughput` bench clones it per publish as the
    /// reference the O(touched) path is compared against.
    pub fn deep_clone_same_epoch(&self) -> Network {
        Network {
            timetable: self.timetable.deep_clone(),
            routes: self.routes.deep_clone(),
            graph: self.graph.deep_clone(),
            stations: Arc::new((*self.stations).clone()),
            epoch: self.epoch,
            feed_log: self
                .feed_log
                .iter()
                .map(|(g, s)| (*g, Arc::from(s.iter().copied().collect::<Vec<_>>())))
                .collect(),
            refit_extra_routes: self.refit_extra_routes,
        }
    }
}

/// One immutable published state of a [`ConcurrentNetwork`]: the network
/// plus the matching refreshed [`DistanceTable`] (if configured) and its
/// precomputed transfer mask. Readers pin a snapshot (`Arc` clone) for the
/// duration of one query; the `(epoch, generation)` pair identifies the
/// state for generation-keyed caches, so answers computed on a pinned
/// snapshot are exactly the answers of that state — never a torn mix.
///
/// Derefs to [`Network`], so a `&NetworkSnapshot` goes anywhere a
/// `&Network` does.
#[derive(Debug)]
pub struct NetworkSnapshot {
    net: Network,
    table: Option<Arc<DistanceTable>>,
    mask: Vec<bool>,
}

impl NetworkSnapshot {
    /// The network of this state.
    #[inline]
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The distance table refreshed for this state, if one is configured.
    #[inline]
    pub fn table(&self) -> Option<&DistanceTable> {
        self.table.as_deref()
    }

    /// The table behind a shared handle, for holding beyond the snapshot.
    #[inline]
    pub fn shared_table(&self) -> Option<Arc<DistanceTable>> {
        self.table.clone()
    }

    /// The table's transfer mask (empty when no table is configured),
    /// precomputed once per publish so per-query entry points can use the
    /// masked fast paths.
    #[inline]
    pub fn transfer_mask(&self) -> &[bool] {
        &self.mask
    }
}

impl Deref for NetworkSnapshot {
    type Target = Network;

    fn deref(&self) -> &Network {
        &self.net
    }
}

/// What one [`ConcurrentNetwork::apply_feed`] call did.
#[derive(Debug)]
pub struct PublishOutcome {
    /// The per-event outcomes and touched stations (see [`FeedSummary`]).
    pub summary: FeedSummary,
    /// Rows rewritten by the incremental table refresh (0 when no table is
    /// configured or the feed was net-nil).
    pub table_rows_refreshed: usize,
    /// Wall-clock nanoseconds to build and install the new snapshot: the
    /// spine clone plus the pointer swap (the incremental table refresh
    /// is *not* included — it is its own, already O(affected), phase).
    /// Copy-on-write sharing makes this O(touched), not O(network).
    /// `0` when the feed was net-nil (nothing was published).
    pub publish_ns: u64,
    /// The snapshot published by this call, or `None` when the feed was
    /// net-nil and the previous snapshot remained current.
    pub published: Option<Arc<NetworkSnapshot>>,
}

/// The master state behind the publish lock: the only copy that mutates.
/// The table sits behind an `Arc` shared with the published snapshots;
/// [`DistanceTable::refresh_shared`] unshares it only when a refresh
/// actually rewrites rows.
#[derive(Debug)]
struct Master {
    net: Network,
    table: Option<Arc<DistanceTable>>,
}

/// A [`Network`] served concurrently under **snapshot isolation**: any
/// number of reader threads pin immutable [`NetworkSnapshot`]s via
/// [`ConcurrentNetwork::snapshot`] while one writer at a time applies
/// feeds. A feed patches the private master copy, refreshes the master's
/// distance table incrementally, then publishes the new state with a
/// single atomic pointer swap — readers never observe a half-applied feed:
/// every query's answer is exactly the pre-feed or post-feed state.
///
/// Writers are serialized on the master mutex; `snapshot()` is **wait-free
/// and lock-free** — a pin is three atomic operations on the publish slot
/// ([`ArcSwap`]), so a burst of publishes can never block or starve
/// readers (and a descheduled reader can never block a publish).
#[derive(Debug)]
pub struct ConcurrentNetwork {
    master: Mutex<Master>,
    published: ArcSwap<NetworkSnapshot>,
    publishes: AtomicU64,
}

impl ConcurrentNetwork {
    /// Wraps a network with no distance table.
    pub fn new(net: Network) -> ConcurrentNetwork {
        Self::with_optional_table(net, None)
    }

    /// Wraps a network and builds a [`DistanceTable`] for it; every
    /// published snapshot carries the table refreshed to that state.
    pub fn with_table(net: Network, selection: &TransferSelection) -> ConcurrentNetwork {
        let table = DistanceTable::build(&net, selection);
        Self::with_optional_table(net, Some(Arc::new(table)))
    }

    fn with_optional_table(net: Network, table: Option<Arc<DistanceTable>>) -> ConcurrentNetwork {
        let snapshot = Arc::new(publish_snapshot(&net, table.as_ref()));
        ConcurrentNetwork {
            master: Mutex::new(Master { net, table }),
            published: ArcSwap::new(snapshot),
            publishes: AtomicU64::new(0),
        }
    }

    /// Pins the current published state. The returned `Arc` keeps that
    /// state alive for as long as the reader holds it, unaffected by any
    /// concurrent [`ConcurrentNetwork::apply_feed`]. Wait-free: never
    /// takes a lock, never spins — a publish storm cannot delay a pin.
    pub fn snapshot(&self) -> Arc<NetworkSnapshot> {
        self.published.load_full()
    }

    /// How many snapshots have been published (excluding the initial one).
    pub fn publishes(&self) -> u64 {
        self.publishes.load(Ordering::Relaxed)
    }

    /// Applies a feed under snapshot isolation: patches the master copy
    /// ([`Network::apply_feed`]), refreshes the master's table
    /// incrementally ([`DistanceTable::refresh_shared`] — the shared
    /// `Arc` is kept when zero rows change), then publishes the new state
    /// atomically. The publish itself is O(touched): a spine clone of the
    /// master shares every untouched bucket, route block, PLF and table
    /// row with the previous snapshot by refcount. Concurrent writers are
    /// serialized; concurrent readers keep their pinned snapshots and see
    /// the new state on their next [`ConcurrentNetwork::snapshot`] call.
    /// A net-nil feed publishes nothing.
    pub fn apply_feed(&self, events: &[DelayEvent]) -> PublishOutcome {
        let mut master = self.master.lock().unwrap();
        let summary = master.net.apply_feed(events);
        if !summary.changed() {
            return PublishOutcome {
                summary,
                table_rows_refreshed: 0,
                publish_ns: 0,
                published: None,
            };
        }
        let mut rows = 0;
        let Master { net, table } = &mut *master;
        if let Some(table) = table {
            rows = DistanceTable::refresh_shared(table, net)
                .expect("master table refreshes in lock step");
        }
        let start = std::time::Instant::now();
        let snapshot = Arc::new(publish_snapshot(&master.net, master.table.as_ref()));
        self.published.store(snapshot.clone());
        let publish_ns = start.elapsed().as_nanos() as u64;
        self.publishes.fetch_add(1, Ordering::Relaxed);
        PublishOutcome {
            summary,
            table_rows_refreshed: rows,
            publish_ns,
            published: Some(snapshot),
        }
    }
}

/// Builds the immutable snapshot of one master state. Uses
/// [`Network::clone_same_epoch`] so the snapshot carries the *same*
/// `(epoch, generation)` identity as the master — sound because the
/// snapshot is never mutated. The table `Arc` is shared outright (the
/// master unshares it itself when a refresh rewrites rows), so a publish
/// whose refresh touched zero rows keeps `Arc::ptr_eq` with the previous
/// snapshot's table.
fn publish_snapshot(net: &Network, table: Option<&Arc<DistanceTable>>) -> NetworkSnapshot {
    let mask = table.map(|t| t.transfer_mask()).unwrap_or_default();
    NetworkSnapshot { net: net.clone_same_epoch(), table: table.cloned(), mask }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_timetable::synthetic::city::{generate_city, CityConfig};

    fn net() -> Network {
        Network::new(generate_city(&CityConfig::sized(30, 4, 9)))
    }

    fn delay(train: u32, minutes: u32) -> DelayEvent {
        DelayEvent::Delay {
            train: TrainId(train),
            from_hop: 0,
            delay: Dur::minutes(minutes),
            recovery: Recovery::None,
        }
    }

    #[test]
    fn publish_ordering_pins_the_pre_feed_state() {
        let cnet = ConcurrentNetwork::new(net());
        let pinned = cnet.snapshot();
        let (epoch, gen0) = (pinned.epoch(), pinned.generation());

        let outcome = cnet.apply_feed(&[delay(0, 15)]);
        assert!(outcome.summary.changed());
        let fresh = cnet.snapshot();

        // The pinned snapshot is byte-for-byte the pre-feed state …
        assert_eq!((pinned.epoch(), pinned.generation()), (epoch, gen0));
        // … while the published one moved exactly one generation forward,
        // same epoch (same logical network, new state).
        assert_eq!((fresh.epoch(), fresh.generation()), (epoch, gen0 + 1));
        assert!(Arc::ptr_eq(&fresh, outcome.published.as_ref().unwrap()));
        assert!(!Arc::ptr_eq(&fresh, &pinned));
        assert_eq!(cnet.publishes(), 1);
    }

    #[test]
    fn net_nil_feed_publishes_nothing() {
        let cnet = ConcurrentNetwork::new(net());
        let before = cnet.snapshot();
        // A delay followed by its cancellation nets out to no change.
        let outcome = cnet.apply_feed(&[delay(0, 10), DelayEvent::Cancel { train: TrainId(0) }]);
        assert!(!outcome.summary.changed());
        assert!(outcome.published.is_none());
        assert!(Arc::ptr_eq(&before, &cnet.snapshot()));
        assert_eq!(cnet.publishes(), 0);
    }

    #[test]
    fn zero_row_refresh_shares_the_table_allocation() {
        use pt_core::Time;
        use pt_timetable::{TimetableBuilder, TripStop};
        // Two disconnected components: a delay in B can never change any
        // profile between stations of A, so a publish after it refreshes
        // zero table rows — and must then share the table `Arc` with the
        // previous snapshot instead of cloning it (the old code deep-cloned
        // the whole table on every publish).
        let mut b = TimetableBuilder::new(pt_core::Period::DAY);
        let a: Vec<_> =
            (0..3).map(|i| b.add_named_station(format!("A{i}"), Dur::minutes(2))).collect();
        let c: Vec<_> =
            (0..3).map(|i| b.add_named_station(format!("B{i}"), Dur::minutes(2))).collect();
        for h in [7u32, 9, 11] {
            b.add_trip(&[
                TripStop::passing(a[0], Time::hm(h, 0)),
                TripStop::passing(a[1], Time::hm(h, 20)),
                TripStop::passing(a[2], Time::hm(h, 40)),
            ])
            .unwrap();
            b.add_trip(&[
                TripStop::passing(c[0], Time::hm(h, 5)),
                TripStop::passing(c[1], Time::hm(h, 25)),
                TripStop::passing(c[2], Time::hm(h, 45)),
            ])
            .unwrap();
        }
        let net = Network::new(b.build().unwrap());
        let cnet = ConcurrentNetwork::with_table(net, &TransferSelection::Explicit(a.clone()));
        let before = cnet.snapshot();

        // Delay a component-B train (trains alternate A, B, A, B, …).
        let outcome = cnet.apply_feed(&[delay(1, 30)]);
        assert!(outcome.summary.changed(), "the delay must take effect");
        assert_eq!(outcome.table_rows_refreshed, 0, "no A-row can be affected");

        let after = cnet.snapshot();
        let (t0, t1) = (before.shared_table().unwrap(), after.shared_table().unwrap());
        assert!(Arc::ptr_eq(&t0, &t1), "a zero-row refresh must share, not clone");
        // The one allocation is fresh for both pinned generations.
        assert!(t0.check_fresh(before.network()).is_ok());
        assert!(t1.check_fresh(after.network()).is_ok());

        // A component-A delay rewrites rows — the snapshots then unshare.
        let outcome = cnet.apply_feed(&[delay(0, 30)]);
        assert!(outcome.table_rows_refreshed > 0);
        let third = cnet.snapshot();
        assert!(!Arc::ptr_eq(&t1, &third.shared_table().unwrap()));
        assert!(third.table().unwrap().check_fresh(third.network()).is_ok());
    }

    #[test]
    fn published_table_is_refreshed_to_the_published_state() {
        let cnet = ConcurrentNetwork::with_table(net(), &TransferSelection::Fraction(0.2));
        let outcome = cnet.apply_feed(&[delay(1, 20)]);
        assert!(outcome.summary.changed());
        assert!(outcome.table_rows_refreshed > 0);
        let snap = cnet.snapshot();
        let table = snap.table().expect("table configured");
        assert!(table.check_fresh(snap.network()).is_ok());
        assert_eq!(snap.transfer_mask(), &table.transfer_mask()[..]);
    }
}
