//! Station-to-station profile queries (paper §4).
//!
//! The one-to-all search is specialized to a single target `T` with three
//! pruning rules, each proved correct in the paper:
//!
//! * **Stopping criterion** (Thm 2): once connection `i` settled at `T`,
//!   every queued `(v, j)` with `j ≤ i` is discarded — boarding an earlier
//!   train can no longer improve the profile at `T`.
//! * **Distance-table pruning** (Thm 3), for *global* queries: every best
//!   connection must pass a *via station* `V_j ∈ via(T)`. Settling `(v, i)`
//!   at a transfer station tightens the upper bounds
//!   `µ_{i,j} = min(µ_{i,j}, D(st(v), V_j, arr + T(st(v))) + T(V_j))` and the
//!   search is pruned at `v` if even the transfer-free lower bound
//!   `D(st(v), V_j, arr)` exceeds `µ_{i,j}` for every via station.
//! * **Target pruning** (Thm 4), when `T` itself is a transfer station:
//!   maintain the lower bound `γ_i = min D(st(v), T, arr)`; once every queue
//!   entry of `i` has a transfer station on its path and some settled
//!   transfer station achieves `D(st(v), T, arr + T(st(v))) = γ_i`, the
//!   optimum for `i` is found and the connection is finished.
//!
//! When both endpoints are transfer stations the stored table profile *is*
//! the answer; when the query is *local* (`S ∈ local(T)`) only the stopping
//! criterion applies.
//!
//! Like [`ProfileEngine`](crate::ProfileEngine), the engine is persistent
//! and — since the snapshot-isolation refactor — shareable: every query
//! entry point takes `&self`, per-query [`SearchWorkspace`]s are checked
//! out of an internal pool, parallel work runs on the process-global
//! work-stealing pool ([`rayon::global`]), and [`S2sEngine::batch`]
//! distributes whole queries over that pool for stream throughput. An
//! opt-in [`S2sCache`] memoizes results keyed
//! `(source, target, epoch, generation)`.

use std::sync::Arc;
use std::time::Instant;

use pt_core::{ConnId, NodeId, Profile, StationId, Time, INFINITY};

use crate::cache::{CacheStats, LruCore};
use crate::connection_setting::{reduce_station_profile, PRUNED};
use crate::distance_table::{DistanceTable, StaleTable};
use crate::kernel::{self, KernelMode};
use crate::network::Network;
use crate::partition::PartitionStrategy;
use crate::stats::QueryStats;
use crate::workspace::{SearchWorkspace, WorkspacePool};

/// How a station-to-station query was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Both endpoints are transfer stations: answered from the table.
    TableDirect,
    /// `S ∈ local(T)`: search with stopping criterion only.
    Local,
    /// Global query pruned via the distance table and `via(T)`.
    Global,
    /// `T ∈ S_trans`: target pruning.
    TargetTransfer,
    /// No distance table configured: stopping criterion only.
    Plain,
    /// Endpoints in different shards: stitched over border stations by the
    /// cross-shard gateway (see [`crate::shard::ShardedService`]).
    Gateway,
}

/// Result of a station-to-station profile query.
#[derive(Debug, Clone)]
pub struct S2sResult {
    /// The reduced profile `dist(S, T, ·)`.
    pub profile: Profile,
    /// Operation counters (summed over threads).
    pub stats: QueryStats,
    /// Which §4 machinery answered the query.
    pub kind: QueryKind,
}

/// Key of one [`S2sCache`] entry: `(source, target, epoch, generation)`.
type S2sKey = (StationId, StationId, u64, u64);

/// A concurrently readable LRU over station-to-station results, keyed by
/// `(source, target, network epoch, timetable generation)` — the s2s
/// counterpart of [`crate::ProfileCache`], sharing its interior-mutable
/// core (read-locked `get`, atomic counters, deterministic LRU under a
/// single thread).
///
/// Values are stored as `Arc<Profile>` plus the answering [`QueryKind`]; a
/// hit clones the profile out (the public [`S2sResult::profile`] is a
/// plain [`Profile`]) and reports `cache_hits = 1` with zero search work.
/// Because §4 pruning is answer-preserving, the cached profile is valid
/// for any table configuration queried at the same `(epoch, generation)`;
/// the stored `kind` reflects whichever configuration computed it first.
#[derive(Debug, Clone)]
pub struct S2sCache {
    core: LruCore<S2sKey, (Arc<Profile>, QueryKind)>,
}

impl S2sCache {
    /// An empty cache holding at most `capacity` results.
    pub fn new(capacity: usize) -> S2sCache {
        S2sCache { core: LruCore::new(capacity) }
    }

    /// Shared-lock lookup; see [`crate::ProfileCache::get`].
    pub fn get(
        &self,
        source: StationId,
        target: StationId,
        epoch: u64,
        generation: u64,
    ) -> Option<(Arc<Profile>, QueryKind)> {
        self.core.get((source, target, epoch, generation))
    }

    /// Stores a result; returns `true` iff an eviction happened.
    pub fn insert(
        &self,
        source: StationId,
        target: StationId,
        epoch: u64,
        generation: u64,
        profile: Arc<Profile>,
        kind: QueryKind,
    ) -> bool {
        self.core.insert((source, target, epoch, generation), (profile, kind))
    }

    /// Cumulative counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        self.core.stats()
    }
}

/// Station-to-station query engine. Per-query workspaces come out of an
/// internal pool (parallel work runs on the process-global pool), so every
/// query entry point takes `&self` and one engine may serve many reader
/// threads concurrently; repeated queries through one engine run
/// allocation-free once warm. Queries take the network by reference, so
/// the workspaces also survive [`Network::apply_delay`] /
/// [`Network::apply_feed`] updates between queries. A configured distance
/// table must match the queried network state: after a delay the engine
/// refuses it — typed ([`StaleTable`]) from [`S2sEngine::try_query`] /
/// [`S2sEngine::try_batch`], panicking from the infallible forms — until
/// it is [`refresh`](DistanceTable::refresh)ed or rebuilt. With
/// [`S2sEngine::with_cache`], results are memoized in an [`S2sCache`]
/// keyed `(source, target, epoch, generation)`.
#[derive(Debug, Clone)]
pub struct S2sEngine<'a> {
    threads: usize,
    strategy: PartitionStrategy,
    stopping: bool,
    kernel: KernelMode,
    table: Option<&'a DistanceTable>,
    mask: Vec<bool>,
    /// Idle workspaces, checked out per query.
    pool: WorkspacePool,
    /// Opt-in generation-keyed result cache.
    cache: Option<S2sCache>,
}

impl<'a> Default for S2sEngine<'a> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> S2sEngine<'a> {
    /// An engine with the stopping criterion enabled and no distance table.
    pub fn new() -> Self {
        S2sEngine {
            threads: 1,
            strategy: PartitionStrategy::EqualConnections,
            stopping: true,
            kernel: KernelMode::Auto,
            table: None,
            mask: Vec::new(),
            pool: WorkspacePool::new(),
            cache: None,
        }
    }

    /// Sets the number of worker threads.
    pub fn threads(mut self, p: usize) -> Self {
        assert!(p >= 1);
        self.threads = p;
        self
    }

    /// Sets the `conn(S)` partition strategy.
    pub fn strategy(mut self, s: PartitionStrategy) -> Self {
        self.strategy = s;
        self
    }

    /// Enables/disables the stopping criterion (ablation).
    pub fn stopping_criterion(mut self, on: bool) -> Self {
        self.stopping = on;
        self
    }

    /// Selects the label kernel (see [`KernelMode`]). Only plain/local
    /// searches — no distance-table pruning inside the search — have an
    /// SoA path; via/target-pruned searches always run scalar.
    pub fn kernel(mut self, mode: KernelMode) -> Self {
        self.kernel = mode;
        self
    }

    /// Attaches a precomputed distance table for §4 pruning.
    pub fn with_table(mut self, table: &'a DistanceTable) -> Self {
        self.mask = table.transfer_mask();
        self.table = Some(table);
        self
    }

    /// Enables the generation-keyed LRU result cache, holding at most
    /// `capacity` station-to-station results. Keys include the network's
    /// process-unique epoch and its timetable generation, so a feed
    /// invalidates every stale entry for free.
    pub fn with_cache(mut self, capacity: usize) -> Self {
        self.cache = Some(S2sCache::new(capacity));
        self
    }

    /// Cumulative cache counters; `None` without [`S2sEngine::with_cache`].
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(S2sCache::stats)
    }

    /// Total backing-array growth events over all idle workspaces;
    /// constant across repeated queries once the engine is warm. Read
    /// between queries (in-flight queries hold their workspaces).
    pub fn workspace_grow_events(&self) -> u64 {
        self.pool.grow_events()
    }

    /// Computes the profile `dist(source, target, ·)`.
    ///
    /// Takes `&self`: many reader threads may query one engine
    /// concurrently. Panics when the configured distance table is stale
    /// (see [`S2sEngine::try_query`] for the recoverable form).
    pub fn query(&self, net: &Network, source: StationId, target: StationId) -> S2sResult {
        match self.try_query(net, source, target) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`S2sEngine::query`], but a stale distance table — the network
    /// moved on (delay feed) since the table was built or refreshed — comes
    /// back as a typed [`StaleTable`] instead of a panic, so a feed-driven
    /// server can [`DistanceTable::refresh`] (or rebuild) and retry instead
    /// of crashing. An engine without a table never errors.
    pub fn try_query(
        &self,
        net: &Network,
        source: StationId,
        target: StationId,
    ) -> Result<S2sResult, StaleTable> {
        self.try_query_masked(net, self.table, &self.mask, source, target)
    }

    /// Like [`S2sEngine::try_query`], but with the distance table supplied
    /// **per call** instead of configured at construction — the form the
    /// shard router ([`crate::shard::ShardedService`]) uses, where each
    /// shard owns its table alongside its network and the engine must stay
    /// `'static`. `None` disables §4 pruning for this query; any table
    /// configured via [`S2sEngine::with_table`] is ignored. The transfer
    /// mask is rebuilt per call — callers with a long-lived table should
    /// precompute it once ([`DistanceTable::transfer_mask`]) and use the
    /// masked variant, as the shard router does.
    pub fn try_query_on(
        &self,
        net: &Network,
        table: Option<&DistanceTable>,
        source: StationId,
        target: StationId,
    ) -> Result<S2sResult, StaleTable> {
        let mask = table.map(DistanceTable::transfer_mask).unwrap_or_default();
        self.try_query_masked(net, table, &mask, source, target)
    }

    /// [`S2sEngine::try_query_on`] with a caller-precomputed transfer mask
    /// (must be `table.transfer_mask()` of the same table — invariant
    /// under [`DistanceTable::refresh`], so a shard caches it once). The
    /// common backend of every single-query entry point: freshness check,
    /// cache probe, search, cache fill.
    pub(crate) fn try_query_masked(
        &self,
        net: &Network,
        table: Option<&DistanceTable>,
        mask: &[bool],
        source: StationId,
        target: StationId,
    ) -> Result<S2sResult, StaleTable> {
        if let Some(table) = table {
            table.check_fresh(net)?;
        }
        let (epoch, generation) = (net.epoch(), net.generation());
        if let Some(cache) = &self.cache {
            if let Some((profile, kind)) = cache.get(source, target, epoch, generation) {
                let stats = QueryStats { cache_hits: 1, ..QueryStats::default() };
                return Ok(S2sResult { profile: (*profile).clone(), stats, kind });
            }
        }
        let cfg = QueryConfig {
            net,
            table,
            mask,
            stopping: self.stopping,
            strategy: self.strategy,
            kernel: self.kernel,
        };
        let mut workspaces = self.pool.checkout(self.threads);
        let mut r = query_with(&cfg, self.threads, &mut workspaces, source, target);
        self.pool.checkin(workspaces);
        if let Some(cache) = &self.cache {
            r.stats.cache_misses = 1;
            let shared = Arc::new(r.profile.clone());
            if cache.insert(source, target, epoch, generation, shared, r.kind) {
                r.stats.cache_evictions = 1;
            }
        }
        Ok(r)
    }

    /// Batch station-to-station queries.
    ///
    /// With `p` threads and at least `p` pairs this parallelizes *across*
    /// queries: each worker answers whole queries from a shared work queue
    /// on its own workspace, with the full §4 pruning per query. With fewer
    /// pairs it answers them one at a time using within-query parallelism.
    ///
    /// Panics when the configured distance table is stale (see
    /// [`S2sEngine::try_batch`] for the recoverable form).
    pub fn batch(&self, net: &Network, pairs: &[(StationId, StationId)]) -> Vec<S2sResult> {
        match self.try_batch(net, pairs) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`S2sEngine::batch`], with the stale-table case as a typed
    /// [`StaleTable`] — checked once up front for the whole batch.
    pub fn try_batch(
        &self,
        net: &Network,
        pairs: &[(StationId, StationId)],
    ) -> Result<Vec<S2sResult>, StaleTable> {
        self.try_batch_masked(net, self.table, &self.mask, pairs)
    }

    /// Like [`S2sEngine::try_batch`], with the distance table supplied per
    /// call (see [`S2sEngine::try_query_on`]) — checked once up front for
    /// the whole batch.
    pub fn try_batch_on(
        &self,
        net: &Network,
        table: Option<&DistanceTable>,
        pairs: &[(StationId, StationId)],
    ) -> Result<Vec<S2sResult>, StaleTable> {
        let mask = table.map(DistanceTable::transfer_mask).unwrap_or_default();
        self.try_batch_masked(net, table, &mask, pairs)
    }

    /// [`S2sEngine::try_batch_on`] with a caller-precomputed transfer mask
    /// (see [`S2sEngine::try_query_masked`]). Cached pairs are answered
    /// from the result cache; only the misses go through the search.
    pub(crate) fn try_batch_masked(
        &self,
        net: &Network,
        table: Option<&DistanceTable>,
        mask: &[bool],
        pairs: &[(StationId, StationId)],
    ) -> Result<Vec<S2sResult>, StaleTable> {
        if let Some(table) = table {
            table.check_fresh(net)?;
        }
        let (epoch, generation) = (net.epoch(), net.generation());
        let mut out: Vec<Option<S2sResult>> = Vec::with_capacity(pairs.len());
        let mut misses: Vec<(StationId, StationId)> = Vec::new();
        if let Some(cache) = &self.cache {
            for &(s, t) in pairs {
                match cache.get(s, t, epoch, generation) {
                    Some((profile, kind)) => {
                        let stats = QueryStats { cache_hits: 1, ..QueryStats::default() };
                        out.push(Some(S2sResult { profile: (*profile).clone(), stats, kind }));
                    }
                    None => {
                        out.push(None);
                        misses.push((s, t));
                    }
                }
            }
        } else {
            out.resize_with(pairs.len(), || None);
            misses.extend_from_slice(pairs);
        }
        if !misses.is_empty() {
            let cfg = QueryConfig {
                net,
                table,
                mask,
                stopping: self.stopping,
                strategy: self.strategy,
                kernel: self.kernel,
            };
            let mut workspaces = self.pool.checkout(self.threads);
            let computed = batch_with(&cfg, self.threads, &mut workspaces, &misses);
            self.pool.checkin(workspaces);
            let mut computed = misses.iter().zip(computed);
            for slot in out.iter_mut() {
                if slot.is_none() {
                    let (&(s, t), mut r) = computed.next().expect("one result per miss");
                    if let Some(cache) = &self.cache {
                        r.stats.cache_misses = 1;
                        let shared = Arc::new(r.profile.clone());
                        if cache.insert(s, t, epoch, generation, shared, r.kind) {
                            r.stats.cache_evictions = 1;
                        }
                    }
                    *slot = Some(r);
                }
            }
        }
        Ok(out.into_iter().map(|r| r.expect("every pair answered")).collect())
    }
}

/// The batch dispatch heuristic shared by every batch entry point:
/// across-query parallelism (one claim loop per worker, each query
/// answered sequentially on one workspace) when the batch can fill the
/// workers, within-query parallelism one pair at a time otherwise.
fn batch_with(
    cfg: &QueryConfig<'_>,
    threads: usize,
    workspaces: &mut [SearchWorkspace],
    pairs: &[(StationId, StationId)],
) -> Vec<S2sResult> {
    if threads > 1 && pairs.len() >= threads {
        crate::parallel::run_batch(&mut workspaces[..threads], pairs.len(), |i, ws| {
            let (s, t) = pairs[i];
            query_with(cfg, 1, std::slice::from_mut(ws), s, t)
        })
    } else {
        pairs.iter().map(|&(s, t)| query_with(cfg, threads, workspaces, s, t)).collect()
    }
}

/// The engine configuration a query needs, separated from the mutable
/// worker state so batch workers can share it.
struct QueryConfig<'a> {
    net: &'a Network,
    table: Option<&'a DistanceTable>,
    mask: &'a [bool],
    stopping: bool,
    strategy: PartitionStrategy,
    kernel: KernelMode,
}

/// Answers one query on the given workers; the common backend of
/// [`S2sEngine::query`] and [`S2sEngine::batch`].
fn query_with(
    cfg: &QueryConfig<'_>,
    threads: usize,
    workspaces: &mut [SearchWorkspace],
    source: StationId,
    target: StationId,
) -> S2sResult {
    let tt = cfg.net.timetable();
    let period = tt.period();

    // Special case: both endpoints in the table (§4, "Special Cases").
    if let Some(table) = cfg.table {
        // A table snapshot from another network state would prune wrongly.
        table.assert_fresh(cfg.net);
        if table.is_transfer(source) && table.is_transfer(target) {
            return S2sResult {
                profile: table.profile(source, target).clone(),
                stats: QueryStats::default(),
                kind: QueryKind::TableDirect,
            };
        }
    }

    // Resolve the pruning mode.
    let (kind, via): (QueryKind, Vec<StationId>) = match cfg.table {
        None => (QueryKind::Plain, Vec::new()),
        Some(table) => {
            if table.is_transfer(target) {
                (QueryKind::TargetTransfer, Vec::new())
            } else {
                let vl = cfg.net.station_graph().via_and_local(target, cfg.mask);
                if vl.is_local_query(source) || source == target {
                    (QueryKind::Local, Vec::new())
                } else if vl.via.is_empty() {
                    // No via station separates T: a global source cannot
                    // reach it at all.
                    return S2sResult {
                        profile: Profile::EMPTY,
                        stats: QueryStats::default(),
                        kind: QueryKind::Global,
                    };
                } else {
                    (QueryKind::Global, vl.via)
                }
            }
        }
    };
    let mode = match kind {
        QueryKind::Global => Mode::Via { table: cfg.table.expect("table present"), via: &via },
        QueryKind::TargetTransfer => Mode::Target { table: cfg.table.expect("table present") },
        _ => Mode::Plain,
    };

    let conn_range = tt.conn_ids(source);
    let conns = tt.conn(source);
    let ranges = cfg.strategy.partition(conns, threads, period);
    assert!(workspaces.len() >= ranges.len(), "one workspace per partition class required");

    let mut per_stats = vec![QueryStats::default(); ranges.len()];
    if threads == 1 {
        per_stats[0] = s2s_range_dispatch(
            cfg.net,
            conn_range.start,
            conn_range.end,
            target,
            cfg.stopping,
            cfg.mask,
            mode,
            cfg.kernel,
            &mut workspaces[0],
        );
    } else {
        rayon::global().scope(|scope| {
            for ((ws, st), r) in
                workspaces[..ranges.len()].iter_mut().zip(per_stats.iter_mut()).zip(&ranges)
            {
                let (lo, hi) = (conn_range.start + r.start, conn_range.start + r.end);
                let (net, mask, stopping, km) = (cfg.net, cfg.mask, cfg.stopping, cfg.kernel);
                scope.spawn(move || {
                    *st = s2s_range_dispatch(net, lo, hi, target, stopping, mask, mode, km, ws);
                });
            }
        });
    }

    let mut stats = QueryStats::sum(per_stats);
    let merge_start = Instant::now();
    let used = &workspaces[..ranges.len()];
    let points = used.iter().zip(&ranges).flat_map(|(ws, r)| {
        ws.arr_t.iter().enumerate().map(move |(i, &arr)| (conns[r.start as usize + i].dep, arr))
    });
    let profile = reduce_station_profile(points, period);
    stats.merge_ns = merge_start.elapsed().as_nanos() as u64;
    S2sResult { profile, stats, kind }
}

/// Pruning mode of one worker.
#[derive(Clone, Copy)]
enum Mode<'t> {
    Plain,
    Via { table: &'t DistanceTable, via: &'t [StationId] },
    Target { table: &'t DistanceTable },
}

/// Routes one partition class to the scalar search or the SoA kernel.
/// Only plain-mode searches (stopping criterion + self-pruning, no table
/// probes inside the loop) have a kernel path; via/target pruning is
/// inherently branchy and always runs scalar.
#[allow(clippy::too_many_arguments)]
fn s2s_range_dispatch(
    net: &Network,
    lo: u32,
    hi: u32,
    target: StationId,
    stopping: bool,
    transfer_mask: &[bool],
    mode: Mode<'_>,
    kernel_mode: KernelMode,
    ws: &mut SearchWorkspace,
) -> QueryStats {
    let slots = (hi - lo) as usize * net.graph().num_nodes();
    if matches!(mode, Mode::Plain) && kernel_mode.use_soa(slots, kernel::ring_size(net)) {
        kernel::s2s_range_soa(net, lo, hi, target, stopping, ws)
    } else {
        s2s_range(net, lo, hi, target, stopping, transfer_mask, mode, ws)
    }
}

/// One worker: SPCS over the connection range `lo..hi` specialized to
/// `target`. On return, `ws.arr_t[i]` holds the best arrival at `target`
/// per local connection.
#[allow(clippy::too_many_arguments)]
fn s2s_range(
    net: &Network,
    lo: u32,
    hi: u32,
    target: StationId,
    stopping: bool,
    transfer_mask: &[bool],
    mode: Mode<'_>,
    ws: &mut SearchWorkspace,
) -> QueryStats {
    let g = net.graph();
    let tt = net.timetable();
    let nv = g.num_nodes();
    let k = (hi - lo) as usize;
    let target_node = g.station_node(target);
    let mut stats = QueryStats::default();

    // Via-pruning state: µ[i * |via| + j].
    let (is_via, n_via) = match &mode {
        Mode::Via { via, .. } => (true, via.len()),
        _ => (false, 0),
    };
    // Target-pruning state.
    let is_target_mode = matches!(mode, Mode::Target { .. });

    ws.begin(k * nv, nv, is_target_mode);
    ws.fresh_arr_t(k);
    if is_via {
        ws.fresh_mu(k * n_via);
    }
    if is_target_mode {
        ws.fresh_target_scratch(k);
    }
    // Stopping criterion state: highest local connection settled at T.
    let mut tm: i64 = -1;

    // `i` also derives the heap slot and (in target mode) indexes `noanc`,
    // so an iterator over one of them would obscure the pairing.
    #[allow(clippy::needless_range_loop)]
    for i in 0..k {
        let c = ConnId(lo + i as u32);
        let r = g.conn_start_node(c);
        let dep = tt.connection(c).dep;
        let slot = i * nv + r.idx();
        ws.heap.push_or_decrease(slot, dep.secs() as u64);
        stats.pushes += 1;
        if is_target_mode {
            // The source is never a transfer station in target mode
            // (otherwise the query would have been answered from the table).
            ws.noanc[i] += 1;
        }
    }

    while let Some((slot, key)) = ws.heap.pop() {
        stats.settled += 1;
        let i = slot / nv;
        let v = slot % nv;
        let t = Time(key as u32);

        if is_target_mode && !ws.anc(slot) {
            ws.noanc[i] -= 1;
        }

        // Stopping criterion (Thm 2).
        if stopping && (i as i64) <= tm {
            stats.stop_pruned += 1;
            ws.set_arr(slot, PRUNED);
            continue;
        }
        // Connection already finished by target pruning.
        if is_target_mode && ws.done[i] {
            stats.table_pruned += 1;
            ws.set_arr(slot, PRUNED);
            continue;
        }
        // Self-pruning (§3.1).
        let mc = ws.maxconn(v);
        if mc != u32::MAX && i as u32 <= mc {
            stats.self_pruned += 1;
            ws.set_arr(slot, PRUNED);
            continue;
        }
        ws.set_maxconn(v, i as u32);
        ws.set_arr(slot, t);

        // Settling the target station finishes connection i.
        if NodeId::from_idx(v) == target_node {
            ws.arr_t[i] = ws.arr_t[i].min(t);
            tm = tm.max(i as i64);
            if is_target_mode {
                ws.done[i] = true;
            }
            continue;
        }

        let station_v = g.station_of(NodeId::from_idx(v));
        let at_transfer = transfer_mask.get(station_v.idx()).copied().unwrap_or(false);

        match &mode {
            Mode::Plain => {}
            Mode::Via { table, via } => {
                if at_transfer {
                    // Tighten µ bounds, then try to prune (Thm 3).
                    let board = t + g.transfer_time(station_v);
                    let mut prunable = true;
                    for (j, &vj) in via.iter().enumerate() {
                        let reach = table.eval(station_v, vj, board);
                        if !reach.is_infinite() {
                            let cand = reach + g.transfer_time(vj);
                            let m = &mut ws.mu[i * n_via + j];
                            if cand < *m {
                                *m = cand;
                            }
                        }
                        if prunable {
                            let lower = table.eval(station_v, vj, t);
                            if lower <= ws.mu[i * n_via + j] {
                                prunable = false;
                            }
                        }
                    }
                    if prunable {
                        stats.table_pruned += 1;
                        continue; // v is provably useless for every via station
                    }
                }
            }
            Mode::Target { table } => {
                if at_transfer {
                    // Lower bound γ_i (no transfer at st(v)).
                    let lower = table.eval(station_v, target, t);
                    if lower < ws.gamma[i] {
                        ws.gamma[i] = lower;
                    }
                    // Upper bound through st(v) with a transfer (Thm 4).
                    let cand = table.eval(station_v, target, t + g.transfer_time(station_v));
                    if ws.noanc[i] == 0 && !cand.is_infinite() && cand == ws.gamma[i] {
                        ws.arr_t[i] = ws.arr_t[i].min(cand);
                        ws.done[i] = true;
                        stats.table_pruned += 1;
                        continue;
                    }
                }
            }
        }

        // Relax outgoing edges.
        let child_anc = is_target_mode && (ws.anc(slot) || at_transfer);
        let base = i * nv;
        for e in g.edges(NodeId::from_idx(v)) {
            let ta = g.eval_edge(e, t);
            if ta.is_infinite() {
                continue;
            }
            let wslot = base + e.head.idx();
            if ws.arr(wslot) != INFINITY {
                continue;
            }
            stats.relaxed += 1;
            let new_key = ta.secs() as u64;
            if ws.heap.contains(wslot) {
                if ws.heap.push_or_decrease(wslot, new_key) {
                    stats.decreases += 1;
                    if is_target_mode && ws.anc(wslot) != child_anc {
                        // The better path replaces the flag.
                        if child_anc {
                            ws.noanc[i] -= 1;
                        } else {
                            ws.noanc[i] += 1;
                        }
                        ws.set_anc(wslot, child_anc);
                    }
                }
            } else {
                ws.heap.push_or_decrease(wslot, new_key);
                stats.pushes += 1;
                if is_target_mode {
                    ws.set_anc(wslot, child_anc);
                    if !child_anc {
                        ws.noanc[i] += 1;
                    }
                }
            }
        }
    }

    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connection_setting::ProfileEngine;
    use crate::transfer_selection::TransferSelection;
    use pt_timetable::synthetic::city::{generate_city, CityConfig};
    use pt_timetable::synthetic::rail::{generate_rail, RailConfig};

    fn city() -> Network {
        Network::new(generate_city(&CityConfig::sized(49, 7, 17)))
    }

    fn rail() -> Network {
        Network::new(generate_rail(&RailConfig::national(8, 4)))
    }

    /// Every (S, T) pair in `pairs`: the s2s profile must equal the
    /// corresponding one-to-all profile.
    fn assert_matches_one_to_all(net: &Network, engine: &S2sEngine<'_>, pairs: &[(u32, u32)]) {
        for &(s, t) in pairs {
            let (s, t) = (StationId(s), StationId(t));
            let want = ProfileEngine::new().one_to_all(net, s);
            let got = engine.query(net, s, t);
            assert_eq!(&got.profile, want.profile(t), "{s}→{t} ({:?})", got.kind);
        }
    }

    #[test]
    fn stopping_criterion_preserves_profiles() {
        let net = city();
        let engine = S2sEngine::new();
        assert_matches_one_to_all(&net, &engine, &[(0, 48), (5, 7), (13, 2), (20, 20)]);
    }

    #[test]
    fn stopping_criterion_reduces_settled() {
        let net = city();
        let s = StationId(3);
        let t = StationId(40);
        let with = S2sEngine::new().query(&net, s, t);
        let without = S2sEngine::new().stopping_criterion(false).query(&net, s, t);
        assert_eq!(with.profile, without.profile);
        assert!(
            with.stats.settled <= without.stats.settled,
            "stopping made things worse: {} vs {}",
            with.stats.settled,
            without.stats.settled
        );
        assert!(with.stats.stop_pruned > 0);
    }

    #[test]
    fn table_pruned_queries_preserve_profiles_city() {
        let net = city();
        let table = DistanceTable::build(&net, &TransferSelection::Fraction(0.15));
        let engine = S2sEngine::new().with_table(&table);
        let pairs: Vec<(u32, u32)> =
            vec![(0, 48), (1, 37), (9, 22), (30, 4), (11, 44), (48, 0), (17, 8)];
        assert_matches_one_to_all(&net, &engine, &pairs);
    }

    #[test]
    fn table_pruned_queries_preserve_profiles_rail() {
        let net = rail();
        let table = DistanceTable::build(&net, &TransferSelection::Fraction(0.2));
        let engine = S2sEngine::new().with_table(&table);
        let n = net.num_stations() as u32;
        let pairs: Vec<(u32, u32)> =
            (0..12).map(|i| ((i * 7) % n, (i * 13 + 3) % n)).filter(|(a, b)| a != b).collect();
        assert_matches_one_to_all(&net, &engine, &pairs);
    }

    #[test]
    fn all_query_kinds_appear() {
        let net = city();
        let table = DistanceTable::build(&net, &TransferSelection::Fraction(0.15));
        let engine = S2sEngine::new().with_table(&table);
        let mut kinds = std::collections::BTreeSet::new();
        let n = net.num_stations() as u32;
        for s in 0..n {
            for t in 0..n {
                if s == t {
                    continue;
                }
                let r = engine.query(&net, StationId(s), StationId(t));
                kinds.insert(format!("{:?}", r.kind));
                if kinds.len() == 4 {
                    return;
                }
            }
        }
        panic!("only saw kinds {kinds:?}");
    }

    #[test]
    fn parallel_s2s_matches_sequential() {
        let net = city();
        let table = DistanceTable::build(&net, &TransferSelection::Fraction(0.15));
        for &(s, t) in &[(2u32, 44u32), (8, 31), (25, 0)] {
            let (s, t) = (StationId(s), StationId(t));
            let seq = S2sEngine::new().with_table(&table).query(&net, s, t);
            for p in [2, 4] {
                let par = S2sEngine::new().with_table(&table).threads(p).query(&net, s, t);
                assert_eq!(seq.profile, par.profile, "{s}→{t} p={p}");
            }
        }
    }

    #[test]
    fn warm_s2s_engine_reuses_workspaces() {
        let net = city();
        let table = DistanceTable::build(&net, &TransferSelection::Fraction(0.15));
        let engine = S2sEngine::new().with_table(&table);
        // Warm up with one query of every search kind (they size different
        // scratch arrays), then repeat: no further growth allowed.
        let warmup: &[(u32, u32)] = &[(0, 48), (1, 37), (9, 22), (30, 4), (11, 44), (17, 8)];
        for &(s, t) in warmup {
            engine.query(&net, StationId(s), StationId(t));
        }
        let warm = engine.workspace_grow_events();
        for &(s, t) in warmup {
            engine.query(&net, StationId(s), StationId(t));
        }
        assert_eq!(engine.workspace_grow_events(), warm, "hot path must not allocate");
    }

    #[test]
    fn batch_matches_individual_queries() {
        let net = city();
        let table = DistanceTable::build(&net, &TransferSelection::Fraction(0.15));
        let n = net.num_stations() as u32;
        let pairs: Vec<(StationId, StationId)> = (0..10)
            .map(|i| (StationId(i * 5 % n), StationId((i * 11 + 2) % n)))
            .filter(|(a, b)| a != b)
            .collect();
        let individual: Vec<S2sResult> = pairs
            .iter()
            .map(|&(s, t)| S2sEngine::new().with_table(&table).query(&net, s, t))
            .collect();
        // Across-query parallelism (pairs >= threads)...
        let batch_engine = S2sEngine::new().with_table(&table).threads(3);
        let batch = batch_engine.batch(&net, &pairs);
        assert_eq!(batch.len(), individual.len());
        for ((b, i), &(s, t)) in batch.iter().zip(&individual).zip(&pairs) {
            assert_eq!(b.profile, i.profile, "{s}→{t}");
            assert_eq!(b.kind, i.kind, "{s}→{t}");
        }
        // ...and the within-query fallback (pairs < threads).
        let few = batch_engine.threads(16).batch(&net, &pairs[..2]);
        assert_eq!(few[0].profile, individual[0].profile);
        assert_eq!(few[1].profile, individual[1].profile);
    }

    #[test]
    #[should_panic(expected = "stale distance table")]
    fn stale_table_after_delay_is_rejected() {
        use pt_core::{Dur, TrainId};
        use pt_timetable::Recovery;
        let mut net = city();
        let table = DistanceTable::build(&net, &TransferSelection::Fraction(0.15));
        net.apply_delay(TrainId(0), 0, Dur::minutes(20), Recovery::None);
        // The table snapshot predates the delay: pruning with it would be
        // silently wrong, so the engine must refuse loudly.
        let _ = S2sEngine::new().with_table(&table).query(&net, StationId(3), StationId(40));
    }

    #[test]
    fn try_query_returns_typed_stale_error_and_recovers_after_refresh() {
        use pt_core::{Dur, TrainId};
        use pt_timetable::{DelayEvent, Recovery};
        let mut net = city();
        let mut table = DistanceTable::build(&net, &TransferSelection::Fraction(0.15));
        let (s, t) = (StationId(3), StationId(40));
        {
            // Fresh table: Ok path, identical to the infallible query.
            let engine = S2sEngine::new().with_table(&table);
            let ok = engine.try_query(&net, s, t).expect("fresh table must answer");
            assert_eq!(ok.profile, S2sEngine::new().with_table(&table).query(&net, s, t).profile);
        }
        let summary = net.apply_feed(&[DelayEvent::Delay {
            train: TrainId(0),
            from_hop: 0,
            delay: Dur::minutes(20),
            recovery: Recovery::None,
        }]);
        assert!(summary.changed());
        {
            // Stale table: the typed error, carrying both stamps, and the
            // batch form errors identically.
            let engine = S2sEngine::new().with_table(&table);
            let err = engine.try_query(&net, s, t).expect_err("stale table must error");
            assert!(err.refreshable(), "same network instance is refreshable");
            assert_eq!(err.queried, (net.epoch(), net.generation()));
            assert_eq!(engine.try_batch(&net, &[(s, t)]).unwrap_err(), err);
        }
        // The server-side recovery: refresh, then retry succeeds and agrees
        // with an uncached search on the fed network.
        table.refresh(&net).expect("same epoch refreshes");
        let got = S2sEngine::new()
            .with_table(&table)
            .try_query(&net, s, t)
            .expect("refreshed table must answer");
        let want = ProfileEngine::new().one_to_all(&net, s);
        assert_eq!(&got.profile, want.profile(t));
    }

    #[test]
    fn per_call_table_matches_the_configured_table() {
        use pt_core::{Dur, TrainId};
        use pt_timetable::Recovery;
        let mut net = city();
        let table = DistanceTable::build(&net, &TransferSelection::Fraction(0.15));
        // One 'static engine (no configured table), the router's shape.
        let engine: S2sEngine<'static> = S2sEngine::new();
        let pairs: Vec<(StationId, StationId)> = [(0u32, 48u32), (1, 37), (9, 22), (30, 4)]
            .map(|(s, t)| (StationId(s), StationId(t)))
            .to_vec();
        for &(s, t) in &pairs {
            let per_call = engine.try_query_on(&net, Some(&table), s, t).unwrap();
            let configured = S2sEngine::new().with_table(&table).query(&net, s, t);
            assert_eq!(per_call.profile, configured.profile, "{s}→{t}");
            assert_eq!(per_call.kind, configured.kind, "{s}→{t}");
            // And with no table: plain stopping-criterion search.
            let plain = engine.try_query_on(&net, None, s, t).unwrap();
            assert_eq!(plain.profile, per_call.profile, "{s}→{t}");
        }
        let batch = engine.try_batch_on(&net, Some(&table), &pairs).unwrap();
        for ((b, &(s, t)), want) in batch
            .iter()
            .zip(&pairs)
            .zip(pairs.iter().map(|&(s, t)| S2sEngine::new().with_table(&table).query(&net, s, t)))
        {
            assert_eq!(b.profile, want.profile, "{s}→{t}");
        }
        // A stale table errors identically to the configured path.
        net.apply_delay(TrainId(0), 0, Dur::minutes(20), Recovery::None);
        let (s, t) = pairs[0];
        let err = engine.try_query_on(&net, Some(&table), s, t).unwrap_err();
        assert!(err.refreshable());
        assert_eq!(engine.try_batch_on(&net, Some(&table), &pairs).unwrap_err(), err);
        // Without a table the engine keeps answering on the fed network.
        assert!(engine.try_query_on(&net, None, s, t).is_ok());
    }

    #[test]
    fn table_direct_uses_no_search() {
        let net = city();
        let table = DistanceTable::build(&net, &TransferSelection::Fraction(0.2));
        let a = table.stations()[0];
        let b = table.stations()[1];
        let r = S2sEngine::new().with_table(&table).query(&net, a, b);
        assert_eq!(r.kind, QueryKind::TableDirect);
        assert_eq!(r.stats.settled, 0);
        let want = ProfileEngine::new().one_to_all(&net, a);
        assert_eq!(&r.profile, want.profile(b));
    }

    #[test]
    fn result_cache_hits_return_the_computed_profile() {
        let net = city();
        let table = DistanceTable::build(&net, &TransferSelection::Fraction(0.15));
        let engine = S2sEngine::new().with_table(&table).with_cache(32);
        let (s, t) = (StationId(3), StationId(41));
        let first = engine.query(&net, s, t);
        assert_eq!(first.stats.cache_hits, 0);
        assert_eq!(first.stats.cache_misses, 1);
        let second = engine.query(&net, s, t);
        assert_eq!(second.profile, first.profile);
        assert_eq!(second.kind, first.kind);
        assert_eq!(second.stats.cache_hits, 1);
        assert_eq!(second.stats.settled, 0, "hit does no search work");
        let cs = engine.cache_stats().unwrap();
        assert_eq!((cs.hits, cs.misses, cs.entries), (1, 1, 1));
    }

    #[test]
    fn result_cache_is_invalidated_by_generation_bumps() {
        use pt_core::{Dur, TrainId};
        use pt_timetable::Recovery;
        let mut net = city();
        let engine: S2sEngine<'static> = S2sEngine::new().with_cache(32);
        let (s, t) = (StationId(0), StationId(48));
        let before = engine.try_query_on(&net, None, s, t).unwrap();
        net.apply_delay(TrainId(0), 0, Dur::minutes(25), Recovery::None);
        let after = engine.try_query_on(&net, None, s, t).unwrap();
        assert_eq!(after.stats.cache_misses, 1, "new generation misses");
        let fresh = S2sEngine::new().query(&net, s, t);
        assert_eq!(after.profile, fresh.profile);
        // Both generations stay resident and hit independently.
        assert_eq!(engine.cache_stats().unwrap().entries, 2);
        let _ = before;
    }

    #[test]
    fn batch_mixes_cache_hits_and_misses() {
        let net = city();
        let engine: S2sEngine<'static> = S2sEngine::new().with_cache(32).threads(2);
        let warm = [(StationId(0), StationId(48)), (StationId(5), StationId(7))];
        for &(s, t) in &warm {
            engine.try_query_on(&net, None, s, t).unwrap();
        }
        let pairs =
            [warm[0], (StationId(13), StationId(2)), warm[1], (StationId(20), StationId(20))];
        let got = engine.try_batch_on(&net, None, &pairs).unwrap();
        assert_eq!(got[0].stats.cache_hits, 1);
        assert_eq!(got[2].stats.cache_hits, 1);
        assert_eq!(got[1].stats.cache_misses, 1);
        assert_eq!(got[3].stats.cache_misses, 1);
        for (r, &(s, t)) in got.iter().zip(&pairs) {
            let want = S2sEngine::new().query(&net, s, t);
            assert_eq!(r.profile, want.profile, "{s:?}→{t:?}");
        }
    }

    #[test]
    fn unreachable_target_gives_empty_profile() {
        use pt_core::{Dur, Period, Time};
        use pt_timetable::TimetableBuilder;
        let mut b = TimetableBuilder::new(Period::DAY);
        let a = b.add_named_station("A", Dur::ZERO);
        let c = b.add_named_station("B", Dur::ZERO);
        let d = b.add_named_station("island", Dur::ZERO);
        b.add_simple_trip(&[a, c], Time::hm(8, 0), &[Dur::minutes(5)], Dur::ZERO).unwrap();
        b.add_simple_trip(&[d, a], Time::hm(8, 0), &[Dur::minutes(5)], Dur::ZERO).unwrap();
        let net = Network::new(b.build().unwrap());
        let r = S2sEngine::new().query(&net, a, d);
        assert!(r.profile.is_empty());
    }
}
