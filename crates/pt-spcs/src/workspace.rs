//! Persistent, epoch-stamped per-worker search state.
//!
//! The seed implementation re-allocated an `O(k·|V|)` label matrix, a
//! `maxconn` array and a fresh heap on **every** query — fine for
//! regenerating the paper's tables once, fatal for a long-lived engine
//! answering query streams. A [`SearchWorkspace`] owns all of that state for
//! the lifetime of an engine worker and is *logically* cleared in
//! `O(touched)` between queries:
//!
//! * the big per-`(connection, node)` and per-node arrays are stamped with a
//!   **generation counter** (`epoch`); a slot whose stamp differs from the
//!   current epoch reads as "never touched this query", so starting a new
//!   query is a single counter increment, not a `O(k·|V|)` memset,
//! * the indexed heap is drained by the search itself and
//!   [`pt_heap::IndexedHeap::reset`] keeps its allocations,
//! * the small per-connection output/scratch vectors (`O(k)` and
//!   `O(k·|via|)`) are `clear()`-ed, preserving capacity.
//!
//! After warm-up (the first query of the largest size class) a workspace
//! performs **zero** full-size allocations per query; [`grow_events`]
//! counts backing-array growth so tests and benches can assert exactly
//! that.
//!
//! [`grow_events`]: SearchWorkspace::grow_events

use std::sync::Mutex;

use pt_core::{Time, INFINITY};
use pt_heap::BinaryHeap;

/// Reusable state for one search worker (sequential SPCS, one partition
/// class of parallel SPCS, or one station-to-station search).
///
/// Obtain one per worker, call `begin` at the start of a query, then use
/// the accessors; never index the backing arrays directly. Engines manage
/// their workspaces internally — the type is public for inspection
/// ([`SearchWorkspace::grow_events`]) and for custom drivers.
#[derive(Debug, Clone)]
pub struct SearchWorkspace {
    /// Current generation; a stamp equal to this marks a slot as live.
    epoch: u32,
    /// Per-`(local connection, node)` slot stamps.
    slot_epoch: Vec<u32>,
    /// `arr(v, i)` labels; valid iff the slot stamp is current.
    arr: Vec<Time>,
    /// Target-pruning path flags ("passed a transfer station"); stamped
    /// together with `arr` (same slot space), sized only in target mode.
    anc: Vec<bool>,
    /// Per-node stamps for `maxconn`.
    node_epoch: Vec<u32>,
    /// `maxconn(v)`: highest connection index settled at `v`.
    maxconn: Vec<u32>,
    /// The priority queue over `(connection, node)` slots.
    pub(crate) heap: BinaryHeap,
    /// One-to-all output: `station_arr[i * ns + s]`, filled by `run_range`.
    pub(crate) station_arr: Vec<Time>,
    /// Station-to-station output: best arrival at the target per local
    /// connection.
    pub(crate) arr_t: Vec<Time>,
    /// Via-pruning upper bounds `µ[i * |via| + j]` (§4, Thm 3).
    pub(crate) mu: Vec<Time>,
    /// Target-pruning lower bounds `γ_i` (§4, Thm 4).
    pub(crate) gamma: Vec<Time>,
    /// Connections finished by target pruning.
    pub(crate) done: Vec<bool>,
    /// Queue entries per connection whose path lacks a transfer ancestor.
    pub(crate) noanc: Vec<u32>,
    /// SoA kernel: tentative key per slot, stamped with `slot_epoch`.
    tent: Vec<u32>,
    /// SoA kernel: bucket ring of slot queues, indexed `key & (ring − 1)`.
    /// Invariant between queries: every bucket is drained empty.
    pub(crate) buckets: Vec<Vec<u32>>,
    /// SoA kernel: bucket-ring occupancy bitmap (one bit per bucket).
    /// Invariant between queries: all zero.
    pub(crate) occ: Vec<u64>,
    /// SoA kernel: slots settled by the current bucket phase.
    pub(crate) frontier: Vec<u32>,
    /// SoA kernel: candidate lanes `(slot, key)` from the relax sweep.
    pub(crate) lane_slots: Vec<u32>,
    pub(crate) lane_keys: Vec<u32>,
    /// Number of backing-array growth events since construction.
    grow_events: u64,
}

impl Default for SearchWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl SearchWorkspace {
    /// An empty workspace; arrays grow on first use.
    pub fn new() -> SearchWorkspace {
        SearchWorkspace {
            epoch: 0,
            slot_epoch: Vec::new(),
            arr: Vec::new(),
            anc: Vec::new(),
            node_epoch: Vec::new(),
            maxconn: Vec::new(),
            heap: BinaryHeap::new(0),
            station_arr: Vec::new(),
            arr_t: Vec::new(),
            mu: Vec::new(),
            gamma: Vec::new(),
            done: Vec::new(),
            noanc: Vec::new(),
            tent: Vec::new(),
            buckets: Vec::new(),
            occ: Vec::new(),
            frontier: Vec::new(),
            lane_slots: Vec::new(),
            lane_keys: Vec::new(),
            grow_events: 0,
        }
    }

    /// Starts a new query over `slots = k·|V|` label slots and `nodes`
    /// graph nodes. `with_anc` additionally sizes the target-pruning path
    /// flags (station-to-station target mode only). O(1) when warm.
    pub(crate) fn begin(&mut self, slots: usize, nodes: usize, with_anc: bool) {
        if slots > self.slot_epoch.len() {
            self.grow_events += 1;
            self.slot_epoch.resize(slots, 0);
            self.arr.resize(slots, INFINITY);
        }
        if with_anc && slots > self.anc.len() {
            self.grow_events += 1;
            self.anc.resize(slots, false);
        }
        if nodes > self.node_epoch.len() {
            self.grow_events += 1;
            self.node_epoch.resize(nodes, 0);
            self.maxconn.resize(nodes, u32::MAX);
        }
        if self.heap.reset(slots) {
            self.grow_events += 1;
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Generation counter wrapped (once per 2³² queries): hard-reset
            // the stamps. Epoch 0 itself is never used as a live generation,
            // so a zero stamp can never alias a future epoch.
            self.slot_epoch.fill(0);
            self.node_epoch.fill(0);
            self.epoch = 1;
        }
    }

    /// Number of times any backing array had to grow. Constant across
    /// queries once the workspace is warm — asserted by tests and reported
    /// by the `throughput` bench.
    pub fn grow_events(&self) -> u64 {
        self.grow_events
    }

    /// `arr(slot)`, [`INFINITY`] if untouched this query.
    #[inline]
    pub(crate) fn arr(&self, slot: usize) -> Time {
        if self.slot_epoch[slot] == self.epoch {
            self.arr[slot]
        } else {
            INFINITY
        }
    }

    /// Stamps `slot` as touched, initializing its labels to defaults if it
    /// was stale.
    #[inline]
    fn stamp_slot(&mut self, slot: usize) {
        if self.slot_epoch[slot] != self.epoch {
            self.slot_epoch[slot] = self.epoch;
            self.arr[slot] = INFINITY;
            // `anc` is only sized for target-mode queries; a plain query may
            // use a larger slot space than the last target-mode one did.
            if slot < self.anc.len() {
                self.anc[slot] = false;
            }
            // `tent` is only sized once a SoA kernel query has run; same
            // deal as `anc` for queries wider than the last kernel one.
            if slot < self.tent.len() {
                self.tent[slot] = u32::MAX;
            }
        }
    }

    /// Sets `arr(slot)`.
    #[inline]
    pub(crate) fn set_arr(&mut self, slot: usize, t: Time) {
        self.stamp_slot(slot);
        self.arr[slot] = t;
    }

    /// The target-pruning path flag of `slot`.
    #[inline]
    pub(crate) fn anc(&self, slot: usize) -> bool {
        self.slot_epoch[slot] == self.epoch && self.anc[slot]
    }

    /// Sets the target-pruning path flag of `slot`.
    #[inline]
    pub(crate) fn set_anc(&mut self, slot: usize, flag: bool) {
        self.stamp_slot(slot);
        self.anc[slot] = flag;
    }

    /// `maxconn(v)`, `u32::MAX` if no connection settled `v` this query.
    #[inline]
    pub(crate) fn maxconn(&self, v: usize) -> u32 {
        if self.node_epoch[v] == self.epoch {
            self.maxconn[v]
        } else {
            u32::MAX
        }
    }

    /// Sets `maxconn(v)`.
    #[inline]
    pub(crate) fn set_maxconn(&mut self, v: usize, i: u32) {
        self.node_epoch[v] = self.epoch;
        self.maxconn[v] = i;
    }

    /// Prepares the one-to-all output buffer (`k·ns` slots, all
    /// [`INFINITY`]).
    pub(crate) fn fresh_station_arr(&mut self, n: usize) {
        fresh_vec(&mut self.station_arr, n, INFINITY, &mut self.grow_events);
    }

    /// Prepares the station-to-station output buffer (`k` slots).
    pub(crate) fn fresh_arr_t(&mut self, k: usize) {
        fresh_vec(&mut self.arr_t, k, INFINITY, &mut self.grow_events);
    }

    /// Prepares the via-pruning bound matrix (`k·n_via` slots).
    pub(crate) fn fresh_mu(&mut self, n: usize) {
        fresh_vec(&mut self.mu, n, INFINITY, &mut self.grow_events);
    }

    /// Prepares the target-pruning scratch (`k` slots each).
    pub(crate) fn fresh_target_scratch(&mut self, k: usize) {
        fresh_vec(&mut self.gamma, k, INFINITY, &mut self.grow_events);
        fresh_vec(&mut self.done, k, false, &mut self.grow_events);
        fresh_vec(&mut self.noanc, k, 0, &mut self.grow_events);
    }

    /// Sizes the SoA kernel scratch: `tent` to the slot space of the last
    /// [`SearchWorkspace::begin`], the bucket ring to `ring` buckets (a
    /// power of two). Call right after `begin`, before any label writes
    /// (so `stamp_slot` knows to reset `tent` stamps). O(1) when warm.
    pub(crate) fn ensure_kernel(&mut self, ring: usize) {
        debug_assert!(ring.is_power_of_two());
        if self.slot_epoch.len() > self.tent.len() {
            self.grow_events += 1;
            self.tent.resize(self.slot_epoch.len(), u32::MAX);
        }
        // A previously grown, larger ring stays usable for a smaller mask:
        // the kernel only ever touches buckets `0..ring`.
        if ring > self.buckets.len() {
            self.grow_events += 1;
            self.buckets.resize_with(ring, Vec::new);
        }
        if ring.div_ceil(64) > self.occ.len() {
            self.occ.resize(ring.div_ceil(64), 0);
        }
    }

    /// Tentative kernel key of `slot`, `u32::MAX` if untouched this query.
    #[inline]
    pub(crate) fn tent(&self, slot: usize) -> u32 {
        if self.slot_epoch[slot] == self.epoch {
            self.tent[slot]
        } else {
            u32::MAX
        }
    }

    /// Sets the tentative kernel key of `slot`.
    #[inline]
    pub(crate) fn set_tent(&mut self, slot: usize, key: u32) {
        self.stamp_slot(slot);
        self.tent[slot] = key;
    }
}

/// A shared pool of [`SearchWorkspace`]s behind the engines' `&self` query
/// entry points.
///
/// A query checks out as many workspaces as it needs (warm ones first, in
/// stable order, so a repeated query of the same width reuses each
/// workspace for the same partition class — preserving the
/// zero-allocation warm path) and checks them back in when done. Under a
/// single caller this is exactly the old embedded `Vec<SearchWorkspace>`;
/// under concurrent callers each in-flight query holds its own private
/// workspaces, so no search state is ever shared between threads.
#[derive(Debug, Default)]
pub struct WorkspacePool {
    idle: Mutex<Vec<SearchWorkspace>>,
}

impl WorkspacePool {
    /// An empty pool; workspaces are created on first checkout.
    pub fn new() -> WorkspacePool {
        WorkspacePool { idle: Mutex::new(Vec::new()) }
    }

    /// Takes `n` workspaces out of the pool, reusing idle ones from the
    /// front (checkout order is stable) and creating fresh ones beyond.
    pub(crate) fn checkout(&self, n: usize) -> Vec<SearchWorkspace> {
        let mut idle = self.idle.lock().unwrap();
        let take = idle.len().min(n);
        let mut out: Vec<SearchWorkspace> = idle.drain(..take).collect();
        out.resize_with(n, SearchWorkspace::new);
        out
    }

    /// Returns checked-out workspaces, preserving their order so the next
    /// same-width checkout reassigns each one to the same class.
    pub(crate) fn checkin(&self, workspaces: Vec<SearchWorkspace>) {
        self.idle.lock().unwrap().extend(workspaces);
    }

    /// Sum of [`SearchWorkspace::grow_events`] over the *idle* workspaces.
    /// While a query is in flight its workspaces (and their counters) are
    /// checked out, so read this between queries for exact warm-path
    /// assertions.
    pub fn grow_events(&self) -> u64 {
        self.idle.lock().unwrap().iter().map(SearchWorkspace::grow_events).sum()
    }
}

impl Clone for WorkspacePool {
    /// Clones the idle workspaces; in-flight checkouts stay with the
    /// original.
    fn clone(&self) -> Self {
        WorkspacePool { idle: Mutex::new(self.idle.lock().unwrap().clone()) }
    }
}

/// Clears + resizes a per-connection scratch vector, counting real
/// reallocations (capacity growth) only.
fn fresh_vec<T: Clone>(vec: &mut Vec<T>, n: usize, fill: T, grow_events: &mut u64) {
    if n > vec.capacity() {
        *grow_events += 1;
    }
    vec.clear();
    vec.resize(n, fill);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_core::Time;

    #[test]
    fn begin_invalidates_previous_labels_in_o1() {
        let mut ws = SearchWorkspace::new();
        ws.begin(10, 5, false);
        ws.set_arr(3, Time(100));
        ws.set_maxconn(2, 7);
        assert_eq!(ws.arr(3), Time(100));
        assert_eq!(ws.maxconn(2), 7);
        let grows = ws.grow_events();
        ws.begin(10, 5, false);
        // Same backing arrays, but every label reads as untouched.
        assert_eq!(ws.grow_events(), grows, "warm begin must not allocate");
        assert!(ws.arr(3).is_infinite());
        assert_eq!(ws.maxconn(2), u32::MAX);
    }

    #[test]
    fn growth_is_monotone_and_counted() {
        let mut ws = SearchWorkspace::new();
        ws.begin(4, 2, false);
        let g1 = ws.grow_events();
        assert!(g1 > 0);
        ws.begin(2, 1, false); // smaller query: no growth
        assert_eq!(ws.grow_events(), g1);
        ws.begin(100, 50, true); // bigger query + anc: grows again
        assert!(ws.grow_events() > g1);
        let g2 = ws.grow_events();
        ws.begin(100, 50, true);
        assert_eq!(ws.grow_events(), g2);
    }

    #[test]
    fn anc_flags_reset_between_queries() {
        let mut ws = SearchWorkspace::new();
        ws.begin(8, 4, true);
        ws.set_anc(5, true);
        assert!(ws.anc(5));
        ws.begin(8, 4, true);
        assert!(!ws.anc(5));
        // Writing arr first must not leak a stale anc flag.
        ws.set_arr(5, Time(1));
        assert!(!ws.anc(5));
    }

    #[test]
    fn epoch_wraparound_is_safe() {
        let mut ws = SearchWorkspace::new();
        ws.begin(4, 2, false);
        ws.set_arr(1, Time(42));
        // Force the wrap.
        ws.epoch = u32::MAX;
        ws.set_arr(2, Time(7));
        ws.begin(4, 2, false);
        assert_eq!(ws.epoch, 1);
        assert!(ws.arr(1).is_infinite());
        assert!(ws.arr(2).is_infinite());
    }

    #[test]
    fn pool_checkout_is_warm_and_order_stable() {
        let pool = WorkspacePool::new();
        let mut ws = pool.checkout(3);
        assert_eq!(ws.len(), 3);
        // Warm each workspace to a *different* size, as partition classes do.
        for (i, w) in ws.iter_mut().enumerate() {
            w.begin(10 * (i + 1), 5, false);
        }
        let grows = ws.iter().map(SearchWorkspace::grow_events).sum::<u64>();
        pool.checkin(ws);
        assert_eq!(pool.grow_events(), grows);
        // The next same-width checkout must hand back the same workspaces
        // in the same order, so the warm begin does not grow anything.
        let mut ws = pool.checkout(3);
        for (i, w) in ws.iter_mut().enumerate() {
            w.begin(10 * (i + 1), 5, false);
        }
        assert_eq!(ws.iter().map(SearchWorkspace::grow_events).sum::<u64>(), grows);
        pool.checkin(ws);
        // A wider checkout reuses the warm ones and creates only the extras.
        let ws = pool.checkout(5);
        assert_eq!(ws.iter().map(SearchWorkspace::grow_events).sum::<u64>(), grows);
        pool.checkin(ws);
        assert_eq!(pool.checkout(5).len(), 5);
    }

    #[test]
    fn kernel_scratch_is_epoch_stamped_and_warm() {
        let mut ws = SearchWorkspace::new();
        ws.begin(16, 4, false);
        ws.ensure_kernel(64);
        let g = ws.grow_events();
        ws.set_tent(5, 123);
        assert_eq!(ws.tent(5), 123);
        assert!(ws.arr(5).is_infinite(), "a tent write must not settle the slot");
        ws.set_arr(5, Time(9));
        assert_eq!(ws.tent(5), 123, "settling must keep the key");
        ws.begin(16, 4, false);
        ws.ensure_kernel(64);
        assert_eq!(ws.grow_events(), g, "warm kernel begin must not allocate");
        assert_eq!(ws.tent(5), u32::MAX);
        // A smaller ring reuses the larger ring's buckets.
        ws.begin(16, 4, false);
        ws.ensure_kernel(32);
        assert_eq!(ws.grow_events(), g);
    }

    #[test]
    fn scratch_vectors_keep_capacity() {
        let mut ws = SearchWorkspace::new();
        ws.fresh_arr_t(100);
        ws.fresh_mu(300);
        ws.fresh_target_scratch(100);
        let g = ws.grow_events();
        ws.fresh_arr_t(80);
        ws.fresh_mu(250);
        ws.fresh_target_scratch(64);
        assert_eq!(ws.grow_events(), g, "shrinking reuse must not allocate");
        assert_eq!(ws.arr_t.len(), 80);
        assert!(ws.arr_t.iter().all(|t| t.is_infinite()));
    }
}
