//! Sharded multi-network serving: a query router over several engines.
//!
//! The paper parallelizes one profile search across the cores of a single
//! machine; the serving goal is hosting *many* networks (or one huge
//! network split by region) behind one process. A [`ShardedService`] owns
//! `N` shards — each a [`Network`] with its own persistent
//! [`ProfileEngine`], [`S2sEngine`] and optional [`DistanceTable`] — plus a
//! station-to-shard **directory**, and routes every call to the owning
//! shard:
//!
//! * **Queries.** Stations are addressed by *global* ids; the directory
//!   assigns each shard a contiguous global range (shard `i` owns
//!   `base[i]..base[i+1]`), so resolution is one binary search.
//!   [`ShardedService::one_to_all`] / [`ShardedService::s2s`] dispatch to
//!   the owning shard's engine; the batch forms demultiplex their inputs so
//!   each shard's engine is entered **once** per batch with all of its
//!   queries (keeping the two-level batch parallelism per shard).
//! * **Cache striping.** Each shard's `ProfileEngine` carries its own LRU
//!   stripe, so the effective cache key is
//!   `(shard, source, epoch, generation)`: a feed to shard A bumps only A's
//!   generation and only A's stripe sees invalidations or capacity
//!   pressure — shard B's hits are untouchable by A's traffic.
//! * **Feeds.** [`ShardedService::apply_feed`] demultiplexes a mixed
//!   [`DelayEvent`] stream so each shard receives **one**
//!   [`Network::apply_feed`] call (one generation bump at most) and — when
//!   the feed changed anything and the shard has a table — **one** scoped
//!   [`DistanceTable::refresh`]. A shard with no events (or a net-nil
//!   batch) is not touched at all.
//! * **Cross-shard journeys.** With a gateway configured
//!   ([`ShardedServiceBuilder::gateway`]), a station-to-station query whose
//!   endpoints live in different shards is answered by stitching
//!   within-shard profiles at the declared **border stations** (see
//!   [`crate::gateway`]): source → border one-to-alls through the owning
//!   shards' engines, precomputed border sets between and out of shards,
//!   [`pt_core::Profile::link_profile`] at each junction, and a final
//!   dominance reduction of the border candidates. Gateway answers carry
//!   [`QueryKind::Gateway`] and are routed to the *target's* shard.
//!   Without a gateway, the cross-shard pair is refused with the typed
//!   [`RouterError::CrossShard`] carrying both owners; a query explicitly
//!   directed at the wrong shard returns [`RouterError::WrongShard`]
//!   naming the owner. Same-shard pairs always stay on the owning shard's
//!   engine: a shard is presumed internally complete (journeys that leave
//!   a region and re-enter it are the gateway's concern only when the
//!   endpoints actually cross).
//! * **Snapshot isolation.** Each shard's network lives in a
//!   [`ConcurrentNetwork`]: every query pins the shard's current
//!   [`NetworkSnapshot`] and runs entirely against it, while
//!   [`ShardedService::apply_feed`] mutates a private master copy and
//!   publishes atomically (writers serialized per shard). All serving
//!   methods therefore take `&self` — one service value may be queried
//!   from many threads while a feed stream applies concurrently, and every
//!   answer is exactly a pre-feed or post-feed state, never a torn mix.
//!   Batch forms pin **all touched shards' snapshots up front**, before
//!   any demultiplexed group runs, so a feed landing mid-batch can never
//!   answer items of one batch at different generations.

use std::error::Error;
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

use pt_core::StationId;
use pt_timetable::DelayEvent;

use crate::cache::CacheStats;
use crate::connection_setting::ProfileEngine;
use crate::distance_table::DistanceTable;
use crate::gateway::{BorderSets, BorderSpec, Gateway, GatewayStats};
use crate::network::{ConcurrentNetwork, DelayUpdate, FeedSummary, Network, NetworkSnapshot};
use crate::partition::PartitionStrategy;
use crate::profile_set::ProfileSet;
use crate::s2s::{QueryKind, S2sEngine, S2sResult};
use crate::stats::QueryStats;
use crate::transfer_selection::TransferSelection;

/// Identifies one shard of a [`ShardedService`]; dense, `0..num_shards`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl ShardId {
    /// The shard's index into the service's shard list.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard {}", self.0)
    }
}

/// Why the router could not (or deliberately did not) answer a call.
///
/// `WrongShard` and `CrossShard` carry the owning shard(s), so a caller —
/// or a future gateway — can redirect instead of guessing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterError {
    /// The global station id is outside every shard's range.
    UnknownStation {
        /// The unmapped global station id.
        station: StationId,
    },
    /// The shard id is outside `0..num_shards`.
    UnknownShard {
        /// The nonexistent shard id.
        shard: ShardId,
    },
    /// A call directed at an explicit shard named a station another shard
    /// owns; re-issue against `owner`.
    WrongShard {
        /// The station the call named.
        station: StationId,
        /// The shard the call was directed at.
        queried: ShardId,
        /// The shard that actually owns the station.
        owner: ShardId,
    },
    /// A station-to-station query whose endpoints live in different
    /// shards — out of scope for the per-shard engines (the hook for a
    /// cross-shard gateway).
    CrossShard {
        /// Shard owning the source station.
        source: ShardId,
        /// Shard owning the target station.
        target: ShardId,
    },
}

impl fmt::Display for RouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RouterError::UnknownStation { station } => {
                write!(f, "global station {station} is not in any shard's directory range")
            }
            RouterError::UnknownShard { shard } => write!(f, "{shard} does not exist"),
            RouterError::WrongShard { station, queried, owner } => write!(
                f,
                "global station {station} was queried on {queried} but {owner} owns it — \
                 redirect the call there"
            ),
            RouterError::CrossShard { source, target } => write!(
                f,
                "station-to-station query crosses shards ({source} → {target}); cross-shard \
                 journeys need a gateway above the router"
            ),
        }
    }
}

impl Error for RouterError {}

/// A result routed to (and answered by) one shard. The payload is in the
/// owning shard's *local* station-id space — resolve targets with
/// [`ShardedService::locate`].
#[derive(Debug, Clone)]
pub struct Routed<T> {
    /// The shard that answered.
    pub shard: ShardId,
    /// The shard-local answer.
    pub value: T,
}

/// What one shard did with its slice of a mixed feed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFeedOutcome {
    /// The shard the events were demultiplexed to.
    pub shard: ShardId,
    /// The shard's own [`Network::apply_feed`] summary (one call, so at
    /// most one generation bump).
    pub summary: FeedSummary,
    /// Rows the shard's distance table recomputed in its one scoped
    /// [`DistanceTable::refresh`]; `0` when the shard has no table or the
    /// batch changed nothing.
    pub table_rows_refreshed: usize,
}

/// What [`ShardedService::apply_feed`] did with one mixed event batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedFeedSummary {
    /// Per event, in input order, how the owning shard serviced it.
    pub events: Vec<DelayUpdate>,
    /// One outcome per shard that received at least one event, ascending
    /// by shard id. Shards absent here were not touched at all.
    pub shards: Vec<ShardFeedOutcome>,
}

impl ShardedFeedSummary {
    /// `true` iff at least one shard changed (bumped its generation).
    pub fn changed(&self) -> bool {
        self.shards.iter().any(|s| s.summary.changed())
    }

    /// The outcome of `shard`, if it received any events.
    pub fn outcome(&self, shard: ShardId) -> Option<&ShardFeedOutcome> {
        self.shards.iter().find(|o| o.shard == shard)
    }
}

/// One shard: a snapshot-published network and its persistent serving
/// machinery. Queries pin `net.snapshot()` — the snapshot carries the
/// shard's table and transfer mask refreshed to its state, so the engines
/// never see a table/network mismatch.
#[derive(Debug)]
struct Shard {
    net: ConcurrentNetwork,
    profile: ProfileEngine,
    s2s: S2sEngine<'static>,
}

impl Shard {
    fn s2s(&self, snap: &NetworkSnapshot, source: StationId, target: StationId) -> S2sResult {
        self.s2s
            .try_query_masked(snap.network(), snap.table(), snap.transfer_mask(), source, target)
            .expect("published snapshots carry tables refreshed to their state")
    }

    fn s2s_batch(
        &self,
        snap: &NetworkSnapshot,
        pairs: &[(StationId, StationId)],
    ) -> Vec<S2sResult> {
        self.s2s
            .try_batch_masked(snap.network(), snap.table(), snap.transfer_mask(), pairs)
            .expect("published snapshots carry tables refreshed to their state")
    }
}

/// Configures and builds a [`ShardedService`];
/// see [`ShardedService::builder`].
#[derive(Debug, Clone)]
pub struct ShardedServiceBuilder {
    threads: usize,
    strategy: PartitionStrategy,
    cache_per_shard: usize,
    s2s_cache_per_shard: usize,
    tables: Option<TransferSelection>,
    gateway: Option<BorderSpec>,
}

impl Default for ShardedServiceBuilder {
    fn default() -> Self {
        ShardedServiceBuilder {
            threads: 1,
            strategy: PartitionStrategy::EqualConnections,
            cache_per_shard: 0,
            s2s_cache_per_shard: 0,
            tables: None,
            gateway: None,
        }
    }
}

impl ShardedServiceBuilder {
    /// Worker threads per engine (all shards share the process-global
    /// pool, so this bounds per-call concurrency, not thread count).
    pub fn threads(mut self, p: usize) -> Self {
        assert!(p >= 1, "need at least one thread");
        self.threads = p;
        self
    }

    /// The `conn(S)` partition strategy every shard engine uses.
    pub fn strategy(mut self, s: PartitionStrategy) -> Self {
        self.strategy = s;
        self
    }

    /// Enables the profile cache with one stripe of `capacity` entries
    /// **per shard** — the striping that keeps one shard's feed traffic
    /// from evicting another shard's hits.
    pub fn cache(mut self, capacity: usize) -> Self {
        self.cache_per_shard = capacity;
        self
    }

    /// Enables the station-to-station result cache with one stripe of
    /// `capacity` entries per shard (see [`crate::S2sCache`]); keyed by
    /// `(source, target, epoch, generation)`, so a shard's feed invalidates
    /// only its own stripe.
    pub fn s2s_cache(mut self, capacity: usize) -> Self {
        self.s2s_cache_per_shard = capacity;
        self
    }

    /// Builds a distance table per shard with this selection; the router
    /// keeps each table fresh with one scoped refresh per feed.
    pub fn tables(mut self, selection: TransferSelection) -> Self {
        self.tables = Some(selection);
        self
    }

    /// Enables the cross-shard gateway: border stations are declared by
    /// `spec` (explicit global-id alias groups, or [`BorderSpec::ByName`]
    /// to seed them from the directory by matching station names across
    /// shards), their border sets are precomputed at build time, and
    /// [`ShardedService::s2s`] / [`ShardedService::s2s_batch`] answer
    /// cross-shard pairs by stitching instead of refusing them.
    pub fn gateway(mut self, spec: BorderSpec) -> Self {
        self.gateway = Some(spec);
        self
    }

    /// Builds the service over the given shard networks (one shard per
    /// network, [`ShardId`]s in input order).
    ///
    /// # Panics
    ///
    /// On an empty network list, or on an invalid gateway spec (border
    /// station outside the directory, a group not spanning two shards,
    /// diverging transfer times within a group, mixed periods).
    pub fn build(self, networks: Vec<Network>) -> ShardedService {
        assert!(!networks.is_empty(), "a sharded service needs at least one network");
        let mut base = Vec::with_capacity(networks.len() + 1);
        let mut next = 0u32;
        let shards: Vec<Shard> = networks
            .into_iter()
            .map(|net| {
                base.push(next);
                next += net.num_stations() as u32;
                let mut profile =
                    ProfileEngine::new().threads(self.threads).strategy(self.strategy);
                if self.cache_per_shard > 0 {
                    profile = profile.with_cache(self.cache_per_shard);
                }
                let mut s2s = S2sEngine::new().threads(self.threads).strategy(self.strategy);
                if self.s2s_cache_per_shard > 0 {
                    s2s = s2s.with_cache(self.s2s_cache_per_shard);
                }
                let net = match &self.tables {
                    Some(sel) => ConcurrentNetwork::with_table(net, sel),
                    None => ConcurrentNetwork::new(net),
                };
                Shard { net, profile, s2s }
            })
            .collect();
        base.push(next);
        let mut service = ShardedService { shards, base, gateway: None };
        if let Some(spec) = self.gateway {
            let snaps: Vec<Arc<NetworkSnapshot>> =
                service.shards.iter().map(|s| s.net.snapshot()).collect();
            let groups = match spec {
                BorderSpec::ByName => Gateway::groups_by_name(&snaps),
                BorderSpec::Explicit(groups) => groups
                    .into_iter()
                    .map(|g| {
                        g.into_iter()
                            .map(|gid| {
                                service
                                    .locate(gid)
                                    .expect("gateway border station outside the directory")
                            })
                            .collect()
                    })
                    .collect(),
            };
            service.gateway = Some(Gateway::build(groups, &snaps));
        }
        service
    }
}

/// A query router owning `N` sharded networks behind one API.
///
/// All stations are addressed by **global** ids; the service's directory
/// maps every global station to its owning `(shard, local station)` pair
/// ([`ShardedService::locate`]). Every query routes to the owning shard's
/// persistent engine, batches are demultiplexed so each shard is entered
/// once, mixed feeds cost each touched shard one generation bump and one
/// scoped table refresh, and the per-shard cache stripes isolate one
/// shard's invalidations from another's hits. See the [module
/// docs](crate::shard) for the full contract.
///
/// ```
/// use pt_core::{Dur, Period, StationId, Time};
/// use pt_spcs::{Network, ShardedService};
/// use pt_timetable::TimetableBuilder;
///
/// let city = |leg_min: u32| {
///     let mut b = TimetableBuilder::new(Period::DAY);
///     let a = b.add_named_station("A", Dur::minutes(2));
///     let t = b.add_named_station("B", Dur::minutes(2));
///     b.add_simple_trip(&[a, t], Time::hm(8, 0), &[Dur::minutes(leg_min)], Dur::ZERO).unwrap();
///     Network::new(b.build().unwrap())
/// };
/// let svc = ShardedService::builder().cache(16).build(vec![city(30), city(60)]);
///
/// // Global station 2 is shard 1's local station 0.
/// let routed = svc.one_to_all(StationId(2)).unwrap();
/// assert_eq!(routed.shard.0, 1);
/// let (shard, local_target) = svc.locate(StationId(3)).unwrap();
/// assert_eq!(shard, routed.shard);
/// let arr = routed.value.profile(local_target).eval_arr(Time::hm(7, 0), Period::DAY);
/// assert_eq!(arr, Time::hm(9, 0));
/// ```
#[derive(Debug)]
pub struct ShardedService {
    shards: Vec<Shard>,
    /// Global-id base per shard, plus a trailing sentinel holding the total
    /// station count: shard `i` owns global ids `base[i]..base[i + 1]`.
    base: Vec<u32>,
    /// The cross-shard gateway, when built with
    /// [`ShardedServiceBuilder::gateway`].
    gateway: Option<Gateway>,
}

/// A shard-addressed endpoint of a cross-shard pair: `(shard index,
/// local station id)`.
type Endpoint = (usize, StationId);

/// A located station-to-station pair: on one shard, or crossing into the
/// gateway (only produced when a gateway is configured).
enum RoutedPair {
    Same(ShardId, (StationId, StationId)),
    Cross(Endpoint, Endpoint),
}

impl ShardedService {
    /// Starts configuring a service
    /// (threads, cache striping, distance tables).
    pub fn builder() -> ShardedServiceBuilder {
        ShardedServiceBuilder::default()
    }

    /// A service with default configuration (single-threaded engines, no
    /// caches, no tables) over the given networks.
    pub fn new(networks: Vec<Network>) -> ShardedService {
        Self::builder().build(networks)
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// All shard ids, ascending.
    pub fn shard_ids(&self) -> impl Iterator<Item = ShardId> {
        (0..self.shards.len() as u32).map(ShardId)
    }

    /// Total stations across all shards (= the size of the global id
    /// space; every global id below this resolves).
    #[inline]
    pub fn num_stations(&self) -> usize {
        *self.base.last().expect("base always has a sentinel") as usize
    }

    /// The contiguous global-id range `shard` owns.
    pub fn station_range(&self, shard: ShardId) -> Result<Range<u32>, RouterError> {
        self.check_shard(shard)?;
        Ok(self.base[shard.idx()]..self.base[shard.idx() + 1])
    }

    /// Resolves a global station id to its owning shard and that shard's
    /// local station id — the directory lookup behind every routed call.
    pub fn locate(&self, station: StationId) -> Result<(ShardId, StationId), RouterError> {
        // partition_point: first shard whose base exceeds the id; its
        // predecessor owns the id iff the id is below the sentinel.
        let i = self.base.partition_point(|&b| b <= station.0);
        if i == 0 || station.0 >= *self.base.last().unwrap() {
            return Err(RouterError::UnknownStation { station });
        }
        Ok((ShardId(i as u32 - 1), StationId(station.0 - self.base[i - 1])))
    }

    /// The owning shard of a global station id.
    pub fn owner(&self, station: StationId) -> Result<ShardId, RouterError> {
        self.locate(station).map(|(shard, _)| shard)
    }

    /// The global id of `shard`'s local station — the inverse of
    /// [`ShardedService::locate`].
    pub fn global_id(&self, shard: ShardId, local: StationId) -> Result<StationId, RouterError> {
        let range = self.station_range(shard)?;
        // Bound-check the *local* id: adding first could wrap a huge id
        // into another shard's range. The error carries the rejected
        // local id (it corresponds to no global station).
        if local.0 >= range.end - range.start {
            return Err(RouterError::UnknownStation { station: local });
        }
        Ok(StationId(range.start + local.0))
    }

    /// Pins the shard's current published snapshot (e.g. for timetable
    /// access, standalone verification copies, or running several queries
    /// against one consistent state). Derefs to [`Network`].
    pub fn network(&self, shard: ShardId) -> Result<Arc<NetworkSnapshot>, RouterError> {
        self.check_shard(shard)?;
        Ok(self.shards[shard.idx()].net.snapshot())
    }

    /// The shard's distance table as published with its current snapshot,
    /// if the service was built with tables.
    pub fn table(&self, shard: ShardId) -> Result<Option<Arc<DistanceTable>>, RouterError> {
        self.check_shard(shard)?;
        Ok(self.shards[shard.idx()].net.snapshot().shared_table())
    }

    /// How many snapshots `shard` has published (= feeds that changed it).
    pub fn publishes(&self, shard: ShardId) -> Result<u64, RouterError> {
        self.check_shard(shard)?;
        Ok(self.shards[shard.idx()].net.publishes())
    }

    /// One shard's cache-stripe counters; `None` when built without
    /// [`ShardedServiceBuilder::cache`].
    pub fn shard_cache_stats(&self, shard: ShardId) -> Result<Option<CacheStats>, RouterError> {
        self.check_shard(shard)?;
        Ok(self.shards[shard.idx()].profile.cache_stats())
    }

    /// Aggregate cache counters over every stripe (counters and occupancy
    /// sum; the capacity is the striped total).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        let mut agg: Option<CacheStats> = None;
        for shard in &self.shards {
            if let Some(stats) = shard.profile.cache_stats() {
                agg.get_or_insert_with(CacheStats::default).absorb(stats);
            }
        }
        agg
    }

    /// One-to-all profiles from a global station, answered by the owning
    /// shard's engine (through its cache stripe when enabled). The returned
    /// [`ProfileSet`] is in the owning shard's local id space.
    pub fn one_to_all(&self, source: StationId) -> Result<Routed<Arc<ProfileSet>>, RouterError> {
        let (shard, local) = self.locate(source)?;
        let s = &self.shards[shard.idx()];
        let snap = s.net.snapshot();
        Ok(Routed { shard, value: s.profile.one_to_all(snap.network(), local) })
    }

    /// Like [`ShardedService::one_to_all`], but directed at an explicit
    /// shard: a station another shard owns is **not** silently rerouted —
    /// the typed [`RouterError::WrongShard`] names the owner so the caller
    /// (or a gateway) can redirect deliberately.
    pub fn one_to_all_on(
        &self,
        shard: ShardId,
        source: StationId,
    ) -> Result<Routed<Arc<ProfileSet>>, RouterError> {
        self.check_shard(shard)?;
        let (owner, local) = self.locate(source)?;
        if owner != shard {
            return Err(RouterError::WrongShard { station: source, queried: shard, owner });
        }
        let s = &self.shards[shard.idx()];
        let snap = s.net.snapshot();
        Ok(Routed { shard, value: s.profile.one_to_all(snap.network(), local) })
    }

    /// Batch one-to-all over global sources. The batch is demultiplexed so
    /// every owning shard's engine is entered **once** with all of its
    /// sources (keeping [`ProfileEngine::many_to_all`]'s across-query
    /// parallelism and cache-hit dedup per shard); results come back in
    /// input order. Routing failures are per item — one unknown station
    /// does not fail its neighbours. Every touched shard's snapshot is
    /// pinned **before** any group runs, so a feed landing mid-batch can
    /// never split one batch across generations.
    pub fn many_to_all(
        &self,
        sources: &[StationId],
    ) -> Vec<Result<Routed<Arc<ProfileSet>>, RouterError>> {
        let located: Vec<Result<(ShardId, StationId), RouterError>> =
            sources.iter().map(|&s| self.locate(s)).collect();
        let pins = self.pin_sources(&located);
        self.many_to_all_pinned(located, &pins)
    }

    /// Pins the snapshot of every shard that owns at least one located
    /// source — the up-front consistent cut a batch runs against.
    fn pin_sources(
        &self,
        located: &[Result<(ShardId, StationId), RouterError>],
    ) -> Vec<Option<Arc<NetworkSnapshot>>> {
        let mut pins: Vec<Option<Arc<NetworkSnapshot>>> = vec![None; self.shards.len()];
        for loc in located {
            if let Ok((shard, _)) = *loc {
                let slot = &mut pins[shard.idx()];
                if slot.is_none() {
                    *slot = Some(self.shards[shard.idx()].net.snapshot());
                }
            }
        }
        pins
    }

    /// The demultiplexed run of [`ShardedService::many_to_all`] against
    /// already-pinned snapshots (the testable seam: pinning and running are
    /// separate steps, so a feed between them provably cannot move the
    /// batch).
    fn many_to_all_pinned(
        &self,
        located: Vec<Result<(ShardId, StationId), RouterError>>,
        pins: &[Option<Arc<NetworkSnapshot>>],
    ) -> Vec<Result<Routed<Arc<ProfileSet>>, RouterError>> {
        let mut grouped: Vec<Vec<(usize, StationId)>> = vec![Vec::new(); self.shards.len()];
        for (i, loc) in located.iter().enumerate() {
            if let Ok((shard, local)) = *loc {
                grouped[shard.idx()].push((i, local));
            }
        }
        let mut out: Vec<Option<Result<Routed<Arc<ProfileSet>>, RouterError>>> =
            located.into_iter().map(|loc| loc.err().map(Err)).collect();
        for (idx, group) in grouped.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let shard = &self.shards[idx];
            let snap = pins[idx].as_ref().expect("every shard with sources is pinned");
            let locals: Vec<StationId> = group.iter().map(|&(_, l)| l).collect();
            let sets = shard.profile.many_to_all(snap.network(), &locals);
            for (&(i, _), set) in group.iter().zip(sets) {
                out[i] = Some(Ok(Routed { shard: ShardId(idx as u32), value: set }));
            }
        }
        out.into_iter().map(|r| r.expect("every located source answered by its shard")).collect()
    }

    /// Station-to-station profile between two global stations. Same-shard
    /// pairs are answered by the owning shard's engine with its distance
    /// table (when present); endpoints in different shards are stitched by
    /// the gateway (the answer is routed to the **target's** shard and
    /// carries [`QueryKind::Gateway`]), or refused with the typed
    /// [`RouterError::CrossShard`] when the service was built without one.
    pub fn s2s(
        &self,
        source: StationId,
        target: StationId,
    ) -> Result<Routed<S2sResult>, RouterError> {
        match self.locate_pair(source, target)? {
            RoutedPair::Same(shard, (s_local, t_local)) => {
                let s = &self.shards[shard.idx()];
                let snap = s.net.snapshot();
                Ok(Routed { shard, value: s.s2s(&snap, s_local, t_local) })
            }
            RoutedPair::Cross(src, tgt) => {
                let gw = self.gateway.as_ref().expect("locate_pair only crosses with a gateway");
                let snaps = self.pin_all();
                let sets = gw.sets_for(&snaps);
                let value = self.stitch_one(&snaps, &sets, src, tgt);
                Ok(Routed { shard: ShardId(tgt.0 as u32), value })
            }
        }
    }

    /// Batch station-to-station over global pairs, demultiplexed so every
    /// shard's engine is entered **once** with all of its same-shard pairs
    /// ([`S2sEngine::batch`] semantics per shard); cross-shard pairs are
    /// stitched by the gateway when one is configured, and fail per item
    /// otherwise. Results come back in input order. All touched shards'
    /// snapshots are pinned up front — a batch with any cross-shard pair
    /// pins **every** shard, so the stitch and the same-shard groups all
    /// answer against one consistent cut.
    pub fn s2s_batch(
        &self,
        pairs: &[(StationId, StationId)],
    ) -> Vec<Result<Routed<S2sResult>, RouterError>> {
        let located: Vec<Result<RoutedPair, RouterError>> =
            pairs.iter().map(|&(s, t)| self.locate_pair(s, t)).collect();
        let pins = self.pin_for(&located);
        self.s2s_batch_pinned(located, &pins)
    }

    /// Routes one global pair: same-shard, cross-shard into the gateway, or
    /// a typed refusal.
    fn locate_pair(&self, s: StationId, t: StationId) -> Result<RoutedPair, RouterError> {
        let (s_shard, s_local) = self.locate(s)?;
        let (t_shard, t_local) = self.locate(t)?;
        if s_shard == t_shard {
            Ok(RoutedPair::Same(s_shard, (s_local, t_local)))
        } else if self.gateway.is_some() {
            Ok(RoutedPair::Cross((s_shard.idx(), s_local), (t_shard.idx(), t_local)))
        } else {
            Err(RouterError::CrossShard { source: s_shard, target: t_shard })
        }
    }

    /// Pins the snapshots an s2s batch needs, up front: every shard with a
    /// same-shard pair — or **all** shards as soon as any pair crosses
    /// (stitched answers read several shards, and they must read one cut).
    fn pin_for(
        &self,
        located: &[Result<RoutedPair, RouterError>],
    ) -> Vec<Option<Arc<NetworkSnapshot>>> {
        if located.iter().any(|l| matches!(l, Ok(RoutedPair::Cross(..)))) {
            return self.shards.iter().map(|s| Some(s.net.snapshot())).collect();
        }
        let mut pins: Vec<Option<Arc<NetworkSnapshot>>> = vec![None; self.shards.len()];
        for loc in located {
            if let Ok(RoutedPair::Same(shard, _)) = *loc {
                let slot = &mut pins[shard.idx()];
                if slot.is_none() {
                    *slot = Some(self.shards[shard.idx()].net.snapshot());
                }
            }
        }
        pins
    }

    /// The demultiplexed run of [`ShardedService::s2s_batch`] against
    /// already-pinned snapshots (the testable pin/run seam).
    fn s2s_batch_pinned(
        &self,
        located: Vec<Result<RoutedPair, RouterError>>,
        pins: &[Option<Arc<NetworkSnapshot>>],
    ) -> Vec<Result<Routed<S2sResult>, RouterError>> {
        let mut grouped: Vec<Vec<(usize, (StationId, StationId))>> =
            vec![Vec::new(); self.shards.len()];
        let mut cross: Vec<(usize, Endpoint, Endpoint)> = Vec::new();
        for (i, loc) in located.iter().enumerate() {
            match *loc {
                Ok(RoutedPair::Same(shard, pair)) => grouped[shard.idx()].push((i, pair)),
                Ok(RoutedPair::Cross(src, tgt)) => cross.push((i, src, tgt)),
                Err(_) => {}
            }
        }
        let mut out: Vec<Option<Result<Routed<S2sResult>, RouterError>>> =
            located.into_iter().map(|loc| loc.err().map(Err)).collect();
        for (idx, group) in grouped.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let local_pairs: Vec<(StationId, StationId)> = group.iter().map(|&(_, p)| p).collect();
            let shard = &self.shards[idx];
            let snap = pins[idx].as_ref().expect("every shard with same-shard pairs is pinned");
            let results = shard.s2s_batch(snap, &local_pairs);
            for (&(i, _), r) in group.iter().zip(results) {
                out[i] = Some(Ok(Routed { shard: ShardId(idx as u32), value: r }));
            }
        }
        if !cross.is_empty() {
            let gw = self.gateway.as_ref().expect("cross pairs are only located with a gateway");
            let snaps: Vec<Arc<NetworkSnapshot>> = pins
                .iter()
                .map(|p| Arc::clone(p.as_ref().expect("a cross batch pins every shard")))
                .collect();
            let sets = gw.sets_for(&snaps);
            for (i, src, tgt) in cross {
                let value = self.stitch_one(&snaps, &sets, src, tgt);
                out[i] = Some(Ok(Routed { shard: ShardId(tgt.0 as u32), value }));
            }
        }
        out.into_iter().map(|r| r.expect("every located pair answered by its shard")).collect()
    }

    /// Pins every shard's current snapshot — the consistent cut a stitched
    /// answer reads.
    fn pin_all(&self) -> Vec<Arc<NetworkSnapshot>> {
        self.shards.iter().map(|s| s.net.snapshot()).collect()
    }

    /// Stitches one cross-shard pair against pinned snapshots and fresh
    /// border sets; source searches go through the owning shard's engine
    /// (and its cache stripe).
    fn stitch_one(
        &self,
        snaps: &[Arc<NetworkSnapshot>],
        sets: &[Arc<BorderSets>],
        source: (usize, StationId),
        target: (usize, StationId),
    ) -> S2sResult {
        let gw = self.gateway.as_ref().expect("stitching needs a gateway");
        let one_to_all =
            |sh: usize, s: StationId| self.shards[sh].profile.one_to_all(snaps[sh].network(), s);
        let (profile, pruned) = gw.stitch(snaps, sets, &one_to_all, source, target);
        S2sResult {
            profile,
            stats: QueryStats { table_pruned: pruned, ..Default::default() },
            kind: QueryKind::Gateway,
        }
    }

    /// Gateway counters — border groups, per-shard border counts, and the
    /// cumulative border rows recomputed by feed-driven refreshes; `None`
    /// when built without [`ShardedServiceBuilder::gateway`].
    pub fn gateway_stats(&self) -> Option<GatewayStats> {
        self.gateway.as_ref().map(Gateway::stats)
    }

    /// Applies a mixed realtime feed — events tagged with their shard — in
    /// one pass per shard: the events are demultiplexed (preserving their
    /// relative order), each shard with at least one event gets exactly
    /// **one** [`Network::apply_feed`] call (so at most one generation bump
    /// and one cache invalidation per shard per feed), and each *changed*
    /// shard with a distance table gets exactly **one** scoped
    /// [`DistanceTable::refresh`]. Untouched shards — and shards whose
    /// batch nets out to nil — keep their generation, so their cache
    /// stripes keep hitting.
    ///
    /// An unknown shard id fails the whole call up front (no partial
    /// application).
    ///
    /// Takes `&self`: each touched shard's feed runs under that shard's
    /// writer lock (writers serialize per shard) and publishes a new
    /// snapshot atomically — concurrent readers keep answering on their
    /// pinned pre-feed snapshots throughout.
    pub fn apply_feed(
        &self,
        events: &[(ShardId, DelayEvent)],
    ) -> Result<ShardedFeedSummary, RouterError> {
        for &(shard, _) in events {
            self.check_shard(shard)?;
        }
        let mut grouped: Vec<Vec<(usize, DelayEvent)>> = vec![Vec::new(); self.shards.len()];
        for (i, &(shard, event)) in events.iter().enumerate() {
            grouped[shard.idx()].push((i, event));
        }
        let mut out_events = vec![DelayUpdate::Unchanged; events.len()];
        let mut shards = Vec::new();
        for (idx, group) in grouped.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let shard = &self.shards[idx];
            let batch: Vec<DelayEvent> = group.iter().map(|&(_, e)| e).collect();
            let outcome = shard.net.apply_feed(&batch);
            for (&(i, _), &update) in group.iter().zip(&outcome.summary.events) {
                out_events[i] = update;
            }
            shards.push(ShardFeedOutcome {
                shard: ShardId(idx as u32),
                summary: outcome.summary,
                table_rows_refreshed: outcome.table_rows_refreshed,
            });
        }
        Ok(ShardedFeedSummary { events: out_events, shards })
    }

    fn check_shard(&self, shard: ShardId) -> Result<(), RouterError> {
        if shard.idx() < self.shards.len() {
            Ok(())
        } else {
            Err(RouterError::UnknownShard { shard })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_core::{Dur, Period, Time, TrainId};
    use pt_timetable::{Recovery, TimetableBuilder};

    /// A tiny two-line network; `offset_min` staggers the schedule so
    /// distinct shards give distinct answers.
    fn city(offset_min: u32) -> Network {
        let mut b = TimetableBuilder::new(Period::DAY);
        let s: Vec<_> =
            (0..3).map(|i| b.add_named_station(format!("{i}"), Dur::minutes(2))).collect();
        for h in [8u32, 9, 10] {
            b.add_simple_trip(
                &[s[0], s[1], s[2]],
                Time::hm(h, 0) + Dur::minutes(offset_min),
                &[Dur::minutes(10), Dur::minutes(10)],
                Dur::ZERO,
            )
            .unwrap();
        }
        b.add_simple_trip(
            &[s[2], s[0]],
            Time::hm(12, 0) + Dur::minutes(offset_min),
            &[Dur::minutes(25)],
            Dur::ZERO,
        )
        .unwrap();
        Network::new(b.build().unwrap())
    }

    fn service() -> ShardedService {
        ShardedService::builder().cache(8).build(vec![city(0), city(5), city(11)])
    }

    #[test]
    fn directory_maps_every_station_and_rejects_the_rest() {
        let svc = service();
        assert_eq!(svc.num_shards(), 3);
        assert_eq!(svc.num_stations(), 9);
        for shard in svc.shard_ids() {
            let range = svc.station_range(shard).unwrap();
            for g in range {
                let (owner, local) = svc.locate(StationId(g)).unwrap();
                assert_eq!(owner, shard);
                assert_eq!(svc.global_id(shard, local).unwrap(), StationId(g));
            }
        }
        assert_eq!(
            svc.locate(StationId(9)),
            Err(RouterError::UnknownStation { station: StationId(9) })
        );
        assert_eq!(
            svc.global_id(ShardId(0), StationId(3)),
            Err(RouterError::UnknownStation { station: StationId(3) })
        );
        // A huge local id must not wrap into another shard's range.
        assert!(svc.global_id(ShardId(1), StationId(u32::MAX - 2)).is_err());
        assert_eq!(
            svc.station_range(ShardId(3)),
            Err(RouterError::UnknownShard { shard: ShardId(3) })
        );
    }

    #[test]
    fn routed_queries_match_the_owning_network() {
        let svc = service();
        for shard in [ShardId(0), ShardId(1), ShardId(2)] {
            let standalone = Network::build(svc.network(shard).unwrap().timetable());
            for local in 0..3u32 {
                let global = svc.global_id(shard, StationId(local)).unwrap();
                let routed = svc.one_to_all(global).unwrap();
                assert_eq!(routed.shard, shard);
                assert_eq!(
                    routed.value,
                    ProfileEngine::new().one_to_all(&standalone, StationId(local)),
                    "{shard} local {local}"
                );
            }
        }
    }

    #[test]
    fn wrong_shard_carries_the_owner_for_a_redirect() {
        let svc = service();
        let global = svc.global_id(ShardId(2), StationId(1)).unwrap();
        let err = svc.one_to_all_on(ShardId(0), global).unwrap_err();
        let RouterError::WrongShard { station, queried, owner } = err else {
            panic!("expected WrongShard, got {err:?}");
        };
        assert_eq!((station, queried, owner), (global, ShardId(0), ShardId(2)));
        // The redirect round-trip: re-issue on the named owner.
        let redirected = svc.one_to_all_on(owner, global).unwrap();
        assert_eq!(redirected.value, svc.one_to_all(global).unwrap().value);
    }

    #[test]
    fn s2s_routes_within_and_refuses_across_shards() {
        let svc = service();
        let s = svc.global_id(ShardId(1), StationId(0)).unwrap();
        let t = svc.global_id(ShardId(1), StationId(2)).unwrap();
        let within = svc.s2s(s, t).unwrap();
        assert_eq!(within.shard, ShardId(1));
        let standalone = Network::build(svc.network(ShardId(1)).unwrap().timetable());
        let want = ProfileEngine::new().one_to_all(&standalone, StationId(0));
        assert_eq!(&within.value.profile, want.profile(StationId(2)));

        let foreign = svc.global_id(ShardId(2), StationId(2)).unwrap();
        assert_eq!(
            svc.s2s(s, foreign).unwrap_err(),
            RouterError::CrossShard { source: ShardId(1), target: ShardId(2) }
        );
    }

    #[test]
    fn batches_demultiplex_and_reassemble_in_input_order() {
        let svc = service();
        let sources = vec![
            StationId(7), // shard 2
            StationId(0), // shard 0
            StationId(99),
            StationId(4), // shard 1
            StationId(0), // duplicate: shard 0's cache dedups in-batch
        ];
        let out = svc.many_to_all(&sources);
        assert_eq!(out.len(), 5);
        assert_eq!(out[0].as_ref().unwrap().shard, ShardId(2));
        assert_eq!(out[1].as_ref().unwrap().shard, ShardId(0));
        assert_eq!(
            out[2].as_ref().unwrap_err(),
            &RouterError::UnknownStation { station: StationId(99) }
        );
        assert_eq!(out[3].as_ref().unwrap().shard, ShardId(1));
        for (i, src) in [(0usize, StationId(7)), (1, StationId(0)), (3, StationId(4))] {
            assert_eq!(
                out[i].as_ref().unwrap().value,
                svc.one_to_all(src).unwrap().value,
                "batch slot {i}"
            );
        }
        assert!(Arc::ptr_eq(&out[1].as_ref().unwrap().value, &out[4].as_ref().unwrap().value));

        let pairs = vec![
            (StationId(0), StationId(2)), // within shard 0
            (StationId(0), StationId(4)), // cross
            (StationId(8), StationId(6)), // within shard 2
        ];
        let s2s_out = svc.s2s_batch(&pairs);
        assert_eq!(s2s_out[0].as_ref().unwrap().shard, ShardId(0));
        assert_eq!(
            s2s_out[1].as_ref().unwrap_err(),
            &RouterError::CrossShard { source: ShardId(0), target: ShardId(1) }
        );
        assert_eq!(s2s_out[2].as_ref().unwrap().shard, ShardId(2));
        let direct = svc.s2s(StationId(8), StationId(6)).unwrap();
        assert_eq!(s2s_out[2].as_ref().unwrap().value.profile, direct.value.profile);
    }

    #[test]
    fn mixed_feed_bumps_each_touched_shard_once_and_refreshes_its_table() {
        let svc = ShardedService::builder()
            .cache(8)
            .tables(TransferSelection::Explicit(vec![StationId(0), StationId(2)]))
            .build(vec![city(0), city(5), city(11)]);
        let gens: Vec<u64> =
            svc.shard_ids().map(|sh| svc.network(sh).unwrap().generation()).collect();
        // Three events for shard 0, one for shard 2, none for shard 1.
        let feed = vec![
            (
                ShardId(0),
                DelayEvent::Delay {
                    train: TrainId(0),
                    from_hop: 0,
                    delay: Dur::minutes(5),
                    recovery: Recovery::None,
                },
            ),
            (
                ShardId(2),
                DelayEvent::Delay {
                    train: TrainId(1),
                    from_hop: 1,
                    delay: Dur::minutes(9),
                    recovery: Recovery::None,
                },
            ),
            (
                ShardId(0),
                DelayEvent::Delay {
                    train: TrainId(0),
                    from_hop: 1,
                    delay: Dur::minutes(3),
                    recovery: Recovery::None,
                },
            ),
            (ShardId(0), DelayEvent::Cancel { train: TrainId(3) }),
        ];
        let summary = svc.apply_feed(&feed).unwrap();
        assert!(summary.changed());
        assert_eq!(summary.events.len(), 4);
        // Shards 0 and 2 bumped exactly once, shard 1 not at all.
        let after: Vec<u64> =
            svc.shard_ids().map(|sh| svc.network(sh).unwrap().generation()).collect();
        assert_eq!(after[0], gens[0] + 1, "three events, one bump");
        assert_eq!(after[1], gens[1], "untouched shard must not move");
        assert_eq!(after[2], gens[2] + 1);
        assert_eq!(summary.shards.len(), 2);
        assert!(summary.outcome(ShardId(1)).is_none());
        // Each changed shard's table was refreshed in the same call.
        for sh in [ShardId(0), ShardId(2)] {
            assert!(summary.outcome(sh).unwrap().table_rows_refreshed > 0, "{sh}");
            assert!(svc.table(sh).unwrap().unwrap().check_fresh(&svc.network(sh).unwrap()).is_ok());
        }
        // And s2s keeps answering without a stale-table panic.
        let s = svc.global_id(ShardId(0), StationId(0)).unwrap();
        let t = svc.global_id(ShardId(0), StationId(2)).unwrap();
        let got = svc.s2s(s, t).unwrap();
        let standalone = Network::build(svc.network(ShardId(0)).unwrap().timetable());
        let want = ProfileEngine::new().one_to_all(&standalone, StationId(0));
        assert_eq!(&got.value.profile, want.profile(StationId(2)));
    }

    #[test]
    fn feed_to_one_shard_leaves_the_other_stripes_hot() {
        let svc = service();
        let a = svc.global_id(ShardId(0), StationId(0)).unwrap();
        let b = svc.global_id(ShardId(1), StationId(0)).unwrap();
        let _ = svc.one_to_all(a).unwrap();
        let _ = svc.one_to_all(b).unwrap();
        let feed = vec![(
            ShardId(0),
            DelayEvent::Delay {
                train: TrainId(0),
                from_hop: 0,
                delay: Dur::minutes(10),
                recovery: Recovery::None,
            },
        )];
        assert!(svc.apply_feed(&feed).unwrap().changed());
        // Shard B's stripe still hits; shard A's entry stopped matching.
        let b_before = svc.shard_cache_stats(ShardId(1)).unwrap().unwrap();
        let _ = svc.one_to_all(b).unwrap();
        let b_after = svc.shard_cache_stats(ShardId(1)).unwrap().unwrap();
        assert_eq!(b_after.hits, b_before.hits + 1, "foreign feed must not evict this stripe");
        let a_before = svc.shard_cache_stats(ShardId(0)).unwrap().unwrap();
        let _ = svc.one_to_all(a).unwrap();
        let a_after = svc.shard_cache_stats(ShardId(0)).unwrap().unwrap();
        assert_eq!(a_after.misses, a_before.misses + 1, "own feed must invalidate");
        // The aggregate view sums the stripes.
        let agg = svc.cache_stats().unwrap();
        assert_eq!(
            agg.hits,
            b_after.hits + a_after.hits + {
                let c = svc.shard_cache_stats(ShardId(2)).unwrap().unwrap();
                c.hits
            }
        );
        assert_eq!(agg.capacity, 24, "three stripes of eight");
    }

    #[test]
    fn net_nil_feed_is_a_no_op_everywhere() {
        let svc = service();
        let gens: Vec<u64> =
            svc.shard_ids().map(|sh| svc.network(sh).unwrap().generation()).collect();
        // A cancellation of a never-delayed train nets out to nothing.
        let summary =
            svc.apply_feed(&[(ShardId(1), DelayEvent::Cancel { train: TrainId(0) })]).unwrap();
        assert!(!summary.changed());
        assert_eq!(summary.events, vec![DelayUpdate::Unchanged]);
        assert_eq!(summary.outcome(ShardId(1)).unwrap().table_rows_refreshed, 0);
        let after: Vec<u64> =
            svc.shard_ids().map(|sh| svc.network(sh).unwrap().generation()).collect();
        assert_eq!(after, gens, "net-nil feed must not bump any shard");
        // An unknown shard id fails up front.
        assert_eq!(
            svc.apply_feed(&[(ShardId(9), DelayEvent::Cancel { train: TrainId(0) })]),
            Err(RouterError::UnknownShard { shard: ShardId(9) })
        );
    }

    /// Two region shards meeting at one border station "B" (same name,
    /// same transfer time in both), plus the merged monolithic network the
    /// gateway must reproduce exactly. Global ids: shard 0 = {a:0, B:1},
    /// shard 1 = {B:2, c:3}; mono = {a:0, B:1, c:2}.
    fn border_cities() -> (Vec<Network>, Network) {
        let west_trips = |b: &mut TimetableBuilder, a: StationId, border: StationId| {
            for h in [8u32, 9, 10] {
                b.add_simple_trip(&[a, border], Time::hm(h, 0), &[Dur::minutes(20)], Dur::ZERO)
                    .unwrap();
            }
            b.add_simple_trip(&[border, a], Time::hm(11, 30), &[Dur::minutes(20)], Dur::ZERO)
                .unwrap();
        };
        let east_trips = |b: &mut TimetableBuilder, border: StationId, c: StationId| {
            for h in [8u32, 9, 10] {
                b.add_simple_trip(&[border, c], Time::hm(h, 40), &[Dur::minutes(15)], Dur::ZERO)
                    .unwrap();
            }
            b.add_simple_trip(&[c, border], Time::hm(11, 0), &[Dur::minutes(15)], Dur::ZERO)
                .unwrap();
        };
        let west = {
            let mut b = TimetableBuilder::new(Period::DAY);
            let a = b.add_named_station("a", Dur::minutes(2));
            let border = b.add_named_station("B", Dur::minutes(3));
            west_trips(&mut b, a, border);
            Network::new(b.build().unwrap())
        };
        let east = {
            let mut b = TimetableBuilder::new(Period::DAY);
            let border = b.add_named_station("B", Dur::minutes(3));
            let c = b.add_named_station("c", Dur::minutes(2));
            east_trips(&mut b, border, c);
            Network::new(b.build().unwrap())
        };
        let mono = {
            let mut b = TimetableBuilder::new(Period::DAY);
            let a = b.add_named_station("a", Dur::minutes(2));
            let border = b.add_named_station("B", Dur::minutes(3));
            let c = b.add_named_station("c", Dur::minutes(2));
            west_trips(&mut b, a, border);
            east_trips(&mut b, border, c);
            Network::new(b.build().unwrap())
        };
        (vec![west, east], mono)
    }

    #[test]
    fn gateway_stitches_cross_shard_pairs_to_the_monolithic_answer() {
        let (shards, mono) = border_cities();
        let svc = ShardedService::builder().gateway(BorderSpec::ByName).build(shards);
        let mono_profiles = |src: u32| ProfileEngine::new().one_to_all(&mono, StationId(src));

        // a (shard 0) → c (shard 1): crosses at B with its 3-minute buffer.
        let routed = svc.s2s(StationId(0), StationId(3)).unwrap();
        assert_eq!(routed.shard, ShardId(1), "stitched answers route to the target's shard");
        assert_eq!(routed.value.kind, QueryKind::Gateway);
        assert_eq!(&routed.value.profile, mono_profiles(0).profile(StationId(2)));

        // Border endpoints on either side, and the reverse direction.
        let cases =
            [(0u32, 2u32, 0u32, 1u32), (1, 3, 1, 2), (3, 0, 2, 0), (2, 3, 1, 2), (3, 2, 2, 1)];
        for (s, t, ms, mt) in cases {
            let routed = svc.s2s(StationId(s), StationId(t)).unwrap();
            assert_eq!(
                &routed.value.profile,
                mono_profiles(ms).profile(StationId(mt)),
                "global {s} → {t} must equal monolithic {ms} → {mt}"
            );
        }

        // The batch form agrees with the singles and keeps input order,
        // mixing same-shard and cross-shard pairs.
        let pairs = vec![
            (StationId(0), StationId(3)), // cross
            (StationId(0), StationId(1)), // within shard 0
            (StationId(3), StationId(0)), // cross, reverse
        ];
        let out = svc.s2s_batch(&pairs);
        for (i, &(s, t)) in pairs.iter().enumerate() {
            let single = svc.s2s(s, t).unwrap();
            let batched = out[i].as_ref().unwrap();
            assert_eq!(batched.shard, single.shard, "slot {i}");
            assert_eq!(batched.value.profile, single.value.profile, "slot {i}");
        }
        assert_eq!(out[1].as_ref().unwrap().value.kind, QueryKind::Plain, "no table, no gateway");

        let stats = svc.gateway_stats().unwrap();
        assert_eq!(stats.groups, 1);
        assert_eq!(stats.borders_per_shard, vec![1, 1]);
        assert_eq!(stats.rows_refreshed, vec![0, 0], "no feed, no refreshes");
    }

    #[test]
    fn explicit_border_spec_agrees_with_by_name_seeding() {
        let (shards, _) = border_cities();
        let by_name = ShardedService::builder().gateway(BorderSpec::ByName).build(shards);
        let (shards, _) = border_cities();
        let explicit = ShardedService::builder()
            .gateway(BorderSpec::Explicit(vec![vec![StationId(1), StationId(2)]]))
            .build(shards);
        assert_eq!(by_name.gateway_stats(), explicit.gateway_stats());
        let a = by_name.s2s(StationId(0), StationId(3)).unwrap();
        let b = explicit.s2s(StationId(0), StationId(3)).unwrap();
        assert_eq!(a.value.profile, b.value.profile);
    }

    #[test]
    fn gateway_answers_track_feeds_and_refresh_only_touched_border_rows() {
        let (shards, mono) = border_cities();
        let svc = ShardedService::builder().gateway(BorderSpec::ByName).build(shards);
        let before = svc.s2s(StationId(0), StationId(3)).unwrap().value.profile;

        // Delay shard 1's first B→c train (train 0 of the east shard).
        let event = DelayEvent::Delay {
            train: TrainId(0),
            from_hop: 0,
            delay: Dur::minutes(30),
            recovery: Recovery::None,
        };
        assert!(svc.apply_feed(&[(ShardId(1), event)]).unwrap().changed());
        let after = svc.s2s(StationId(0), StationId(3)).unwrap().value.profile;
        assert_ne!(before, after, "a delay on the onward leg must move the stitched profile");

        // The same delay applied to the monolithic network (east trips were
        // added after west's four, so east train 0 is mono train 4).
        let mut mono = mono;
        mono.apply_feed(&[DelayEvent::Delay {
            train: TrainId(4),
            from_hop: 0,
            delay: Dur::minutes(30),
            recovery: Recovery::None,
        }]);
        let want = ProfileEngine::new().one_to_all(&mono, StationId(0));
        assert_eq!(&after, want.profile(StationId(2)), "stitched must track the fed monolith");

        // Only the touched shard's border row was recomputed.
        let stats = svc.gateway_stats().unwrap();
        assert_eq!(stats.rows_refreshed, vec![0, 1], "shard 0 was never touched");
    }

    #[test]
    fn pinned_batches_ignore_racing_feeds_deterministically() {
        let (shards, _) = border_cities();
        let svc = ShardedService::builder().gateway(BorderSpec::ByName).build(shards);
        let pairs = vec![(StationId(0), StationId(3)), (StationId(0), StationId(1))];

        // The pin/run seam, exercised as a feed racing a batch: locate and
        // pin, let a feed land, then run the batch on the pinned cut.
        let located: Vec<_> = pairs.iter().map(|&(s, t)| svc.locate_pair(s, t)).collect();
        let pins = svc.pin_for(&located);
        assert!(pins.iter().all(Option::is_some), "a cross pair pins every shard");
        let reference = svc.s2s_batch(&pairs);

        let event = DelayEvent::Delay {
            train: TrainId(0),
            from_hop: 0,
            delay: Dur::minutes(30),
            recovery: Recovery::None,
        };
        assert!(svc.apply_feed(&[(ShardId(1), event)]).unwrap().changed());

        // The pinned run answers entirely pre-feed…
        let pinned = svc.s2s_batch_pinned(located, &pins);
        for (i, (p, r)) in pinned.iter().zip(&reference).enumerate() {
            assert_eq!(
                p.as_ref().unwrap().value.profile,
                r.as_ref().unwrap().value.profile,
                "pinned slot {i} must not see the racing feed"
            );
        }
        // …while a fresh batch sees the feed.
        let fresh = svc.s2s_batch(&pairs);
        assert_ne!(
            fresh[0].as_ref().unwrap().value.profile,
            reference[0].as_ref().unwrap().value.profile,
            "the cross pair rides the delayed onward leg"
        );

        // Same seam for one-to-all batches.
        let sources = vec![StationId(2), StationId(3)];
        let located: Vec<_> = sources.iter().map(|&s| svc.locate(s)).collect();
        let pins = svc.pin_sources(&located);
        let reference = svc.many_to_all(&sources);
        let event = DelayEvent::Delay {
            train: TrainId(1),
            from_hop: 0,
            delay: Dur::minutes(45),
            recovery: Recovery::None,
        };
        assert!(svc.apply_feed(&[(ShardId(1), event)]).unwrap().changed());
        let pinned = svc.many_to_all_pinned(located, &pins);
        for (i, (p, r)) in pinned.iter().zip(&reference).enumerate() {
            assert_eq!(
                p.as_ref().unwrap().value,
                r.as_ref().unwrap().value,
                "pinned one-to-all slot {i} must not see the racing feed"
            );
        }
    }

    #[test]
    fn errors_display_the_redirect_information() {
        let wrong = RouterError::WrongShard {
            station: StationId(7),
            queried: ShardId(0),
            owner: ShardId(2),
        };
        let msg = wrong.to_string();
        assert!(msg.contains("shard 2"), "{msg}");
        let cross = RouterError::CrossShard { source: ShardId(1), target: ShardId(3) };
        assert!(cross.to_string().contains("shard 1 → shard 3"), "{cross}");
    }
}
