//! Multi-criteria time-queries — the paper's future-work extension (§6):
//! "it will be interesting to incorporate multi-criteria connections, e.g.,
//! minimizing the number of transfers."
//!
//! This module implements the Pareto variant for *time-queries*: for a fixed
//! departure time it computes the Pareto frontier of (arrival time, number
//! of transfers) at the target. A label `(arr, k)` dominates `(arr', k')`
//! iff `arr ≤ arr'` and `k ≤ k'`. The search is a multi-label Dijkstra on
//! the realistic time-dependent graph; boarding edges increment the
//! transfer counter (the first boarding is free — riding one train is zero
//! transfers).
//!
//! The same dominance idea applies to whole profiles — one profile
//! dominates another iff it is pointwise no worse over the whole period
//! ([`Profile::dominates`]) — and [`prune_dominated_profiles`] reduces a
//! candidate set to its Pareto survivors. The cross-shard gateway runs it
//! over its per-border stitched candidates before the final merge.

use pt_core::{NodeId, Period, Profile, StationId, Time};
use pt_heap::QuaternaryHeap;

use crate::network::Network;
use crate::stats::QueryStats;

/// Pareto-filters a set of tagged candidate profiles: a candidate is
/// dropped iff some other candidate dominates it pointwise over the whole
/// period. Of several equal profiles the first stays. The relative order
/// of survivors is preserved; the tag `T` identifies the surviving
/// candidates (the gateway tags each stitched profile with its border
/// group).
pub fn prune_dominated_profiles<T>(
    candidates: Vec<(T, Profile)>,
    period: Period,
) -> Vec<(T, Profile)> {
    let mut kept: Vec<(T, Profile)> = Vec::with_capacity(candidates.len());
    for (tag, prof) in candidates {
        if kept.iter().any(|(_, k)| k.dominates(&prof, period)) {
            continue;
        }
        kept.retain(|(_, k)| !prof.dominates(k, period));
        kept.push((tag, prof));
    }
    kept
}

/// Upper bound on counted transfers; labels beyond it are merged into the
/// last bucket (journeys with 15+ transfers are not meaningfully ranked).
pub const MAX_TRANSFERS: u8 = 15;

/// One Pareto-optimal journey option.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParetoOption {
    /// Absolute arrival time.
    pub arrival: Time,
    /// Number of train changes (0 = direct).
    pub transfers: u8,
}

/// Result of a multi-criteria time-query.
#[derive(Debug, Clone)]
pub struct ParetoResult {
    /// The Pareto frontier at the target, sorted by increasing transfers
    /// and strictly decreasing arrival time.
    pub options: Vec<ParetoOption>,
    /// Operation counters.
    pub stats: QueryStats,
}

/// Computes the Pareto frontier of (arrival, transfers) for a journey from
/// `source` (departing at absolute `dep`) to `target`.
pub fn pareto_query(
    net: &Network,
    source: StationId,
    dep: Time,
    target: StationId,
) -> ParetoResult {
    let g = net.graph();
    let n = g.num_nodes();
    let buckets = MAX_TRANSFERS as usize + 1;
    let mut stats = QueryStats::default();

    // One slot per (node, transfer-count): arrival label or INFINITY.
    // Dominance over lower transfer counts is checked on the fly.
    let mut best: Vec<Time> = vec![pt_core::INFINITY; n * buckets];
    let mut heap = QuaternaryHeap::new(n * buckets);

    let src = g.station_node(source);
    let sslot = src.idx() * buckets;
    best[sslot] = dep;
    heap.push_or_decrease(sslot, key(dep, 0));
    stats.pushes += 1;

    let tn = g.station_node(target);
    while let Some((slot, k)) = heap.pop() {
        stats.settled += 1;
        let v = slot / buckets;
        let transfers = (slot % buckets) as u8;
        let t = Time((k >> 8) as u32);
        if t > best[slot] {
            continue; // stale
        }
        // Dominated by a label with fewer transfers and equal-or-earlier
        // arrival?
        if (0..transfers).any(|b| best[v * buckets + b as usize] <= t) {
            stats.self_pruned += 1;
            continue;
        }
        if v == tn.idx() {
            continue; // target labels need no expansion
        }
        let from_source = v == src.idx();
        for e in g.edges(NodeId::from_idx(v)) {
            let boarding = g.is_station_node(NodeId::from_idx(v)) && !g.is_station_node(e.head);
            let ta = if from_source { g.eval_edge_free_transfer(e, t) } else { g.eval_edge(e, t) };
            if ta.is_infinite() {
                continue;
            }
            // The first boarding is free; later boardings are transfers.
            let nk = if boarding && !from_source {
                (transfers + 1).min(MAX_TRANSFERS)
            } else {
                transfers
            };
            let wslot = e.head.idx() * buckets + nk as usize;
            if best[wslot] <= ta {
                continue;
            }
            // Dominance against fewer-transfer labels of the head.
            if (0..=nk).any(|b| best[e.head.idx() * buckets + b as usize] <= ta) {
                continue;
            }
            stats.relaxed += 1;
            best[wslot] = ta;
            if heap.push_or_decrease(wslot, key(ta, nk)) {
                stats.pushes += 1;
            }
        }
    }

    // Extract the frontier at the target.
    let mut options = Vec::new();
    let mut best_arr = pt_core::INFINITY;
    for k in 0..buckets {
        let arr = best[tn.idx() * buckets + k];
        if arr < best_arr {
            options.push(ParetoOption { arrival: arr, transfers: k as u8 });
            best_arr = arr;
        }
    }
    options.reverse(); // increasing transfers, decreasing arrival
    options.sort_by_key(|o| o.transfers);
    ParetoResult { options, stats }
}

#[inline]
fn key(t: Time, transfers: u8) -> u64 {
    ((t.secs() as u64) << 8) | transfers as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_core::{Dur, Period};
    use pt_timetable::TimetableBuilder;

    /// Slow direct A→C (60 min) and a faster two-leg A→B→C (12 + 12 min,
    /// needing one transfer).
    fn network() -> (Network, Vec<StationId>) {
        let mut b = TimetableBuilder::new(Period::DAY);
        let s: Vec<_> =
            (0..3).map(|i| b.add_named_station(format!("{i}"), Dur::minutes(2))).collect();
        b.add_simple_trip(&[s[0], s[2]], Time::hm(8, 0), &[Dur::minutes(60)], Dur::ZERO).unwrap();
        b.add_simple_trip(&[s[0], s[1]], Time::hm(8, 0), &[Dur::minutes(12)], Dur::ZERO).unwrap();
        b.add_simple_trip(&[s[1], s[2]], Time::hm(8, 20), &[Dur::minutes(12)], Dur::ZERO).unwrap();
        (Network::new(b.build().unwrap()), s)
    }

    #[test]
    fn frontier_contains_both_tradeoffs() {
        let (net, s) = network();
        let r = pareto_query(&net, s[0], Time::hm(7, 50), s[2]);
        assert_eq!(
            r.options,
            vec![
                // Direct train: 0 transfers, arrives 09:00.
                ParetoOption { arrival: Time::hm(9, 0), transfers: 0 },
                // Via B: 1 transfer, arrives 08:32.
                ParetoOption { arrival: Time::hm(8, 32), transfers: 1 },
            ]
        );
    }

    #[test]
    fn dominated_option_is_dropped() {
        // If the transfer journey were *slower*, only the direct remains.
        let mut b = TimetableBuilder::new(Period::DAY);
        let s: Vec<_> =
            (0..3).map(|i| b.add_named_station(format!("{i}"), Dur::minutes(2))).collect();
        b.add_simple_trip(&[s[0], s[2]], Time::hm(8, 0), &[Dur::minutes(30)], Dur::ZERO).unwrap();
        b.add_simple_trip(&[s[0], s[1]], Time::hm(8, 0), &[Dur::minutes(20)], Dur::ZERO).unwrap();
        b.add_simple_trip(&[s[1], s[2]], Time::hm(8, 30), &[Dur::minutes(20)], Dur::ZERO).unwrap();
        let net = Network::new(b.build().unwrap());
        let r = pareto_query(&net, s[0], Time::hm(7, 50), s[2]);
        assert_eq!(r.options, vec![ParetoOption { arrival: Time::hm(8, 30), transfers: 0 }]);
    }

    #[test]
    fn zero_transfer_arrival_matches_scalar_dijkstra_lower_bound() {
        let (net, s) = network();
        let scalar = crate::time_query::earliest_arrival(&net, s[0], Time::hm(7, 50), s[2]);
        let r = pareto_query(&net, s[0], Time::hm(7, 50), s[2]);
        // The best arrival over the frontier equals the scalar optimum.
        let best = r.options.iter().map(|o| o.arrival).min().unwrap();
        assert_eq!(best, scalar);
    }

    #[test]
    fn profile_pruning_keeps_exactly_the_pareto_survivors() {
        use pt_core::ProfilePoint;
        let p = |dep: u32, arr: u32| {
            Profile::from_unreduced(
                vec![ProfilePoint::new(Time::hm(0, dep), Time::hm(0, arr))],
                Period::DAY,
            )
        };
        let fast = p(10, 20);
        let slow = p(10, 30);
        let late = p(40, 45); // incomparable with both (better late departures)
        let out = prune_dominated_profiles(
            vec![("slow", slow.clone()), ("fast", fast.clone()), ("late", late.clone())],
            Period::DAY,
        );
        let tags: Vec<&str> = out.iter().map(|&(t, _)| t).collect();
        assert_eq!(tags, vec!["fast", "late"], "slow is dominated by fast");
        // Equal profiles: the first one stays.
        let out =
            prune_dominated_profiles(vec![("a", fast.clone()), ("b", fast.clone())], Period::DAY);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, "a");
        // Empty candidates are dominated by anything (and by each other).
        let out =
            prune_dominated_profiles(vec![("none", Profile::EMPTY), ("fast", fast)], Period::DAY);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, "fast");
    }

    #[test]
    fn unreachable_target_yields_empty_frontier() {
        let mut b = TimetableBuilder::new(Period::DAY);
        let a = b.add_named_station("A", Dur::ZERO);
        let c = b.add_named_station("island", Dur::ZERO);
        let d = b.add_named_station("B", Dur::ZERO);
        b.add_simple_trip(&[a, d], Time::hm(8, 0), &[Dur::minutes(5)], Dur::ZERO).unwrap();
        b.add_simple_trip(&[c, d], Time::hm(8, 0), &[Dur::minutes(5)], Dur::ZERO).unwrap();
        let net = Network::new(b.build().unwrap());
        let r = pareto_query(&net, a, Time::hm(7, 0), c);
        assert!(r.options.is_empty());
    }
}
