//! Contraction-based importance ordering of the station graph (paper §4,
//! "Selection of Transfer Stations").
//!
//! The paper adopts the *contraction* idea of contraction hierarchies
//! [Geisberger et al. '08]: iteratively remove unimportant stations from the
//! station graph, inserting shortcut edges to preserve distances between the
//! remaining stations; the stations still present after contracting `c`
//! stations are marked important (= transfer stations).
//!
//! The overlay uses scalar lower-bound weights (minimum leg durations), the
//! node priority is `edge difference + deleted neighbours`, maintained
//! lazily, and witness searches are bounded Dijkstras — the standard
//! engineering of CH orderings, scaled to station graphs of a few thousand
//! nodes.

use std::collections::HashMap;

use pt_core::StationId;
use pt_graph::StationGraph;
use pt_heap::QuaternaryHeap;

/// Overlay graph with mutable adjacency, weights in seconds.
struct Overlay {
    out: Vec<HashMap<u32, u32>>,
    inc: Vec<HashMap<u32, u32>>,
    contracted: Vec<bool>,
    deleted_neighbours: Vec<u32>,
}

impl Overlay {
    fn new(sg: &StationGraph) -> Overlay {
        let n = sg.num_stations();
        let mut out: Vec<HashMap<u32, u32>> = vec![HashMap::new(); n];
        let mut inc: Vec<HashMap<u32, u32>> = vec![HashMap::new(); n];
        for s in 0..n as u32 {
            for (head, w) in sg.out(StationId(s)) {
                let w = w.secs();
                out[s as usize].entry(head.0).and_modify(|e| *e = (*e).min(w)).or_insert(w);
                inc[head.idx()].entry(s).and_modify(|e| *e = (*e).min(w)).or_insert(w);
            }
        }
        Overlay { out, inc, contracted: vec![false; n], deleted_neighbours: vec![0; n] }
    }

    /// Bounded Dijkstra from `from` avoiding `avoid`; returns the distance
    /// to `to` if one of at most `settle_limit` settled nodes within
    /// `cutoff` reaches it, else `u32::MAX`.
    fn witness(&self, from: u32, to: u32, avoid: u32, cutoff: u32, settle_limit: usize) -> u32 {
        let mut dist: HashMap<u32, u32> = HashMap::new();
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(std::cmp::Reverse((0u32, from)));
        dist.insert(from, 0);
        let mut settled = 0usize;
        while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
            if dist.get(&v).is_some_and(|&b| b < d) {
                continue; // stale
            }
            if v == to {
                return d;
            }
            settled += 1;
            if settled > settle_limit || d > cutoff {
                break;
            }
            for (&w, &wt) in &self.out[v as usize] {
                if w == avoid || self.contracted[w as usize] {
                    continue;
                }
                let nd = d.saturating_add(wt);
                if nd <= cutoff && dist.get(&w).is_none_or(|&b| nd < b) {
                    dist.insert(w, nd);
                    heap.push(std::cmp::Reverse((nd, w)));
                }
            }
        }
        u32::MAX
    }

    /// The shortcuts contraction of `v` would need: `(u, w, weight)` for
    /// in-neighbour `u` and out-neighbour `w` without a witness path.
    fn needed_shortcuts(&self, v: u32) -> Vec<(u32, u32, u32)> {
        let mut shortcuts = Vec::new();
        let ins: Vec<(u32, u32)> = self.inc[v as usize]
            .iter()
            .filter(|(&u, _)| !self.contracted[u as usize] && u != v)
            .map(|(&u, &w)| (u, w))
            .collect();
        let outs: Vec<(u32, u32)> = self.out[v as usize]
            .iter()
            .filter(|(&w, _)| !self.contracted[w as usize] && w != v)
            .map(|(&w, &wt)| (w, wt))
            .collect();
        for &(u, wu) in &ins {
            let max_cutoff = outs.iter().map(|&(_, wv)| wu.saturating_add(wv)).max().unwrap_or(0);
            for &(w, wv) in &outs {
                if u == w {
                    continue;
                }
                let via = wu.saturating_add(wv);
                let witness = self.witness(u, w, v, max_cutoff.min(via), 24);
                if witness > via {
                    shortcuts.push((u, w, via));
                }
            }
        }
        shortcuts
    }

    /// Edge-difference part of the priority.
    fn edge_difference(&self, v: u32) -> i64 {
        let ins =
            self.inc[v as usize].keys().filter(|&&u| !self.contracted[u as usize]).count() as i64;
        let outs =
            self.out[v as usize].keys().filter(|&&w| !self.contracted[w as usize]).count() as i64;
        self.needed_shortcuts(v).len() as i64 - ins - outs
    }

    fn priority(&self, v: u32) -> i64 {
        self.edge_difference(v) + self.deleted_neighbours[v as usize] as i64
    }

    fn contract(&mut self, v: u32) {
        for (u, w, wt) in self.needed_shortcuts(v) {
            let e = self.out[u as usize].entry(w).or_insert(u32::MAX);
            *e = (*e).min(wt);
            let e = self.inc[w as usize].entry(u).or_insert(u32::MAX);
            *e = (*e).min(wt);
        }
        self.contracted[v as usize] = true;
        for &u in self.inc[v as usize].keys() {
            if !self.contracted[u as usize] {
                self.deleted_neighbours[u as usize] += 1;
            }
        }
        for &w in self.out[v as usize].keys() {
            if !self.contracted[w as usize] {
                self.deleted_neighbours[w as usize] += 1;
            }
        }
    }
}

/// Contracts `count` stations in importance order (least important first)
/// and returns them; the complement survives as the important stations.
///
/// Priorities are maintained lazily: the heap's minimum is re-evaluated
/// before contraction and re-queued if it no longer is the minimum.
pub fn contract_stations(sg: &StationGraph, count: usize) -> Vec<StationId> {
    let n = sg.num_stations();
    let count = count.min(n);
    let mut overlay = Overlay::new(sg);
    // i64 priority → shifted u64 heap key.
    let to_key = |p: i64| (p + (1i64 << 40)) as u64;
    let mut heap = QuaternaryHeap::new(n);
    for v in 0..n as u32 {
        heap.push_or_decrease(v as usize, to_key(overlay.priority(v)));
    }
    let mut order = Vec::with_capacity(count);
    while order.len() < count {
        let Some((v, key)) = heap.pop() else { break };
        let v = v as u32;
        // Lazy re-evaluation.
        let fresh = to_key(overlay.priority(v));
        if fresh > key {
            if let Some((_, next_key)) = heap.peek() {
                if fresh > next_key {
                    heap.push_or_decrease(v as usize, fresh);
                    continue;
                }
            }
        }
        overlay.contract(v);
        order.push(StationId(v));
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_core::{Dur, Period, Time};
    use pt_timetable::TimetableBuilder;

    /// Star: center 0 connected to leaves 1..=4 in both directions.
    fn star_graph() -> StationGraph {
        let mut b = TimetableBuilder::new(Period::DAY);
        let c = b.add_named_station("hub", Dur::ZERO);
        let leaves: Vec<_> =
            (0..4).map(|i| b.add_named_station(format!("leaf{i}"), Dur::ZERO)).collect();
        for &l in &leaves {
            b.add_simple_trip(&[c, l], Time::hm(8, 0), &[Dur::minutes(10)], Dur::ZERO).unwrap();
            b.add_simple_trip(&[l, c], Time::hm(9, 0), &[Dur::minutes(10)], Dur::ZERO).unwrap();
        }
        StationGraph::build(&b.build().unwrap())
    }

    #[test]
    fn hub_survives_contraction() {
        let sg = star_graph();
        // Contract all but one station: the hub (degree 4) must survive —
        // removing it early would require many shortcuts.
        let removed = contract_stations(&sg, 4);
        assert_eq!(removed.len(), 4);
        assert!(!removed.contains(&StationId(0)), "hub was contracted: {removed:?}");
    }

    #[test]
    fn contraction_is_deterministic_and_complete() {
        let sg = star_graph();
        let a = contract_stations(&sg, 5);
        let b = contract_stations(&sg, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        let mut sorted: Vec<u32> = a.iter().map(|s| s.0).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_count_contracts_nothing() {
        let sg = star_graph();
        assert!(contract_stations(&sg, 0).is_empty());
    }

    #[test]
    fn count_clamps_to_station_count() {
        let sg = star_graph();
        assert_eq!(contract_stations(&sg, 100).len(), 5);
    }
}
