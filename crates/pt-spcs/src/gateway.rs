//! Cross-shard journeys: the border-station gateway above the shard router.
//!
//! A [`ShardedService`](crate::ShardedService) hosts "one huge network,
//! sharded by region" as N disjoint timetables. Regions meet at **border
//! stations**: one physical station (same name, same transfer time)
//! present in two or more shards' timetables. No train crosses a shard
//! boundary — every cross-region journey changes trains at a border, so a
//! journey from `S` (shard A) to `T` (shard B) decomposes into
//! within-shard segments glued at borders:
//!
//! ```text
//! dist(S, T, ·) = min over border chains  dist_A(S, b₁) ⊕ dist_·(b₁, b₂) ⊕ … ⊕ dist_B(bₖ, T)
//! ```
//!
//! where `⊕` is [`Profile::link_profile`] with the junction's transfer
//! time as the boarding buffer. The gateway materializes exactly the
//! pieces this needs:
//!
//! * **Alias groups.** A [`BorderSpec`] declares which stations are the
//!   same physical border — explicitly, or inferred from the directory by
//!   matching station names across shards ([`BorderSpec::ByName`], the
//!   default seeding).
//! * **Border sets.** Per shard, one full one-to-all [`ProfileSet`] from
//!   every border alias it hosts (the crate-private `BorderSets`), built
//!   with the same batched engine as the distance tables. Freshness rides the same
//!   machinery as [`DistanceTable`](crate::DistanceTable): a
//!   `[valid_lo, valid_hi]` generation range plus
//!   [`Network::touched_since`]-scoped refreshes
//!   ([`refresh_scope`](crate::distance_table)), so a feed invalidates
//!   only the touched shard's border sets — and only the rows that can
//!   reach a re-timed connection.
//! * **The stitch.** A label-correcting fixpoint over the alias groups:
//!   seed every group with the source's profile to it, relax
//!   border → border links through each shard's border sets until nothing
//!   improves (optimal journeys visit each border group at most once, so
//!   the fixpoint needs at most one round per group), then link the
//!   surviving groups onward to the target. The final candidate set is
//!   Pareto-reduced with
//!   [`crate::multicriteria::prune_dominated_profiles`] before the merge.
//!
//! The stitched profile is **exactly** the monolithic answer (the profile
//! the merged single network would produce) because reduced profiles are
//! canonical per arrival function — `conncheck --gateway` holds the two
//! byte-equal on pristine, delayed and fed networks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pt_core::{Period, Profile, StationId};

use crate::distance_table::{build_engine, refresh_scope};
use crate::multicriteria::prune_dominated_profiles;
use crate::network::{Network, NetworkSnapshot};
use crate::profile_set::ProfileSet;
use crate::shard::ShardId;

/// How a [`ShardedService`](crate::ShardedService) finds its border
/// stations (see
/// [`ShardedServiceBuilder::gateway`](crate::ShardedServiceBuilder::gateway)).
#[derive(Debug, Clone)]
pub enum BorderSpec {
    /// Seed the borders from the directory: every station *name* hosted by
    /// two or more shards (at most once each) forms one alias group. The
    /// default for timetables that model one physical station per region
    /// copy.
    ByName,
    /// Explicit alias groups of **global** station ids; each group must
    /// name one physical station through ≥ 2 shards, at most one alias per
    /// shard.
    Explicit(Vec<Vec<StationId>>),
}

/// Per shard: the full one-to-all profile sets from every border alias it
/// hosts, stamped with the generation range they are exact for.
#[derive(Debug)]
pub(crate) struct BorderSets {
    /// Sorted shard-local border station ids; indexes align with `sets`.
    borders: Arc<Vec<StationId>>,
    /// `sets[i]` = one-to-all profiles from `borders[i]`.
    sets: Vec<Arc<ProfileSet>>,
    /// `Network::epoch` at build time.
    built_epoch: u64,
    /// Generation range the stored profiles are exact for (see
    /// [`DistanceTable`](crate::DistanceTable) — same contract: a zero-row
    /// refresh extends `valid_hi` in place through a shared `Arc`).
    valid_lo: u64,
    valid_hi: AtomicU64,
}

impl Clone for BorderSets {
    fn clone(&self) -> Self {
        BorderSets {
            borders: Arc::clone(&self.borders),
            sets: self.sets.clone(),
            built_epoch: self.built_epoch,
            valid_lo: self.valid_lo,
            valid_hi: AtomicU64::new(self.valid_hi.load(Ordering::Relaxed)),
        }
    }
}

impl BorderSets {
    fn build(net: &Network, borders: Arc<Vec<StationId>>) -> BorderSets {
        let sets = build_engine().many_to_all(net, &borders);
        BorderSets {
            borders,
            sets,
            built_epoch: net.epoch(),
            valid_lo: net.generation(),
            valid_hi: AtomicU64::new(net.generation()),
        }
    }

    /// The one-to-all set from border `b` (a member of `borders`).
    fn set(&self, b: StationId) -> &Arc<ProfileSet> {
        let i = self.borders.binary_search(&b).expect("border set queried for a non-border");
        &self.sets[i]
    }

    fn is_fresh_for(&self, net: &Network) -> bool {
        self.built_epoch == net.epoch()
            && self.valid_lo <= net.generation()
            && net.generation() <= self.valid_hi.load(Ordering::Relaxed)
    }

    /// Reconciles the shared sets with a network mutated by feeds since
    /// they were built, recomputing only the border rows that can reach a
    /// touched station ([`refresh_scope`] — the distance-table machinery).
    /// Returns the number of rows recomputed; zero-row refreshes extend
    /// the validity range without unsharing the `Arc`.
    fn refresh_shared(slot: &mut Arc<BorderSets>, net: &Network) -> usize {
        let gen = net.generation();
        let hi = slot.valid_hi.load(Ordering::Relaxed);
        let (affected, _fwd) = refresh_scope(net, &slot.borders, hi);
        if affected.is_empty() {
            slot.valid_hi.fetch_max(gen, Ordering::Relaxed);
            return 0;
        }
        let sets = build_engine().many_to_all(net, &affected);
        let inner = Arc::make_mut(slot);
        for (&b, set) in affected.iter().zip(sets) {
            let i = inner.borders.binary_search(&b).expect("affected rows come from borders");
            inner.sets[i] = set;
        }
        inner.valid_lo = gen;
        inner.valid_hi.store(gen, Ordering::Relaxed);
        affected.len()
    }
}

/// One alias: a border station as one shard hosts it.
type Alias = (ShardId, StationId);

/// The cross-shard gateway: alias groups plus per-shard border sets.
/// Owned by a [`ShardedService`](crate::ShardedService) built with
/// [`ShardedServiceBuilder::gateway`](crate::ShardedServiceBuilder::gateway).
#[derive(Debug)]
pub(crate) struct Gateway {
    period: Period,
    /// `groups[g]` = the aliases of one physical border station, sorted by
    /// shard; at most one alias per shard.
    groups: Vec<Vec<Alias>>,
    /// Per shard: `(local border id, group index)`, sorted by local id.
    per_shard: Vec<Vec<(StationId, u32)>>,
    /// Per shard: the lazily refreshed border sets (empty-border shards
    /// hold an empty `BorderSets`).
    tables: Vec<Mutex<Arc<BorderSets>>>,
    /// Per shard: cumulative border rows recomputed by refreshes — the
    /// observable for invalidation-scope tests and bench reporting.
    rows_refreshed: Vec<AtomicU64>,
}

/// Gateway counters surfaced through
/// [`ShardedService::gateway_stats`](crate::ShardedService::gateway_stats).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatewayStats {
    /// Number of border alias groups (physical border stations).
    pub groups: usize,
    /// Per shard: how many of its stations are border aliases.
    pub borders_per_shard: Vec<usize>,
    /// Per shard: cumulative border rows recomputed by feed-driven
    /// refreshes since the service was built.
    pub rows_refreshed: Vec<u64>,
}

impl Gateway {
    /// Builds the gateway over resolved alias groups, precomputing every
    /// shard's border sets against the given (freshly pinned) snapshots.
    ///
    /// # Panics
    ///
    /// When a group has two aliases in one shard, fewer than two shards,
    /// or aliases with diverging transfer times (one physical station must
    /// look the same from every side).
    pub(crate) fn build(groups: Vec<Vec<Alias>>, snaps: &[Arc<NetworkSnapshot>]) -> Gateway {
        let period = snaps
            .first()
            .map(|s| s.network().timetable().period())
            .expect("a sharded service has at least one shard");
        for snap in snaps {
            assert_eq!(
                snap.network().timetable().period(),
                period,
                "cross-shard stitching needs one period across all shards"
            );
        }
        let mut per_shard: Vec<Vec<(StationId, u32)>> = vec![Vec::new(); snaps.len()];
        for (g, aliases) in groups.iter().enumerate() {
            assert!(aliases.len() >= 2, "border group {g} must span at least two shards");
            let mut buffer = None;
            for &(shard, local) in aliases {
                let tt = snaps[shard.idx()].network().timetable();
                let b = tt.transfer_time(local);
                assert!(
                    *buffer.get_or_insert(b) == b,
                    "border group {g} has diverging transfer times across shards"
                );
                per_shard[shard.idx()].push((local, g as u32));
            }
        }
        for (idx, borders) in per_shard.iter_mut().enumerate() {
            borders.sort_unstable();
            assert!(
                borders.windows(2).all(|w| w[0].0 != w[1].0),
                "shard {idx} hosts one station in two border groups"
            );
        }
        let tables = per_shard
            .iter()
            .zip(snaps)
            .map(|(borders, snap)| {
                let locals = Arc::new(borders.iter().map(|&(b, _)| b).collect::<Vec<_>>());
                Mutex::new(Arc::new(BorderSets::build(snap.network(), locals)))
            })
            .collect();
        let rows_refreshed = snaps.iter().map(|_| AtomicU64::new(0)).collect();
        Gateway { period, groups, per_shard, tables, rows_refreshed }
    }

    /// Resolves [`BorderSpec::ByName`] against the shard snapshots: every
    /// station name hosted by ≥ 2 shards — at most once each, so the alias
    /// is unambiguous — forms one group. Groups come out sorted by their
    /// first alias, deterministically.
    pub(crate) fn groups_by_name(snaps: &[Arc<NetworkSnapshot>]) -> Vec<Vec<Alias>> {
        use std::collections::BTreeMap;
        // name → aliases; `None` marks a name ambiguous within one shard.
        let mut by_name: BTreeMap<&str, Option<Vec<Alias>>> = BTreeMap::new();
        for (idx, snap) in snaps.iter().enumerate() {
            let tt = snap.network().timetable();
            for (s, station) in tt.stations().iter().enumerate() {
                let alias = (ShardId(idx as u32), StationId(s as u32));
                let entry =
                    by_name.entry(station.name.as_str()).or_insert_with(|| Some(Vec::new()));
                let dup_in_shard = matches!(
                    entry,
                    Some(aliases) if aliases.last().is_some_and(|&(shard, _)| shard == alias.0)
                );
                if dup_in_shard {
                    *entry = None;
                } else if let Some(aliases) = entry {
                    aliases.push(alias);
                }
            }
        }
        let mut groups: Vec<Vec<Alias>> =
            by_name.into_values().flatten().filter(|aliases| aliases.len() >= 2).collect();
        groups.sort_unstable();
        groups
    }

    /// The border group hosting `(shard, local)`, if it is a border alias.
    fn group_of(&self, shard: usize, local: StationId) -> Option<usize> {
        let borders = &self.per_shard[shard];
        borders.binary_search_by_key(&local, |&(b, _)| b).ok().map(|i| borders[i].1 as usize)
    }

    /// Pins every shard's border sets fresh for the given snapshots (one
    /// consistent cut — the snapshots were pinned up front by the caller).
    /// Feed-driven refreshes are scoped per shard: an untouched shard's
    /// `Arc` is returned as-is.
    pub(crate) fn sets_for(&self, snaps: &[Arc<NetworkSnapshot>]) -> Vec<Arc<BorderSets>> {
        snaps
            .iter()
            .enumerate()
            .map(|(idx, snap)| {
                let net = snap.network();
                let mut slot = self.tables[idx].lock().expect("gateway table lock poisoned");
                if slot.is_fresh_for(net) {
                    return Arc::clone(&slot);
                }
                if slot.built_epoch != net.epoch() || net.generation() < slot.valid_lo {
                    // Another epoch, or a snapshot pinned *before* the
                    // shared sets' range (a concurrent batch refreshed
                    // past it): serve a one-off build for exactly this
                    // state without regressing the shared slot.
                    return Arc::new(BorderSets::build(net, Arc::clone(&slot.borders)));
                }
                let rows = BorderSets::refresh_shared(&mut slot, net);
                self.rows_refreshed[idx].fetch_add(rows as u64, Ordering::Relaxed);
                Arc::clone(&slot)
            })
            .collect()
    }

    pub(crate) fn stats(&self) -> GatewayStats {
        GatewayStats {
            groups: self.groups.len(),
            borders_per_shard: self.per_shard.iter().map(Vec::len).collect(),
            rows_refreshed: self.rows_refreshed.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        }
    }

    /// Stitches the cross-shard profile `dist(source, target, ·)` from
    /// within-shard profile sets. `one_to_all` answers a shard-local
    /// one-to-all against the pinned snapshots (the service routes it
    /// through the owning shard's engine, so source searches share the
    /// per-shard cache stripes). Returns the stitched profile plus the
    /// number of dominated border candidates pruned before the final
    /// merge.
    pub(crate) fn stitch(
        &self,
        snaps: &[Arc<NetworkSnapshot>],
        sets: &[Arc<BorderSets>],
        one_to_all: &dyn Fn(usize, StationId) -> Arc<ProfileSet>,
        source: (usize, StationId),
        target: (usize, StationId),
    ) -> (Profile, u64) {
        let period = self.period;
        let buffer_at =
            |shard: usize, b: StationId| snaps[shard].network().timetable().transfer_time(b);
        let aliases_of = |loc: (usize, StationId)| -> Vec<(usize, StationId)> {
            match self.group_of(loc.0, loc.1) {
                Some(g) => self.groups[g].iter().map(|&(sh, b)| (sh.idx(), b)).collect(),
                None => vec![loc],
            }
        };
        let source_aliases = aliases_of(source);
        let target_aliases = aliases_of(target);
        let tgt_group = self.group_of(target.0, target.1);

        // Seed: one source search per shard hosting the source; its profile
        // to each border group, and directly to the target where co-hosted.
        let mut d: Vec<Profile> = vec![Profile::EMPTY; self.groups.len()];
        let mut answer = Profile::EMPTY;
        for &(sh, s_local) in &source_aliases {
            let set = one_to_all(sh, s_local);
            for &(b_local, g) in &self.per_shard[sh] {
                d[g as usize].merge(set.profile(b_local), period);
            }
            for &(tsh, t_local) in &target_aliases {
                if tsh == sh {
                    answer.merge(set.profile(t_local), period);
                }
            }
        }

        // Relax border → border links to a fixpoint. An optimal journey
        // visits each border group at most once (returning to a station
        // can never improve a FIFO profile), so `groups` rounds suffice;
        // in practice the loop exits after the longest optimal chain.
        for _round in 0..=self.groups.len() {
            let mut changed = false;
            for g in 0..self.groups.len() {
                if d[g].is_empty() {
                    continue;
                }
                let dg = d[g].clone();
                for &(sh, b_local) in &self.groups[g] {
                    let sh = sh.idx();
                    let set = sets[sh].set(b_local);
                    let buffer = buffer_at(sh, b_local);
                    for &(c_local, h) in &self.per_shard[sh] {
                        if h as usize == g || set.profile(c_local).is_empty() {
                            continue;
                        }
                        let cand = dg.link_profile(set.profile(c_local), buffer, period);
                        changed |= d[h as usize].merge(&cand, period);
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Collect the per-group candidates to the target and Pareto-reduce
        // them (multicriteria dominance over whole profiles) before the
        // final merge.
        let mut candidates: Vec<(usize, Profile)> = Vec::new();
        for (g, dg) in d.iter().enumerate() {
            if dg.is_empty() {
                continue;
            }
            if tgt_group == Some(g) {
                // Arriving at the target's own group IS arriving at the
                // target (one physical station).
                candidates.push((g, dg.clone()));
                continue;
            }
            for &(sh, b_local) in &self.groups[g] {
                let sh = sh.idx();
                for &(tsh, t_local) in &target_aliases {
                    if tsh != sh {
                        continue;
                    }
                    let onward = sets[sh].set(b_local).profile(t_local);
                    if onward.is_empty() {
                        continue;
                    }
                    let buffer = buffer_at(sh, b_local);
                    candidates.push((g, dg.link_profile(onward, buffer, period)));
                }
            }
        }
        let total = candidates.len();
        let kept = prune_dominated_profiles(candidates, period);
        let pruned = (total - kept.len()) as u64;
        for (_, cand) in kept {
            answer.merge(&cand, period);
        }
        (answer, pruned)
    }
}
