//! Journey extraction: turning a best *arrival time* into the actual
//! itinerary — which trains to board, where, and when.
//!
//! The paper's algorithms compute distance functions; a downstream journey
//! planner also needs the path. This module runs a time-query with parent
//! pointers over the realistic time-dependent graph and unpacks the node
//! path into train legs: consecutive route edges ridden on the same train
//! merge into one leg, board/alight edges become transfers.

use pt_core::{Dur, NodeId, StationId, Time, TrainId, INFINITY};
use pt_heap::BinaryHeap;

use crate::network::Network;

/// One leg of a journey: stay on `train` from `from` (departing `dep`) to
/// `to` (arriving `arr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Leg {
    /// The train ridden.
    pub train: TrainId,
    /// Boarding station.
    pub from: StationId,
    /// Alighting station.
    pub to: StationId,
    /// Departure time at `from`.
    pub dep: Time,
    /// Arrival time at `to`.
    pub arr: Time,
}

/// A reconstructed itinerary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Journey {
    /// Train legs in travel order (non-empty).
    pub legs: Vec<Leg>,
    /// Requested departure time at the source.
    pub query_dep: Time,
}

impl Journey {
    /// Departure of the first leg.
    pub fn dep(&self) -> Time {
        self.legs.first().expect("journeys have legs").dep
    }

    /// Arrival of the last leg.
    pub fn arr(&self) -> Time {
        self.legs.last().expect("journeys have legs").arr
    }

    /// Number of train changes.
    pub fn transfers(&self) -> usize {
        self.legs.len() - 1
    }

    /// Total duration from the *requested* departure (waiting included).
    pub fn dur(&self) -> Dur {
        self.arr() - self.query_dep
    }
}

impl std::fmt::Display for Journey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, leg) in self.legs.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(
                f,
                "{} {} → {} ({}, dep {}, arr {})",
                leg.train,
                leg.from,
                leg.to,
                leg.arr - leg.dep,
                leg.dep,
                leg.arr
            )?;
        }
        Ok(())
    }
}

/// Computes the earliest-arrival journey from `source` (departing at
/// absolute `dep`) to `target`; `None` if unreachable or `source == target`.
pub fn earliest_journey(
    net: &Network,
    source: StationId,
    dep: Time,
    target: StationId,
) -> Option<Journey> {
    if source == target {
        return None;
    }
    let g = net.graph();
    let n = g.num_nodes();
    let mut arr: Vec<Time> = vec![INFINITY; n];
    let mut parent: Vec<u32> = vec![u32::MAX; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new(n);

    let src = g.station_node(source);
    let tgt = g.station_node(target);
    arr[src.idx()] = dep;
    heap.push_or_decrease(src.idx(), dep.secs() as u64);

    while let Some((slot, key)) = heap.pop() {
        let v = NodeId::from_idx(slot);
        let t = Time(key as u32);
        arr[slot] = t;
        settled[slot] = true;
        if v == tgt {
            break;
        }
        let from_source = v == src;
        for e in g.edges(v) {
            let ta = if from_source { g.eval_edge_free_transfer(e, t) } else { g.eval_edge(e, t) };
            if ta.is_infinite() || settled[e.head.idx()] {
                continue;
            }
            if heap.key_of(e.head.idx()).is_none_or(|k| (ta.secs() as u64) < k) {
                heap.push_or_decrease(e.head.idx(), ta.secs() as u64);
                parent[e.head.idx()] = slot as u32;
            }
        }
    }
    if !settled[tgt.idx()] {
        return None;
    }

    // Node path source → target.
    let mut path = vec![tgt];
    while *path.last().expect("non-empty") != src {
        let p = parent[path.last().expect("non-empty").idx()];
        debug_assert_ne!(p, u32::MAX, "broken parent chain");
        path.push(NodeId(p));
    }
    path.reverse();

    // Unpack into train legs: a maximal run of route edges is one leg.
    let routes = net.routes();
    let tt = net.timetable();
    let period = tt.period();
    let mut legs: Vec<Leg> = Vec::new();
    for w in path.windows(2) {
        let (v, u) = (w[0], w[1]);
        let (Some((route, stop_v)), Some((route_u, stop_u))) =
            (g.route_node_info(v), g.route_node_info(u))
        else {
            continue; // board or alight edge
        };
        if route != route_u || stop_u != stop_v + 1 {
            continue; // re-board at the same station (rare); handled as board
        }
        // Identify the train ridden on this hop: the one departing next at
        // or after our arrival time at v.
        let t_here = arr[v.idx()];
        let hop = stop_v as usize;
        let train = routes
            .route(route)
            .trains
            .iter()
            .copied()
            .min_by_key(|&z| {
                let c = tt.connection(routes.connection_at(z, hop));
                period.delta(period.local(t_here), c.dep)
            })
            .expect("route has trains");
        let c = tt.connection(routes.connection_at(train, hop));
        let leg_dep = t_here + period.delta(period.local(t_here), c.dep);
        let leg_arr = leg_dep + c.dur();
        match legs.last_mut() {
            // Staying on the same train: extend the leg.
            Some(last) if last.train == train && last.to == c.from => {
                last.to = c.to;
                last.arr = leg_arr;
            }
            _ => legs.push(Leg { train, from: c.from, to: c.to, dep: leg_dep, arr: leg_arr }),
        }
    }
    if legs.is_empty() {
        return None;
    }
    Some(Journey { legs, query_dep: dep })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time_query;
    use pt_core::Period;
    use pt_timetable::synthetic::city::{generate_city, CityConfig};
    use pt_timetable::TimetableBuilder;

    fn line_net() -> (Network, Vec<StationId>) {
        let mut b = TimetableBuilder::new(Period::DAY);
        let s: Vec<_> =
            (0..4).map(|i| b.add_named_station(format!("{i}"), Dur::minutes(4))).collect();
        // Line 1: 0 → 1 → 2, hourly.
        for h in [8, 9] {
            b.add_simple_trip(
                &[s[0], s[1], s[2]],
                Time::hm(h, 0),
                &[Dur::minutes(10), Dur::minutes(10)],
                Dur::minutes(1),
            )
            .unwrap();
        }
        // Line 2: 2 → 3 at 08:30 and 09:30.
        for (h, m) in [(8, 30), (9, 30)] {
            b.add_simple_trip(&[s[2], s[3]], Time::hm(h, m), &[Dur::minutes(15)], Dur::ZERO)
                .unwrap();
        }
        (Network::new(b.build().unwrap()), s)
    }

    #[test]
    fn single_train_is_one_leg() {
        let (net, s) = line_net();
        let j = earliest_journey(&net, s[0], Time::hm(7, 45), s[2]).unwrap();
        assert_eq!(j.legs.len(), 1);
        assert_eq!(j.transfers(), 0);
        let leg = j.legs[0];
        assert_eq!((leg.from, leg.to), (s[0], s[2]));
        assert_eq!((leg.dep, leg.arr), (Time::hm(8, 0), Time::hm(8, 21)));
        assert_eq!(j.dur(), Dur::minutes(36)); // 15 wait + 21 travel
    }

    #[test]
    fn transfer_splits_legs_and_matches_time_query() {
        let (net, s) = line_net();
        let j = earliest_journey(&net, s[0], Time::hm(7, 45), s[3]).unwrap();
        assert_eq!(j.legs.len(), 2);
        assert_eq!(j.transfers(), 1);
        // Arrive at 2 at 08:21, T(2) = 4 min, catch the 08:30, arrive 08:45.
        assert_eq!(j.legs[1].dep, Time::hm(8, 30));
        assert_eq!(j.arr(), Time::hm(8, 45));
        let want = time_query::earliest_arrival(&net, s[0], Time::hm(7, 45), s[3]);
        assert_eq!(j.arr(), want);
    }

    #[test]
    fn legs_are_chronologically_consistent() {
        let net = Network::new(generate_city(&CityConfig::sized(36, 5, 77)));
        let mut found = 0;
        for (a, b) in [(0u32, 30u32), (5, 22), (17, 3), (30, 0), (11, 35)] {
            let Some(j) = earliest_journey(&net, StationId(a), Time::hm(7, 30), StationId(b))
            else {
                continue;
            };
            found += 1;
            // Arrival equals the scalar optimum.
            let want =
                time_query::earliest_arrival(&net, StationId(a), Time::hm(7, 30), StationId(b));
            assert_eq!(j.arr(), want, "{a}→{b}");
            // Legs chain: consecutive stations match, times ordered, and
            // train changes respect the transfer time.
            for w in j.legs.windows(2) {
                assert_eq!(w[0].to, w[1].from);
                let buffer = net.timetable().transfer_time(w[0].to);
                assert!(
                    w[1].dep >= w[0].arr + buffer,
                    "transfer at {} too tight: arr {} dep {}",
                    w[0].to,
                    w[0].arr,
                    w[1].dep
                );
            }
            assert_eq!(j.legs[0].from, StationId(a));
            assert_eq!(j.legs.last().unwrap().to, StationId(b));
        }
        assert!(found >= 3, "too few reachable test pairs");
    }

    #[test]
    fn unreachable_and_trivial_queries() {
        let (net, s) = line_net();
        assert!(earliest_journey(&net, s[0], Time::hm(8, 0), s[0]).is_none());
        // 3 has no outgoing service, so 3 → 0 is unreachable.
        assert!(earliest_journey(&net, s[3], Time::hm(8, 0), s[0]).is_none());
    }

    #[test]
    fn display_is_humane() {
        let (net, s) = line_net();
        let j = earliest_journey(&net, s[0], Time::hm(7, 45), s[3]).unwrap();
        let text = j.to_string();
        assert!(text.contains("→"), "{text}");
        assert!(text.lines().count() == 2, "{text}");
    }
}
