//! Partition of trains into *routes* (paper, §2).
//!
//! Two trains are equivalent if they run through the same sequence of
//! stations. The realistic time-dependent model creates one route node per
//! (route, station) pair, and its route edges carry the travel-time PLFs of
//! all trains on the route — which is only sound if no train *overtakes*
//! another on any leg (otherwise the edge function would silently drop the
//! overtaken train) **and** no two trains of the route are ever catchably
//! co-dwelling at an intermediate station: a rider chained along the route
//! nodes arrives at station `i` at `arr_i(B)` and the hop PLF hands them
//! the first departure at or after that instant — if an *earlier* train `A`
//! of the route is still in the station (`dep_i(A) >= arr_i(B)`), the model
//! would board `A` without paying the station's transfer time, fabricating
//! a connection faster than the timetable allows. We therefore split each
//! stop-sequence equivalence class further, greedily, so that within one
//! route all legs are FIFO — departures strictly increasing and arrivals
//! strictly increasing on every hop — and every train *leaves* each
//! intermediate station strictly before its successor arrives there
//! (`dep_i(k) < arr_i(k+1)`, linearly and across the period wrap).
//! Schedules rarely violate the dwell condition, but a `from_hop >= 1`
//! delay stretches exactly one dwell and can manufacture it.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use pt_core::{ConnId, RouteId, StationId, Time, TrainId};

use crate::delay::{DelayPatch, FeedPatch};
use crate::model::Timetable;

/// One route: a maximal overtaking-free set of trains sharing a stop
/// sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteInfo {
    /// The stop sequence (length ≥ 2).
    pub stations: Vec<StationId>,
    /// Trains on this route, ordered by departure at the first stop.
    pub trains: Vec<TrainId>,
}

impl RouteInfo {
    /// Number of hops (edges) of the route.
    #[inline]
    pub fn num_hops(&self) -> usize {
        self.stations.len() - 1
    }
}

/// The route partition of a timetable.
///
/// Every aggregate is individually `Arc`-shared so a clone is O(routes +
/// trains) refcount bumps and the incremental followers
/// ([`Routes::repatch_feed`], [`Routes::refit`]) copy-on-write only the
/// routes and per-train lists they actually rewrite — the rest stays
/// physically shared with any snapshot cloned earlier.
#[derive(Debug, Clone)]
pub struct Routes {
    routes: Vec<Arc<RouteInfo>>,
    /// Route of each train, indexed by [`TrainId`]. Rewritten only by
    /// [`Routes::refit`] (topology change), never by a plain repatch.
    train_route: Arc<Vec<RouteId>>,
    /// Connections of each train ordered by hop index, indexed by [`TrainId`].
    train_conns: Vec<Arc<Vec<ConnId>>>,
}

impl Routes {
    /// Computes the route partition. Deterministic: routes are numbered by
    /// stop sequence, then by departure of their first train.
    pub fn partition(tt: &Timetable) -> Routes {
        // Connections of every train, ordered by hop index.
        let mut train_conns: Vec<Vec<ConnId>> = vec![Vec::new(); tt.num_trains()];
        for (i, c) in tt.connections().iter().enumerate() {
            train_conns[c.train.idx()].push(ConnId::from_idx(i));
        }
        for conns in &mut train_conns {
            conns.sort_unstable_by_key(|&c| tt.connection(c).seq);
            debug_assert!(
                conns.windows(2).all(|w| { tt.connection(w[0]).to == tt.connection(w[1]).from }),
                "train journey is not contiguous"
            );
        }

        // Group trains by stop sequence (BTreeMap for determinism).
        let mut groups: BTreeMap<Vec<StationId>, Vec<TrainId>> = BTreeMap::new();
        for (t, conns) in train_conns.iter().enumerate() {
            if conns.is_empty() {
                continue;
            }
            let mut seq = Vec::with_capacity(conns.len() + 1);
            seq.push(tt.connection(conns[0]).from);
            for &c in conns {
                seq.push(tt.connection(c).to);
            }
            groups.entry(seq).or_default().push(TrainId::from_idx(t));
        }

        let mut routes = Vec::new();
        let mut train_route = vec![RouteId(u32::MAX); tt.num_trains()];
        let pi = tt.period().len();
        for (stations, mut trains) in groups {
            trains.sort_unstable_by_key(|&t| (tt.connection(train_conns[t.idx()][0]).dep, t));
            // Greedy first-fit split into overtaking- and co-dwell-free
            // subroutes. Per subroute: its trains, and per train the
            // (dep, arr) legs.
            type Subroute = (Vec<TrainId>, Vec<Vec<(Time, Time)>>);
            let hops = stations.len() - 1;
            let mut subroutes: Vec<Subroute> = Vec::new();
            'train: for &t in &trains {
                let legs: Vec<(Time, Time)> = train_conns[t.idx()]
                    .iter()
                    .map(|&c| {
                        let c = tt.connection(c);
                        (c.dep, c.arr)
                    })
                    .collect();
                for (members, hop_points) in &mut subroutes {
                    if fits(hop_points, &legs, pi) {
                        for (h, &leg) in legs.iter().enumerate() {
                            hop_points[h].push(leg); // `fits` admits only appends
                        }
                        members.push(t);
                        continue 'train;
                    }
                }
                let mut hop_points = vec![Vec::new(); hops];
                for (h, &leg) in legs.iter().enumerate() {
                    hop_points[h].push(leg);
                }
                subroutes.push((vec![t], hop_points));
            }
            for (members, _) in subroutes {
                let id = RouteId::from_idx(routes.len());
                for &t in &members {
                    train_route[t.idx()] = id;
                }
                routes.push(Arc::new(RouteInfo { stations: stations.clone(), trains: members }));
            }
        }
        Routes {
            routes,
            train_route: Arc::new(train_route),
            train_conns: train_conns.into_iter().map(Arc::new).collect(),
        }
    }

    /// Iterates over all routes in [`RouteId`] order.
    #[inline]
    pub fn iter_routes(&self) -> impl Iterator<Item = &RouteInfo> {
        self.routes.iter().map(|r| &**r)
    }

    /// A single route.
    #[inline]
    pub fn route(&self, r: RouteId) -> &RouteInfo {
        &self.routes[r.idx()]
    }

    /// Number of routes.
    #[inline]
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// `true` iff the timetable has no trains.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// The route a train belongs to.
    #[inline]
    pub fn route_of(&self, t: TrainId) -> RouteId {
        self.train_route[t.idx()]
    }

    /// The connections of a train, ordered by hop index.
    #[inline]
    pub fn train_connections(&self, t: TrainId) -> &[ConnId] {
        &self.train_conns[t.idx()]
    }

    /// The connection of train `t` on hop `hop` of its route.
    #[inline]
    pub fn connection_at(&self, t: TrainId, hop: usize) -> ConnId {
        self.train_conns[t.idx()][hop]
    }

    /// How many routes of `self` are *physically shared* (same allocation,
    /// by refcount) with `other`. Diagnostics for the copy-on-write publish
    /// path, the route-level analogue of
    /// [`Timetable::shared_buckets_with`].
    pub fn shared_routes_with(&self, other: &Routes) -> usize {
        self.routes.iter().zip(&other.routes).filter(|(a, b)| Arc::ptr_eq(a, b)).count()
    }

    /// A fully unshared copy: every route block and train list is
    /// reallocated (see [`Timetable::deep_clone`]).
    pub fn deep_clone(&self) -> Routes {
        Routes {
            routes: self.routes.iter().map(|r| Arc::new((**r).clone())).collect(),
            train_route: Arc::new((*self.train_route).clone()),
            train_conns: self.train_conns.iter().map(|c| Arc::new((**c).clone())).collect(),
        }
    }

    /// Follows a [`Timetable::patch_delay`]: rewrites every remapped
    /// [`ConnId`] in the per-train connection lists and restores the
    /// "trains ordered by first-stop departure" invariant on the delayed
    /// train's route. The partition itself (which trains share a route) is
    /// deliberately **not** recomputed — call [`Routes::route_is_fifo`] on
    /// the delayed route afterwards to learn whether it is still valid, and
    /// fall back to a fresh [`Routes::partition`] if not.
    ///
    /// `tt` must be the already-patched timetable the patch came from.
    pub fn repatch(&mut self, tt: &Timetable, patch: &DelayPatch) {
        if !patch.changed {
            return;
        }
        self.apply_remap(tt, &patch.remapped);
        let r = self.train_route[patch.train.idx()];
        if r != RouteId(u32::MAX) {
            self.resort_route_trains(tt, r);
        }
    }

    /// The multi-train analogue of [`Routes::repatch`], following a
    /// [`Timetable::patch_feed`]: rewrites every remapped [`ConnId`] once
    /// and restores the train order on **each** route that carries a
    /// net-changed train, returning those routes sorted and deduplicated —
    /// each appears exactly once, so the caller rewrites (or refits) every
    /// touched route exactly once regardless of how many feed events hit
    /// it. The partition itself is not recomputed; run
    /// [`Routes::route_is_fifo`] on the returned routes and
    /// [`Routes::refit`] the ones that fail.
    pub fn repatch_feed(&mut self, tt: &Timetable, patch: &FeedPatch) -> Vec<RouteId> {
        if !patch.changed {
            return Vec::new();
        }
        self.apply_remap(tt, &patch.remapped);
        let mut touched: Vec<RouteId> = patch
            .trains
            .iter()
            .map(|&t| self.train_route[t.idx()])
            .filter(|&r| r != RouteId(u32::MAX))
            .collect();
        touched.sort_unstable();
        touched.dedup();
        for &r in &touched {
            self.resort_route_trains(tt, r);
        }
        touched
    }

    /// Rewrites every remapped [`ConnId`] in the per-train connection lists.
    fn apply_remap(&mut self, tt: &Timetable, remapped: &[(ConnId, ConnId)]) {
        if remapped.is_empty() {
            return;
        }
        let map: HashMap<ConnId, ConnId> = remapped.iter().copied().collect();
        // Trains owning a moved connection (read at the new id).
        let mut trains: Vec<TrainId> =
            remapped.iter().map(|&(_, n)| tt.connection(n).train).collect();
        trains.sort_unstable();
        trains.dedup();
        for t in trains {
            // Copy-on-touch: only the lists of trains that actually own a
            // moved connection are cloned out of sharing.
            for c in Arc::make_mut(&mut self.train_conns[t.idx()]).iter_mut() {
                if let Some(&n) = map.get(c) {
                    *c = n;
                }
            }
        }
    }

    /// Restores the "trains ordered by first-stop departure" invariant of
    /// one route.
    fn resort_route_trains(&mut self, tt: &Timetable, r: RouteId) {
        let train_conns = &self.train_conns;
        Arc::make_mut(&mut self.routes[r.idx()])
            .trains
            .sort_unstable_by_key(|&t| (tt.connection(train_conns[t.idx()][0]).dep, t));
    }

    /// Re-splits each of the given (presumed non-FIFO) routes into
    /// overtaking-free subroutes — the *scoped* fallback when a delay makes
    /// a train overtake a companion: only the offending routes are
    /// repartitioned, every other route keeps its id and trains. The first
    /// subroute reuses the stale [`RouteId`]; extra subroutes are appended
    /// at fresh ids (so the graph must be rebuilt afterwards — route-node
    /// topology changed — but the partition work is proportional to the
    /// offending routes, not the whole timetable).
    ///
    /// Any finer-than-maximal split is a *sound* partition for the
    /// realistic time-dependent model, so queries on the refit partition
    /// are identical to a from-scratch [`Routes::partition`]. Each
    /// resulting route passes [`Routes::route_is_fifo`] by construction —
    /// refit and partition share the exact same fit check, which covers the
    /// per-hop FIFO, cyclic, and co-dwell conditions.
    pub fn refit(&mut self, tt: &Timetable, stale: &[RouteId]) {
        let pi = tt.period().len();
        for &r in stale {
            let info = &self.routes[r.idx()];
            if info.trains.len() <= 1 {
                continue; // a single train can never overtake itself
            }
            let stations = info.stations.clone();
            let trains = info.trains.clone();
            let hops = stations.len() - 1;
            type Subroute = (Vec<TrainId>, Vec<Vec<(Time, Time)>>);
            let mut subroutes: Vec<Subroute> = Vec::new();
            'train: for &t in &trains {
                let legs: Vec<(Time, Time)> = self.train_conns[t.idx()]
                    .iter()
                    .map(|&c| {
                        let c = tt.connection(c);
                        (c.dep, c.arr)
                    })
                    .collect();
                for (members, hop_points) in &mut subroutes {
                    if fits(hop_points, &legs, pi) {
                        for (h, &leg) in legs.iter().enumerate() {
                            hop_points[h].push(leg); // `fits` admits only appends
                        }
                        members.push(t);
                        continue 'train;
                    }
                }
                let mut hop_points = vec![Vec::new(); hops];
                for (h, &leg) in legs.iter().enumerate() {
                    hop_points[h].push(leg);
                }
                subroutes.push((vec![t], hop_points));
            }
            let mut subroutes = subroutes.into_iter();
            let (first, _) = subroutes.next().expect("a non-empty route splits non-trivially");
            Arc::make_mut(&mut self.routes[r.idx()]).trains = first;
            for (members, _) in subroutes {
                let id = RouteId::from_idx(self.routes.len());
                for &t in &members {
                    Arc::make_mut(&mut self.train_route)[t.idx()] = id;
                }
                self.routes
                    .push(Arc::new(RouteInfo { stations: stations.clone(), trains: members }));
            }
            debug_assert!(self.route_is_fifo(tt, r), "refit left route {r:?} non-FIFO");
        }
    }

    /// `true` iff route `r` still satisfies everything the realistic
    /// time-dependent model requires of a route (see the module docs): in
    /// train order, per hop, departures strictly increasing and arrivals
    /// strictly increasing; no arrival a full period (or more) after the
    /// hop's earliest (the cyclic condition of [`pt_core::Plf::is_fifo`]);
    /// and at every intermediate station each train departs strictly before
    /// its successor arrives — linearly and across the period wrap.
    /// [`Routes::partition`] and [`Routes::refit`] guarantee all of this by
    /// construction; a delay can break any of it, at which point the
    /// offending routes must be refit.
    pub fn route_is_fifo(&self, tt: &Timetable, r: RouteId) -> bool {
        let info = &self.routes[r.idx()];
        let pi = tt.period().len() as u64;
        let mut legs: Vec<(Time, Time)> = Vec::with_capacity(info.trains.len());
        let mut prev_legs: Vec<(Time, Time)> = Vec::new();
        for hop in 0..info.num_hops() {
            legs.clear();
            legs.extend(info.trains.iter().map(|&t| {
                let c = tt.connection(self.connection_at(t, hop));
                (c.dep, c.arr)
            }));
            // Checked in *train order*, not sorted: sorting per hop would
            // hide trains swapping places between hops.
            if !legs.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1) {
                return false;
            }
            if let (Some(f), Some(l)) = (legs.first(), legs.last()) {
                if l.1.secs() as u64 >= f.1.secs() as u64 + pi {
                    return false;
                }
            }
            if hop > 0 {
                // At the station between hop-1 and hop: train k must leave
                // before train k+1 arrives (consecutive pairs suffice —
                // departures increase), and the last train must leave before
                // the first train's next-period arrival.
                if !legs.iter().zip(prev_legs.iter().skip(1)).all(|(cur, nxt)| cur.0 < nxt.1) {
                    return false;
                }
                if let (Some(l), Some(f)) = (legs.last(), prev_legs.first()) {
                    if l.0.secs() as u64 >= f.1.secs() as u64 + pi {
                        return false;
                    }
                }
            }
            std::mem::swap(&mut prev_legs, &mut legs);
        }
        true
    }
}

/// Can `legs` join the subroute as its new *last* train? Candidates are
/// scanned in order of first-hop departure, so a train that joins always
/// appends, on every hop. Enforces, per hop, everything
/// [`Routes::route_is_fifo`] later checks: the newcomer departs and arrives
/// strictly after the current last train; its arrival stays within one
/// period of the hop's earliest; and at the station the hop departs from
/// (intermediate stations only) the current last train leaves strictly
/// before the newcomer arrives, while the newcomer leaves strictly before
/// the first train's next-period arrival.
fn fits(hop_points: &[Vec<(Time, Time)>], legs: &[(Time, Time)], pi: u32) -> bool {
    let pi = pi as u64;
    legs.iter().enumerate().all(|(h, &(dep, arr))| {
        let points = &hop_points[h];
        let (Some(&first), Some(&last)) = (points.first(), points.last()) else {
            return true;
        };
        if dep <= last.0 || arr <= last.1 {
            return false; // would not extend the hop's strict FIFO order
        }
        if arr.secs() as u64 >= first.1.secs() as u64 + pi {
            return false; // cyclic: arrival a full period after the earliest
        }
        if h > 0 {
            // No catchable co-dwell at the station this hop departs from.
            if last.0 >= legs[h - 1].1 {
                return false; // current last train still there when we arrive
            }
            if dep.secs() as u64 >= hop_points[h - 1][0].1.secs() as u64 + pi {
                return false; // we'd still be there when the first train wraps
            }
        }
        true
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TimetableBuilder;
    use pt_core::{Dur, Period};

    fn line(b: &mut TimetableBuilder, path: &[StationId], starts: &[Time], leg: Dur) {
        let legs = vec![leg; path.len() - 1];
        for &s in starts {
            b.add_simple_trip(path, s, &legs, Dur::ZERO).unwrap();
        }
    }

    #[test]
    fn same_sequence_same_route() {
        let mut b = TimetableBuilder::new(Period::DAY);
        let s: Vec<_> = (0..3).map(|i| b.add_named_station(format!("{i}"), Dur::ZERO)).collect();
        line(&mut b, &[s[0], s[1], s[2]], &[Time::hm(8, 0), Time::hm(9, 0)], Dur::minutes(10));
        let tt = b.build().unwrap();
        let routes = Routes::partition(&tt);
        assert_eq!(routes.len(), 1);
        assert_eq!(routes.route(RouteId(0)).trains.len(), 2);
        assert_eq!(routes.route_of(TrainId(0)), routes.route_of(TrainId(1)));
    }

    #[test]
    fn different_sequences_different_routes() {
        let mut b = TimetableBuilder::new(Period::DAY);
        let s: Vec<_> = (0..3).map(|i| b.add_named_station(format!("{i}"), Dur::ZERO)).collect();
        line(&mut b, &[s[0], s[1], s[2]], &[Time::hm(8, 0)], Dur::minutes(10));
        line(&mut b, &[s[2], s[1], s[0]], &[Time::hm(8, 0)], Dur::minutes(10));
        let tt = b.build().unwrap();
        let routes = Routes::partition(&tt);
        assert_eq!(routes.len(), 2);
        assert_ne!(routes.route_of(TrainId(0)), routes.route_of(TrainId(1)));
    }

    #[test]
    fn overtaking_train_is_split_off() {
        let mut b = TimetableBuilder::new(Period::DAY);
        let s: Vec<_> = (0..2).map(|i| b.add_named_station(format!("{i}"), Dur::ZERO)).collect();
        // Slow train departs 08:00, takes 60 min. Express departs 08:10,
        // takes 10 min — it overtakes, so it must land on its own route.
        b.add_simple_trip(&[s[0], s[1]], Time::hm(8, 0), &[Dur::minutes(60)], Dur::ZERO).unwrap();
        b.add_simple_trip(&[s[0], s[1]], Time::hm(8, 10), &[Dur::minutes(10)], Dur::ZERO).unwrap();
        let tt = b.build().unwrap();
        let routes = Routes::partition(&tt);
        assert_eq!(routes.len(), 2);
        assert_ne!(routes.route_of(TrainId(0)), routes.route_of(TrainId(1)));
    }

    #[test]
    fn non_overtaking_trains_share_route() {
        let mut b = TimetableBuilder::new(Period::DAY);
        let s: Vec<_> = (0..2).map(|i| b.add_named_station(format!("{i}"), Dur::ZERO)).collect();
        b.add_simple_trip(&[s[0], s[1]], Time::hm(8, 0), &[Dur::minutes(20)], Dur::ZERO).unwrap();
        b.add_simple_trip(&[s[0], s[1]], Time::hm(8, 10), &[Dur::minutes(20)], Dur::ZERO).unwrap();
        let tt = b.build().unwrap();
        assert_eq!(Routes::partition(&tt).len(), 1);
    }

    #[test]
    fn train_connections_ordered_by_hop() {
        let mut b = TimetableBuilder::new(Period::DAY);
        let s: Vec<_> = (0..4).map(|i| b.add_named_station(format!("{i}"), Dur::ZERO)).collect();
        line(&mut b, &[s[0], s[1], s[2], s[3]], &[Time::hm(6, 0)], Dur::minutes(5));
        let tt = b.build().unwrap();
        let routes = Routes::partition(&tt);
        let conns = routes.train_connections(TrainId(0));
        assert_eq!(conns.len(), 3);
        for (h, &c) in conns.iter().enumerate() {
            assert_eq!(tt.connection(c).seq as usize, h);
            assert_eq!(tt.connection(c).from, s[h]);
        }
        assert_eq!(routes.connection_at(TrainId(0), 2), conns[2]);
    }

    #[test]
    fn repatch_follows_delay_remaps_and_reorders() {
        use crate::delay::Recovery;
        let mut b = TimetableBuilder::new(Period::DAY);
        let s: Vec<_> = (0..3).map(|i| b.add_named_station(format!("{i}"), Dur::ZERO)).collect();
        line(&mut b, &[s[0], s[1], s[2]], &[Time::hm(8, 0), Time::hm(9, 0)], Dur::minutes(10));
        let mut tt = b.build().unwrap();
        let mut routes = Routes::partition(&tt);
        // Delay the 08:00 train to 09:10: it now departs after the 09:00
        // train on every hop (no overtake — it also arrives later).
        let patch = routes_patch(&mut tt, TrainId(0), Dur::minutes(70), Recovery::None);
        assert!(patch.changed && !patch.remapped.is_empty());
        routes.repatch(&tt, &patch);
        // train_connections point at the right (train, hop) again.
        for t in [TrainId(0), TrainId(1)] {
            for (h, &c) in routes.train_connections(t).iter().enumerate() {
                assert_eq!(tt.connection(c).train, t);
                assert_eq!(tt.connection(c).seq as usize, h);
            }
        }
        // The route's trains are re-sorted by first-stop departure…
        let r = routes.route_of(TrainId(0));
        assert_eq!(routes.route(r).trains, vec![TrainId(1), TrainId(0)]);
        // …and the route is still FIFO, identical to a fresh partition.
        assert!(routes.route_is_fifo(&tt, r));
        assert_eq!(Routes::partition(&tt).len(), routes.len());
    }

    #[test]
    fn route_is_fifo_detects_overtaking_delay() {
        use crate::delay::Recovery;
        let mut b = TimetableBuilder::new(Period::DAY);
        let s: Vec<_> = (0..2).map(|i| b.add_named_station(format!("{i}"), Dur::ZERO)).collect();
        line(&mut b, &[s[0], s[1]], &[Time::hm(8, 0), Time::hm(8, 30)], Dur::minutes(10));
        let mut tt = b.build().unwrap();
        let mut routes = Routes::partition(&tt);
        assert_eq!(routes.len(), 1);
        let r = routes.route_of(TrainId(0));
        assert!(routes.route_is_fifo(&tt, r));
        // Delay the 08:00 train to 08:40: it departs after the 08:30 train
        // but arrives after it too — still FIFO. Delay to 08:35 with the
        // same duration: departs later (08:35 > 08:30), arrives 08:45 >
        // 08:40 — still FIFO. Make it *equal* departure instead: broken.
        let patch = routes_patch(&mut tt, TrainId(0), Dur::minutes(30), Recovery::None);
        routes.repatch(&tt, &patch);
        assert!(!routes.route_is_fifo(&tt, r), "equal departures must break FIFO");
    }

    fn routes_patch(
        tt: &mut Timetable,
        train: TrainId,
        delay: Dur,
        rec: crate::delay::Recovery,
    ) -> DelayPatch {
        tt.patch_delay(train, 0, delay, rec)
    }

    #[test]
    fn repatch_feed_touches_each_route_once() {
        use crate::delay::{DelayEvent, Recovery};
        let mut b = TimetableBuilder::new(Period::DAY);
        let s: Vec<_> = (0..4).map(|i| b.add_named_station(format!("{i}"), Dur::ZERO)).collect();
        // Route A: two trains 0/1 over 0→1→2; route B: one train 2 over 3→1.
        line(&mut b, &[s[0], s[1], s[2]], &[Time::hm(8, 0), Time::hm(9, 0)], Dur::minutes(10));
        line(&mut b, &[s[3], s[1]], &[Time::hm(8, 30)], Dur::minutes(5));
        let mut tt = b.build().unwrap();
        let mut routes = Routes::partition(&tt);
        // Three events, two of them on route A's trains: the touched list
        // must still name each route exactly once.
        let patch = tt.patch_feed(&[
            DelayEvent::Delay {
                train: TrainId(0),
                from_hop: 0,
                delay: Dur::minutes(70),
                recovery: Recovery::None,
            },
            DelayEvent::Delay {
                train: TrainId(1),
                from_hop: 0,
                delay: Dur::minutes(5),
                recovery: Recovery::None,
            },
            DelayEvent::Delay {
                train: TrainId(2),
                from_hop: 0,
                delay: Dur::minutes(3),
                recovery: Recovery::None,
            },
        ]);
        assert!(patch.changed);
        let touched = routes.repatch_feed(&tt, &patch);
        assert_eq!(touched.len(), 2, "two distinct routes touched: {touched:?}");
        let mut expect = vec![routes.route_of(TrainId(0)), routes.route_of(TrainId(2))];
        expect.sort_unstable();
        assert_eq!(touched, expect);
        // Per-train lists point at the right (train, hop) again, and every
        // touched route's trains are re-sorted by first-stop departure.
        for t in [TrainId(0), TrainId(1), TrainId(2)] {
            for (h, &c) in routes.train_connections(t).iter().enumerate() {
                assert_eq!(tt.connection(c).train, t);
                assert_eq!(tt.connection(c).seq as usize, h);
            }
        }
        assert_eq!(
            routes.route(routes.route_of(TrainId(0))).trains,
            vec![TrainId(1), TrainId(0)],
            "delayed train now departs last"
        );
        for &r in &touched {
            assert!(routes.route_is_fifo(&tt, r));
        }
    }

    #[test]
    fn refit_splits_only_the_offending_route() {
        use crate::delay::Recovery;
        let mut b = TimetableBuilder::new(Period::DAY);
        let s: Vec<_> = (0..3).map(|i| b.add_named_station(format!("{i}"), Dur::ZERO)).collect();
        // Route A: trains 0/1 on 0→1; route B: trains 2/3 on 1→2.
        line(&mut b, &[s[0], s[1]], &[Time::hm(8, 0), Time::hm(8, 30)], Dur::minutes(10));
        line(&mut b, &[s[1], s[2]], &[Time::hm(9, 0), Time::hm(9, 30)], Dur::minutes(10));
        let mut tt = b.build().unwrap();
        let mut routes = Routes::partition(&tt);
        assert_eq!(routes.len(), 2);
        let rb = routes.route_of(TrainId(2));
        // Land train 0 exactly on train 1's slot: equal departures on route
        // A break FIFO; route B is untouched.
        let patch = tt.patch_delay(TrainId(0), 0, Dur::minutes(30), Recovery::None);
        let touched = routes.repatch_feed(
            &tt,
            &FeedPatch {
                changed: true,
                event_changed: vec![true],
                trains: vec![TrainId(0)],
                remapped: patch.remapped.clone(),
                touched_stations: vec![s[0]],
            },
        );
        let ra = routes.route_of(TrainId(0));
        assert_eq!(touched, vec![ra]);
        assert!(!routes.route_is_fifo(&tt, ra));
        routes.refit(&tt, &[ra]);
        // The offending route split in two; route B kept its id and trains.
        assert_eq!(routes.len(), 3);
        assert_ne!(routes.route_of(TrainId(0)), routes.route_of(TrainId(1)));
        assert_eq!(routes.route_of(TrainId(2)), rb);
        assert_eq!(routes.route(rb).trains, vec![TrainId(2), TrainId(3)]);
        for r in 0..routes.len() {
            assert!(routes.route_is_fifo(&tt, RouteId::from_idx(r)), "route {r} not FIFO");
        }
        // The split partition answers like a fresh one: same train sets per
        // stop sequence, every route FIFO (soundness is what matters — the
        // fresh partition may group differently but both are valid).
        let fresh = Routes::partition(&tt);
        for r in 0..fresh.len() {
            assert!(fresh.route_is_fifo(&tt, RouteId::from_idx(r)));
        }
    }

    #[test]
    fn equal_departure_on_a_hop_splits() {
        let mut b = TimetableBuilder::new(Period::DAY);
        let s: Vec<_> = (0..2).map(|i| b.add_named_station(format!("{i}"), Dur::ZERO)).collect();
        b.add_simple_trip(&[s[0], s[1]], Time::hm(8, 0), &[Dur::minutes(10)], Dur::ZERO).unwrap();
        b.add_simple_trip(&[s[0], s[1]], Time::hm(8, 0), &[Dur::minutes(12)], Dur::ZERO).unwrap();
        let tt = b.build().unwrap();
        assert_eq!(Routes::partition(&tt).len(), 2);
    }
}
