//! Delay injection — the *fully dynamic scenario* of the paper (§5.1):
//! because SPCS needs no preprocessing, "we can directly use this approach
//! in a fully dynamic scenario" where trains run late and the timetable
//! changes between queries (Müller-Hannemann, Schnee, Frede '08).
//!
//! [`Timetable::patch_delay`] updates a timetable **in place** so a train
//! runs late from a given hop onward, with the delay optionally decaying at
//! later stops (catch-up through schedule slack); the pure [`apply_delay`]
//! is a thin clone-then-patch wrapper. A live GTFS-RT-style stream is
//! served by [`Timetable::patch_feed`], which applies a whole batch of
//! [`DelayEvent`]s — delays *and* cancellations (re-announcing the
//! published schedule) — in one pass with a single generation bump.
//! Searches on the patched timetable immediately reflect the disruption;
//! only precomputed distance tables must be refreshed (or dropped — queries
//! then fall back to the stopping criterion, staying correct).

use pt_core::{ConnId, Dur, StationId, TrainId};

use crate::model::Timetable;

/// How a delayed train recovers at subsequent stops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// The full delay propagates to every later stop.
    None,
    /// The train catches up `per_hop` at each later hop until on time.
    CatchUp {
        /// Delay recovered per subsequent hop.
        per_hop: Dur,
    },
}

/// One item of a realtime update feed (a GTFS-RT-style stream): either a
/// delay announcement or the *cancellation* of all previous announcements
/// for a train (re-announcing its published schedule times).
///
/// Events are applied in feed order by [`Timetable::patch_feed`]; the result
/// is exactly what applying them one at a time through
/// [`Timetable::patch_delay`] / [`Timetable::patch_cancel`] would produce,
/// but with one coalesced write-back, one re-sort per touched `conn(S)`
/// bucket, one merged [`ConnId`] remap and a single generation bump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayEvent {
    /// `train` runs `delay` late from its `from_hop`-th hop onward,
    /// recovering per [`Recovery`] — the batched form of
    /// [`Timetable::patch_delay`].
    Delay {
        /// The delayed train.
        train: TrainId,
        /// First hop of the train's journey that runs late.
        from_hop: u16,
        /// The announced delay.
        delay: Dur,
        /// How the train recovers at later hops.
        recovery: Recovery,
    },
    /// All delay announcements for `train` are withdrawn: every hop returns
    /// to its published schedule time.
    Cancel {
        /// The train whose announcements are withdrawn.
        train: TrainId,
    },
}

impl DelayEvent {
    /// The train this event concerns.
    #[inline]
    pub fn train(&self) -> TrainId {
        match *self {
            DelayEvent::Delay { train, .. } | DelayEvent::Cancel { train } => train,
        }
    }
}

/// What [`Timetable::patch_feed`] changed — the batched analogue of
/// [`DelayPatch`], with everything derived structures and distance-table
/// refreshes need to follow a whole feed in one pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedPatch {
    /// `false` iff the feed's *net* effect was nil (every event a no-op, or
    /// events cancelling each other out); the generation is bumped — once —
    /// only when `true`.
    pub changed: bool,
    /// Per event, in feed order: did applying it (on top of the preceding
    /// events) move at least one departure? Sequential semantics: the flag
    /// a lone [`Timetable::patch_delay`] / [`Timetable::patch_cancel`]
    /// would have reported at that point of the feed.
    pub event_changed: Vec<bool>,
    /// Trains with at least one connection whose time *net*-changed,
    /// sorted, deduplicated.
    pub trains: Vec<TrainId>,
    /// Merged `(old, new)` [`ConnId`] remap over all touched-bucket
    /// re-sorts; a permutation, exactly like [`DelayPatch::remapped`].
    pub remapped: Vec<(ConnId, ConnId)>,
    /// Departure stations of every net-changed connection, sorted,
    /// deduplicated — the seed set for reverse-reachability distance-table
    /// refreshes.
    pub touched_stations: Vec<StationId>,
}

impl FeedPatch {
    /// A patch that changed nothing (the all-no-op feed).
    pub(crate) fn unchanged(num_events: usize) -> FeedPatch {
        FeedPatch {
            changed: false,
            event_changed: vec![false; num_events],
            trains: Vec::new(),
            remapped: Vec::new(),
            touched_stations: Vec::new(),
        }
    }
}

/// What [`Timetable::patch_delay`] changed — everything a derived structure
/// needs to follow the mutation without a rebuild.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelayPatch {
    /// The delayed train.
    pub train: TrainId,
    /// `false` iff the patch was a no-op (unknown train, hop out of range,
    /// or the delay fully absorbed by the recovery); the generation is only
    /// bumped when `true`.
    pub changed: bool,
    /// `(old, new)` pairs for every connection whose [`ConnId`] moved when
    /// the touched `conn(S)` buckets were re-sorted by departure time. A
    /// permutation: the old and new id sets are equal. Connections of
    /// *other* trains sharing a touched bucket can appear here too.
    pub remapped: Vec<(ConnId, ConnId)>,
}

/// The delay still left `hops_in` hops after the delayed hop. Saturating:
/// an over-large recovery (or hop count) yields zero rather than wrapping —
/// `per_hop · hops_in` can exceed `u32` long before the timetable does.
pub(crate) fn effective_delay(delay: Dur, recovery: Recovery, hops_in: u32) -> Dur {
    match recovery {
        Recovery::None => delay,
        Recovery::CatchUp { per_hop } => {
            Dur(delay.secs().saturating_sub(per_hop.secs().saturating_mul(hops_in)))
        }
    }
}

/// Returns a timetable in which `train` departs `delay` late from its
/// `from_hop`-th hop onward. The delay shifts departures *and* arrivals;
/// with [`Recovery::CatchUp`] it shrinks hop by hop. Other trains are
/// untouched (the model has no vehicle-rotation constraints).
///
/// Pure wrapper over [`Timetable::patch_delay`]; prefer the in-place patch
/// in serving paths that keep engines warm across updates. Infallible: a
/// patch can only shift times inside the period, never produce an invalid
/// timetable (the historical `Result` signature is gone with the
/// revalidation it paid for).
pub fn apply_delay(
    tt: &Timetable,
    train: TrainId,
    from_hop: u16,
    delay: Dur,
    recovery: Recovery,
) -> Timetable {
    let mut out = tt.clone();
    out.patch_delay(train, from_hop, delay, recovery);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TimetableBuilder;
    use pt_core::{Period, StationId, Time};

    fn line() -> (Timetable, Vec<StationId>) {
        let mut b = TimetableBuilder::new(Period::DAY);
        let s: Vec<_> =
            (0..3).map(|i| b.add_named_station(format!("{i}"), Dur::minutes(2))).collect();
        b.add_simple_trip(
            &[s[0], s[1], s[2]],
            Time::hm(8, 0),
            &[Dur::minutes(10), Dur::minutes(10)],
            Dur::ZERO,
        )
        .unwrap();
        b.add_simple_trip(
            &[s[0], s[1], s[2]],
            Time::hm(9, 0),
            &[Dur::minutes(10), Dur::minutes(10)],
            Dur::ZERO,
        )
        .unwrap();
        (b.build().unwrap(), s)
    }

    #[test]
    fn full_delay_shifts_all_later_hops() {
        let (tt, s) = line();
        let delayed = apply_delay(&tt, TrainId(0), 0, Dur::minutes(7), Recovery::None);
        let dep0 = delayed.conn(s[0]).iter().find(|c| c.train == TrainId(0)).unwrap();
        assert_eq!(dep0.dep, Time::hm(8, 7));
        let dep1 = delayed.conn(s[1]).iter().find(|c| c.train == TrainId(0)).unwrap();
        assert_eq!(dep1.dep, Time::hm(8, 17));
        assert_eq!(dep1.arr, Time::hm(8, 27));
        // The 09:00 train is untouched.
        assert!(delayed.conn(s[0]).iter().any(|c| c.dep == Time::hm(9, 0)));
    }

    #[test]
    fn catch_up_recovers_per_hop() {
        let (tt, s) = line();
        let delayed = apply_delay(
            &tt,
            TrainId(0),
            0,
            Dur::minutes(6),
            Recovery::CatchUp { per_hop: Dur::minutes(6) },
        );
        // Hop 0 delayed 6 min, hop 1 back on schedule.
        let dep0 = delayed.conn(s[0]).iter().find(|c| c.train == TrainId(0)).unwrap();
        assert_eq!(dep0.dep, Time::hm(8, 6));
        let dep1 = delayed.conn(s[1]).iter().find(|c| c.train == TrainId(0)).unwrap();
        assert_eq!(dep1.dep, Time::hm(8, 10));
    }

    #[test]
    fn delay_from_mid_trip_leaves_earlier_hops() {
        let (tt, s) = line();
        let delayed = apply_delay(&tt, TrainId(0), 1, Dur::minutes(20), Recovery::None);
        let dep0 = delayed.conn(s[0]).iter().find(|c| c.train == TrainId(0)).unwrap();
        assert_eq!(dep0.dep, Time::hm(8, 0)); // first hop punctual
        let dep1 = delayed.conn(s[1]).iter().find(|c| c.train == TrainId(0)).unwrap();
        assert_eq!(dep1.dep, Time::hm(8, 30));
    }

    #[test]
    fn catch_up_recovery_uses_checked_math() {
        // Regression: `per_hop.secs() * hops_in` used to overflow u32. With
        // per_hop > u32::MAX / 2 and hops_in = 2 the product wrapped to a
        // tiny value, so the train stayed delayed where the recovery should
        // long have absorbed the delay.
        let mut b = TimetableBuilder::new(Period::DAY);
        let s: Vec<_> = (0..4).map(|i| b.add_named_station(format!("{i}"), Dur::ZERO)).collect();
        b.add_simple_trip(
            &[s[0], s[1], s[2], s[3]],
            Time::hm(8, 0),
            &[Dur::minutes(10), Dur::minutes(10), Dur::minutes(10)],
            Dur::ZERO,
        )
        .unwrap();
        let tt = b.build().unwrap();
        let huge = Dur(u32::MAX / 2 + 1);
        let delayed =
            apply_delay(&tt, TrainId(0), 0, Dur::minutes(7), Recovery::CatchUp { per_hop: huge });
        // Hop 0 carries the delay; hops 1 and 2 (hops_in = 1, 2) are fully
        // recovered — hops_in = 2 is the overflowing product.
        let dep = |h: usize| {
            delayed.conn(s[h]).iter().find(|c| c.train == TrainId(0)).map(|c| c.dep).unwrap()
        };
        assert_eq!(dep(0), Time::hm(8, 7));
        assert_eq!(dep(1), Time::hm(8, 10));
        assert_eq!(dep(2), Time::hm(8, 20));
    }

    #[test]
    fn patch_delay_bumps_generation_and_keeps_order() {
        let (tt, s) = line();
        let mut patched = tt.clone();
        assert_eq!(patched.generation(), 0);
        let patch = patched.patch_delay(TrainId(0), 0, Dur::minutes(70), Recovery::None);
        assert!(patch.changed);
        assert_eq!(patched.generation(), 1);
        // The delayed 08:00 train now departs 09:10, after the 09:00 train:
        // the bucket re-sorted, so ids moved and the remap records it.
        assert!(!patch.remapped.is_empty());
        for st in [s[0], s[1]] {
            let deps: Vec<_> = patched.conn(st).iter().map(|c| c.dep).collect();
            assert!(deps.windows(2).all(|w| w[0] <= w[1]), "conn({st}) no longer sorted");
        }
        // The remap is a permutation: each new id holds the connection
        // (identified by train and hop) that used to live at the old id.
        for &(old, new) in &patch.remapped {
            let (before, after) = (tt.connection(old), patched.connection(new));
            assert_eq!((before.train, before.seq), (after.train, after.seq), "ids must follow");
        }
        // Equivalent to the pure wrapper.
        let pure = apply_delay(&tt, TrainId(0), 0, Dur::minutes(70), Recovery::None);
        assert_eq!(pure.connections(), patched.connections());
    }

    #[test]
    fn patch_delay_noop_leaves_generation() {
        let (tt, _) = line();
        let mut patched = tt.clone();
        // Unknown train, hop out of range, zero delay, fully recovered delay.
        for (train, hop, delay, rec) in [
            (TrainId(99), 0, Dur::minutes(5), Recovery::None),
            (TrainId(0), 9, Dur::minutes(5), Recovery::None),
            (TrainId(0), 0, Dur::ZERO, Recovery::None),
        ] {
            let patch = patched.patch_delay(train, hop, delay, rec);
            assert!(!patch.changed);
            assert!(patch.remapped.is_empty());
        }
        assert_eq!(patched.generation(), 0);
        assert_eq!(patched.connections(), tt.connections());
    }

    #[test]
    fn patch_feed_equals_sequential_patches_with_one_bump() {
        let (tt, _) = line();
        // Feed: delay train 0, delay train 1, pile a second delay onto
        // train 0 (coalesced per train), cancel train 1 (net no-op for it).
        let events = [
            DelayEvent::Delay {
                train: TrainId(0),
                from_hop: 0,
                delay: Dur::minutes(5),
                recovery: Recovery::None,
            },
            DelayEvent::Delay {
                train: TrainId(1),
                from_hop: 1,
                delay: Dur::minutes(9),
                recovery: Recovery::None,
            },
            DelayEvent::Delay {
                train: TrainId(0),
                from_hop: 1,
                delay: Dur::minutes(3),
                recovery: Recovery::None,
            },
            DelayEvent::Cancel { train: TrainId(1) },
        ];
        let mut batched = tt.clone();
        let patch = batched.patch_feed(&events);
        assert!(patch.changed);
        assert_eq!(patch.event_changed, vec![true, true, true, true]);
        assert_eq!(patch.trains, vec![TrainId(0)], "train 1's events cancelled out");
        assert_eq!(batched.generation(), 1, "a feed costs exactly one bump");

        let mut sequential = tt.clone();
        sequential.patch_delay(TrainId(0), 0, Dur::minutes(5), Recovery::None);
        sequential.patch_delay(TrainId(1), 1, Dur::minutes(9), Recovery::None);
        sequential.patch_delay(TrainId(0), 1, Dur::minutes(3), Recovery::None);
        sequential.patch_cancel(TrainId(1));
        assert_eq!(batched.connections(), sequential.connections());

        // The merged remap is a valid permutation: ids follow their conns.
        for &(old, new) in &patch.remapped {
            let (before, after) = (tt.connection(old), batched.connection(new));
            assert_eq!((before.train, before.seq), (after.train, after.seq));
        }
        // Touched stations are exactly the dep stations of changed conns.
        for &s in &patch.touched_stations {
            assert!(batched
                .conn(s)
                .iter()
                .zip(tt.conn(s))
                .any(|(a, b)| a != b || a.train == TrainId(0)));
        }
    }

    #[test]
    fn net_nil_feed_is_a_no_op() {
        let (tt, _) = line();
        let mut patched = tt.clone();
        let patch = patched.patch_feed(&[
            DelayEvent::Delay {
                train: TrainId(0),
                from_hop: 0,
                delay: Dur::minutes(12),
                recovery: Recovery::None,
            },
            DelayEvent::Cancel { train: TrainId(0) },
        ]);
        // Both events moved departures *within the simulation*…
        assert_eq!(patch.event_changed, vec![true, true]);
        // …but the net effect is nil: no bump, no remap, identical conns.
        assert!(!patch.changed);
        assert!(patch.remapped.is_empty() && patch.trains.is_empty());
        assert_eq!(patched.generation(), 0);
        assert_eq!(patched.connections(), tt.connections());
    }

    #[test]
    fn cancel_of_never_delayed_train_is_unchanged() {
        let (tt, _) = line();
        let mut patched = tt.clone();
        let patch = patched.patch_cancel(TrainId(0));
        assert!(!patch.changed);
        assert_eq!(patched.generation(), 0);
        assert_eq!(patched.connections(), tt.connections());
    }

    #[test]
    fn cancel_restores_schedule_after_resorts_and_roundtrips() {
        let (tt, s) = line();
        let mut patched = tt.clone();
        // +70 min pushes the 08:00 train behind the 09:00 one: buckets
        // re-sort, ConnIds move — the schedule times must move with them.
        patched.patch_delay(TrainId(0), 0, Dur::minutes(70), Recovery::None);
        let delayed_conns = patched.connections().to_vec();
        let patch = patched.patch_cancel(TrainId(0));
        assert!(patch.changed);
        assert_eq!(patched.connections(), tt.connections(), "cancel restores the schedule");
        for st in [s[0], s[1]] {
            for (c, id) in patched.conn(st).iter().zip(patched.conn_ids(st)) {
                assert_eq!(patched.scheduled_dep(pt_core::ConnId(id)), c.dep);
            }
        }
        // Re-announcing the same delay round-trips to the delayed state.
        patched.patch_delay(TrainId(0), 0, Dur::minutes(70), Recovery::None);
        assert_eq!(patched.connections(), delayed_conns.as_slice());
    }

    #[test]
    fn empty_feed_is_unchanged() {
        let (tt, _) = line();
        let mut patched = tt.clone();
        let patch = patched.patch_feed(&[]);
        assert!(!patch.changed && patch.event_changed.is_empty());
        assert_eq!(patched.generation(), 0);
    }

    #[test]
    fn delay_past_midnight_stays_periodic() {
        let mut b = TimetableBuilder::new(Period::DAY);
        let a = b.add_named_station("A", Dur::ZERO);
        let c = b.add_named_station("B", Dur::ZERO);
        b.add_simple_trip(&[a, c], Time::hm(23, 50), &[Dur::minutes(20)], Dur::ZERO).unwrap();
        let tt = b.build().unwrap();
        let delayed = apply_delay(&tt, TrainId(0), 0, Dur::minutes(30), Recovery::None);
        let conn = &delayed.conn(a)[0];
        // 23:50 + 30 min wraps to 00:20 next day, period-local.
        assert_eq!(conn.dep, Time::hm(0, 20));
        assert_eq!(conn.dur(), Dur::minutes(20));
    }
}
