//! Delay injection — the *fully dynamic scenario* of the paper (§5.1):
//! because SPCS needs no preprocessing, "we can directly use this approach
//! in a fully dynamic scenario" where trains run late and the timetable
//! changes between queries (Müller-Hannemann, Schnee, Frede '08).
//!
//! [`apply_delay`] produces an updated timetable in which a train runs late
//! from a given hop onward, with the delay optionally decaying at later
//! stops (catch-up through schedule slack). Searches on the returned
//! timetable immediately reflect the disruption; only precomputed distance
//! tables must be rebuilt (or dropped — queries then fall back to the
//! stopping criterion, staying correct).

use pt_core::{Dur, TrainId};

use crate::model::{Timetable, TimetableError};

/// How a delayed train recovers at subsequent stops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// The full delay propagates to every later stop.
    None,
    /// The train catches up `per_hop` at each later hop until on time.
    CatchUp { per_hop: Dur },
}

/// Returns a timetable in which `train` departs `delay` late from its
/// `from_hop`-th hop onward. The delay shifts departures *and* arrivals;
/// with [`Recovery::CatchUp`] it shrinks hop by hop. Other trains are
/// untouched (the model has no vehicle-rotation constraints).
pub fn apply_delay(
    tt: &Timetable,
    train: TrainId,
    from_hop: u16,
    delay: Dur,
    recovery: Recovery,
) -> Result<Timetable, TimetableError> {
    let period = tt.period();
    let mut conns = tt.connections().to_vec();
    for c in &mut conns {
        if c.train != train || c.seq < from_hop {
            continue;
        }
        let hops_in = (c.seq - from_hop) as u32;
        let effective = match recovery {
            Recovery::None => delay,
            Recovery::CatchUp { per_hop } => {
                Dur(delay.secs().saturating_sub(per_hop.secs() * hops_in))
            }
        };
        if effective == Dur::ZERO {
            continue;
        }
        let dur = c.dur();
        c.dep = period.local(c.dep + effective);
        c.arr = c.dep + dur;
    }
    Timetable::new(period, tt.stations().to_vec(), conns, tt.num_trains() as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TimetableBuilder;
    use pt_core::{Period, StationId, Time};

    fn line() -> (Timetable, Vec<StationId>) {
        let mut b = TimetableBuilder::new(Period::DAY);
        let s: Vec<_> =
            (0..3).map(|i| b.add_named_station(format!("{i}"), Dur::minutes(2))).collect();
        b.add_simple_trip(
            &[s[0], s[1], s[2]],
            Time::hm(8, 0),
            &[Dur::minutes(10), Dur::minutes(10)],
            Dur::ZERO,
        )
        .unwrap();
        b.add_simple_trip(
            &[s[0], s[1], s[2]],
            Time::hm(9, 0),
            &[Dur::minutes(10), Dur::minutes(10)],
            Dur::ZERO,
        )
        .unwrap();
        (b.build().unwrap(), s)
    }

    #[test]
    fn full_delay_shifts_all_later_hops() {
        let (tt, s) = line();
        let delayed = apply_delay(&tt, TrainId(0), 0, Dur::minutes(7), Recovery::None).unwrap();
        let dep0 = delayed.conn(s[0]).iter().find(|c| c.train == TrainId(0)).unwrap();
        assert_eq!(dep0.dep, Time::hm(8, 7));
        let dep1 = delayed.conn(s[1]).iter().find(|c| c.train == TrainId(0)).unwrap();
        assert_eq!(dep1.dep, Time::hm(8, 17));
        assert_eq!(dep1.arr, Time::hm(8, 27));
        // The 09:00 train is untouched.
        assert!(delayed.conn(s[0]).iter().any(|c| c.dep == Time::hm(9, 0)));
    }

    #[test]
    fn catch_up_recovers_per_hop() {
        let (tt, s) = line();
        let delayed = apply_delay(
            &tt,
            TrainId(0),
            0,
            Dur::minutes(6),
            Recovery::CatchUp { per_hop: Dur::minutes(6) },
        )
        .unwrap();
        // Hop 0 delayed 6 min, hop 1 back on schedule.
        let dep0 = delayed.conn(s[0]).iter().find(|c| c.train == TrainId(0)).unwrap();
        assert_eq!(dep0.dep, Time::hm(8, 6));
        let dep1 = delayed.conn(s[1]).iter().find(|c| c.train == TrainId(0)).unwrap();
        assert_eq!(dep1.dep, Time::hm(8, 10));
    }

    #[test]
    fn delay_from_mid_trip_leaves_earlier_hops() {
        let (tt, s) = line();
        let delayed = apply_delay(&tt, TrainId(0), 1, Dur::minutes(20), Recovery::None).unwrap();
        let dep0 = delayed.conn(s[0]).iter().find(|c| c.train == TrainId(0)).unwrap();
        assert_eq!(dep0.dep, Time::hm(8, 0)); // first hop punctual
        let dep1 = delayed.conn(s[1]).iter().find(|c| c.train == TrainId(0)).unwrap();
        assert_eq!(dep1.dep, Time::hm(8, 30));
    }

    #[test]
    fn delay_past_midnight_stays_periodic() {
        let mut b = TimetableBuilder::new(Period::DAY);
        let a = b.add_named_station("A", Dur::ZERO);
        let c = b.add_named_station("B", Dur::ZERO);
        b.add_simple_trip(&[a, c], Time::hm(23, 50), &[Dur::minutes(20)], Dur::ZERO).unwrap();
        let tt = b.build().unwrap();
        let delayed = apply_delay(&tt, TrainId(0), 0, Dur::minutes(30), Recovery::None).unwrap();
        let conn = &delayed.conn(a)[0];
        // 23:50 + 30 min wraps to 00:20 next day, period-local.
        assert_eq!(conn.dep, Time::hm(0, 20));
        assert_eq!(conn.dur(), Dur::minutes(20));
    }
}
