//! Service calendars: which trains run on which days.
//!
//! A periodic timetable describes *one* generic service day; a real
//! imported dataset (GTFS `calendar.txt` / `calendar_dates.txt`) describes
//! many — weekday services, weekend services, seasonal date ranges,
//! holiday exceptions. A [`ServiceCalendar`] layers exactly that over a
//! [`Timetable`]: every train is (optionally) assigned a [`ServiceId`],
//! each service is a [`ServicePattern`] — active weekdays within an
//! inclusive [`Date`] range, plus explicit added/removed exception dates —
//! and [`Timetable::for_day`] materializes the timetable of one concrete
//! query day by keeping exactly the trains whose service is active.
//!
//! One imported dataset therefore yields many query-day scenarios: build
//! the full timetable once, then `for_day` a Monday, a Saturday and a
//! holiday out of it. The resulting [`DayTimetable`] carries the dense
//! train-id remap, so realtime feed events recorded against the full
//! dataset can be retargeted at a day's network (and events for trains
//! that do not run that day can be recognized and dropped).
//!
//! Trains never assigned a service are treated as **daily** — they run on
//! every day — so a calendar can be introduced gradually over an existing
//! timetable without changing any behaviour until services are assigned.

use std::fmt;

use serde::{Deserialize, Serialize};

use pt_core::TrainId;

use crate::model::{Timetable, TimetableError};

/// A calendar date (proleptic Gregorian), validated on construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    year: i32,
    month: u8,
    day: u8,
}

/// A day of the week; [`Date::weekday`] computes it, [`ServicePattern`]
/// activates on a set of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Weekday {
    /// Monday (index 0 in a [`ServicePattern`]'s weekday mask).
    Monday,
    /// Tuesday.
    Tuesday,
    /// Wednesday.
    Wednesday,
    /// Thursday.
    Thursday,
    /// Friday.
    Friday,
    /// Saturday.
    Saturday,
    /// Sunday (index 6).
    Sunday,
}

impl Weekday {
    /// All seven weekdays, Monday first — index order of the activation
    /// mask in [`ServicePattern`].
    pub const ALL: [Weekday; 7] = [
        Weekday::Monday,
        Weekday::Tuesday,
        Weekday::Wednesday,
        Weekday::Thursday,
        Weekday::Friday,
        Weekday::Saturday,
        Weekday::Sunday,
    ];

    /// Monday = 0 … Sunday = 6.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Weekday::Monday => 0,
            Weekday::Tuesday => 1,
            Weekday::Wednesday => 2,
            Weekday::Thursday => 3,
            Weekday::Friday => 4,
            Weekday::Saturday => 5,
            Weekday::Sunday => 6,
        }
    }
}

impl fmt::Display for Weekday {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Weekday::Monday => "Monday",
            Weekday::Tuesday => "Tuesday",
            Weekday::Wednesday => "Wednesday",
            Weekday::Thursday => "Thursday",
            Weekday::Friday => "Friday",
            Weekday::Saturday => "Saturday",
            Weekday::Sunday => "Sunday",
        };
        f.write_str(name)
    }
}

impl Date {
    /// Validates `year-month-day` (month `1..=12`, day within the month,
    /// leap years honoured).
    pub fn new(year: i32, month: u8, day: u8) -> Result<Date, CalendarError> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return Err(CalendarError::BadDate { year, month, day });
        }
        Ok(Date { year, month, day })
    }

    /// The year.
    #[inline]
    pub fn year(self) -> i32 {
        self.year
    }

    /// The month, `1..=12`.
    #[inline]
    pub fn month(self) -> u8 {
        self.month
    }

    /// The day of the month, `1..=31`.
    #[inline]
    pub fn day(self) -> u8 {
        self.day
    }

    /// Days since 1970-01-01 (negative before); the civil-from-days
    /// bijection, so date ordering and arithmetic are exact.
    pub fn day_number(self) -> i64 {
        // Howard Hinnant's `days_from_civil` algorithm.
        let y = i64::from(self.year) - i64::from(self.month <= 2);
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let m = i64::from(self.month);
        let d = i64::from(self.day);
        let doy = (153 * (m + if m > 2 { -3 } else { 9 }) + 2) / 5 + d - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        era * 146097 + doe - 719468
    }

    /// The day of the week (1970-01-01 was a Thursday).
    pub fn weekday(self) -> Weekday {
        // day_number 0 = Thursday; shift so Monday maps to index 0.
        let idx = (self.day_number() + 3).rem_euclid(7) as usize;
        Weekday::ALL[idx]
    }

    /// The following day (month/year rollover handled).
    pub fn succ(self) -> Date {
        if self.day < days_in_month(self.year, self.month) {
            Date { day: self.day + 1, ..self }
        } else if self.month < 12 {
            Date { year: self.year, month: self.month + 1, day: 1 }
        } else {
            Date { year: self.year + 1, month: 1, day: 1 }
        }
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

fn is_leap(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap(year) => 29,
        2 => 28,
        _ => 0,
    }
}

/// Identifies one service pattern inside a [`ServiceCalendar`]; dense,
/// `0..num_services`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ServiceId(pub u32);

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "service {}", self.0)
    }
}

/// One service's activation rule: a weekday mask over an inclusive date
/// range, refined by explicit exception dates (GTFS `calendar.txt` +
/// `calendar_dates.txt` in one value).
///
/// Precedence mirrors GTFS: a date in `removed` is inactive no matter
/// what, a date in `added` is active even outside the range or mask, and
/// otherwise the date must lie in `[start, end]` *and* its weekday must be
/// enabled.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServicePattern {
    /// Active weekdays, Monday first ([`Weekday::index`] order).
    pub weekdays: [bool; 7],
    /// First day of the activation range (inclusive).
    pub start: Date,
    /// Last day of the activation range (inclusive).
    pub end: Date,
    /// Exception dates on which the service runs regardless of range and
    /// mask (GTFS `calendar_dates.txt` exception type 1).
    pub added: Vec<Date>,
    /// Exception dates on which the service does not run, overriding
    /// everything else (exception type 2).
    pub removed: Vec<Date>,
}

impl ServicePattern {
    /// A service running every day of `[start, end]`.
    pub fn daily(start: Date, end: Date) -> ServicePattern {
        ServicePattern { weekdays: [true; 7], start, end, added: Vec::new(), removed: Vec::new() }
    }

    /// A service running on exactly the given weekdays of `[start, end]`.
    pub fn on(days: &[Weekday], start: Date, end: Date) -> ServicePattern {
        let mut weekdays = [false; 7];
        for d in days {
            weekdays[d.index()] = true;
        }
        ServicePattern { weekdays, start, end, added: Vec::new(), removed: Vec::new() }
    }

    /// Monday–Friday of `[start, end]`.
    pub fn weekdays(start: Date, end: Date) -> ServicePattern {
        use Weekday::*;
        ServicePattern::on(&[Monday, Tuesday, Wednesday, Thursday, Friday], start, end)
    }

    /// Saturday–Sunday of `[start, end]`.
    pub fn weekends(start: Date, end: Date) -> ServicePattern {
        ServicePattern::on(&[Weekday::Saturday, Weekday::Sunday], start, end)
    }

    /// Adds dates on which the service runs regardless of range and mask.
    pub fn with_added(mut self, dates: &[Date]) -> ServicePattern {
        self.added.extend_from_slice(dates);
        self
    }

    /// Adds dates on which the service does not run, overriding everything.
    pub fn with_removed(mut self, dates: &[Date]) -> ServicePattern {
        self.removed.extend_from_slice(dates);
        self
    }

    /// Is the service active on `date`? `removed` wins over `added` wins
    /// over range-and-mask.
    pub fn active_on(&self, date: Date) -> bool {
        if self.removed.contains(&date) {
            return false;
        }
        if self.added.contains(&date) {
            return true;
        }
        self.start <= date && date <= self.end && self.weekdays[date.weekday().index()]
    }
}

/// Calendar failures, all typed — a malformed date or a dangling service
/// assignment must surface as a value, never a panic, because calendars
/// arrive from external data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalendarError {
    /// The components do not name a real calendar date.
    BadDate {
        /// Requested year.
        year: i32,
        /// Requested month.
        month: u8,
        /// Requested day of month.
        day: u8,
    },
    /// A train was assigned a [`ServiceId`] the calendar does not define.
    UnknownService {
        /// The dangling id.
        service: ServiceId,
        /// Number of services the calendar actually defines.
        services: u32,
    },
    /// Filtering produced a timetable that failed re-validation (cannot
    /// happen for a valid input timetable; surfaced for honesty).
    Invalid(TimetableError),
}

impl fmt::Display for CalendarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalendarError::BadDate { year, month, day } => {
                write!(f, "{year:04}-{month:02}-{day:02} is not a valid date")
            }
            CalendarError::UnknownService { service, services } => {
                write!(f, "{service} is not defined (calendar has {services} services)")
            }
            CalendarError::Invalid(e) => write!(f, "filtered timetable failed validation: {e}"),
        }
    }
}

impl std::error::Error for CalendarError {}

/// Service patterns plus the train → service assignment.
///
/// Assignment is sparse: trains never assigned run **daily** (on every
/// date), so a calendar can wrap an existing timetable without changing
/// behaviour until services are attached.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServiceCalendar {
    services: Vec<ServicePattern>,
    /// `train_service[train] = Some(service)`; indexes beyond the vec (or
    /// `None`) mean "daily".
    train_service: Vec<Option<ServiceId>>,
}

impl ServiceCalendar {
    /// An empty calendar: no services, every train daily.
    pub fn new() -> ServiceCalendar {
        ServiceCalendar::default()
    }

    /// Registers a service pattern, returning its dense id.
    pub fn add_service(&mut self, pattern: ServicePattern) -> ServiceId {
        self.services.push(pattern);
        ServiceId(self.services.len() as u32 - 1)
    }

    /// Number of registered services.
    pub fn num_services(&self) -> usize {
        self.services.len()
    }

    /// The pattern behind `service`, if defined.
    pub fn service(&self, service: ServiceId) -> Option<&ServicePattern> {
        self.services.get(service.0 as usize)
    }

    /// Assigns `train` to `service`; fails on an undefined service id.
    pub fn assign(&mut self, train: TrainId, service: ServiceId) -> Result<(), CalendarError> {
        if service.0 as usize >= self.services.len() {
            return Err(CalendarError::UnknownService {
                service,
                services: self.services.len() as u32,
            });
        }
        let idx = train.idx();
        if idx >= self.train_service.len() {
            self.train_service.resize(idx + 1, None);
        }
        self.train_service[idx] = Some(service);
        Ok(())
    }

    /// The service assigned to `train`, or `None` for a daily train.
    pub fn service_of(&self, train: TrainId) -> Option<ServiceId> {
        self.train_service.get(train.idx()).copied().flatten()
    }

    /// Does `train` run on `date`? Unassigned trains always do.
    pub fn runs_on(&self, train: TrainId, date: Date) -> bool {
        match self.service_of(train) {
            None => true,
            Some(s) => self.services[s.0 as usize].active_on(date),
        }
    }

    /// Per-train activation mask for `date`, over `num_trains` trains.
    pub fn active_trains(&self, num_trains: usize, date: Date) -> Vec<bool> {
        (0..num_trains).map(|t| self.runs_on(TrainId(t as u32), date)).collect()
    }
}

/// The timetable of one concrete query day ([`Timetable::for_day`]):
/// exactly the trains active on that day, with dense re-numbered train
/// ids and the remap back to the full dataset's ids.
#[derive(Debug, Clone)]
pub struct DayTimetable {
    /// The filtered timetable; train ids are dense `0..trains.len()`.
    pub timetable: Timetable,
    /// The day the timetable was materialized for.
    pub date: Date,
    /// `trains[new]` is the full-dataset [`TrainId`] behind day-local
    /// train `new`; strictly increasing (filtering preserves id order).
    pub trains: Vec<TrainId>,
    /// Trains of the full dataset that do **not** run on `date`.
    pub dropped_trains: usize,
    /// Connections filtered out along with the dropped trains.
    pub dropped_connections: usize,
}

impl DayTimetable {
    /// Maps a full-dataset train id to its day-local id, or `None` when
    /// the train does not run on this day. Binary search: `trains` is
    /// strictly increasing.
    pub fn day_train(&self, original: TrainId) -> Option<TrainId> {
        self.trains.binary_search(&original).ok().map(|i| TrainId(i as u32))
    }

    /// Maps a day-local train id back to the full dataset.
    pub fn original_train(&self, day: TrainId) -> Option<TrainId> {
        self.trains.get(day.idx()).copied()
    }
}

impl Timetable {
    /// Materializes the timetable of one concrete `date`: keeps exactly
    /// the trains whose service is active per `calendar` (unassigned
    /// trains always run), renumbers the kept trains densely and preserves
    /// stations, period and transfer times. Connection *times are taken as
    /// they currently stand* — a delayed full timetable yields a delayed
    /// day timetable; call `for_day` on the pristine dataset for the
    /// published schedule.
    ///
    /// The result cross-validates against a from-scratch rebuild that adds
    /// only the active trips to a fresh builder (see
    /// `tests/calendar_scenarios.rs` and `conncheck --calendar`): same
    /// stations, same connections, identical query answers.
    pub fn for_day(
        &self,
        calendar: &ServiceCalendar,
        date: Date,
    ) -> Result<DayTimetable, CalendarError> {
        let num_trains = self.num_trains();
        let active = calendar.active_trains(num_trains, date);
        let trains: Vec<TrainId> =
            (0..num_trains as u32).map(TrainId).filter(|t| active[t.idx()]).collect();
        // Dense old → new remap (u32::MAX = dropped).
        let mut remap = vec![u32::MAX; num_trains];
        for (new, t) in trains.iter().enumerate() {
            remap[t.idx()] = new as u32;
        }
        let mut dropped_connections = 0usize;
        let conns: Vec<_> = self
            .connections()
            .into_iter()
            .filter_map(|mut c| {
                let new = remap[c.train.idx()];
                if new == u32::MAX {
                    dropped_connections += 1;
                    None
                } else {
                    c.train = TrainId(new);
                    Some(c)
                }
            })
            .collect();
        let timetable =
            Timetable::new(self.period(), self.stations().to_vec(), conns, trains.len() as u32)
                .map_err(CalendarError::Invalid)?;
        Ok(DayTimetable {
            timetable,
            date,
            dropped_trains: num_trains - trains.len(),
            trains,
            dropped_connections,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TimetableBuilder;
    use pt_core::{Dur, Period, Time};

    fn date(y: i32, m: u8, d: u8) -> Date {
        Date::new(y, m, d).unwrap()
    }

    #[test]
    fn date_validation_and_weekdays() {
        assert!(Date::new(2026, 2, 29).is_err()); // not a leap year
        assert!(Date::new(2024, 2, 29).is_ok()); // leap year
        assert!(Date::new(2026, 13, 1).is_err());
        assert!(Date::new(2026, 4, 31).is_err());
        assert!(Date::new(2026, 0, 1).is_err() && Date::new(2026, 1, 0).is_err());
        // Known anchors: 1970-01-01 Thursday, 2026-08-08 Saturday.
        assert_eq!(date(1970, 1, 1).weekday(), Weekday::Thursday);
        assert_eq!(date(1970, 1, 1).day_number(), 0);
        assert_eq!(date(2026, 8, 8).weekday(), Weekday::Saturday);
        assert_eq!(date(2000, 3, 1).weekday(), Weekday::Wednesday);
        // succ rolls over months and years.
        assert_eq!(date(2026, 12, 31).succ(), date(2027, 1, 1));
        assert_eq!(date(2024, 2, 28).succ(), date(2024, 2, 29));
        assert_eq!(date(2026, 2, 28).succ(), date(2026, 3, 1));
        // Consecutive day numbers and weekday rotation.
        let d = date(2026, 8, 8);
        assert_eq!(d.succ().day_number(), d.day_number() + 1);
        assert_eq!(d.succ().weekday(), Weekday::Sunday);
    }

    #[test]
    fn pattern_precedence_removed_over_added_over_mask() {
        let start = date(2026, 1, 1);
        let end = date(2026, 12, 31);
        let sat = date(2026, 8, 8); // Saturday
        let mon = date(2026, 8, 10); // Monday
        let p = ServicePattern::weekdays(start, end).with_added(&[sat]).with_removed(&[mon, sat]);
        assert!(!p.active_on(sat), "removed beats added");
        assert!(!p.active_on(mon), "removed beats the weekday mask");
        assert!(p.active_on(date(2026, 8, 11)), "plain weekday active");
        assert!(!p.active_on(date(2026, 8, 9)), "Sunday off a weekday service");
        assert!(!p.active_on(date(2025, 12, 31)), "before the range");
        assert!(!p.active_on(date(2027, 1, 1)), "after the range");
        let q = ServicePattern::weekends(start, end).with_added(&[mon]);
        assert!(q.active_on(mon), "added beats the mask");
        assert!(q.active_on(sat) && !q.active_on(date(2026, 8, 11)));
    }

    fn three_train_tt() -> Timetable {
        let mut b = TimetableBuilder::new(Period::DAY);
        let s: Vec<_> =
            (0..3).map(|i| b.add_named_station(format!("{i}"), Dur::minutes(2))).collect();
        for h in [8u32, 9, 10] {
            b.add_simple_trip(
                &[s[0], s[1], s[2]],
                Time::hm(h, 0),
                &[Dur::minutes(10), Dur::minutes(10)],
                Dur::ZERO,
            )
            .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn unassigned_trains_run_daily() {
        let tt = three_train_tt();
        let cal = ServiceCalendar::new();
        let day = tt.for_day(&cal, date(2026, 8, 8)).unwrap();
        assert_eq!(day.timetable.num_trains(), 3);
        assert_eq!(day.timetable.connections(), tt.connections());
        assert_eq!(day.dropped_trains, 0);
        assert_eq!(day.dropped_connections, 0);
    }

    #[test]
    fn for_day_filters_and_remaps_trains() {
        let tt = three_train_tt();
        let mut cal = ServiceCalendar::new();
        let range = (date(2026, 1, 1), date(2026, 12, 31));
        let weekday = cal.add_service(ServicePattern::weekdays(range.0, range.1));
        let weekend = cal.add_service(ServicePattern::weekends(range.0, range.1));
        cal.assign(TrainId(0), weekday).unwrap();
        cal.assign(TrainId(2), weekend).unwrap(); // train 1 stays daily

        let sat = tt.for_day(&cal, date(2026, 8, 8)).unwrap();
        assert_eq!(sat.trains, vec![TrainId(1), TrainId(2)]);
        assert_eq!(sat.dropped_trains, 1);
        assert_eq!(sat.timetable.num_trains(), 2);
        // Day-local ids are dense and map back.
        assert_eq!(sat.day_train(TrainId(2)), Some(TrainId(1)));
        assert_eq!(sat.day_train(TrainId(0)), None);
        assert_eq!(sat.original_train(TrainId(0)), Some(TrainId(1)));
        // The 08:00 departure (train 0, weekday-only) is gone on Saturday.
        let deps: Vec<Time> =
            sat.timetable.conn(pt_core::StationId(0)).iter().map(|c| c.dep).collect();
        assert_eq!(deps, vec![Time::hm(9, 0), Time::hm(10, 0)]);

        let mon = tt.for_day(&cal, date(2026, 8, 10)).unwrap();
        assert_eq!(mon.trains, vec![TrainId(0), TrainId(1)]);

        // An empty day is legal: everything filtered, queries see no conns.
        let mut all_weekend = ServiceCalendar::new();
        let we = all_weekend.add_service(ServicePattern::weekends(range.0, range.1));
        for t in 0..3 {
            all_weekend.assign(TrainId(t), we).unwrap();
        }
        let empty = tt.for_day(&all_weekend, date(2026, 8, 10)).unwrap();
        assert_eq!(empty.timetable.num_trains(), 0);
        assert_eq!(empty.timetable.num_connections(), 0);
        assert_eq!(empty.dropped_connections, tt.num_connections());
    }

    #[test]
    fn assign_rejects_unknown_service() {
        let mut cal = ServiceCalendar::new();
        let err = cal.assign(TrainId(0), ServiceId(3)).unwrap_err();
        assert_eq!(err, CalendarError::UnknownService { service: ServiceId(3), services: 0 });
        assert!(err.to_string().contains("service 3"));
    }
}
