//! The validated periodic-timetable model `(C, S, Z, Π, T)`.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use pt_core::{ConnId, Dur, Period, StationId, Time, TrainId};

use crate::delay::{effective_delay, DelayEvent, DelayPatch, FeedPatch, Recovery};

/// A station `S ∈ S` with its minimum transfer time `T(S)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Station {
    /// Human-readable name (GTFS `stop_name`).
    pub name: String,
    /// Minimum time required to change trains at this station.
    pub transfer_time: Dur,
    /// Planar position, used by the generators and exported as lat/lon.
    pub pos: (f32, f32),
}

impl Station {
    /// Creates a station at the origin.
    pub fn new(name: impl Into<String>, transfer_time: Dur) -> Self {
        Station { name: name.into(), transfer_time, pos: (0.0, 0.0) }
    }
}

/// An elementary connection `c = (Z, S_dep, S_arr, τ_dep, τ_arr)`: train
/// `train` runs non-stop from `from` to `to`, departing at the period-local
/// time `dep` and arriving at the absolute time `arr ≥ dep` (`arr − dep` is
/// the leg duration; `arr` may exceed the period).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Connection {
    /// Departure station `S_dep`.
    pub from: StationId,
    /// Arrival station `S_arr`.
    pub to: StationId,
    /// Period-local departure time `τ_dep`.
    pub dep: Time,
    /// Absolute arrival time `τ_arr` (≥ `dep`).
    pub arr: Time,
    /// The train `Z` operating this leg.
    pub train: TrainId,
    /// Hop index of this leg within its train's journey.
    pub seq: u16,
}

impl Connection {
    /// Leg duration `Δ(τ_dep, τ_arr)`.
    #[inline]
    pub fn dur(&self) -> Dur {
        self.arr - self.dep
    }
}

/// Validation failures of [`Timetable::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimetableError {
    /// A connection references a station index out of range.
    UnknownStation {
        /// Index of the offending connection in construction order.
        conn: usize,
        /// The out-of-range station index it referenced.
        station: u32,
    },
    /// A departure time is not period-local.
    DepartureNotLocal {
        /// Index of the offending connection in construction order.
        conn: usize,
        /// The non-local departure time.
        dep: Time,
    },
    /// An arrival precedes its departure.
    ArrivalBeforeDeparture {
        /// Index of the offending connection in construction order.
        conn: usize,
    },
    /// A connection departs and arrives at the same station.
    SelfLoop {
        /// Index of the offending connection in construction order.
        conn: usize,
        /// The station it loops at.
        station: StationId,
    },
    /// A connection has zero duration.
    ZeroDuration {
        /// Index of the offending connection in construction order.
        conn: usize,
    },
    /// A trip's stops are not in chronological order (builder-level).
    NonMonotoneTrip {
        /// The train whose trip is out of order.
        train: TrainId,
    },
    /// A trip has fewer than two stops (builder-level).
    TripTooShort {
        /// The train whose trip is too short.
        train: TrainId,
    },
}

impl fmt::Display for TimetableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimetableError::UnknownStation { conn, station } => {
                write!(f, "connection {conn} references unknown station {station}")
            }
            TimetableError::DepartureNotLocal { conn, dep } => {
                write!(f, "connection {conn} departs at {dep}, outside the period")
            }
            TimetableError::ArrivalBeforeDeparture { conn } => {
                write!(f, "connection {conn} arrives before it departs")
            }
            TimetableError::SelfLoop { conn, station } => {
                write!(f, "connection {conn} loops at station {station}")
            }
            TimetableError::ZeroDuration { conn } => {
                write!(f, "connection {conn} has zero duration")
            }
            TimetableError::NonMonotoneTrip { train } => {
                write!(f, "trip of train {train} is not chronologically ordered")
            }
            TimetableError::TripTooShort { train } => {
                write!(f, "trip of train {train} has fewer than two stops")
            }
        }
    }
}

impl std::error::Error for TimetableError {}

/// Summary statistics, matching the figures the paper reports per input
/// (stations, elementary connections, connections-per-station ratio).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimetableStats {
    /// Number of stations `|S|`.
    pub stations: usize,
    /// Number of trains `|Z|`.
    pub trains: usize,
    /// Number of elementary connections `|C|`.
    pub connections: usize,
    /// Average `|conn(S)|` — the quantity that drives self-pruning quality
    /// and parallel scalability (paper, §3.2 and §5.1).
    pub conns_per_station: f64,
}

/// One station's `conn(S)` slice together with the published (schedule)
/// departure time of each of its connections — the unit of copy-on-write:
/// a feed that delays a train copies exactly the buckets of the stations
/// the train departs from and leaves every other bucket shared by
/// refcount with any snapshot cloned earlier.
#[derive(Debug, Clone, PartialEq)]
struct Bucket {
    /// Outgoing connections, ordered non-decreasingly by departure time.
    conns: Vec<Connection>,
    /// Schedule departure times, aligned with `conns` and permuted along
    /// with it on every re-sort. Delay *cancellations* restore these.
    sched: Vec<Time>,
}

/// A validated periodic timetable.
///
/// Connections are stored sorted by `(from, dep, train)` in per-station
/// buckets, so `conn(S)` — the set of outgoing connections of `S` ordered
/// non-decreasingly by departure time (paper, §3.1) — is the contiguous
/// slice [`Timetable::conn`]. [`ConnId`]s are global: id `i` lives in the
/// bucket of station `conn_station[i]` at offset `i - first_out[s]`, and
/// the bucket boundaries (`first_out`) are **fixed for the lifetime of the
/// timetable** — patches permute connections *within* a bucket only (a
/// connection's departure station never changes), which is what makes the
/// per-bucket copy-on-write sound.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Timetable {
    period: Period,
    stations: Arc<Vec<Station>>,
    num_trains: u32,
    /// `conn(S)` buckets, one per station, individually shared (`Arc`) so
    /// a clone is O(|S|) refcount bumps and a patch copies only the
    /// buckets it rewrites ([`Arc::make_mut`]).
    buckets: Vec<Arc<Bucket>>,
    /// `first_out[s] .. first_out[s+1]` is the global [`ConnId`] range of
    /// station `s`'s bucket. Immutable after validation.
    first_out: Arc<Vec<u32>>,
    /// Departure station of each global [`ConnId`] (the inverse of
    /// `first_out`'s ranges). Immutable after validation.
    conn_station: Arc<Vec<StationId>>,
    /// Monotonically-increasing update stamp, bumped by every in-place
    /// mutation ([`Timetable::patch_delay`], [`Timetable::patch_feed`]) that
    /// changes at least one connection time. Query caches key on it: a
    /// bumped generation invalidates every cached result for free.
    generation: u64,
}

impl Timetable {
    /// Validates and indexes a timetable. Connections may be in any order.
    pub fn new(
        period: Period,
        stations: Vec<Station>,
        mut conns: Vec<Connection>,
        num_trains: u32,
    ) -> Result<Self, TimetableError> {
        let n = stations.len() as u32;
        for (i, c) in conns.iter().enumerate() {
            if c.from.0 >= n {
                return Err(TimetableError::UnknownStation { conn: i, station: c.from.0 });
            }
            if c.to.0 >= n {
                return Err(TimetableError::UnknownStation { conn: i, station: c.to.0 });
            }
            if !period.contains(c.dep) {
                return Err(TimetableError::DepartureNotLocal { conn: i, dep: c.dep });
            }
            if c.arr < c.dep {
                return Err(TimetableError::ArrivalBeforeDeparture { conn: i });
            }
            if c.arr == c.dep {
                return Err(TimetableError::ZeroDuration { conn: i });
            }
            if c.from == c.to {
                return Err(TimetableError::SelfLoop { conn: i, station: c.from });
            }
        }
        conns.sort_unstable_by_key(|c| (c.from, c.dep, c.train, c.seq));
        let mut first_out = vec![0u32; stations.len() + 1];
        for c in &conns {
            first_out[c.from.idx() + 1] += 1;
        }
        for i in 1..first_out.len() {
            first_out[i] += first_out[i - 1];
        }
        let conn_station: Vec<StationId> = conns.iter().map(|c| c.from).collect();
        let buckets = (0..stations.len())
            .map(|s| {
                let (lo, hi) = (first_out[s] as usize, first_out[s + 1] as usize);
                let conns = conns[lo..hi].to_vec();
                let sched = conns.iter().map(|c| c.dep).collect();
                Arc::new(Bucket { conns, sched })
            })
            .collect();
        Ok(Timetable {
            period,
            stations: Arc::new(stations),
            num_trains,
            buckets,
            first_out: Arc::new(first_out),
            conn_station: Arc::new(conn_station),
            generation: 0,
        })
    }

    /// The periodicity `Π`.
    #[inline]
    pub fn period(&self) -> Period {
        self.period
    }

    /// The update generation: 0 for a freshly validated timetable, bumped by
    /// every mutation that changes connection times
    /// ([`Timetable::patch_delay`]). Monotonically increasing, so any result
    /// derived from generation `g` is stale exactly when `generation() > g`.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Applies a delay **in place**: `train` runs `delay` late from its
    /// `from_hop`-th hop onward, recovering per [`Recovery`]. Durations are
    /// preserved (`arr` shifts with `dep`), so the station graph of the
    /// timetable is invariant under this operation.
    ///
    /// Only the affected train's connections are rewritten and only the
    /// touched `conn(S)` buckets are re-sorted — the rest of the index
    /// (`first_out`, untouched buckets) is untouched, which is what makes
    /// the fully dynamic scenario (paper §5.1) cheap. Because `conn(S)` must
    /// stay ordered by departure time, re-sorting a bucket can renumber the
    /// [`ConnId`]s inside it; the returned [`DelayPatch`] records that
    /// remapping so derived structures (`Routes`, `TdGraph`) can follow
    /// without a rebuild.
    ///
    /// Bumps [`Timetable::generation`] iff at least one connection changed.
    /// A `train`/`from_hop` combination matching no connection, or a delay
    /// fully absorbed by the recovery, is a no-op (`patch.changed == false`).
    pub fn patch_delay(
        &mut self,
        train: TrainId,
        from_hop: u16,
        delay: Dur,
        recovery: Recovery,
    ) -> DelayPatch {
        let feed = self.patch_feed(&[DelayEvent::Delay { train, from_hop, delay, recovery }]);
        DelayPatch { train, changed: feed.changed, remapped: feed.remapped }
    }

    /// Cancels every previous delay announcement for `train` **in place**:
    /// all its hops return to their published schedule times (the
    /// [`DelayEvent::Cancel`] of a feed, applied alone). A never-delayed
    /// train is a no-op (`patch.changed == false`, generation untouched).
    pub fn patch_cancel(&mut self, train: TrainId) -> DelayPatch {
        let feed = self.patch_feed(&[DelayEvent::Cancel { train }]);
        DelayPatch { train, changed: feed.changed, remapped: feed.remapped }
    }

    /// Applies a whole realtime feed **in place**, in one pass: events are
    /// coalesced per train (each applied in feed order on top of its
    /// predecessors, exactly as one-at-a-time [`Timetable::patch_delay`] /
    /// [`Timetable::patch_cancel`] calls would), connections are rewritten
    /// once with their *net* new times, each touched `conn(S)` bucket is
    /// re-sorted once, and a single merged [`ConnId`] remap is returned.
    ///
    /// Bumps [`Timetable::generation`] **once** iff at least one connection
    /// ended up with a different time than before the feed — a feed whose
    /// events cancel out (delay + cancel of the same train) is a no-op and
    /// leaves the generation alone, even though individual
    /// [`FeedPatch::event_changed`] flags may be set.
    pub fn patch_feed(&mut self, events: &[DelayEvent]) -> FeedPatch {
        if events.is_empty() {
            return FeedPatch::unchanged(0);
        }
        let mut feed_trains: Vec<TrainId> = events.iter().map(DelayEvent::train).collect();
        feed_trains.sort_unstable();
        feed_trains.dedup();
        let slot_of = |t: TrainId| feed_trains.binary_search(&t).ok();

        // Connection indices of every train the feed mentions (one scan).
        let mut train_conns: Vec<Vec<usize>> = vec![Vec::new(); feed_trains.len()];
        for (st, b) in self.buckets.iter().enumerate() {
            let lo = self.first_out[st] as usize;
            for (k, c) in b.conns.iter().enumerate() {
                if let Some(s) = slot_of(c.train) {
                    train_conns[s].push(lo + k);
                }
            }
        }

        // Simulate the feed on working copies of the departure times.
        let pi = self.period.len() as u64;
        let mut deps: Vec<Vec<Time>> = train_conns
            .iter()
            .map(|ixs| ixs.iter().map(|&i| self.conn_at(i).dep).collect())
            .collect();
        let mut event_changed = vec![false; events.len()];
        for (ei, ev) in events.iter().enumerate() {
            let s = slot_of(ev.train()).expect("every feed train is indexed");
            match *ev {
                DelayEvent::Delay { from_hop, delay, recovery, .. } => {
                    for (k, &ci) in train_conns[s].iter().enumerate() {
                        let seq = self.conn_at(ci).seq;
                        if seq < from_hop {
                            continue;
                        }
                        let effective = effective_delay(delay, recovery, (seq - from_hop) as u32);
                        if effective == Dur::ZERO {
                            continue;
                        }
                        // 64-bit reduction: `dep + effective` may exceed u32
                        // for adversarial delays; the period-local result
                        // never does.
                        let d = &mut deps[s][k];
                        let shifted =
                            Time(((d.secs() as u64 + effective.secs() as u64) % pi) as u32);
                        if *d != shifted {
                            *d = shifted;
                            event_changed[ei] = true;
                        }
                    }
                }
                DelayEvent::Cancel { .. } => {
                    for (k, &ci) in train_conns[s].iter().enumerate() {
                        let published = self.sched_at(ci);
                        if deps[s][k] != published {
                            deps[s][k] = published;
                            event_changed[ei] = true;
                        }
                    }
                }
            }
        }

        // One coalesced write-back of the *net* new times.
        let mut touched: Vec<StationId> = Vec::new();
        let mut trains: Vec<TrainId> = Vec::new();
        for (s, ixs) in train_conns.iter().enumerate() {
            let mut train_changed = false;
            for (k, &ci) in ixs.iter().enumerate() {
                let new_dep = deps[s][k];
                if self.conn_at(ci).dep != new_dep {
                    let st = self.conn_station[ci].idx();
                    let lo = self.first_out[st] as usize;
                    // Copy-on-touch: the first write to a shared bucket
                    // clones it; every untouched bucket stays shared.
                    let c = &mut Arc::make_mut(&mut self.buckets[st]).conns[ci - lo];
                    let dur = c.dur();
                    c.dep = new_dep;
                    c.arr = new_dep + dur;
                    touched.push(c.from);
                    train_changed = true;
                }
            }
            if train_changed {
                trains.push(feed_trains[s]);
            }
        }
        if touched.is_empty() {
            return FeedPatch { event_changed, ..FeedPatch::unchanged(events.len()) };
        }
        self.generation += 1;
        touched.sort_unstable();
        touched.dedup();
        let remapped = self.resort_buckets(&touched);
        FeedPatch { changed: true, event_changed, trains, remapped, touched_stations: touched }
    }

    /// Restores per-bucket departure order after connection times moved,
    /// recording every [`ConnId`] move. The schedule times ride along so
    /// cancellations keep working after any number of re-sorts.
    fn resort_buckets(&mut self, touched: &[StationId]) -> Vec<(ConnId, ConnId)> {
        let mut remapped: Vec<(ConnId, ConnId)> = Vec::new();
        for &s in touched {
            let lo = self.first_out[s.idx()] as usize;
            // The bucket was already unshared by the write-back above, so
            // this `make_mut` is a plain `&mut` in the common case.
            let b = Arc::make_mut(&mut self.buckets[s.idx()]);
            let mut tagged: Vec<(Connection, Time, u32)> = b
                .conns
                .iter()
                .copied()
                .zip(b.sched.iter().copied())
                .zip(lo as u32..)
                .map(|((c, sd), i)| (c, sd, i))
                .collect();
            tagged.sort_unstable_by_key(|&(c, _, _)| (c.dep, c.train, c.seq));
            for (offset, &(c, sd, old)) in tagged.iter().enumerate() {
                let new = (lo + offset) as u32;
                b.conns[offset] = c;
                b.sched[offset] = sd;
                if old != new {
                    remapped.push((ConnId(old), ConnId(new)));
                }
            }
        }
        remapped
    }

    /// A connection by global index (bucket-indirected).
    #[inline]
    fn conn_at(&self, i: usize) -> &Connection {
        let s = self.conn_station[i].idx();
        &self.buckets[s].conns[i - self.first_out[s] as usize]
    }

    /// A schedule departure time by global index (bucket-indirected).
    #[inline]
    fn sched_at(&self, i: usize) -> Time {
        let s = self.conn_station[i].idx();
        self.buckets[s].sched[i - self.first_out[s] as usize]
    }

    /// The published (schedule) departure time of a connection — what a
    /// [`DelayEvent::Cancel`] restores. Equals [`Connection::dep`] unless
    /// the connection currently carries a delay.
    #[inline]
    pub fn scheduled_dep(&self, c: ConnId) -> Time {
        self.sched_at(c.idx())
    }

    /// Number of stations `|S|`.
    #[inline]
    pub fn num_stations(&self) -> usize {
        self.stations.len()
    }

    /// Number of trains `|Z|`.
    #[inline]
    pub fn num_trains(&self) -> usize {
        self.num_trains as usize
    }

    /// Number of elementary connections `|C|`.
    #[inline]
    pub fn num_connections(&self) -> usize {
        *self.first_out.last().expect("first_out has S+1 entries") as usize
    }

    /// All stations, indexed by [`StationId`].
    #[inline]
    pub fn stations(&self) -> &[Station] {
        &self.stations
    }

    /// A single station.
    #[inline]
    pub fn station(&self, s: StationId) -> &Station {
        &self.stations[s.idx()]
    }

    /// The minimum transfer time `T(S)`.
    #[inline]
    pub fn transfer_time(&self, s: StationId) -> Dur {
        self.stations[s.idx()].transfer_time
    }

    /// All connections, sorted by `(from, dep)`, materialized from the
    /// per-station buckets; [`ConnId`] indexes the result. O(|C|) — build
    /// and validation paths only; queries go through [`Timetable::conn`] /
    /// [`Timetable::connection`], which borrow straight from a bucket.
    pub fn connections(&self) -> Vec<Connection> {
        let mut out = Vec::with_capacity(self.num_connections());
        for b in &self.buckets {
            out.extend_from_slice(&b.conns);
        }
        out
    }

    /// A single connection.
    #[inline]
    pub fn connection(&self, c: ConnId) -> &Connection {
        self.conn_at(c.idx())
    }

    /// `conn(S)`: the outgoing connections of `s`, ordered non-decreasingly
    /// by departure time.
    #[inline]
    pub fn conn(&self, s: StationId) -> &[Connection] {
        &self.buckets[s.idx()].conns
    }

    /// The [`ConnId`] range of `conn(S)`.
    #[inline]
    pub fn conn_ids(&self, s: StationId) -> std::ops::Range<u32> {
        self.first_out[s.idx()]..self.first_out[s.idx() + 1]
    }

    /// Iterates over station ids.
    pub fn station_ids(&self) -> impl Iterator<Item = StationId> + '_ {
        (0..self.stations.len() as u32).map(StationId)
    }

    /// How many `conn(S)` buckets of `self` are *physically shared* (same
    /// allocation, by refcount) with `other`. Diagnostics for the
    /// copy-on-write publish path: after a clone this is `|S|`; after a
    /// feed it drops by exactly the number of touched buckets.
    pub fn shared_buckets_with(&self, other: &Timetable) -> usize {
        self.buckets.iter().zip(&other.buckets).filter(|(a, b)| Arc::ptr_eq(a, b)).count()
    }

    /// A fully unshared copy: every bucket and index vector is
    /// reallocated, nothing aliases `self`. The pre-copy-on-write clone
    /// cost, kept as a bench reference for the O(touched) path.
    pub fn deep_clone(&self) -> Timetable {
        Timetable {
            period: self.period,
            stations: Arc::new((*self.stations).clone()),
            num_trains: self.num_trains,
            buckets: self.buckets.iter().map(|b| Arc::new((**b).clone())).collect(),
            first_out: Arc::new((*self.first_out).clone()),
            conn_station: Arc::new((*self.conn_station).clone()),
            generation: self.generation,
        }
    }

    /// Summary statistics.
    pub fn stats(&self) -> TimetableStats {
        TimetableStats {
            stations: self.num_stations(),
            trains: self.num_trains(),
            connections: self.num_connections(),
            conns_per_station: self.num_connections() as f64 / self.num_stations().max(1) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conn(from: u32, to: u32, dep_min: u32, arr_min: u32) -> Connection {
        Connection {
            from: StationId(from),
            to: StationId(to),
            dep: Time::hm(0, dep_min),
            arr: Time::hm(0, arr_min),
            train: TrainId(0),
            seq: 0,
        }
    }

    fn stations(n: usize) -> Vec<Station> {
        (0..n).map(|i| Station::new(format!("S{i}"), Dur::minutes(2))).collect()
    }

    #[test]
    fn conn_slice_is_sorted_by_departure() {
        let tt = Timetable::new(
            Period::DAY,
            stations(3),
            vec![conn(0, 1, 30, 40), conn(0, 2, 10, 25), conn(1, 2, 5, 9)],
            1,
        )
        .unwrap();
        let out: Vec<u32> = tt.conn(StationId(0)).iter().map(|c| c.dep.secs() / 60).collect();
        assert_eq!(out, vec![10, 30]);
        assert_eq!(tt.conn(StationId(1)).len(), 1);
        assert_eq!(tt.conn(StationId(2)).len(), 0);
        assert_eq!(tt.conn_ids(StationId(0)), 0..2);
    }

    #[test]
    fn validation_rejects_bad_connections() {
        let err = |c: Connection| Timetable::new(Period::DAY, stations(2), vec![c], 1).unwrap_err();
        assert!(matches!(err(conn(0, 5, 0, 10)), TimetableError::UnknownStation { .. }));
        assert!(matches!(err(conn(0, 0, 0, 10)), TimetableError::SelfLoop { .. }));
        assert!(matches!(err(conn(0, 1, 10, 10)), TimetableError::ZeroDuration { .. }));
        let mut c = conn(0, 1, 0, 10);
        c.dep = Time::hm(25, 0);
        c.arr = Time::hm(25, 10);
        assert!(matches!(
            Timetable::new(Period::DAY, stations(2), vec![c], 1).unwrap_err(),
            TimetableError::DepartureNotLocal { .. }
        ));
        let mut c = conn(0, 1, 20, 10);
        c.arr = Time::hm(0, 10);
        assert!(matches!(
            Timetable::new(Period::DAY, stations(2), vec![c], 1).unwrap_err(),
            TimetableError::ArrivalBeforeDeparture { .. }
        ));
    }

    #[test]
    fn stats_report_ratio() {
        let tt = Timetable::new(
            Period::DAY,
            stations(2),
            vec![conn(0, 1, 0, 10), conn(0, 1, 30, 40), conn(1, 0, 15, 25)],
            2,
        )
        .unwrap();
        let s = tt.stats();
        assert_eq!(s.stations, 2);
        assert_eq!(s.connections, 3);
        assert!((s.conns_per_station - 1.5).abs() < 1e-9);
    }

    #[test]
    fn overnight_connection_is_legal() {
        // Departs 23:50, arrives 24:10 (absolute).
        let c = Connection {
            from: StationId(0),
            to: StationId(1),
            dep: Time::hm(23, 50),
            arr: Time::hm(24, 10),
            train: TrainId(0),
            seq: 0,
        };
        let tt = Timetable::new(Period::DAY, stations(2), vec![c], 1).unwrap();
        assert_eq!(tt.connection(ConnId(0)).dur(), Dur::minutes(20));
    }
}
