//! Timetable health checks beyond structural validation.
//!
//! [`Timetable::new`] guarantees well-formedness (period-local departures,
//! positive durations, known stations). This module reports *semantic*
//! properties that affect search behaviour: service coverage, connectivity
//! of the induced station graph, overtaking pressure (how many routes the
//! FIFO split produced) and the temporal spread of departures.

use pt_core::{StationId, Time};

use crate::model::Timetable;
use crate::routes::Routes;

/// Diagnostic report over a timetable.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Stations without any outgoing or incoming connection.
    pub unserved_stations: Vec<StationId>,
    /// Number of weakly connected components of the station graph.
    pub components: usize,
    /// Routes produced by the overtaking-aware partition.
    pub routes: usize,
    /// Stop-sequence equivalence classes (before overtaking splits); equal
    /// to `routes` iff no train overtakes another.
    pub sequence_classes: usize,
    /// Maximum `|conn(S)|` over all stations.
    pub max_conn_s: usize,
    /// Share of departures inside the two rush-hour bands (07–09, 16–19),
    /// the temporal skew behind the partition-balance discussion (§3.2).
    pub rush_hour_share: f64,
}

impl Report {
    /// `true` iff the network is fully served and connected.
    pub fn is_healthy(&self) -> bool {
        self.unserved_stations.is_empty() && self.components <= 1
    }
}

/// Computes the report.
pub fn check(tt: &Timetable) -> Report {
    let n = tt.num_stations();

    // Service coverage and weak connectivity via union-find.
    let mut served = vec![false; n];
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for c in tt.connections() {
        served[c.from.idx()] = true;
        served[c.to.idx()] = true;
        let (a, b) = (find(&mut parent, c.from.0), find(&mut parent, c.to.0));
        if a != b {
            parent[a as usize] = b;
        }
    }
    let unserved: Vec<StationId> =
        (0..n as u32).map(StationId).filter(|s| !served[s.idx()]).collect();
    let mut roots: Vec<u32> =
        (0..n as u32).filter(|&s| served[s as usize]).map(|s| find(&mut parent, s)).collect();
    roots.sort_unstable();
    roots.dedup();
    let components = roots.len() + unserved.len();

    // Route partition pressure.
    let routes = Routes::partition(tt);
    let mut sequences: Vec<&[StationId]> =
        routes.iter_routes().map(|r| r.stations.as_slice()).collect();
    sequences.sort_unstable();
    sequences.dedup();

    // Temporal skew: the period always maps onto 24 "hours".
    let period = tt.period();
    let secs_per_hour = period.len() as f64 / 24.0;
    let in_rush = |t: Time| {
        let h = t.secs() as f64 / secs_per_hour;
        (7.0..9.0).contains(&h) || (16.0..19.0).contains(&h)
    };
    let rush = tt.connections().iter().filter(|c| in_rush(c.dep)).count();

    let max_conn_s = tt.station_ids().map(|s| tt.conn(s).len()).max().unwrap_or(0);

    Report {
        unserved_stations: unserved,
        components,
        routes: routes.len(),
        sequence_classes: sequences.len(),
        max_conn_s,
        rush_hour_share: rush as f64 / tt.num_connections().max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TimetableBuilder;
    use crate::synthetic::city::{generate_city, CityConfig};
    use pt_core::{Dur, Period};

    #[test]
    fn generated_city_is_healthy() {
        let tt = generate_city(&CityConfig::sized(60, 8, 5));
        let r = check(&tt);
        assert!(r.is_healthy(), "{r:?}");
        assert_eq!(r.components, 1);
        assert!(r.max_conn_s > 0);
        // Urban profile concentrates departures in rush hours.
        assert!(r.rush_hour_share > 0.25, "rush share {}", r.rush_hour_share);
    }

    #[test]
    fn detects_unserved_and_disconnected() {
        let mut b = TimetableBuilder::new(Period::DAY);
        let a = b.add_named_station("A", Dur::ZERO);
        let c = b.add_named_station("B", Dur::ZERO);
        let d = b.add_named_station("C", Dur::ZERO);
        let e = b.add_named_station("D", Dur::ZERO);
        let lonely = b.add_named_station("lonely", Dur::ZERO);
        // Two disconnected served pairs plus one unserved station.
        b.add_simple_trip(&[a, c], Time::hm(8, 0), &[Dur::minutes(5)], Dur::ZERO).unwrap();
        b.add_simple_trip(&[d, e], Time::hm(8, 0), &[Dur::minutes(5)], Dur::ZERO).unwrap();
        let tt = b.build().unwrap();
        let r = check(&tt);
        assert!(!r.is_healthy());
        assert_eq!(r.unserved_stations, vec![lonely]);
        assert_eq!(r.components, 3); // {A,B}, {C,D}, {lonely}
    }

    #[test]
    fn overtaking_shows_as_extra_routes() {
        let mut b = TimetableBuilder::new(Period::DAY);
        let a = b.add_named_station("A", Dur::ZERO);
        let c = b.add_named_station("B", Dur::ZERO);
        b.add_simple_trip(&[a, c], Time::hm(8, 0), &[Dur::minutes(60)], Dur::ZERO).unwrap();
        b.add_simple_trip(&[a, c], Time::hm(8, 10), &[Dur::minutes(10)], Dur::ZERO).unwrap();
        let tt = b.build().unwrap();
        let r = check(&tt);
        assert_eq!(r.sequence_classes, 1);
        assert_eq!(r.routes, 2); // split by the express overtaking the local
    }
}
