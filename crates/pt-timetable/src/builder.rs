//! Incremental timetable construction from trips.

use pt_core::{Dur, Period, StationId, Time, TrainId};

use crate::model::{Connection, Station, Timetable, TimetableError};

/// One stop of a trip: the train arrives at `arr` and departs at `dep`
/// (absolute times, monotone along the trip; `arr ≤ dep` models dwell time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TripStop {
    /// The station called at.
    pub station: StationId,
    /// Absolute arrival time at the stop.
    pub arr: Time,
    /// Absolute departure time from the stop (`≥ arr`).
    pub dep: Time,
}

impl TripStop {
    /// A stop without dwell time.
    pub fn passing(station: StationId, t: Time) -> Self {
        TripStop { station, arr: t, dep: t }
    }
}

/// Builds a [`Timetable`] from stations and trips.
///
/// Trips use *absolute* times (monotone along the trip, possibly crossing
/// the period boundary); the builder normalizes each leg into an elementary
/// connection with a period-local departure.
#[derive(Debug, Clone)]
pub struct TimetableBuilder {
    period: Period,
    stations: Vec<Station>,
    conns: Vec<Connection>,
    next_train: u32,
}

impl TimetableBuilder {
    /// Creates an empty builder for the given period.
    pub fn new(period: Period) -> Self {
        TimetableBuilder { period, stations: Vec::new(), conns: Vec::new(), next_train: 0 }
    }

    /// Registers a station and returns its id.
    pub fn add_station(&mut self, station: Station) -> StationId {
        let id = StationId::from_idx(self.stations.len());
        self.stations.push(station);
        id
    }

    /// Convenience: station with a name and transfer time at the origin.
    pub fn add_named_station(&mut self, name: impl Into<String>, transfer: Dur) -> StationId {
        self.add_station(Station::new(name, transfer))
    }

    /// Number of stations registered so far.
    pub fn num_stations(&self) -> usize {
        self.stations.len()
    }

    /// Number of connections accumulated so far.
    pub fn num_connections(&self) -> usize {
        self.conns.len()
    }

    /// The stations registered so far.
    pub fn stations(&self) -> &[Station] {
        &self.stations
    }

    /// The connections accumulated so far (in insertion order, unsorted).
    pub fn connections(&self) -> &[Connection] {
        &self.conns
    }

    /// Adds one train running the given trip; returns its [`TrainId`].
    ///
    /// Validates chronological order (`arr_i ≤ dep_i ≤ arr_{i+1}`), strictly
    /// positive leg durations and at least two stops.
    pub fn add_trip(&mut self, stops: &[TripStop]) -> Result<TrainId, TimetableError> {
        let train = TrainId(self.next_train);
        if stops.len() < 2 {
            return Err(TimetableError::TripTooShort { train });
        }
        for (i, s) in stops.iter().enumerate() {
            if s.arr > s.dep {
                return Err(TimetableError::NonMonotoneTrip { train });
            }
            if i + 1 < stops.len() && s.dep >= stops[i + 1].arr {
                return Err(TimetableError::NonMonotoneTrip { train });
            }
        }
        for (seq, leg) in stops.windows(2).enumerate() {
            let dep_abs = leg[0].dep;
            let arr_abs = leg[1].arr;
            let dep = self.period.local(dep_abs);
            let arr = dep + (arr_abs - dep_abs);
            self.conns.push(Connection {
                from: leg[0].station,
                to: leg[1].station,
                dep,
                arr,
                train,
                seq: seq as u16,
            });
        }
        self.next_train += 1;
        Ok(train)
    }

    /// Convenience: a trip along `path` starting at `start`, with per-leg
    /// durations `legs` (must satisfy `legs.len() == path.len() − 1`) and a
    /// constant dwell time at intermediate stops.
    pub fn add_simple_trip(
        &mut self,
        path: &[StationId],
        start: Time,
        legs: &[Dur],
        dwell: Dur,
    ) -> Result<TrainId, TimetableError> {
        assert_eq!(legs.len() + 1, path.len(), "one duration per leg");
        let mut stops = Vec::with_capacity(path.len());
        let mut t = start;
        for (i, &station) in path.iter().enumerate() {
            let arr = t;
            let dep = if i + 1 < path.len() && i > 0 { arr + dwell } else { arr };
            stops.push(TripStop { station, arr, dep });
            if i < legs.len() {
                t = dep + legs[i];
            }
        }
        self.add_trip(&stops)
    }

    /// Finalizes the timetable.
    pub fn build(self) -> Result<Timetable, TimetableError> {
        Timetable::new(self.period, self.stations, self.conns, self.next_train)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn builder_with(n: usize) -> (TimetableBuilder, Vec<StationId>) {
        let mut b = TimetableBuilder::new(Period::DAY);
        let ids = (0..n).map(|i| b.add_named_station(format!("S{i}"), Dur::minutes(2))).collect();
        (b, ids)
    }

    #[test]
    fn trip_produces_one_connection_per_leg() {
        let (mut b, s) = builder_with(3);
        b.add_trip(&[
            TripStop::passing(s[0], Time::hm(8, 0)),
            TripStop { station: s[1], arr: Time::hm(8, 10), dep: Time::hm(8, 12) },
            TripStop::passing(s[2], Time::hm(8, 25)),
        ])
        .unwrap();
        let tt = b.build().unwrap();
        assert_eq!(tt.num_connections(), 2);
        assert_eq!(tt.num_trains(), 1);
        let legs = tt.connections();
        let c01 = legs.iter().find(|c| c.from == s[0]).unwrap();
        assert_eq!((c01.dep, c01.arr), (Time::hm(8, 0), Time::hm(8, 10)));
        let c12 = legs.iter().find(|c| c.from == s[1]).unwrap();
        assert_eq!((c12.dep, c12.arr), (Time::hm(8, 12), Time::hm(8, 25)));
        assert_eq!(c12.seq, 1);
    }

    #[test]
    fn trip_crossing_midnight_normalizes_departures() {
        let (mut b, s) = builder_with(3);
        b.add_trip(&[
            TripStop::passing(s[0], Time::hm(23, 50)),
            TripStop::passing(s[1], Time::hm(24, 10)),
            TripStop::passing(s[2], Time::hm(24, 30)),
        ])
        .unwrap();
        let tt = b.build().unwrap();
        let legs = tt.connections();
        let c12 = legs.iter().find(|c| c.from == s[1]).unwrap();
        // Second leg departs 00:10 local time.
        assert_eq!(c12.dep, Time::hm(0, 10));
        assert_eq!(c12.arr, Time::hm(0, 30));
    }

    #[test]
    fn non_monotone_trip_rejected() {
        let (mut b, s) = builder_with(2);
        let err = b
            .add_trip(&[
                TripStop::passing(s[0], Time::hm(9, 0)),
                TripStop::passing(s[1], Time::hm(8, 0)),
            ])
            .unwrap_err();
        assert!(matches!(err, TimetableError::NonMonotoneTrip { .. }));
    }

    #[test]
    fn short_trip_rejected() {
        let (mut b, s) = builder_with(1);
        let err = b.add_trip(&[TripStop::passing(s[0], Time::hm(9, 0))]).unwrap_err();
        assert!(matches!(err, TimetableError::TripTooShort { .. }));
    }

    #[test]
    fn simple_trip_expands_to_stops() {
        let (mut b, s) = builder_with(3);
        b.add_simple_trip(
            &[s[0], s[1], s[2]],
            Time::hm(7, 0),
            &[Dur::minutes(10), Dur::minutes(15)],
            Dur::minutes(1),
        )
        .unwrap();
        let tt = b.build().unwrap();
        let legs = tt.connections();
        let c01 = legs.iter().find(|c| c.from == s[0]).unwrap();
        let c12 = legs.iter().find(|c| c.from == s[1]).unwrap();
        assert_eq!((c01.dep, c01.arr), (Time::hm(7, 0), Time::hm(7, 10)));
        // One minute dwell at S1.
        assert_eq!((c12.dep, c12.arr), (Time::hm(7, 11), Time::hm(7, 26)));
    }
}
