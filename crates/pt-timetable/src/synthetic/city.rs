//! City bus network generator.
//!
//! Stations sit on a jittered grid (a street network); each bus line is a
//! direction-persistent random walk across the grid, operated in both
//! directions with a time-of-day headway profile. Per-route leg durations
//! are constant across trips, so no trip overtakes another within a route —
//! the FIFO precondition of the realistic model holds by construction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pt_core::{Dur, Period, StationId};

use crate::builder::TimetableBuilder;
use crate::model::{Station, Timetable};
use crate::synthetic::headway::HeadwayProfile;

/// Configuration of [`generate_city`].
#[derive(Debug, Clone)]
pub struct CityConfig {
    /// Number of stations (grid cells).
    pub stations: usize,
    /// Number of bus lines; each is operated in both directions.
    pub lines: usize,
    /// Stops per line, inclusive range.
    pub line_stops: (usize, usize),
    /// Per-leg travel time in minutes, inclusive range.
    pub leg_minutes: (u32, u32),
    /// Dwell time at intermediate stops.
    pub dwell: Dur,
    /// Departure frequency over the day.
    pub profile: HeadwayProfile,
    /// Share of lines using the sparser feeder profile (0..=1).
    pub feeder_share: f64,
    /// Feeder profile for that share.
    pub feeder_profile: HeadwayProfile,
    /// Station minimum transfer time in minutes, inclusive range.
    pub transfer_minutes: (u32, u32),
    /// Timetable period.
    pub period: Period,
    /// RNG seed — generation is fully deterministic in it.
    pub seed: u64,
}

impl CityConfig {
    /// A reasonable default city of the given size.
    pub fn sized(stations: usize, lines: usize, seed: u64) -> Self {
        let period = Period::DAY;
        CityConfig {
            stations,
            lines,
            line_stops: (12, 32),
            leg_minutes: (1, 4),
            dwell: Dur(30),
            profile: HeadwayProfile::urban(period),
            feeder_share: 0.3,
            feeder_profile: HeadwayProfile::urban_feeder(period),
            transfer_minutes: (0, 3),
            period,
            seed,
        }
    }
}

/// Generates a city bus timetable. Deterministic in `cfg.seed`.
pub fn generate_city(cfg: &CityConfig) -> Timetable {
    assert!(cfg.stations >= 4, "need at least 4 stations");
    assert!(cfg.line_stops.0 >= 2 && cfg.line_stops.0 <= cfg.line_stops.1);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xC17Bu64);

    // Jittered grid of stations.
    let w = (cfg.stations as f64).sqrt().ceil() as usize;
    let h = cfg.stations.div_ceil(w);
    let mut b = TimetableBuilder::new(cfg.period);
    for i in 0..cfg.stations {
        let (x, y) = (i % w, i / w);
        let jitter = |r: &mut StdRng| r.gen_range(-0.3..0.3);
        let mut st = Station::new(
            format!("Stop {x}/{y}"),
            Dur::minutes(rng.gen_range(cfg.transfer_minutes.0..=cfg.transfer_minutes.1)),
        );
        st.pos = (x as f32 + jitter(&mut rng) as f32, y as f32 + jitter(&mut rng) as f32);
        b.add_station(st);
    }
    let at = |x: usize, y: usize| -> Option<StationId> {
        let i = y * w + x;
        (x < w && i < cfg.stations).then(|| StationId::from_idx(i))
    };

    for _line in 0..cfg.lines {
        let target_len = rng.gen_range(cfg.line_stops.0..=cfg.line_stops.1);
        let path = walk_line(&mut rng, w, h, cfg.stations, target_len, at);
        if path.len() < 2 {
            continue;
        }
        // Constant per-leg durations for the line (both directions share).
        let legs: Vec<Dur> = (1..path.len())
            .map(|_| Dur::minutes(rng.gen_range(cfg.leg_minutes.0..=cfg.leg_minutes.1)))
            .collect();
        let profile =
            if rng.gen_bool(cfg.feeder_share) { &cfg.feeder_profile } else { &cfg.profile };
        for dir in 0..2 {
            let (path_d, legs_d): (Vec<StationId>, Vec<Dur>) = if dir == 0 {
                (path.clone(), legs.clone())
            } else {
                (path.iter().rev().copied().collect(), legs.iter().rev().copied().collect())
            };
            let offset = Dur(rng.gen_range(0..profile.max_headway().secs()));
            for dep in profile.departures(offset) {
                b.add_simple_trip(&path_d, dep, &legs_d, cfg.dwell)
                    .expect("generated trip is valid");
            }
        }
    }
    // Random walks may strand grid cells; feeder connectors make the
    // network connected, like any real feed.
    crate::synthetic::ensure_connected(&mut b, &cfg.feeder_profile, &mut rng, 2.0);
    b.build().expect("generated timetable is valid")
}

/// Direction-persistent random walk on the grid, skipping repeats of the
/// immediately preceding station and stopping at `target_len` stops.
fn walk_line(
    rng: &mut StdRng,
    w: usize,
    h: usize,
    stations: usize,
    target_len: usize,
    at: impl Fn(usize, usize) -> Option<StationId>,
) -> Vec<StationId> {
    const DIRS: [(i64, i64); 4] = [(1, 0), (-1, 0), (0, 1), (0, -1)];
    let (mut x, mut y) = loop {
        let x = rng.gen_range(0..w);
        let y = rng.gen_range(0..h);
        if y * w + x < stations {
            break (x as i64, y as i64);
        }
    };
    let mut dir = rng.gen_range(0..4usize);
    let mut path: Vec<StationId> = vec![at(x as usize, y as usize).expect("start on grid")];
    let mut attempts = 0;
    while path.len() < target_len && attempts < 8 * target_len {
        attempts += 1;
        // Persist direction, sometimes turn; never reverse immediately.
        let r: f64 = rng.gen();
        let next_dir = if r < 0.65 {
            dir
        } else if r < 0.85 {
            (dir + 2) % 4 // orthogonal turn (indices 0,1 are x-moves; 2,3 y-moves)
        } else {
            (dir + 3) % 4
        };
        let (dx, dy) = DIRS[next_dir];
        let (nx, ny) = (x + dx, y + dy);
        if nx < 0 || ny < 0 || nx as usize >= w || ny as usize >= h {
            dir = (dir + 2) % 4;
            continue;
        }
        let Some(s) = at(nx as usize, ny as usize) else {
            dir = (dir + 2) % 4;
            continue;
        };
        if path.last() == Some(&s) || path.len() >= 2 && path[path.len() - 2] == s {
            dir = rng.gen_range(0..4usize);
            continue;
        }
        dir = next_dir;
        x = nx;
        y = ny;
        path.push(s);
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = CityConfig::sized(60, 6, 42);
        let a = generate_city(&cfg);
        let b = generate_city(&cfg);
        assert_eq!(a.num_connections(), b.num_connections());
        assert_eq!(a.connections(), b.connections());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_city(&CityConfig::sized(60, 6, 1));
        let b = generate_city(&CityConfig::sized(60, 6, 2));
        assert_ne!(a.connections(), b.connections());
    }

    #[test]
    fn produces_dense_local_network() {
        let cfg = CityConfig::sized(100, 12, 7);
        let tt = generate_city(&cfg);
        let stats = tt.stats();
        assert_eq!(stats.stations, 100);
        assert!(stats.connections > 10_000, "got {}", stats.connections);
        // Bidirectional service: some station has both in- and outgoing.
        assert!(stats.conns_per_station > 50.0);
    }

    #[test]
    fn routes_partition_cleanly() {
        // The FIFO-by-construction claim: partitioning the generated
        // timetable must give exactly one route per (line, direction) —
        // no overtaking splits.
        let cfg = CityConfig::sized(80, 8, 99);
        let tt = generate_city(&cfg);
        let routes = crate::routes::Routes::partition(&tt);
        // Every route has at least a handful of trains (headway-driven).
        let avg = tt.num_trains() as f64 / routes.len() as f64;
        assert!(avg > 20.0, "avg trains per route = {avg}");
    }
}
