//! The five evaluation networks of the paper, as synthetic stand-ins.
//!
//! | Paper input      | Stops  | Elem. conns | Conns/stop | Stand-in           |
//! |------------------|--------|-------------|------------|--------------------|
//! | Oahu             |  3 918 |  1 408 559  | ~360       | [`oahu_like`]      |
//! | Los Angeles      | 15 792 |  5 023 877  | ~318       | [`los_angeles_like`]|
//! | Washington D.C.  | 10 764 |  3 387 987  | ~315       | [`washington_like`]|
//! | Germany (rail)   |  6 822 |    554 996  | ~81        | [`germany_like`]   |
//! | Europe (rail)    | 30 517 |  1 775 533  | ~58        | [`europe_like`]    |
//!
//! The stand-ins reproduce the *connections-per-station ratio* and the
//! city-vs-rail density contrast at a configurable fraction of the absolute
//! size (`scale = 1.0` ≈ one tenth of the paper's inputs, sized for a small
//! multicore box). The ratio, not the absolute size, determines the
//! algorithmic behaviour under study: self-pruning effectiveness, partition
//! balance and the parallel-scaling anomaly on sparse rail networks.

use pt_core::Period;

use crate::model::Timetable;
use crate::synthetic::city::{generate_city, CityConfig};
use crate::synthetic::headway::HeadwayProfile;
use crate::synthetic::rail::{generate_rail, RailConfig};

/// A named evaluation network.
pub struct Preset {
    /// Display name used in the benchmark tables.
    pub name: &'static str,
    /// The generated timetable.
    pub timetable: Timetable,
}

fn city_preset(
    name: &'static str,
    stations: usize,
    lines: usize,
    line_stops: (usize, usize),
    seed: u64,
    scale: f64,
) -> Preset {
    assert!(scale > 0.0);
    let mut cfg = CityConfig::sized(
        ((stations as f64 * scale).round() as usize).max(16),
        ((lines as f64 * scale).round() as usize).max(4),
        seed,
    );
    cfg.line_stops = line_stops;
    Preset { name, timetable: generate_city(&cfg) }
}

/// Oahu-like: compact island bus network, the densest input (~360
/// connections per stop in the paper).
pub fn oahu_like(scale: f64) -> Preset {
    city_preset("Oahu", 400, 26, (14, 34), 0x0A47, scale)
}

/// Los-Angeles-like: the largest city network (~318 connections per stop).
pub fn los_angeles_like(scale: f64) -> Preset {
    city_preset("Los Angeles", 1580, 90, (14, 34), 0x1A00, scale)
}

/// Washington-D.C.-like city network (~315 connections per stop).
pub fn washington_like(scale: f64) -> Preset {
    city_preset("Washington D.C.", 1080, 61, (14, 34), 0xD0C0, scale)
}

/// Germany-like national railway (~81 connections per station).
pub fn germany_like(scale: f64) -> Preset {
    let cities = ((85.0 * scale).round() as usize).max(6);
    let mut cfg = RailConfig::national(cities, 0xDE00);
    // Denser regional service than the continental default, matching the
    // higher ratio of the national network.
    cfg.regional_profile = HeadwayProfile::from_hours(
        &[
            (0.0, 1.0, Some(60)),
            (1.0, 5.0, None),
            (5.0, 7.0, Some(30)),
            (7.0, 9.0, Some(20)),
            (9.0, 16.0, Some(30)),
            (16.0, 19.0, Some(20)),
            (19.0, 24.0, Some(40)),
        ],
        Period::DAY,
    );
    Preset { name: "Germany", timetable: generate_rail(&cfg) }
}

/// Europe-like continental railway (~58 connections per station): more
/// cities, sparser long-distance service — the input on which the paper's
/// parallel scaling degrades.
pub fn europe_like(scale: f64) -> Preset {
    let cities = ((340.0 * scale).round() as usize).max(10);
    Preset { name: "Europe", timetable: generate_rail(&RailConfig::continental(cities, 0xE0B0)) }
}

/// Metro-like megacity network: an order of magnitude more stations than
/// [`oahu_like`] at the same scale (≥ 200 stations at `scale = 0.05`),
/// sized so throughput benchmarks exercise the large-slot regime where the
/// SoA kernels and the parallel master-merge pay off. Not part of
/// [`all_presets`] — the paper-table binaries and the cross-check keep the
/// five paper inputs; the `throughput` bench adds this one explicitly.
pub fn metro_like(scale: f64) -> Preset {
    city_preset("Metro", 4000, 260, (14, 34), 0x3E78, scale)
}

/// All five presets at the given scale, in the paper's table order.
pub fn all_presets(scale: f64) -> Vec<Preset> {
    vec![
        oahu_like(scale),
        los_angeles_like(scale),
        washington_like(scale),
        germany_like(scale),
        europe_like(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn city_presets_are_dense_rail_presets_sparse() {
        let oahu = oahu_like(0.25);
        let germany = germany_like(0.25);
        let ro = oahu.timetable.stats().conns_per_station;
        let rg = germany.timetable.stats().conns_per_station;
        assert!(ro > 100.0, "Oahu-like ratio {ro:.1}");
        assert!(rg < ro / 2.0, "Germany-like ratio {rg:.1} vs Oahu {ro:.1}");
    }

    #[test]
    fn presets_are_deterministic() {
        let a = washington_like(0.1);
        let b = washington_like(0.1);
        assert_eq!(a.timetable.connections(), b.timetable.connections());
    }

    #[test]
    fn metro_preset_is_large_even_at_bench_scale() {
        let m = metro_like(0.05);
        assert!(
            m.timetable.num_stations() >= 200,
            "Metro at 0.05 has {} stations",
            m.timetable.num_stations()
        );
    }

    #[test]
    fn scale_controls_size() {
        let small = los_angeles_like(0.05);
        let large = los_angeles_like(0.15);
        assert!(large.timetable.num_stations() > 2 * small.timetable.num_stations());
    }
}
