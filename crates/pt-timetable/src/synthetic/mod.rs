//! Seeded synthetic network generators.
//!
//! The paper evaluates on five real inputs (Oahu, Los Angeles, Washington
//! D.C. from GTFS; Germany and Europe from proprietary HaCon data). Those
//! feeds are not shipped with this repository, so the generators here build
//! the closest synthetic equivalents (see DESIGN.md, *Substitutions*):
//!
//! * [`city::generate_city`] — dense local bus networks: jittered-grid street
//!   layout, random-walk bus routes, rush-hour headway peaks and a night
//!   operational break. This reproduces the *high connections-per-station
//!   ratio* (~315–360) and the *non-uniform temporal distribution* of
//!   departures that drive self-pruning and partition balance (§3.2, §5.1).
//! * [`rail::generate_rail`] — hierarchical railway networks: hub cities with
//!   regional branch lines plus intercity corridors. This reproduces the
//!   *low connections-per-station ratio* (~58–81) responsible for the weaker
//!   parallel scaling the paper observes on Europe.
//!
//! All generators are deterministic in their seed.

pub mod city;
pub mod headway;
pub mod presets;
pub mod rail;

pub use city::{generate_city, CityConfig};
pub use headway::HeadwayProfile;
pub use presets::{
    europe_like, germany_like, los_angeles_like, oahu_like, washington_like, Preset,
};
pub use rail::{generate_rail, RailConfig};

use pt_core::{Dur, StationId};
use rand::rngs::StdRng;
use rand::Rng;

use crate::builder::TimetableBuilder;

/// Connects the network: as long as the (undirected) station graph induced
/// by the connections built so far has several components, a bidirectional
/// connector line is added between the closest station pair spanning two
/// components. Real feeds are connected; random line placement is not
/// guaranteed to be, so every generator runs this pass before `build()`.
pub(crate) fn ensure_connected(
    b: &mut TimetableBuilder,
    profile: &HeadwayProfile,
    rng: &mut StdRng,
    minutes_per_dist: f64,
) {
    let n = b.num_stations();
    if n == 0 {
        return;
    }
    // Union-find over stations.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    let union = |parent: &mut [u32], a: u32, b: u32| {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            parent[ra as usize] = rb;
        }
    };
    for c in b.connections().to_vec() {
        union(&mut parent, c.from.0, c.to.0);
    }
    let pos: Vec<(f32, f32)> = b.stations().iter().map(|s| s.pos).collect();
    let dist = |a: usize, c: usize| -> f64 {
        let (ax, ay) = pos[a];
        let (cx, cy) = pos[c];
        (((ax - cx) as f64).powi(2) + ((ay - cy) as f64).powi(2)).sqrt()
    };

    loop {
        // Partition stations by component root.
        let mut by_root: std::collections::BTreeMap<u32, Vec<usize>> = Default::default();
        for s in 0..n as u32 {
            by_root.entry(find(&mut parent, s)).or_default().push(s as usize);
        }
        if by_root.len() <= 1 {
            return;
        }
        // Bridge the smallest component to its nearest outside station.
        let smallest = by_root.values().min_by_key(|v| v.len()).expect("non-empty").clone();
        let root = find(&mut parent, smallest[0] as u32);
        let mut best: Option<(usize, usize, f64)> = None;
        for &u in &smallest {
            for v in 0..n {
                if find(&mut parent, v as u32) == root {
                    continue;
                }
                let d = dist(u, v);
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((u, v, d));
                }
            }
        }
        let (u, v, d) = best.expect("second component exists");
        let leg = Dur::minutes(((d * minutes_per_dist).round() as u32).max(2));
        let path = [StationId::from_idx(u), StationId::from_idx(v)];
        let rev = [path[1], path[0]];
        let offset = Dur(rng.gen_range(0..profile.max_headway().secs()));
        for dep in profile.departures(offset) {
            b.add_simple_trip(&path, dep, &[leg], Dur::ZERO).expect("connector trip");
        }
        let offset = Dur(rng.gen_range(0..profile.max_headway().secs()));
        for dep in profile.departures(offset) {
            b.add_simple_trip(&rev, dep, &[leg], Dur::ZERO).expect("connector trip");
        }
        union(&mut parent, u as u32, v as u32);
    }
}
