//! Hierarchical railway network generator.
//!
//! Cities are scattered on a plane; each city has a hub station and a few
//! regional branch lines fanning out from the hub. Intercity lines connect
//! each hub to its nearest neighbours, and a handful of long corridors chain
//! many hubs. Service frequencies are low (hourly and worse), producing the
//! small connections-per-station ratio that makes self-pruning — and hence
//! parallel scaling — weaker on railway networks (paper, §5.1, Europe).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pt_core::{Dur, Period, StationId};

use crate::builder::TimetableBuilder;
use crate::model::{Station, Timetable};
use crate::synthetic::headway::HeadwayProfile;

/// Configuration of [`generate_rail`].
#[derive(Debug, Clone)]
pub struct RailConfig {
    /// Number of cities (each gets one hub).
    pub cities: usize,
    /// Non-hub stations per city, inclusive range.
    pub stations_per_city: (usize, usize),
    /// Stations per regional branch, inclusive range.
    pub branch_len: (usize, usize),
    /// Each hub connects to this many nearest hubs.
    pub intercity_degree: usize,
    /// Number of long corridors chaining hubs end-to-end.
    pub corridors: usize,
    /// Hubs per corridor, inclusive range.
    pub corridor_len: (usize, usize),
    /// Regional leg duration in minutes, inclusive range.
    pub regional_leg_minutes: (u32, u32),
    /// Intercity minutes per unit of planar distance.
    pub intercity_minutes_per_dist: f64,
    /// Regional service frequency.
    pub regional_profile: HeadwayProfile,
    /// Intercity service frequency.
    pub intercity_profile: HeadwayProfile,
    /// Station transfer time in minutes, inclusive range (hubs get the max).
    pub transfer_minutes: (u32, u32),
    /// Timetable period.
    pub period: Period,
    /// RNG seed.
    pub seed: u64,
}

impl RailConfig {
    /// A national network in the spirit of the paper's Germany input.
    pub fn national(cities: usize, seed: u64) -> Self {
        let period = Period::DAY;
        RailConfig {
            cities,
            stations_per_city: (4, 10),
            branch_len: (2, 5),
            intercity_degree: 3,
            corridors: (cities / 12).max(2),
            corridor_len: (4, 8),
            regional_leg_minutes: (5, 20),
            intercity_minutes_per_dist: 0.55,
            regional_profile: HeadwayProfile::rail_regional(period),
            intercity_profile: HeadwayProfile::rail_intercity(period),
            transfer_minutes: (3, 6),
            period,
            seed,
        }
    }

    /// A continental network in the spirit of the paper's Europe input:
    /// more cities, sparser service.
    pub fn continental(cities: usize, seed: u64) -> Self {
        let period = Period::DAY;
        RailConfig {
            intercity_degree: 2,
            regional_profile: HeadwayProfile::rail_regional(period),
            intercity_profile: HeadwayProfile::rail_sparse(period),
            stations_per_city: (4, 12),
            ..Self::national(cities, seed)
        }
    }
}

/// Generates a railway timetable. Deterministic in `cfg.seed`.
pub fn generate_rail(cfg: &RailConfig) -> Timetable {
    assert!(cfg.cities >= 2, "need at least two cities");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9A17u64);
    let mut b = TimetableBuilder::new(cfg.period);

    // Place cities; hub transfer times are the configured maximum.
    let positions: Vec<(f64, f64)> =
        (0..cfg.cities).map(|_| (rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0))).collect();
    let mut hubs = Vec::with_capacity(cfg.cities);
    let mut city_stations: Vec<Vec<StationId>> = Vec::with_capacity(cfg.cities);
    for (c, &(x, y)) in positions.iter().enumerate() {
        let mut hub = Station::new(format!("City {c} Hbf"), Dur::minutes(cfg.transfer_minutes.1));
        hub.pos = (x as f32, y as f32);
        let hub_id = b.add_station(hub);
        hubs.push(hub_id);
        let n = rng.gen_range(cfg.stations_per_city.0..=cfg.stations_per_city.1);
        let mut locals = Vec::with_capacity(n);
        for i in 0..n {
            let angle = rng.gen_range(0.0..std::f64::consts::TAU);
            let dist = rng.gen_range(3.0..25.0);
            let mut st = Station::new(
                format!("City {c} / {i}"),
                Dur::minutes(rng.gen_range(cfg.transfer_minutes.0..=cfg.transfer_minutes.1)),
            );
            st.pos = ((x + dist * angle.cos()) as f32, (y + dist * angle.sin()) as f32);
            locals.push(b.add_station(st));
        }
        city_stations.push(locals);
    }

    // Regional branch lines: hub → chain of locals, both directions.
    for c in 0..cfg.cities {
        let mut remaining: Vec<StationId> = city_stations[c].clone();
        while !remaining.is_empty() {
            let len = rng.gen_range(cfg.branch_len.0..=cfg.branch_len.1).min(remaining.len());
            let branch: Vec<StationId> = remaining.drain(..len).collect();
            let mut path = Vec::with_capacity(branch.len() + 1);
            path.push(hubs[c]);
            path.extend(branch);
            let legs: Vec<Dur> = (1..path.len())
                .map(|_| {
                    Dur::minutes(
                        rng.gen_range(cfg.regional_leg_minutes.0..=cfg.regional_leg_minutes.1),
                    )
                })
                .collect();
            run_line(&mut b, &path, &legs, &cfg.regional_profile, &mut rng);
        }
    }

    // Intercity lines: each hub to its `intercity_degree` nearest hubs.
    let mut seen_pairs = std::collections::BTreeSet::new();
    for a in 0..cfg.cities {
        let mut order: Vec<usize> = (0..cfg.cities).filter(|&b2| b2 != a).collect();
        order.sort_by(|&i, &j| {
            dist(positions[a], positions[i]).total_cmp(&dist(positions[a], positions[j]))
        });
        for &nb in order.iter().take(cfg.intercity_degree) {
            let key = (a.min(nb), a.max(nb));
            if !seen_pairs.insert(key) {
                continue;
            }
            let minutes =
                (dist(positions[a], positions[nb]) * cfg.intercity_minutes_per_dist).max(10.0);
            let legs = [Dur::minutes(minutes.round() as u32)];
            run_line(&mut b, &[hubs[a], hubs[nb]], &legs, &cfg.intercity_profile, &mut rng);
        }
    }

    // Long corridors: nearest-neighbour chains of hubs.
    for _ in 0..cfg.corridors {
        let len = rng.gen_range(cfg.corridor_len.0..=cfg.corridor_len.1).min(cfg.cities);
        let mut current = rng.gen_range(0..cfg.cities);
        let mut chain = vec![current];
        while chain.len() < len {
            let next = (0..cfg.cities).filter(|c| !chain.contains(c)).min_by(|&i, &j| {
                dist(positions[current], positions[i])
                    .total_cmp(&dist(positions[current], positions[j]))
            });
            let Some(next) = next else { break };
            chain.push(next);
            current = next;
        }
        if chain.len() < 2 {
            continue;
        }
        let path: Vec<StationId> = chain.iter().map(|&c| hubs[c]).collect();
        let legs: Vec<Dur> = chain
            .windows(2)
            .map(|w| {
                let minutes = (dist(positions[w[0]], positions[w[1]])
                    * cfg.intercity_minutes_per_dist)
                    .max(10.0);
                Dur::minutes(minutes.round() as u32)
            })
            .collect();
        run_line(&mut b, &path, &legs, &cfg.intercity_profile, &mut rng);
    }

    // Nearest-neighbour intercity links need not span all cities; connector
    // lines make the network connected, like any real feed.
    crate::synthetic::ensure_connected(
        &mut b,
        &cfg.intercity_profile,
        &mut rng,
        cfg.intercity_minutes_per_dist,
    );
    b.build().expect("generated timetable is valid")
}

fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

/// Operates a line in both directions with the given profile.
fn run_line(
    b: &mut TimetableBuilder,
    path: &[StationId],
    legs: &[Dur],
    profile: &HeadwayProfile,
    rng: &mut StdRng,
) {
    let dwell = Dur::minutes(1);
    for dir in 0..2 {
        let (path_d, legs_d): (Vec<StationId>, Vec<Dur>) = if dir == 0 {
            (path.to_vec(), legs.to_vec())
        } else {
            (path.iter().rev().copied().collect(), legs.iter().rev().copied().collect())
        };
        let offset = Dur(rng.gen_range(0..profile.max_headway().secs()));
        for dep in profile.departures(offset) {
            b.add_simple_trip(&path_d, dep, &legs_d, dwell).expect("generated trip is valid");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = RailConfig::national(12, 5);
        let a = generate_rail(&cfg);
        let b = generate_rail(&cfg);
        assert_eq!(a.connections(), b.connections());
    }

    #[test]
    fn rail_is_sparser_than_city() {
        let rail = generate_rail(&RailConfig::national(20, 3));
        let city = crate::synthetic::city::generate_city(
            &crate::synthetic::city::CityConfig::sized(rail.num_stations(), 12, 3),
        );
        assert!(
            rail.stats().conns_per_station < city.stats().conns_per_station / 2.0,
            "rail {:.1} vs city {:.1}",
            rail.stats().conns_per_station,
            city.stats().conns_per_station
        );
    }

    #[test]
    fn continental_is_sparser_than_national() {
        let nat = generate_rail(&RailConfig::national(20, 3));
        let cont = generate_rail(&RailConfig::continental(20, 3));
        assert!(
            cont.stats().conns_per_station < nat.stats().conns_per_station,
            "continental {:.1} vs national {:.1}",
            cont.stats().conns_per_station,
            nat.stats().conns_per_station
        );
    }

    #[test]
    fn network_is_connected_enough() {
        // Every station has at least one outgoing connection (lines are
        // bidirectional, so leaves still have departures).
        let tt = generate_rail(&RailConfig::national(10, 11));
        for s in tt.station_ids() {
            assert!(!tt.conn(s).is_empty(), "station {s} has no departures");
        }
    }
}
