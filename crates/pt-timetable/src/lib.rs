//! Periodic timetables (paper, §2) and the data substrates around them.
//!
//! A periodic timetable is a tuple `(C, S, Z, Π, T)`: elementary connections,
//! stations, trains, the discrete time period and per-station minimum
//! transfer times. This crate provides
//!
//! * [`Timetable`] / [`TimetableBuilder`] — the validated in-memory model,
//!   with `conn(S)` (the outgoing connections of a station, ordered by
//!   departure time) available as a contiguous slice,
//! * [`routes`] — the partition of trains into *routes* (equivalence classes
//!   by stop sequence, split further so that no train overtakes another on
//!   any route edge — the precondition for FIFO route edges in the realistic
//!   time-dependent model),
//! * [`gtfs`] — a reader/writer for a minimal GTFS-like CSV directory, the
//!   format of the paper's public inputs (Google Transit Data Feeds),
//! * [`calendar`] — service calendars (weekday masks, date ranges, exception
//!   dates) and [`Timetable::for_day`], which materializes the timetable of
//!   one concrete query day out of an imported dataset,
//! * [`synthetic`] — seeded generators for city-bus and railway networks
//!   mirroring the paper's five inputs (Oahu, Los Angeles, Washington D.C.,
//!   Germany, Europe), used because the original feeds are not shipped.

#![warn(missing_docs)]

pub mod builder;
pub mod calendar;
pub mod delay;
pub mod gtfs;
pub mod model;
pub mod routes;
pub mod synthetic;
pub mod validate;

pub use builder::{TimetableBuilder, TripStop};
pub use calendar::{
    CalendarError, Date, DayTimetable, ServiceCalendar, ServiceId, ServicePattern, Weekday,
};
pub use delay::{apply_delay, DelayEvent, DelayPatch, FeedPatch, Recovery};
pub use model::{Connection, Station, Timetable, TimetableError, TimetableStats};
pub use routes::{RouteInfo, Routes};
