//! Reader/writer for a minimal GTFS-like CSV directory.
//!
//! The paper's city inputs come from Google Transit Data Feeds (GTFS). This
//! module supports the subset needed to reconstruct a periodic timetable for
//! one service day:
//!
//! * `stops.txt` — `stop_id, stop_name, stop_lat, stop_lon`
//! * `routes.txt` — `route_id, route_short_name, route_type` (written for
//!   completeness; the route partition is recomputed on load)
//! * `trips.txt` — `route_id, service_id, trip_id`
//! * `stop_times.txt` — `trip_id, arrival_time, departure_time, stop_id,
//!   stop_sequence` (times `HH:MM:SS`, hours ≥ 24 allowed for overnight
//!   trips)
//! * `transfers.txt` — `from_stop_id, to_stop_id, transfer_type,
//!   min_transfer_time` (rows with `from == to` carry `T(S)`)
//!
//! The parser is deliberately small: comma-separated, double-quote escaping,
//! header-driven column lookup.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::Path;

use pt_core::{Dur, Period, StationId, Time};

use crate::builder::{TimetableBuilder, TripStop};
use crate::model::{Station, Timetable};
use crate::routes::Routes;

/// Errors raised while loading a GTFS directory.
#[derive(Debug)]
pub enum GtfsError {
    /// Filesystem failure.
    Io(io::Error),
    /// Malformed content.
    Parse {
        /// The file being read.
        file: String,
        /// 1-based line the parse failed on.
        line: usize,
        /// What was wrong with it.
        msg: String,
    },
    /// The resulting timetable failed validation.
    Invalid(crate::model::TimetableError),
}

impl fmt::Display for GtfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GtfsError::Io(e) => write!(f, "i/o error: {e}"),
            GtfsError::Parse { file, line, msg } => {
                write!(f, "{file}:{line}: {msg}")
            }
            GtfsError::Invalid(e) => write!(f, "invalid timetable: {e}"),
        }
    }
}

impl std::error::Error for GtfsError {}

impl From<io::Error> for GtfsError {
    fn from(e: io::Error) -> Self {
        GtfsError::Io(e)
    }
}

/// Splits one CSV record, honouring double-quoted fields with `""` escapes.
fn split_csv(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(ch) = chars.next() {
        match ch {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => fields.push(std::mem::take(&mut cur)),
            _ => cur.push(ch),
        }
    }
    fields.push(cur);
    fields
}

fn quote_csv(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Parses `HH:MM:SS` (hours may exceed 24).
fn parse_time(s: &str) -> Option<Time> {
    let mut it = s.trim().split(':');
    let h: u32 = it.next()?.parse().ok()?;
    let m: u32 = it.next()?.parse().ok()?;
    let sec: u32 = it.next().unwrap_or("0").parse().ok()?;
    if it.next().is_some() || m >= 60 || sec >= 60 {
        return None;
    }
    Some(Time::hms(h, m, sec))
}

fn format_time(t: Time) -> String {
    let s = t.secs();
    format!("{:02}:{:02}:{:02}", s / 3600, (s / 60) % 60, s % 60)
}

/// One parsed CSV file: header map + records.
struct CsvFile {
    name: String,
    header: HashMap<String, usize>,
    records: Vec<Vec<String>>,
}

impl CsvFile {
    fn read(dir: &Path, name: &str) -> Result<Option<CsvFile>, GtfsError> {
        let path = dir.join(name);
        if !path.exists() {
            return Ok(None);
        }
        let content = fs::read_to_string(&path)?;
        let mut lines = content.lines().enumerate();
        let Some((_, header_line)) = lines.next() else {
            return Ok(None);
        };
        let header: HashMap<String, usize> = split_csv(header_line.trim_end_matches('\r'))
            .into_iter()
            .enumerate()
            .map(|(i, h)| (h.trim().to_string(), i))
            .collect();
        let mut records = Vec::new();
        for (_, line) in lines {
            let line = line.trim_end_matches('\r');
            if line.is_empty() {
                continue;
            }
            records.push(split_csv(line));
        }
        Ok(Some(CsvFile { name: name.to_string(), header, records }))
    }

    fn col(&self, name: &str) -> Result<usize, GtfsError> {
        self.header.get(name).copied().ok_or_else(|| GtfsError::Parse {
            file: self.name.clone(),
            line: 1,
            msg: format!("missing column `{name}`"),
        })
    }

    fn field<'a>(&self, rec: &'a [String], col: usize, line: usize) -> Result<&'a str, GtfsError> {
        rec.get(col).map(|s| s.as_str()).ok_or_else(|| GtfsError::Parse {
            file: self.name.clone(),
            line: line + 2,
            msg: "record too short".into(),
        })
    }
}

/// Loads a timetable from a GTFS-subset directory. `default_transfer` is
/// used for stations without a `transfers.txt` entry.
pub fn load_dir(
    dir: impl AsRef<Path>,
    period: Period,
    default_transfer: Dur,
) -> Result<Timetable, GtfsError> {
    let dir = dir.as_ref();
    let stops = CsvFile::read(dir, "stops.txt")?.ok_or_else(|| GtfsError::Parse {
        file: "stops.txt".into(),
        line: 0,
        msg: "file missing".into(),
    })?;
    let stop_times = CsvFile::read(dir, "stop_times.txt")?.ok_or_else(|| GtfsError::Parse {
        file: "stop_times.txt".into(),
        line: 0,
        msg: "file missing".into(),
    })?;
    let transfers = CsvFile::read(dir, "transfers.txt")?;

    let mut builder = TimetableBuilder::new(period);
    let mut stop_ids: HashMap<String, StationId> = HashMap::new();
    {
        let id_c = stops.col("stop_id")?;
        let name_c = stops.col("stop_name")?;
        let lat_c = stops.header.get("stop_lat").copied();
        let lon_c = stops.header.get("stop_lon").copied();
        for (i, rec) in stops.records.iter().enumerate() {
            let id = stops.field(rec, id_c, i)?.to_string();
            let name = stops.field(rec, name_c, i)?.to_string();
            let mut station = Station::new(name, default_transfer);
            if let (Some(lat), Some(lon)) = (lat_c, lon_c) {
                let lat: f32 = stops.field(rec, lat, i)?.parse().unwrap_or(0.0);
                let lon: f32 = stops.field(rec, lon, i)?.parse().unwrap_or(0.0);
                station.pos = (lon, lat);
            }
            let sid = builder.add_station(station);
            stop_ids.insert(id, sid);
        }
    }

    // stop_times, grouped by trip_id in file order, ordered by stop_sequence.
    let trip_c = stop_times.col("trip_id")?;
    let arr_c = stop_times.col("arrival_time")?;
    let dep_c = stop_times.col("departure_time")?;
    let stop_c = stop_times.col("stop_id")?;
    let seq_c = stop_times.col("stop_sequence")?;
    let mut trips: HashMap<String, Vec<(u32, TripStop)>> = HashMap::new();
    let mut trip_order: Vec<String> = Vec::new();
    for (i, rec) in stop_times.records.iter().enumerate() {
        let parse_err =
            |msg: String| GtfsError::Parse { file: "stop_times.txt".into(), line: i + 2, msg };
        let trip = stop_times.field(rec, trip_c, i)?.to_string();
        let arr = parse_time(stop_times.field(rec, arr_c, i)?)
            .ok_or_else(|| parse_err("bad arrival_time".into()))?;
        let dep = parse_time(stop_times.field(rec, dep_c, i)?)
            .ok_or_else(|| parse_err("bad departure_time".into()))?;
        let stop = stop_times.field(rec, stop_c, i)?;
        let &station =
            stop_ids.get(stop).ok_or_else(|| parse_err(format!("unknown stop `{stop}`")))?;
        let seq: u32 = stop_times
            .field(rec, seq_c, i)?
            .trim()
            .parse()
            .map_err(|_| parse_err("bad stop_sequence".into()))?;
        let entry = trips.entry(trip.clone()).or_insert_with(|| {
            trip_order.push(trip);
            Vec::new()
        });
        entry.push((seq, TripStop { station, arr, dep }));
    }
    for trip in &trip_order {
        let stops = trips.get_mut(trip).expect("trip recorded");
        stops.sort_unstable_by_key(|&(seq, _)| seq);
        let stops: Vec<TripStop> = stops.iter().map(|&(_, s)| s).collect();
        builder.add_trip(&stops).map_err(GtfsError::Invalid)?;
    }

    let mut tt = builder.build().map_err(GtfsError::Invalid)?;
    // Apply transfers.txt minimum transfer times (from == to rows).
    if let Some(tr) = transfers {
        let from_c = tr.col("from_stop_id")?;
        let to_c = tr.col("to_stop_id")?;
        let min_c = tr.col("min_transfer_time")?;
        let mut overrides: Vec<(StationId, Dur)> = Vec::new();
        for (i, rec) in tr.records.iter().enumerate() {
            let from = tr.field(rec, from_c, i)?;
            let to = tr.field(rec, to_c, i)?;
            if from != to {
                continue; // inter-stop transfers are out of model scope
            }
            if let (Some(&sid), Ok(secs)) =
                (stop_ids.get(from), tr.field(rec, min_c, i)?.trim().parse::<u32>())
            {
                overrides.push((sid, Dur(secs)));
            }
        }
        if !overrides.is_empty() {
            let mut stations = tt.stations().to_vec();
            for (sid, d) in overrides {
                stations[sid.idx()].transfer_time = d;
            }
            tt =
                Timetable::new(period, stations, tt.connections().to_vec(), tt.num_trains() as u32)
                    .map_err(GtfsError::Invalid)?;
        }
    }
    Ok(tt)
}

/// Writes a timetable as a GTFS-subset directory (creates it if needed).
pub fn save_dir(tt: &Timetable, dir: impl AsRef<Path>) -> Result<(), GtfsError> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let routes = Routes::partition(tt);

    let mut stops = fs::File::create(dir.join("stops.txt"))?;
    writeln!(stops, "stop_id,stop_name,stop_lat,stop_lon")?;
    for (i, s) in tt.stations().iter().enumerate() {
        writeln!(stops, "s{},{},{},{}", i, quote_csv(&s.name), s.pos.1, s.pos.0)?;
    }

    let mut transfers = fs::File::create(dir.join("transfers.txt"))?;
    writeln!(transfers, "from_stop_id,to_stop_id,transfer_type,min_transfer_time")?;
    for (i, s) in tt.stations().iter().enumerate() {
        writeln!(transfers, "s{i},s{i},2,{}", s.transfer_time.secs())?;
    }

    let mut routes_f = fs::File::create(dir.join("routes.txt"))?;
    writeln!(routes_f, "route_id,route_short_name,route_type")?;
    for r in 0..routes.len() {
        writeln!(routes_f, "r{r},R{r},3")?;
    }

    let mut trips_f = fs::File::create(dir.join("trips.txt"))?;
    writeln!(trips_f, "route_id,service_id,trip_id")?;
    let mut stop_times = fs::File::create(dir.join("stop_times.txt"))?;
    writeln!(stop_times, "trip_id,arrival_time,departure_time,stop_id,stop_sequence")?;
    for t in 0..tt.num_trains() {
        let train = pt_core::TrainId::from_idx(t);
        let conns = routes.train_connections(train);
        if conns.is_empty() {
            continue;
        }
        writeln!(trips_f, "r{},weekday,t{}", routes.route_of(train).idx(), t)?;
        // Reconstruct the absolute (arrival, departure) chain along the trip.
        let period = tt.period();
        let mut dep_abs = tt.connection(conns[0]).dep;
        let mut arr_abs = dep_abs; // arrival at the first stop = its departure
        for (h, &cid) in conns.iter().enumerate() {
            let c = tt.connection(cid);
            writeln!(
                stop_times,
                "t{},{},{},s{},{}",
                t,
                format_time(arr_abs),
                format_time(dep_abs),
                c.from.idx(),
                h + 1
            )?;
            arr_abs = dep_abs + c.dur();
            if h + 1 == conns.len() {
                writeln!(
                    stop_times,
                    "t{},{},{},s{},{}",
                    t,
                    format_time(arr_abs),
                    format_time(arr_abs),
                    c.to.idx(),
                    h + 2
                )?;
            } else {
                let next = tt.connection(conns[h + 1]);
                dep_abs = arr_abs + period.delta(period.local(arr_abs), next.dep);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_core::Period;

    #[test]
    fn csv_split_handles_quotes() {
        assert_eq!(split_csv("a,b,c"), vec!["a", "b", "c"]);
        assert_eq!(split_csv(r#""a,b",c"#), vec!["a,b", "c"]);
        assert_eq!(split_csv(r#""he said ""hi""",x"#), vec![r#"he said "hi""#, "x"]);
        assert_eq!(split_csv("a,,c"), vec!["a", "", "c"]);
    }

    #[test]
    fn time_parse_and_format() {
        assert_eq!(parse_time("08:30:00"), Some(Time::hm(8, 30)));
        assert_eq!(parse_time("25:05:30"), Some(Time::hms(25, 5, 30)));
        assert_eq!(parse_time("8:05:00"), Some(Time::hm(8, 5)));
        assert_eq!(parse_time("8:65:00"), None);
        assert_eq!(parse_time("junk"), None);
        assert_eq!(format_time(Time::hms(25, 5, 30)), "25:05:30");
    }

    #[test]
    fn roundtrip_preserves_timetable() {
        use crate::builder::TimetableBuilder;
        let mut b = TimetableBuilder::new(Period::DAY);
        let s: Vec<_> =
            (0..4).map(|i| b.add_named_station(format!("Stop {i}"), Dur::minutes(i))).collect();
        for start in [Time::hm(7, 0), Time::hm(8, 0), Time::hm(23, 45)] {
            b.add_simple_trip(
                &[s[0], s[1], s[2], s[3]],
                start,
                &[Dur::minutes(8), Dur::minutes(12), Dur::minutes(6)],
                Dur::minutes(1),
            )
            .unwrap();
        }
        b.add_simple_trip(&[s[3], s[1]], Time::hm(9, 30), &[Dur::minutes(25)], Dur::ZERO).unwrap();
        let tt = b.build().unwrap();

        let dir = std::env::temp_dir().join(format!("gtfs-roundtrip-{}", std::process::id()));
        save_dir(&tt, &dir).unwrap();
        let loaded = load_dir(&dir, Period::DAY, Dur::ZERO).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        assert_eq!(loaded.num_stations(), tt.num_stations());
        assert_eq!(loaded.num_trains(), tt.num_trains());
        assert_eq!(loaded.num_connections(), tt.num_connections());
        // Same multiset of connections (ids may be permuted within equal keys).
        let key = |c: &crate::model::Connection| (c.from, c.dep, c.to, c.arr);
        let mut a: Vec<_> = tt.connections().iter().map(key).collect();
        let mut b2: Vec<_> = loaded.connections().iter().map(key).collect();
        a.sort_unstable();
        b2.sort_unstable();
        assert_eq!(a, b2);
        // Transfer times survive.
        for i in 0..4 {
            assert_eq!(loaded.transfer_time(StationId(i)), Dur::minutes(i),);
        }
    }

    #[test]
    fn missing_stop_times_is_an_error() {
        let dir = std::env::temp_dir().join(format!("gtfs-missing-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("stops.txt"), "stop_id,stop_name\ns0,Alpha\n").unwrap();
        let err = load_dir(&dir, Period::DAY, Dur::ZERO).unwrap_err();
        std::fs::remove_dir_all(&dir).ok();
        assert!(matches!(err, GtfsError::Parse { .. }));
    }
}
