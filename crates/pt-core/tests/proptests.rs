//! Property tests for the PLF / profile machinery.
//!
//! The central claim (paper §3.1): connection reduction preserves the
//! function — evaluating the reduced point set gives exactly the minimum
//! over the raw point set, for every query time. A small period (1000 s)
//! and durations exceeding the period exercise the cyclic corner cases.

use proptest::prelude::*;
use pt_core::{Dur, Period, Plf, PlfPoint, Profile, ProfilePoint, Time};

const PI: u32 = 1000;

fn period() -> Period {
    Period::new(PI)
}

/// Reference: minimum over the *raw* (unreduced) point set, scanning every
/// point including next-period wraps.
fn raw_min_dur(points: &[(u32, u32)], tau: u32) -> Option<u32> {
    points
        .iter()
        .map(|&(dep, dur)| {
            let wait = if dep >= tau { dep - tau } else { PI + dep - tau };
            wait + dur
        })
        .min()
}

fn raw_points() -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..PI, 0..3 * PI), 0..24)
}

proptest! {
    #[test]
    fn plf_construction_is_fifo(pts in raw_points()) {
        let plf = Plf::from_points(
            pts.iter().map(|&(d, w)| PlfPoint::new(Time(d), Dur(w))).collect(),
            period(),
        );
        prop_assert!(plf.is_fifo(period()));
    }

    #[test]
    fn plf_reduction_preserves_function(pts in raw_points(), taus in prop::collection::vec(0..PI, 1..16)) {
        let plf = Plf::from_points(
            pts.iter().map(|&(d, w)| PlfPoint::new(Time(d), Dur(w))).collect(),
            period(),
        );
        for tau in taus {
            let fast = plf.eval_dur(Time(tau), period());
            match raw_min_dur(&pts, tau) {
                None => prop_assert!(fast.is_infinite()),
                Some(want) => prop_assert_eq!(fast.secs(), want, "tau={}", tau),
            }
        }
    }

    #[test]
    fn plf_fast_eval_matches_exhaustive(pts in raw_points(), tau in 0..4 * PI) {
        let plf = Plf::from_points(
            pts.iter().map(|&(d, w)| PlfPoint::new(Time(d), Dur(w))).collect(),
            period(),
        );
        prop_assert_eq!(
            plf.eval_dur(Time(tau), period()),
            plf.eval_dur_exhaustive(Time(tau), period())
        );
    }

    #[test]
    fn profile_reduction_preserves_function(pts in raw_points(), taus in prop::collection::vec(0..PI, 1..16)) {
        let prof = Profile::from_unreduced(
            pts.iter()
                .map(|&(d, w)| ProfilePoint::new(Time(d), Time(d + w)))
                .collect(),
            period(),
        );
        prop_assert!(prof.is_reduced(period()));
        for tau in taus {
            let arr = prof.eval_arr(Time(tau), period());
            match raw_min_dur(&pts, tau) {
                None => prop_assert!(arr.is_infinite()),
                Some(want) => prop_assert_eq!(arr.secs(), tau + want, "tau={}", tau),
            }
        }
    }

    #[test]
    fn profile_reduction_is_idempotent(pts in raw_points()) {
        let once = Profile::from_unreduced(
            pts.iter()
                .map(|&(d, w)| ProfilePoint::new(Time(d), Time(d + w)))
                .collect(),
            period(),
        );
        let twice = Profile::from_unreduced(once.points().to_vec(), period());
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn merge_is_pointwise_minimum(a in raw_points(), b in raw_points(), taus in prop::collection::vec(0..PI, 1..16)) {
        let pa = Profile::from_unreduced(
            a.iter().map(|&(d, w)| ProfilePoint::new(Time(d), Time(d + w))).collect(),
            period(),
        );
        let pb = Profile::from_unreduced(
            b.iter().map(|&(d, w)| ProfilePoint::new(Time(d), Time(d + w))).collect(),
            period(),
        );
        let mut merged = pa.clone();
        merged.merge(&pb, period());
        prop_assert!(merged.is_reduced(period()));
        for tau in taus {
            let want = pa
                .eval_arr(Time(tau), period())
                .min(pb.eval_arr(Time(tau), period()));
            prop_assert_eq!(merged.eval_arr(Time(tau), period()), want, "tau={}", tau);
        }
    }

    #[test]
    fn link_const_shifts_evaluation(pts in raw_points(), shift in 0..PI, tau in 0..PI) {
        let prof = Profile::from_unreduced(
            pts.iter().map(|&(d, w)| ProfilePoint::new(Time(d), Time(d + w))).collect(),
            period(),
        );
        let shifted = prof.link_const(Dur(shift), period());
        let base = prof.eval_arr(Time(tau), period());
        if base.is_infinite() {
            prop_assert!(shifted.eval_arr(Time(tau), period()).is_infinite());
        } else {
            prop_assert_eq!(shifted.eval_arr(Time(tau), period()), base + Dur(shift));
        }
    }

    #[test]
    fn delta_triangle_inequality_cyclic(t1 in 0..PI, t2 in 0..PI, t3 in 0..PI) {
        // Δ(t1,t3) ≤ Δ(t1,t2) + Δ(t2,t3) modulo full periods.
        let p = period();
        let d13 = p.delta(Time(t1), Time(t3)).secs();
        let via = p.delta(Time(t1), Time(t2)).secs() + p.delta(Time(t2), Time(t3)).secs();
        prop_assert_eq!(via % PI, d13 % PI);
        prop_assert!(via >= d13);
    }
}
