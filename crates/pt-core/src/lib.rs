//! Core types for periodic public-transit routing.
//!
//! This crate provides the building blocks shared by every other crate in the
//! workspace:
//!
//! * [`Time`], [`Dur`] and [`Period`] — integer time arithmetic over a
//!   periodic timetable, including the cyclic length `Δ(τ1, τ2)` of the paper,
//! * strongly typed identifiers ([`StationId`], [`RouteId`], [`TrainId`],
//!   [`NodeId`], [`ConnId`]),
//! * [`Plf`] — piecewise-linear *travel-time functions* attached to
//!   time-dependent route edges, represented by their connection points,
//! * [`Profile`] — piecewise-linear *arrival profiles* `dist(S, T, ·)`
//!   produced by profile searches, together with the paper's
//!   *connection reduction* (backward dominance scan).
//!
//! All types are plain-old-data with no interior pointers, so they are cheap
//! to send across threads — a prerequisite for the parallel search in
//! `pt-spcs`.

#![warn(missing_docs)]

pub mod id;
pub mod plf;
pub mod profile;
pub mod time;

pub use id::{ConnId, NodeId, RouteId, StationId, TrainId};
pub use plf::{Plf, PlfPoint};
pub use profile::{Profile, ProfilePoint};
pub use time::{Dur, Period, Time, INFINITY};
