//! Arrival profiles `dist(S, T, ·)` and the paper's *connection reduction*.
//!
//! A profile search computes, for a source station `S` and every target `T`,
//! the function mapping each departure time `τ ∈ Π` to the earliest arrival
//! at `T`. Equation (1) of the paper bounds its connection points by the
//! outgoing connections of `S`:
//!
//! ```text
//! P(dist(S,T,·)) ⊆ { (τdep(c), dist(S,T,τdep(c))) | c ∈ conn(S) }  =: P̂
//! ```
//!
//! `P̂` in general violates FIFO — taking an *earlier* train in the wrong
//! direction can arrive *later* than a later train in the right direction —
//! so the paper reduces it with a backward scan that deletes every point
//! whose arrival is not strictly earlier than the best arrival among later
//! departures. [`Profile::from_unreduced`] implements exactly that scan.

use serde::{Deserialize, Serialize};

use crate::plf::Plf;
use crate::time::{Dur, Period, Time, INFINITY};

/// One point of an arrival profile: departing `S` at (period-local) `dep`
/// arrives at the target at absolute time `arr` (`arr − dep` is the travel
/// duration; `arr` may exceed the period for overnight itineraries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProfilePoint {
    /// Period-local departure time at the source station.
    pub dep: Time,
    /// Absolute arrival time at the target (`≥ dep`).
    pub arr: Time,
}

impl ProfilePoint {
    /// Creates a profile point; `arr` must not precede `dep`.
    #[inline]
    pub fn new(dep: Time, arr: Time) -> Self {
        debug_assert!(arr >= dep, "arrival {arr} before departure {dep}");
        ProfilePoint { dep, arr }
    }

    /// Travel duration `arr − dep`.
    #[inline]
    pub fn dur(self) -> Dur {
        self.arr - self.dep
    }
}

/// A reduced (FIFO) arrival profile: departures strictly increasing,
/// arrivals strictly increasing.
///
/// An empty profile means the target is unreachable.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Profile {
    points: Vec<ProfilePoint>,
}

impl Profile {
    /// The unreachable profile.
    pub const EMPTY: Profile = Profile { points: Vec::new() };

    /// Connection reduction (paper, §3.1): builds a reduced profile from the
    /// raw point set `P̂`. Points with infinite arrival are dropped; among
    /// equal departures the earliest arrival wins; a backward scan keeps a
    /// point only if its arrival is strictly earlier than the minimum
    /// arrival of all later departures.
    pub fn from_unreduced(mut points: Vec<ProfilePoint>, period: Period) -> Self {
        points.retain(|p| !p.arr.is_infinite());
        for p in &points {
            assert!(period.contains(p.dep), "profile departure {} not period-local", p.dep);
            debug_assert!(p.arr >= p.dep);
        }
        points.sort_unstable_by_key(|p| (p.dep, p.arr));
        points.dedup_by_key(|p| p.dep); // earliest arrival per departure
        let mut reduced: Vec<ProfilePoint> = Vec::with_capacity(points.len());
        let mut min_arr = INFINITY;
        for &p in points.iter().rev() {
            if p.arr < min_arr {
                min_arr = p.arr;
                reduced.push(p);
            }
        }
        reduced.reverse();
        // Cyclic fixup (see `Plf::from_points`): drop points dominated by the
        // next period's first point, so next-departure evaluation is exact.
        if let Some(first) = reduced.first() {
            let threshold = first.arr + Dur(period.len());
            reduced.retain(|p| p.arr < threshold);
        }
        Profile { points: reduced }
    }

    /// Scratch-reusing variant of [`Profile::from_unreduced`] for the merge
    /// kernels: reduces the points accumulated in `scratch` (clearing it but
    /// keeping its capacity for the next station) and allocates only the
    /// reduced result. Semantically identical to
    /// `Profile::from_unreduced(scratch.clone(), period)`.
    pub fn from_unreduced_in(scratch: &mut Vec<ProfilePoint>, period: Period) -> Self {
        scratch.retain(|p| !p.arr.is_infinite());
        for p in scratch.iter() {
            assert!(period.contains(p.dep), "profile departure {} not period-local", p.dep);
            debug_assert!(p.arr >= p.dep);
        }
        scratch.sort_unstable_by_key(|p| (p.dep, p.arr));
        scratch.dedup_by_key(|p| p.dep); // earliest arrival per departure
                                         // Backward dominance scan, compacting survivors to the tail of the
                                         // scratch buffer in place (they come out sorted, like the forward
                                         // `reverse()` of `from_unreduced`).
        let mut min_arr = INFINITY;
        let mut keep = scratch.len();
        for i in (0..scratch.len()).rev() {
            if scratch[i].arr < min_arr {
                min_arr = scratch[i].arr;
                keep -= 1;
                scratch[keep] = scratch[i];
            }
        }
        let kept = &scratch[keep..];
        let points = match kept.first() {
            Some(first) => {
                // Cyclic fixup (see `from_unreduced`).
                let threshold = first.arr + Dur(period.len());
                kept.iter().copied().filter(|p| p.arr < threshold).collect()
            }
            None => Vec::new(),
        };
        scratch.clear();
        Profile { points }
    }

    /// Builds a profile from points already reduced (debug-asserted).
    pub fn from_reduced(points: Vec<ProfilePoint>, period: Period) -> Self {
        let prof = Profile { points };
        debug_assert!(prof.is_reduced(period), "points not reduced");
        prof
    }

    /// The connection points, sorted strictly increasing by departure.
    #[inline]
    pub fn points(&self) -> &[ProfilePoint] {
        &self.points
    }

    /// Number of connection points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` iff the target is unreachable.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Checks the reduced-profile invariant (sorted, strictly dominating,
    /// period-local departures) — i.e. the FIFO property of the paper.
    pub fn is_reduced(&self, period: Period) -> bool {
        self.points.iter().all(|p| period.contains(p.dep) && p.arr >= p.dep && !p.arr.is_infinite())
            && self.points.windows(2).all(|w| w[0].dep < w[1].dep && w[0].arr < w[1].arr)
            && match (self.points.first(), self.points.last()) {
                (Some(f), Some(l)) => l.arr < f.arr + Dur(period.len()),
                _ => true,
            }
    }

    /// Earliest absolute arrival when departing the source at absolute time
    /// `t`; [`INFINITY`] if unreachable. One binary search on a reduced
    /// profile.
    pub fn eval_arr(&self, t: Time, period: Period) -> Time {
        if self.points.is_empty() {
            return INFINITY;
        }
        let tau = period.local(t);
        let i = self.points.partition_point(|p| p.dep < tau);
        let p = self.points.get(i).copied().unwrap_or(self.points[0]);
        // wait Δ(τ, dep) + travel (arr − dep)
        t + period.delta(tau, p.dep) + p.dur()
    }

    /// Travel duration (waiting included) when departing at absolute `t`.
    pub fn eval_dur(&self, t: Time, period: Period) -> Dur {
        let arr = self.eval_arr(t, period);
        if arr.is_infinite() {
            Dur::INFINITE
        } else {
            arr - t
        }
    }

    /// Pointwise minimum with `other` (both reduced); returns `true` iff
    /// `self` changed. This is the profile-merge of the label-correcting
    /// baseline.
    pub fn merge(&mut self, other: &Profile, period: Period) -> bool {
        if other.is_empty() {
            return false;
        }
        if self.is_empty() {
            self.points = other.points.clone();
            return true;
        }
        // Fast path: nothing in `other` can improve `self`.
        if self.dominates(other, period) {
            return false;
        }
        let mut union = Vec::with_capacity(self.points.len() + other.points.len());
        union.extend_from_slice(&self.points);
        union.extend_from_slice(&other.points);
        let merged = Profile::from_unreduced(union, period);
        let changed = merged != *self;
        *self = merged;
        changed
    }

    /// `eval_arr` for a period-local departure, avoiding the absolute-time
    /// normalization.
    #[inline]
    fn eval_arr_local(&self, tau: Time, period: Period) -> Time {
        debug_assert!(period.contains(tau));
        if self.points.is_empty() {
            return INFINITY;
        }
        let i = self.points.partition_point(|p| p.dep < tau);
        let p = self.points.get(i).copied().unwrap_or(self.points[0]);
        tau + period.delta(tau, p.dep) + p.dur()
    }

    /// Propagates the profile through a time-dependent edge `f`: each point
    /// `(dep, arr)` becomes `(dep, arr + f(arr))`. The result is reduced.
    /// Used by the label-correcting baseline.
    pub fn link_plf(&self, f: &Plf, period: Period) -> Profile {
        let linked: Vec<ProfilePoint> = self
            .points
            .iter()
            .map(|p| ProfilePoint::new(p.dep, f.eval_arr(p.arr, period)))
            .filter(|p| !p.arr.is_infinite())
            .collect();
        Profile::from_unreduced(linked, period)
    }

    /// Propagates the profile through a constant edge of duration `d`.
    /// Stays reduced, so no re-reduction is needed.
    pub fn link_const(&self, d: Dur, _period: Period) -> Profile {
        Profile {
            points: self.points.iter().map(|p| ProfilePoint::new(p.dep, p.arr + d)).collect(),
        }
    }

    /// Composes two legs of a journey through an intermediate station:
    /// `self` is the profile *to* the junction, `next` the profile *onward*
    /// from it, and `buffer` the junction's transfer time (the continuation
    /// always changes vehicles there). Each point `(dep, arr)` becomes
    /// `(dep, next(arr + buffer))` — evaluated on absolute arrivals, so
    /// overnight first legs wrap correctly — and the result is reduced.
    ///
    /// This is the stitch primitive of the cross-shard gateway: with
    /// `self = dist(S, B, ·)` and `next = dist(B, T, ·)` the result is the
    /// exact profile of all `S → B → T` journeys changing trains at `B`.
    pub fn link_profile(&self, next: &Profile, buffer: Dur, period: Period) -> Profile {
        let linked: Vec<ProfilePoint> = self
            .points
            .iter()
            .map(|p| (p.dep, next.eval_arr(p.arr + buffer, period)))
            .filter(|&(_, arr)| !arr.is_infinite())
            .map(|(dep, arr)| ProfilePoint::new(dep, arr))
            .collect();
        Profile::from_unreduced(linked, period)
    }

    /// `true` iff `self` is everywhere at least as good as `other`: for
    /// every departure time the arrival via `self` is `≤` the arrival via
    /// `other`. Checking at `other`'s connection points is exact: both
    /// functions are step functions whose arrivals increase with the
    /// departure, and the cyclic-fixup invariant
    /// (`last.arr < first.arr + period`) bounds the wrap-around, so the
    /// maximum of `self` over each constant piece of `other` lands on one
    /// of `other`'s points. The dominance test behind the gateway's
    /// candidate pruning (and [`Profile::merge`]'s fast path).
    pub fn dominates(&self, other: &Profile, period: Period) -> bool {
        other.points.iter().all(|p| self.eval_arr_local(p.dep, period) <= p.arr)
    }

    /// Minimum arrival over all points ([`INFINITY`] if empty) — the queue
    /// key of the label-correcting baseline.
    pub fn min_arr(&self) -> Time {
        self.points.iter().map(|p| p.arr).min().unwrap_or(INFINITY)
    }

    /// Minimum travel duration over all points.
    pub fn min_dur(&self) -> Dur {
        self.points.iter().map(|p| p.dur()).min().unwrap_or(Dur::INFINITE)
    }

    /// Heap + inline memory footprint in bytes (for the space column of
    /// Table 2).
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.points.capacity() * std::mem::size_of::<ProfilePoint>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(dep_min: u32, arr_min: u32) -> ProfilePoint {
        ProfilePoint::new(Time::hm(0, dep_min), Time::hm(0, arr_min))
    }

    const P: Period = Period::DAY;

    #[test]
    fn reduction_drops_dominated_points() {
        // Leaving at 00:10 arrives 01:00; leaving at 00:20 arrives 00:50:
        // the 00:10 departure is dominated (wait for the 00:20 one).
        let prof = Profile::from_unreduced(vec![pt(10, 60), pt(20, 50)], P);
        assert_eq!(prof.points(), &[pt(20, 50)]);
        assert!(prof.is_reduced(P));
    }

    #[test]
    fn reduction_deletes_equal_arrivals() {
        // Equal arrival: the paper deletes the earlier departure (τarr_j ≥ τarr_min).
        let prof = Profile::from_unreduced(vec![pt(10, 50), pt(20, 50)], P);
        assert_eq!(prof.points(), &[pt(20, 50)]);
    }

    #[test]
    fn reduction_drops_unreachable_points() {
        let prof = Profile::from_unreduced(
            vec![pt(10, 40), ProfilePoint { dep: Time::hm(0, 20), arr: INFINITY }],
            P,
        );
        assert_eq!(prof.points(), &[pt(10, 40)]);
    }

    #[test]
    fn scratch_reduction_matches_owned_reduction() {
        let cases: &[Vec<ProfilePoint>] = &[
            vec![],
            vec![pt(10, 60), pt(20, 50)],
            vec![pt(10, 50), pt(20, 50)],
            vec![pt(10, 40), ProfilePoint { dep: Time::hm(0, 20), arr: INFINITY }],
            vec![pt(30, 45), pt(10, 20), pt(20, 35), pt(40, 41)],
        ];
        let mut scratch = Vec::new();
        for case in cases {
            scratch.extend_from_slice(case);
            let got = Profile::from_unreduced_in(&mut scratch, P);
            assert_eq!(got, Profile::from_unreduced(case.clone(), P));
            assert!(scratch.is_empty(), "scratch not cleared");
        }
    }

    #[test]
    fn eval_matches_next_useful_departure() {
        let prof = Profile::from_unreduced(vec![pt(10, 30), pt(40, 55)], P);
        // Before 00:10: take the first connection.
        assert_eq!(prof.eval_arr(Time::hm(0, 5), P), Time::hm(0, 30));
        // Between the two: take the second.
        assert_eq!(prof.eval_arr(Time::hm(0, 15), P), Time::hm(0, 55));
        // After the last: wrap to tomorrow's first.
        assert_eq!(prof.eval_arr(Time::hm(0, 45), P), Time::hm(24, 30));
    }

    #[test]
    fn eval_on_empty_is_infinite() {
        assert_eq!(Profile::EMPTY.eval_arr(Time::hm(9, 0), P), INFINITY);
        assert_eq!(Profile::EMPTY.eval_dur(Time::hm(9, 0), P), Dur::INFINITE);
    }

    #[test]
    fn merge_takes_pointwise_minimum() {
        let mut a = Profile::from_unreduced(vec![pt(10, 30), pt(40, 70)], P);
        let b = Profile::from_unreduced(vec![pt(20, 25), pt(40, 60)], P);
        assert!(a.merge(&b, P));
        // 00:10→00:30 is dominated by 00:20→00:25.
        assert_eq!(a.points(), &[pt(20, 25), pt(40, 60)]);
        // Merging again changes nothing.
        let before = a.clone();
        assert!(!a.merge(&b, P));
        assert_eq!(a, before);
    }

    #[test]
    fn merge_with_empty_is_noop() {
        let mut a = Profile::from_unreduced(vec![pt(10, 30)], P);
        assert!(!a.merge(&Profile::EMPTY, P));
        let mut e = Profile::EMPTY.clone();
        assert!(e.merge(&a, P));
        assert_eq!(e, a);
    }

    #[test]
    fn link_const_shifts_arrivals() {
        let a = Profile::from_unreduced(vec![pt(10, 30), pt(40, 60)], P);
        let b = a.link_const(Dur::minutes(5), P);
        assert_eq!(b.points(), &[pt(10, 35), pt(40, 65)]);
        assert!(b.is_reduced(P));
    }

    #[test]
    fn link_plf_composes_travel_times() {
        use crate::plf::PlfPoint;
        let a = Profile::from_unreduced(vec![pt(10, 30)], P);
        // Edge served at 00:35 taking 10 min.
        let f = Plf::from_points(vec![PlfPoint::new(Time::hm(0, 35), Dur::minutes(10))], P);
        let b = a.link_plf(&f, P);
        assert_eq!(b.points(), &[pt(10, 45)]);
    }

    #[test]
    fn link_profile_composes_legs_through_a_junction() {
        // Leg 1 arrives at the junction at 00:30 / 01:00; onward trains
        // leave at 00:40 and 01:20 (5 min transfer at the junction).
        let first = Profile::from_unreduced(vec![pt(10, 30), pt(50, 60)], P);
        let onward = Profile::from_unreduced(vec![pt(40, 55), pt(80, 100)], P);
        let stitched = first.link_profile(&onward, Dur::minutes(5), P);
        // dep 00:10: at junction 00:30, ready 00:35 → 00:40 train → 00:55.
        // dep 00:50: at junction 01:00, ready 01:05 → 01:20 train → 01:40.
        assert_eq!(stitched.points(), &[pt(10, 55), pt(50, 100)]);
        assert!(stitched.is_reduced(P));
    }

    #[test]
    fn link_profile_wraps_to_the_next_period() {
        // Arriving after the last onward departure waits for tomorrow's.
        let first = Profile::from_unreduced(vec![pt(10, 90)], P);
        let onward = Profile::from_unreduced(vec![pt(40, 55)], P);
        let stitched = first.link_profile(&onward, Dur::minutes(5), P);
        assert_eq!(stitched.points(), &[ProfilePoint::new(Time::hm(0, 10), Time::hm(24, 55))]);
    }

    #[test]
    fn link_profile_with_empty_leg_is_unreachable() {
        let first = Profile::from_unreduced(vec![pt(10, 30)], P);
        assert!(first.link_profile(&Profile::EMPTY, Dur::ZERO, P).is_empty());
        assert!(Profile::EMPTY.link_profile(&first, Dur::ZERO, P).is_empty());
    }

    #[test]
    fn dominates_is_a_pointwise_comparison() {
        let fast = Profile::from_unreduced(vec![pt(10, 20), pt(40, 50)], P);
        let slow = Profile::from_unreduced(vec![pt(10, 25), pt(40, 55)], P);
        assert!(fast.dominates(&slow, P));
        assert!(!slow.dominates(&fast, P));
        assert!(fast.dominates(&fast, P), "dominance is reflexive");
        // Incomparable: each is better somewhere. `few` wins for late
        // departures (00:30 → 00:35 vs waiting for tomorrow's 00:20 train).
        let few = Profile::from_unreduced(vec![pt(30, 35)], P);
        assert!(!fast.dominates(&few, P));
        assert!(!few.dominates(&fast, P));
        // Everything dominates the unreachable profile; nothing non-empty
        // is dominated by it.
        assert!(fast.dominates(&Profile::EMPTY, P));
        assert!(!Profile::EMPTY.dominates(&fast, P));
        assert!(Profile::EMPTY.dominates(&Profile::EMPTY, P));
    }

    #[test]
    fn dominates_agrees_with_pointwise_evaluation() {
        // Extra points can only help: `a` adds a useful mid-day train to
        // `b`'s single connection, so `a` dominates `b` but not vice versa
        // (at τ = 00:11, `a` arrives 15:00 while `b` waits for tomorrow's
        // 00:20 — a violation at a point of `a`, not of `b`).
        let a = Profile::from_unreduced(vec![pt(10, 20), pt(200, 900)], P);
        let b = Profile::from_unreduced(vec![pt(10, 20)], P);
        assert!(a.dominates(&b, P));
        assert!(!b.dominates(&a, P));
        // Exhaustive agreement with minute-by-minute evaluation.
        for (f, g) in [(&a, &b), (&b, &a)] {
            let want = (0..24 * 60)
                .all(|m| f.eval_arr(Time::hm(0, m), P) <= g.eval_arr(Time::hm(0, m), P));
            assert_eq!(f.dominates(g, P), want);
        }
    }

    #[test]
    fn min_arr_and_dur() {
        let a = Profile::from_unreduced(vec![pt(10, 30), pt(40, 50)], P);
        assert_eq!(a.min_arr(), Time::hm(0, 30));
        assert_eq!(a.min_dur(), Dur::minutes(10));
    }
}
