//! Piecewise-linear travel-time functions (paper, §2, Fig. 2).
//!
//! A time-dependent route edge carries a function `f : Π → N0` where `f(τ)`
//! is the travel time when reaching the edge's tail at time `τ`: the waiting
//! time for the next good elementary connection plus that connection's
//! duration. Such a function is fully described by its *connection points*
//! `P(f) ⊂ Π × N0`: pairs `(τ_f, w_f)` of a (period-local) departure time and
//! a duration, with
//!
//! ```text
//! f(τ) = min over (τ_f, w_f) ∈ P(f) of  Δ(τ, τ_f) + w_f .
//! ```
//!
//! If the function has the FIFO property (waiting never pays off — true for
//! all networks the paper evaluates, and enforced by
//! [`Plf::from_points`]), the minimizer is simply the next departure at or
//! after `τ`, which [`Plf::eval_dur`] finds with one binary search.

use serde::{Deserialize, Serialize};

use crate::time::{Dur, Period, Time};

/// One connection point `(τ_f, w_f)` of a travel-time function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PlfPoint {
    /// Period-local departure time `τ_f`.
    pub dep: Time,
    /// Travel duration `w_f` when departing exactly at `dep`.
    pub dur: Dur,
}

impl PlfPoint {
    /// Creates a connection point.
    #[inline]
    pub const fn new(dep: Time, dur: Dur) -> Self {
        PlfPoint { dep, dur }
    }

    /// Arrival (relative to the departure's period) `dep + dur`.
    #[inline]
    pub fn arr(self) -> Time {
        self.dep + self.dur
    }
}

/// A piecewise-linear travel-time function, stored as its connection points
/// sorted strictly increasing by departure time.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Plf {
    points: Vec<PlfPoint>,
}

impl Plf {
    /// An empty function: no connection ever serves this edge (`f ≡ ∞`).
    pub const EMPTY: Plf = Plf { points: Vec::new() };

    /// Builds a FIFO travel-time function from arbitrary connection points.
    ///
    /// The points are sorted by departure time; among points with equal
    /// departure time only the fastest survives; finally, points that are
    /// *dominated* (an earlier departure that arrives no earlier than a later
    /// one — e.g. a slow train overtaken by an express) are removed, so the
    /// result always satisfies FIFO. All departures must be period-local.
    pub fn from_points(mut points: Vec<PlfPoint>, period: Period) -> Self {
        for p in &points {
            assert!(
                period.contains(p.dep),
                "PLF departure {} not period-local (π = {})",
                p.dep,
                period.len()
            );
            assert!(!p.dur.is_infinite(), "PLF duration must be finite");
        }
        points.sort_unstable_by_key(|p| (p.dep, p.dur));
        points.dedup_by_key(|p| p.dep); // keeps the first = fastest per dep

        // Backward dominance scan (the paper's connection reduction applied
        // to an edge function): keep a point only if it arrives strictly
        // earlier than every later departure's arrival.
        let mut reduced: Vec<PlfPoint> = Vec::with_capacity(points.len());
        let mut min_arr = Time(u32::MAX);
        for &p in points.iter().rev() {
            if p.arr() < min_arr {
                min_arr = p.arr();
                reduced.push(p);
            }
        }
        reduced.reverse();
        // Cyclic fixup the paper's linear scan misses: a point can also be
        // dominated by the *next period's* first point (arriving before
        // `π + arr₀`). Removing those makes next-departure evaluation exact.
        if let Some(first) = reduced.first() {
            let threshold = first.arr() + Dur(period.len());
            reduced.retain(|p| p.arr() < threshold);
        }
        Plf { points: reduced }
    }

    /// Builds a function from points already known to be sorted and FIFO
    /// (debug-asserted). Used on hot paths where the invariant is guaranteed
    /// by construction.
    pub fn from_sorted_fifo(points: Vec<PlfPoint>, period: Period) -> Self {
        let plf = Plf { points };
        debug_assert!(plf.is_fifo(period), "points not sorted/FIFO");
        plf
    }

    /// The connection points, sorted strictly increasing by departure.
    #[inline]
    pub fn points(&self) -> &[PlfPoint] {
        &self.points
    }

    /// Number of connection points `|P(f)|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` iff no connection serves this edge.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Checks sortedness and the (cyclic) FIFO property: departures strictly
    /// increasing, arrivals strictly increasing, and no point dominated by
    /// the next period's first point.
    pub fn is_fifo(&self, period: Period) -> bool {
        self.points.iter().all(|p| period.contains(p.dep))
            && self.points.windows(2).all(|w| w[0].dep < w[1].dep && w[0].arr() < w[1].arr())
            && match (self.points.first(), self.points.last()) {
                (Some(f), Some(l)) => l.arr() < f.arr() + Dur(period.len()),
                _ => true,
            }
    }

    /// Evaluates `f` at the *absolute* time `t`: waiting time for the next
    /// departure (cyclically) plus its duration. Returns `Dur::INFINITE` on
    /// an empty function.
    ///
    /// Correct for FIFO functions, which `from_points` guarantees.
    #[inline]
    pub fn eval_dur(&self, t: Time, period: Period) -> Dur {
        if self.points.is_empty() {
            return Dur::INFINITE;
        }
        let tau = period.local(t);
        // First point departing at or after τ.
        let i = self.points.partition_point(|p| p.dep < tau);
        if let Some(p) = self.points.get(i) {
            period.delta(tau, p.dep) + p.dur
        } else {
            // Wrap around to the first departure of the next period.
            let p = self.points[0];
            period.delta(tau, p.dep) + p.dur
        }
    }

    /// Evaluates `f` at absolute time `t` and returns the absolute arrival
    /// time `t + f(t)`, or [`crate::INFINITY`] if the edge is never served.
    #[inline]
    pub fn eval_arr(&self, t: Time, period: Period) -> Time {
        let d = self.eval_dur(t, period);
        if d.is_infinite() {
            crate::INFINITY
        } else {
            t + d
        }
    }

    /// Reference evaluation minimizing over *all* connection points — valid
    /// even for non-FIFO point sets. Used by tests and debug assertions.
    pub fn eval_dur_exhaustive(&self, t: Time, period: Period) -> Dur {
        let tau = period.local(t);
        self.points.iter().map(|p| period.delta(tau, p.dep) + p.dur).min().unwrap_or(Dur::INFINITE)
    }

    /// The minimum duration over all connection points — a valid lower bound
    /// on `f`, used as the scalar weight of the station graph during
    /// contraction.
    pub fn min_dur(&self) -> Dur {
        self.points.iter().map(|p| p.dur).min().unwrap_or(Dur::INFINITE)
    }

    /// The maximum duration over all connection points (`Dur::ZERO` on an
    /// empty function) — an upper bound on the travel component of a single
    /// relaxation, used to size the kernel's bucket ring.
    pub fn max_dur(&self) -> Dur {
        self.points.iter().map(|p| p.dur).max().unwrap_or(Dur::ZERO)
    }

    /// [`Plf::eval_arr`] on raw seconds for the SoA kernel lanes: absolute
    /// arrival seconds, `u32::MAX` if the edge is never served.
    #[inline]
    pub fn eval_arr_secs(&self, t_secs: u32, period: Period) -> u32 {
        self.eval_arr(Time(t_secs), period).secs()
    }

    /// Heap + inline memory footprint in bytes (for the space columns of
    /// Table 2).
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.points.capacity() * std::mem::size_of::<PlfPoint>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(dep_min: u32, dur_min: u32) -> PlfPoint {
        PlfPoint::new(Time::hm(0, dep_min), Dur::minutes(dur_min))
    }

    #[test]
    fn empty_function_is_infinite() {
        let f = Plf::EMPTY;
        assert!(f.is_empty());
        assert_eq!(f.eval_dur(Time::hm(8, 0), Period::DAY), Dur::INFINITE);
        assert!(f.eval_arr(Time::hm(8, 0), Period::DAY).is_infinite());
    }

    #[test]
    fn eval_waits_for_next_departure() {
        let period = Period::DAY;
        let f = Plf::from_points(vec![p(10, 5), p(30, 5), p(50, 5)], period);
        // At 00:10 the 00:10 train leaves immediately.
        assert_eq!(f.eval_dur(Time::hm(0, 10), period), Dur::minutes(5));
        // At 00:11 we wait 19 minutes for the 00:30 train.
        assert_eq!(f.eval_dur(Time::hm(0, 11), period), Dur::minutes(24));
    }

    #[test]
    fn eval_wraps_to_next_period() {
        let period = Period::DAY;
        let f = Plf::from_points(vec![p(10, 5)], period);
        // At 00:20 the next 00:10 train is tomorrow.
        let expect = Dur(23 * 3600 + 50 * 60 + 5 * 60);
        assert_eq!(f.eval_dur(Time::hm(0, 20), period), expect);
    }

    #[test]
    fn eval_accepts_absolute_times() {
        let period = Period::DAY;
        let f = Plf::from_points(vec![p(10, 5)], period);
        let t = Time::hm(24, 10); // 00:10 the next day
        assert_eq!(f.eval_dur(t, period), Dur::minutes(5));
        assert_eq!(f.eval_arr(t, period), Time::hm(24, 15));
    }

    #[test]
    fn construction_removes_overtaken_trains() {
        let period = Period::DAY;
        // The 00:10 train takes 60 min (arrives 01:10); the 00:20 express
        // takes 10 min (arrives 00:30) and dominates it.
        let f = Plf::from_points(vec![p(10, 60), p(20, 10)], period);
        assert_eq!(f.points(), &[p(20, 10)]);
        assert!(f.is_fifo(period));
    }

    #[test]
    fn construction_dedupes_equal_departures() {
        let period = Period::DAY;
        let f = Plf::from_points(vec![p(10, 30), p(10, 20)], period);
        assert_eq!(f.points(), &[p(10, 20)]);
    }

    #[test]
    fn equal_arrival_keeps_later_departure() {
        let period = Period::DAY;
        // Both arrive at 00:40; departing later (00:30) dominates.
        let f = Plf::from_points(vec![p(20, 20), p(30, 10)], period);
        assert_eq!(f.points(), &[p(30, 10)]);
    }

    #[test]
    fn min_dur_lower_bounds_eval() {
        let period = Period::DAY;
        let f = Plf::from_points(vec![p(10, 7), p(40, 3), p(55, 9)], period);
        let lb = f.min_dur();
        for m in 0..60 {
            assert!(f.eval_dur(Time::hm(0, m), period) >= lb);
        }
    }

    #[test]
    #[should_panic(expected = "not period-local")]
    fn non_local_departure_rejected() {
        let _ =
            Plf::from_points(vec![PlfPoint::new(Time::hm(25, 0), Dur::minutes(5))], Period::DAY);
    }

    #[test]
    fn exhaustive_matches_fast_eval_on_fifo() {
        let period = Period::new(3600);
        let f = Plf::from_points(
            vec![
                PlfPoint::new(Time(100), Dur(300)),
                PlfPoint::new(Time(900), Dur(250)),
                PlfPoint::new(Time(2000), Dur(700)),
                PlfPoint::new(Time(3599), Dur(60)),
            ],
            period,
        );
        assert!(f.is_fifo(period));
        for t in (0..3600).step_by(7) {
            assert_eq!(
                f.eval_dur(Time(t), period),
                f.eval_dur_exhaustive(Time(t), period),
                "mismatch at t={t}"
            );
        }
    }
}
