//! Integer time arithmetic over a periodic timetable.
//!
//! A periodic timetable (paper, §2) fixes a finite set of discrete time points
//! `Π = {0, …, π−1}`. Departure times are *period-local* (they lie in
//! `[0, π)`), while arrival times and search labels are *absolute* and may
//! exceed `π` (a train arriving after midnight). The cyclic length
//! `Δ(τ1, τ2)` is `τ2 − τ1` if `τ2 ≥ τ1` and `π + τ2 − τ1` otherwise; note
//! that `Δ` is not symmetric.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// Sentinel for "unreachable" labels. Large enough that no legal absolute
/// time of a day-scale timetable comes near it.
pub const INFINITY: Time = Time(u32::MAX);

/// A point in time, in seconds.
///
/// Period-local times lie in `[0, period)`; absolute times (arrival labels)
/// may exceed the period.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[repr(transparent)]
pub struct Time(pub u32);

/// A non-negative span of time, in seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[repr(transparent)]
pub struct Dur(pub u32);

impl Time {
    /// Builds a time from hours, minutes and seconds. Hours may exceed 24
    /// for absolute (post-midnight) times.
    #[inline]
    pub const fn hms(h: u32, m: u32, s: u32) -> Self {
        Time(h * 3600 + m * 60 + s)
    }

    /// Builds a time from hours and minutes.
    #[inline]
    pub const fn hm(h: u32, m: u32) -> Self {
        Self::hms(h, m, 0)
    }

    /// Raw seconds value.
    #[inline]
    pub const fn secs(self) -> u32 {
        self.0
    }

    /// `true` iff this is the [`INFINITY`] sentinel.
    #[inline]
    pub const fn is_infinite(self) -> bool {
        self.0 == u32::MAX
    }

    /// Saturating addition of a duration; infinity is absorbing.
    #[inline]
    pub fn saturating_add(self, d: Dur) -> Time {
        if self.is_infinite() {
            INFINITY
        } else {
            Time(self.0.saturating_add(d.0))
        }
    }

    /// Branch-light lane arithmetic on raw seconds for the SoA kernels:
    /// a saturating add where `u32::MAX` (the [`INFINITY`] sentinel) is
    /// absorbing, because saturation lands exactly on the sentinel. Lets
    /// the hot chunk loop add edge weights without testing for infinity.
    #[inline]
    pub const fn lane_add(a_secs: u32, d_secs: u32) -> u32 {
        a_secs.saturating_add(d_secs)
    }
}

impl Dur {
    /// The zero duration.
    pub const ZERO: Dur = Dur(0);
    /// Sentinel for "unreachable" travel times.
    pub const INFINITE: Dur = Dur(u32::MAX);

    /// Builds a duration from whole minutes.
    #[inline]
    pub const fn minutes(m: u32) -> Self {
        Dur(m * 60)
    }

    /// Builds a duration from whole hours.
    #[inline]
    pub const fn hours(h: u32) -> Self {
        Dur(h * 3600)
    }

    /// Raw seconds value.
    #[inline]
    pub const fn secs(self) -> u32 {
        self.0
    }

    /// `true` iff this is the infinite sentinel.
    #[inline]
    pub const fn is_infinite(self) -> bool {
        self.0 == u32::MAX
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Dur) -> Time {
        debug_assert!(!self.is_infinite(), "arithmetic on infinite time");
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    /// Plain (non-cyclic) difference; requires `self >= rhs`.
    #[inline]
    fn sub(self, rhs: Time) -> Dur {
        debug_assert!(self >= rhs, "negative duration: {self:?} - {rhs:?}");
        Dur(self.0 - rhs.0)
    }
}

impl Add<Dur> for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            return write!(f, "∞");
        }
        let (h, m, s) = (self.0 / 3600, (self.0 / 60) % 60, self.0 % 60);
        if s == 0 {
            write!(f, "{h:02}:{m:02}")
        } else {
            write!(f, "{h:02}:{m:02}:{s:02}")
        }
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            return write!(f, "∞");
        }
        let (h, m, s) = (self.0 / 3600, (self.0 / 60) % 60, self.0 % 60);
        match (h, s) {
            (0, 0) => write!(f, "{m}min"),
            (0, _) => write!(f, "{m}min{s:02}s"),
            (_, 0) => write!(f, "{h}h{m:02}min"),
            _ => write!(f, "{h}h{m:02}min{s:02}s"),
        }
    }
}

/// The periodicity `π` of a timetable, together with the cyclic operations
/// derived from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Period(u32);

impl Period {
    /// A full day in seconds — the period of every real-world feed we model.
    pub const DAY: Period = Period(24 * 3600);

    /// Creates a period of `pi` seconds. Panics if `pi == 0`.
    #[inline]
    pub fn new(pi: u32) -> Self {
        assert!(pi > 0, "period must be positive");
        Period(pi)
    }

    /// The raw period length π in seconds.
    ///
    /// A period is never empty (`new` rejects π = 0), so there is no
    /// `is_empty` counterpart.
    #[allow(clippy::len_without_is_empty)]
    #[inline]
    pub const fn len(self) -> u32 {
        self.0
    }

    /// The cyclic length `Δ(τ1, τ2)` of the paper: the non-negative waiting
    /// time from `τ1` to the next occurrence of `τ2`, both period-local.
    #[inline]
    pub fn delta(self, tau1: Time, tau2: Time) -> Dur {
        debug_assert!(tau1.0 < self.0, "τ1 not period-local");
        debug_assert!(tau2.0 < self.0, "τ2 not period-local");
        if tau2 >= tau1 {
            Dur(tau2.0 - tau1.0)
        } else {
            Dur(self.0 + tau2.0 - tau1.0)
        }
    }

    /// Reduces an absolute time to its period-local representative.
    #[inline]
    pub fn local(self, t: Time) -> Time {
        debug_assert!(!t.is_infinite(), "local() on infinite time");
        if t.0 < self.0 {
            t
        } else {
            Time(t.0 % self.0)
        }
    }

    /// `true` iff `t` is period-local.
    #[inline]
    pub fn contains(self, t: Time) -> bool {
        t.0 < self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_forward() {
        let p = Period::DAY;
        assert_eq!(p.delta(Time::hm(8, 0), Time::hm(9, 30)), Dur::minutes(90));
        assert_eq!(p.delta(Time::hm(8, 0), Time::hm(8, 0)), Dur::ZERO);
    }

    #[test]
    fn delta_wraps_over_midnight() {
        let p = Period::DAY;
        // 23:00 -> 01:00 next day = 2h.
        assert_eq!(p.delta(Time::hm(23, 0), Time::hm(1, 0)), Dur::hours(2));
    }

    #[test]
    fn delta_is_not_symmetric() {
        let p = Period::DAY;
        let a = Time::hm(6, 0);
        let b = Time::hm(18, 0);
        assert_eq!(p.delta(a, b), Dur::hours(12));
        assert_eq!(p.delta(b, a), Dur::hours(12));
        let c = Time::hm(5, 0);
        assert_eq!(p.delta(a, c), Dur::hours(23));
        assert_eq!(p.delta(c, a), Dur::hours(1));
    }

    #[test]
    fn local_reduces_absolute_times() {
        let p = Period::DAY;
        assert_eq!(p.local(Time::hm(25, 30)), Time::hm(1, 30));
        assert_eq!(p.local(Time::hm(23, 59)), Time::hm(23, 59));
    }

    #[test]
    fn infinity_is_absorbing() {
        assert!(INFINITY.is_infinite());
        assert_eq!(INFINITY.saturating_add(Dur::hours(5)), INFINITY);
        assert!(Time::hm(10, 0) < INFINITY);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Time::hm(7, 5).to_string(), "07:05");
        assert_eq!(Time::hms(7, 5, 30).to_string(), "07:05:30");
        assert_eq!(Dur::minutes(90).to_string(), "1h30min");
        assert_eq!(Dur(45).to_string(), "0min45s");
        assert_eq!(INFINITY.to_string(), "∞");
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let _ = Period::new(0);
    }

    #[test]
    fn delta_at_period_boundary() {
        // The extremes of the wrap-around branch: one second before the
        // boundary to the boundary itself, and the near-full-cycle wait.
        let pi = 1000;
        let p = Period::new(pi);
        let last = Time(pi - 1);
        assert_eq!(p.delta(last, Time(0)), Dur(1));
        assert_eq!(p.delta(Time(0), last), Dur(pi - 1));
        assert_eq!(p.delta(last, last), Dur::ZERO);
        assert_eq!(p.delta(Time(1), Time(0)), Dur(pi - 1));
        // Δ never reaches a full period: the maximum wait is π − 1.
        for tau1 in [0, 1, pi / 2, pi - 1] {
            for tau2 in [0, 1, pi / 2, pi - 1] {
                assert!(p.delta(Time(tau1), Time(tau2)).secs() < pi);
            }
        }
    }

    #[test]
    fn delta_on_degenerate_period() {
        // A one-second period has a single time point; every Δ is zero.
        let p = Period::new(1);
        assert_eq!(p.delta(Time(0), Time(0)), Dur::ZERO);
        assert!(p.contains(Time(0)));
        assert!(!p.contains(Time(1)));
    }

    #[test]
    fn local_at_period_multiples() {
        let p = Period::new(1000);
        assert_eq!(p.local(Time(999)), Time(999));
        assert_eq!(p.local(Time(1000)), Time(0));
        assert_eq!(p.local(Time(1001)), Time(1));
        assert_eq!(p.local(Time(2999)), Time(999));
        assert_eq!(p.local(Time(3000)), Time(0));
    }

    #[test]
    fn contains_is_half_open() {
        let p = Period::new(1000);
        assert!(p.contains(Time(0)));
        assert!(p.contains(Time(999)));
        assert!(!p.contains(Time(1000)));
        assert!(!p.contains(INFINITY));
    }

    #[test]
    fn saturating_add_clamps_into_the_sentinel() {
        // Saturation lands exactly on u32::MAX, which *is* the INFINITY
        // sentinel — a finite label that would overflow becomes
        // unreachable rather than wrapping to a small (wrong) arrival.
        let near_max = Time(u32::MAX - 1);
        assert!(!near_max.is_infinite());
        assert!(near_max.saturating_add(Dur(1)).is_infinite());
        assert!(near_max.saturating_add(Dur(100)).is_infinite());
        assert_eq!(near_max.saturating_add(Dur::ZERO), near_max);
    }

    #[test]
    fn infinite_duration_saturates_any_time() {
        assert!(Time::hm(0, 0).saturating_add(Dur::INFINITE).is_infinite());
        assert!(Time::hm(23, 59).saturating_add(Dur::INFINITE).is_infinite());
        assert!(INFINITY.saturating_add(Dur::INFINITE).is_infinite());
        assert!(Dur::INFINITE.is_infinite());
        assert!(!Dur::ZERO.is_infinite());
    }

    #[test]
    fn infinity_ordering_dominates_finite_times() {
        // Searches rely on INFINITY comparing greater than every real
        // label, and on min() with INFINITY being the identity.
        let finite = Time::hms(48, 0, 0); // absolute two-day label
        assert!(finite < INFINITY);
        assert_eq!(finite.min(INFINITY), finite);
        assert_eq!(INFINITY.min(finite), finite);
        assert_eq!(INFINITY.max(finite), INFINITY);
    }
}
