//! Strongly typed identifiers.
//!
//! Every entity of the timetable and of the derived graphs gets its own
//! `u32`-backed newtype, so that a station index can never be confused with a
//! graph-node index. `u32` keeps hot label arrays half the size of `usize`
//! (see the type-size guidance in the Rust Performance Book).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[repr(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Index into dense per-entity arrays.
            #[inline]
            pub const fn idx(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a dense array index.
            #[inline]
            pub fn from_idx(i: usize) -> Self {
                debug_assert!(i <= u32::MAX as usize);
                $name(i as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.idx()
            }
        }
    };
}

define_id!(
    /// A station `S ∈ S` of the timetable.
    StationId, "S"
);
define_id!(
    /// A route: an equivalence class of trains sharing the same stop sequence.
    RouteId, "R"
);
define_id!(
    /// A train `Z ∈ Z` of the timetable.
    TrainId, "Z"
);
define_id!(
    /// A node of the realistic time-dependent graph (station or route node).
    NodeId, "n"
);
define_id!(
    /// An elementary connection `c ∈ C`.
    ConnId, "c"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_idx() {
        let s = StationId::from_idx(17);
        assert_eq!(s.idx(), 17);
        assert_eq!(usize::from(s), 17);
        assert_eq!(s.to_string(), "S17");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId(3) < NodeId(4));
        assert_eq!(ConnId(9).to_string(), "c9");
    }
}
