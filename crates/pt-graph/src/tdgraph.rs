//! The realistic time-dependent graph model (paper §2, Fig. 1).
//!
//! Nodes: one *station node* per station (ids `0..|S|`), then one *route
//! node* per (route, stop) pair. Edges:
//!
//! * `station(S) → routenode(ρ, j)` with constant weight `T(S)` — boarding a
//!   route requires the minimum transfer time (the searches bypass these
//!   edges at the source, so starting a journey is free),
//! * `routenode(ρ, j) → station(S)` with constant weight `0` — alighting,
//! * `routenode(ρ, j) → routenode(ρ, j+1)` with a time-dependent weight: the
//!   PLF whose connection points are the departures of all trains of `ρ`
//!   on that hop.

use std::sync::Arc;

use pt_core::{ConnId, Dur, NodeId, Period, Plf, PlfPoint, StationId, Time, TrainId};
use pt_timetable::{DelayPatch, Routes, Timetable};

/// Weight of a graph edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeWeight {
    /// Constant duration (transfer edges).
    Const(Dur),
    /// Time-dependent duration: index into the PLF arena.
    Td(u32),
}

/// One outgoing edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Head node.
    pub head: NodeId,
    /// Weight.
    pub weight: EdgeWeight,
}

/// Edge-kind-grouped CSR view for the SoA kernels: the same adjacency as
/// [`TdGraph::edges`], but with each node's constant and time-dependent
/// edges split into parallel `u32` arrays, so a relax sweep over one kind
/// walks homogeneous lanes (head index + raw weight seconds, or head index
/// + PLF index) with no per-edge enum dispatch.
///
/// The view is topology-shaped: [`TdGraph::repatch_routes`] rewrites PLF
/// *contents* only, never heads, weights or PLF indices, so the view stays
/// valid across delay/feed patches and lives inside the refcount-shared
/// `Topology`. The one patch-tracking scalar — the maximum PLF duration —
/// lives on [`TdGraph`] itself (see [`TdGraph::max_edge_span_secs`]), where
/// it can grow monotonically without unsharing the topology.
#[derive(Debug, Clone)]
pub struct EdgeKindCsr {
    const_first: Vec<u32>,
    const_head: Vec<u32>,
    const_secs: Vec<u32>,
    td_first: Vec<u32>,
    td_head: Vec<u32>,
    td_plf: Vec<u32>,
    max_const_secs: u32,
}

impl EdgeKindCsr {
    fn build(first_edge: &[u32], edges: &[Edge]) -> EdgeKindCsr {
        let n = first_edge.len() - 1;
        let mut k = EdgeKindCsr {
            const_first: Vec::with_capacity(n + 1),
            const_head: Vec::new(),
            const_secs: Vec::new(),
            td_first: Vec::with_capacity(n + 1),
            td_head: Vec::new(),
            td_plf: Vec::new(),
            max_const_secs: 0,
        };
        k.const_first.push(0);
        k.td_first.push(0);
        for v in 0..n {
            for e in &edges[first_edge[v] as usize..first_edge[v + 1] as usize] {
                match e.weight {
                    EdgeWeight::Const(d) => {
                        k.const_head.push(e.head.0);
                        k.const_secs.push(d.secs());
                    }
                    EdgeWeight::Td(idx) => {
                        k.td_head.push(e.head.0);
                        k.td_plf.push(idx);
                    }
                }
            }
            k.const_first.push(k.const_head.len() as u32);
            k.td_first.push(k.td_head.len() as u32);
        }
        k.max_const_secs = k.const_secs.iter().copied().max().unwrap_or(0);
        k
    }

    /// Constant edges of `v` as `(heads, weight_secs)` lanes.
    #[inline]
    pub fn const_edges(&self, v: usize) -> (&[u32], &[u32]) {
        let lo = self.const_first[v] as usize;
        let hi = self.const_first[v + 1] as usize;
        (&self.const_head[lo..hi], &self.const_secs[lo..hi])
    }

    /// Time-dependent edges of `v` as `(heads, plf_indices)` lanes.
    #[inline]
    pub fn td_edges(&self, v: usize) -> (&[u32], &[u32]) {
        let lo = self.td_first[v] as usize;
        let hi = self.td_first[v + 1] as usize;
        (&self.td_head[lo..hi], &self.td_plf[lo..hi])
    }
}

/// Everything about the graph a delay/feed patch can never change: nodes,
/// edge topology, transfer weights, the kind-grouped CSR view. One `Arc`
/// of this is shared by refcount across every snapshot of the graph —
/// cloning a [`TdGraph`] never copies it.
#[derive(Debug, Clone)]
struct Topology {
    first_edge: Vec<u32>,
    edges: Vec<Edge>,
    /// `st(v)` — the station every node belongs to.
    node_station: Vec<StationId>,
    /// For route nodes (offset by `num_stations`): `(route, stop index)`.
    route_node_info: Vec<(pt_core::RouteId, u16)>,
    /// First route node of each route (route nodes are contiguous per
    /// route) — the anchor [`TdGraph::repatch`] needs to find a route's
    /// hop edges without a search.
    route_first_node: Vec<NodeId>,
    /// `T(S)` per station (copied out of the timetable for cache locality).
    transfer: Vec<Dur>,
    /// Edge-kind-grouped lanes for the SoA kernels.
    kinds: EdgeKindCsr,
}

/// The realistic time-dependent graph of a timetable.
///
/// Split for copy-on-write publishing: the immutable `Topology` is one
/// shared `Arc`; the hop PLFs are individually `Arc`-shared and a
/// [`TdGraph::repatch_routes`] *replaces* exactly the touched routes' hop
/// PLFs (every other PLF stays physically shared with older snapshots);
/// `conn_start` copies-on-first-touch after a clone. A clone is therefore
/// O(#PLFs) refcount bumps, never a copy of the adjacency.
#[derive(Debug, Clone)]
pub struct TdGraph {
    period: Period,
    num_stations: u32,
    topo: Arc<Topology>,
    /// The PLF arena, one entry per (route, hop) in build order.
    plfs: Vec<Arc<Plf>>,
    /// For every elementary connection: the route node where it departs.
    conn_start: Arc<Vec<NodeId>>,
    /// Longest PLF duration over the arena, tracked monotonically across
    /// patches (a ring sized from a stale maximum is merely oversized,
    /// never wrong); see [`TdGraph::max_edge_span_secs`].
    max_td_secs: u32,
}

impl TdGraph {
    /// Builds the graph from a timetable and its route partition.
    pub fn build(tt: &Timetable, routes: &Routes) -> TdGraph {
        let period = tt.period();
        let ns = tt.num_stations();
        let mut node_station: Vec<StationId> = (0..ns as u32).map(StationId).collect();

        // Route nodes, contiguous per route.
        let mut route_first_node: Vec<NodeId> = Vec::with_capacity(routes.len());
        let mut route_node_info: Vec<(pt_core::RouteId, u16)> = Vec::new();
        for (ri, r) in routes.iter_routes().enumerate() {
            route_first_node.push(NodeId::from_idx(node_station.len()));
            node_station.extend(r.stations.iter().copied());
            route_node_info
                .extend((0..r.stations.len()).map(|j| (pt_core::RouteId::from_idx(ri), j as u16)));
        }
        let num_nodes = node_station.len();

        let mut adj: Vec<Vec<Edge>> = vec![Vec::new(); num_nodes];
        let mut plfs: Vec<Plf> = Vec::new();
        for (ri, r) in routes.iter_routes().enumerate() {
            let base = route_first_node[ri].idx();
            for (j, &s) in r.stations.iter().enumerate() {
                let rn = NodeId::from_idx(base + j);
                // Board / alight edges.
                adj[s.idx()]
                    .push(Edge { head: rn, weight: EdgeWeight::Const(tt.transfer_time(s)) });
                adj[rn.idx()]
                    .push(Edge { head: NodeId(s.0), weight: EdgeWeight::Const(Dur::ZERO) });
            }
            // Route edges with one PLF per hop.
            for hop in 0..r.num_hops() {
                let points: Vec<PlfPoint> = r
                    .trains
                    .iter()
                    .map(|&t| {
                        let c = tt.connection(routes.connection_at(t, hop));
                        PlfPoint::new(c.dep, c.dur())
                    })
                    .collect();
                let expected = points.len();
                let plf = Plf::from_points(points, period);
                debug_assert_eq!(plf.len(), expected, "route partition produced a non-FIFO hop");
                let idx = plfs.len() as u32;
                plfs.push(plf);
                adj[base + hop].push(Edge {
                    head: NodeId::from_idx(base + hop + 1),
                    weight: EdgeWeight::Td(idx),
                });
            }
        }

        // Flatten to CSR.
        let mut first_edge = Vec::with_capacity(num_nodes + 1);
        let mut edges = Vec::with_capacity(adj.iter().map(Vec::len).sum());
        first_edge.push(0u32);
        for a in &adj {
            edges.extend_from_slice(a);
            first_edge.push(edges.len() as u32);
        }

        // Start node of each connection: route node of (route(train), seq).
        let conn_start: Vec<NodeId> = tt
            .connections()
            .iter()
            .map(|c| {
                let r = routes.route_of(c.train);
                NodeId::from_idx(route_first_node[r.idx()].idx() + c.seq as usize)
            })
            .collect();

        let transfer = (0..ns).map(|s| tt.transfer_time(StationId(s as u32))).collect();
        let kinds = EdgeKindCsr::build(&first_edge, &edges);
        let max_td_secs = plfs.iter().map(|p| p.max_dur().secs()).max().unwrap_or(0);

        TdGraph {
            period,
            num_stations: ns as u32,
            topo: Arc::new(Topology {
                first_edge,
                edges,
                node_station,
                route_node_info,
                route_first_node,
                transfer,
                kinds,
            }),
            plfs: plfs.into_iter().map(Arc::new).collect(),
            conn_start: Arc::new(conn_start),
            max_td_secs,
        }
    }

    /// Incrementally follows a [`Timetable::patch_delay`]: updates the
    /// remapped `conn_start` entries and rewrites the interpolation points
    /// of the delayed route's hop PLFs — the only edges a delay can touch.
    /// Everything else (nodes, edge topology, transfer weights, all other
    /// PLFs) is untouched, so a warm engine keeps its workspace sizes.
    ///
    /// `routes` must already be [`Routes::repatch`]ed, and the delayed
    /// route must still pass [`Routes::route_is_fifo`] — when it does not,
    /// the route partition itself is stale and the graph must be rebuilt
    /// with [`TdGraph::build`] instead (a delay that makes one train
    /// overtake another changes which trains may share route edges).
    pub fn repatch(&mut self, tt: &Timetable, routes: &Routes, train: TrainId, patch: &DelayPatch) {
        if !patch.changed {
            return;
        }
        self.repatch_routes(tt, routes, &[routes.route_of(train)], &patch.remapped);
    }

    /// The multi-route form of [`TdGraph::repatch`], following a
    /// [`Timetable::patch_feed`]: applies the feed's merged `ConnId` remap
    /// to `conn_start` once, then rewrites the hop PLFs of each route in
    /// `touched` exactly once — however many feed events hit the route. All
    /// routes must already be [`Routes::repatch_feed`]ed and pass
    /// [`Routes::route_is_fifo`]; send non-FIFO routes through
    /// [`Routes::refit`] + [`TdGraph::build`] instead.
    pub fn repatch_routes(
        &mut self,
        tt: &Timetable,
        routes: &Routes,
        touched: &[pt_core::RouteId],
        remapped: &[(ConnId, ConnId)],
    ) {
        // conn_start entries move with their connections (the start node
        // depends only on the connection's train and hop). Copy-on-touch:
        // the first write after a clone unshares the vector.
        if !remapped.is_empty() {
            let saved: Vec<NodeId> =
                remapped.iter().map(|&(old, _)| self.conn_start[old.idx()]).collect();
            let conn_start = Arc::make_mut(&mut self.conn_start);
            for (&(_, new), node) in remapped.iter().zip(saved) {
                conn_start[new.idx()] = node;
            }
        }

        // Rebuild the PLF of every hop of each touched route, *replacing*
        // the arena entry so snapshots sharing the old PLF are untouched.
        for &r in touched {
            let info = routes.route(r);
            let base = self.topo.route_first_node[r.idx()].idx();
            for hop in 0..info.num_hops() {
                let points: Vec<PlfPoint> = info
                    .trains
                    .iter()
                    .map(|&t| {
                        let c = tt.connection(routes.connection_at(t, hop));
                        PlfPoint::new(c.dep, c.dur())
                    })
                    .collect();
                let expected = points.len();
                let plf = Plf::from_points(points, self.period);
                debug_assert_eq!(plf.len(), expected, "repatch on a non-FIFO route");
                let lo = self.topo.first_edge[base + hop] as usize;
                let hi = self.topo.first_edge[base + hop + 1] as usize;
                let idx = self.topo.edges[lo..hi]
                    .iter()
                    .find_map(|e| match e.weight {
                        EdgeWeight::Td(idx) => Some(idx),
                        EdgeWeight::Const(_) => None,
                    })
                    .expect("route node has a time-dependent hop edge");
                // Keep the ring bound valid: the maximum only ever grows
                // (shrinking would require a full rescan for no
                // correctness gain — an oversized ring is still correct).
                self.max_td_secs = self.max_td_secs.max(plf.max_dur().secs());
                self.plfs[idx as usize] = Arc::new(plf);
            }
        }
    }

    /// The edge-kind-grouped CSR view for the SoA kernels.
    #[inline]
    pub fn kind_csr(&self) -> &EdgeKindCsr {
        &self.topo.kinds
    }

    /// Upper bound on how far (in seconds) a single relaxation can move a
    /// label forward in time: constant edges advance at most their weight;
    /// time-dependent edges wait at most `π − 1` and then travel at most the
    /// longest PLF duration (tracked monotonically across patches). Sizes
    /// the kernel's bucket ring.
    #[inline]
    pub fn max_edge_span_secs(&self) -> u32 {
        self.topo.kinds.max_const_secs.max((self.period.len() - 1).saturating_add(self.max_td_secs))
    }

    /// For a route node: its `(route, stop index)`; `None` on station nodes.
    #[inline]
    pub fn route_node_info(&self, v: NodeId) -> Option<(pt_core::RouteId, u16)> {
        let i = v.idx().checked_sub(self.num_stations as usize)?;
        self.topo.route_node_info.get(i).copied()
    }

    /// The timetable period.
    #[inline]
    pub fn period(&self) -> Period {
        self.period
    }

    /// Total number of nodes (stations + route nodes).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.topo.node_station.len()
    }

    /// Number of stations; station nodes are `0..num_stations`.
    #[inline]
    pub fn num_stations(&self) -> usize {
        self.num_stations as usize
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.topo.edges.len()
    }

    /// The station node of a station (identity mapping by construction).
    #[inline]
    pub fn station_node(&self, s: StationId) -> NodeId {
        debug_assert!(s.0 < self.num_stations);
        NodeId(s.0)
    }

    /// `st(v)`: the station a node belongs to.
    #[inline]
    pub fn station_of(&self, v: NodeId) -> StationId {
        self.topo.node_station[v.idx()]
    }

    /// `true` iff `v` is a station node.
    #[inline]
    pub fn is_station_node(&self, v: NodeId) -> bool {
        v.0 < self.num_stations
    }

    /// Outgoing edges of `v`.
    #[inline]
    pub fn edges(&self, v: NodeId) -> &[Edge] {
        let lo = self.topo.first_edge[v.idx()] as usize;
        let hi = self.topo.first_edge[v.idx() + 1] as usize;
        &self.topo.edges[lo..hi]
    }

    /// The PLF arena entry of a time-dependent edge.
    #[inline]
    pub fn plf(&self, idx: u32) -> &Plf {
        &self.plfs[idx as usize]
    }

    /// How many hop PLFs of `self` are *physically shared* (same
    /// allocation, by refcount) with `other`, plus whether the topology
    /// `Arc` itself is shared. Diagnostics for the copy-on-write publish
    /// path.
    pub fn shared_plfs_with(&self, other: &TdGraph) -> (usize, bool) {
        let plfs = self.plfs.iter().zip(&other.plfs).filter(|(a, b)| Arc::ptr_eq(a, b)).count();
        (plfs, Arc::ptr_eq(&self.topo, &other.topo))
    }

    /// A fully unshared copy: topology, every PLF and `conn_start` are
    /// reallocated. The pre-copy-on-write publish cost, kept as the bench
    /// reference for the O(touched) clone.
    pub fn deep_clone(&self) -> TdGraph {
        TdGraph {
            period: self.period,
            num_stations: self.num_stations,
            topo: Arc::new((*self.topo).clone()),
            plfs: self.plfs.iter().map(|p| Arc::new((**p).clone())).collect(),
            conn_start: Arc::new((*self.conn_start).clone()),
            max_td_secs: self.max_td_secs,
        }
    }

    /// Arrival time over `edge` when leaving its tail at absolute time `t`;
    /// [`INFINITY`](pt_core::INFINITY) if the edge is never served.
    #[inline]
    pub fn eval_edge(&self, edge: &Edge, t: Time) -> Time {
        debug_assert!(!t.is_infinite());
        match edge.weight {
            EdgeWeight::Const(d) => t + d,
            EdgeWeight::Td(idx) => self.plfs[idx as usize].eval_arr(t, self.period),
        }
    }

    /// Arrival like [`TdGraph::eval_edge`], but treating constant (transfer) edges as
    /// free — used when expanding the *source* station, where boarding does
    /// not require a transfer.
    #[inline]
    pub fn eval_edge_free_transfer(&self, edge: &Edge, t: Time) -> Time {
        match edge.weight {
            EdgeWeight::Const(_) => t,
            EdgeWeight::Td(idx) => self.plfs[idx as usize].eval_arr(t, self.period),
        }
    }

    /// The route node at which a connection departs (used by the
    /// connection-setting initialization, paper §3.1).
    #[inline]
    pub fn conn_start_node(&self, c: ConnId) -> NodeId {
        self.conn_start[c.idx()]
    }

    /// `T(S)` of a station.
    #[inline]
    pub fn transfer_time(&self, s: StationId) -> Dur {
        self.topo.transfer[s.idx()]
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// Total number of connection points over all route-edge PLFs.
    pub fn num_plf_points(&self) -> usize {
        self.plfs.iter().map(|p| p.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_core::Period;
    use pt_timetable::TimetableBuilder;

    /// Two stations, one line A→B with two trains (08:00 and 09:00, 10 min).
    fn two_station_graph() -> (Timetable, Routes, TdGraph) {
        let mut b = TimetableBuilder::new(Period::DAY);
        let a = b.add_named_station("A", Dur::minutes(2));
        let bb = b.add_named_station("B", Dur::minutes(3));
        for h in [8, 9] {
            b.add_simple_trip(&[a, bb], Time::hm(h, 0), &[Dur::minutes(10)], Dur::ZERO).unwrap();
        }
        let tt = b.build().unwrap();
        let routes = Routes::partition(&tt);
        let g = TdGraph::build(&tt, &routes);
        (tt, routes, g)
    }

    #[test]
    fn node_and_edge_counts() {
        let (tt, routes, g) = two_station_graph();
        assert_eq!(routes.len(), 1);
        // 2 station nodes + 2 route nodes.
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_stations(), tt.num_stations());
        // 2 board + 2 alight + 1 route edge.
        assert_eq!(g.num_edges(), 5);
        // Both trains share one PLF with two points.
        assert_eq!(g.num_plf_points(), 2);
    }

    #[test]
    fn station_of_route_nodes() {
        let (_, _, g) = two_station_graph();
        let a = StationId(0);
        let b = StationId(1);
        assert_eq!(g.station_of(g.station_node(a)), a);
        // Route nodes 2 and 3 belong to A and B.
        assert_eq!(g.station_of(NodeId(2)), a);
        assert_eq!(g.station_of(NodeId(3)), b);
        assert!(g.is_station_node(NodeId(1)));
        assert!(!g.is_station_node(NodeId(2)));
    }

    #[test]
    fn boarding_costs_transfer_time() {
        let (_, _, g) = two_station_graph();
        let a = g.station_node(StationId(0));
        let board = g.edges(a).iter().find(|e| !g.is_station_node(e.head)).expect("board edge");
        // At 07:00, boarding puts us on the route node at 07:02.
        assert_eq!(g.eval_edge(board, Time::hm(7, 0)), Time::hm(7, 2));
        // At the source, boarding is free.
        assert_eq!(g.eval_edge_free_transfer(board, Time::hm(7, 0)), Time::hm(7, 0));
    }

    #[test]
    fn route_edge_waits_for_departure() {
        let (_, _, g) = two_station_graph();
        let rn_a = NodeId(2);
        let route_edge = g
            .edges(rn_a)
            .iter()
            .find(|e| matches!(e.weight, EdgeWeight::Td(_)))
            .expect("route edge");
        // Reaching the route node at 08:30 means riding the 09:00 train.
        assert_eq!(g.eval_edge(route_edge, Time::hm(8, 30)), Time::hm(9, 10));
        // Reaching it at exactly 08:00 rides the 08:00 train.
        assert_eq!(g.eval_edge(route_edge, Time::hm(8, 0)), Time::hm(8, 10));
    }

    #[test]
    fn alighting_is_free() {
        let (_, _, g) = two_station_graph();
        let rn_b = NodeId(3);
        let alight = g.edges(rn_b).iter().find(|e| g.is_station_node(e.head)).expect("alight edge");
        assert_eq!(alight.weight, EdgeWeight::Const(Dur::ZERO));
        assert_eq!(g.eval_edge(alight, Time::hm(8, 10)), Time::hm(8, 10));
    }

    #[test]
    fn conn_start_nodes_point_at_departure_route_node() {
        let (tt, _, g) = two_station_graph();
        for (i, c) in tt.connections().iter().enumerate() {
            let start = g.conn_start_node(ConnId::from_idx(i));
            assert_eq!(g.station_of(start), c.from);
            assert!(!g.is_station_node(start));
        }
    }

    #[test]
    fn repatch_matches_full_rebuild() {
        use pt_timetable::Recovery;
        // Two-train route over three stations plus an unrelated line, so
        // the patch must leave other routes' PLFs alone.
        let mut b = TimetableBuilder::new(Period::DAY);
        let s: Vec<_> =
            (0..4).map(|i| b.add_named_station(format!("{i}"), Dur::minutes(1))).collect();
        for h in [8, 9] {
            b.add_simple_trip(
                &[s[0], s[1], s[2]],
                Time::hm(h, 0),
                &[Dur::minutes(10), Dur::minutes(10)],
                Dur::ZERO,
            )
            .unwrap();
        }
        b.add_simple_trip(&[s[3], s[1]], Time::hm(8, 30), &[Dur::minutes(5)], Dur::ZERO).unwrap();
        let mut tt = b.build().unwrap();
        let mut routes = Routes::partition(&tt);
        let mut g = TdGraph::build(&tt, &routes);

        // Delay the 08:00 train to 09:05 — it still arrives everywhere
        // before the 09:00 train... no: 09:05 + 10 = 09:15 > 09:10? The
        // 09:00 train arrives 09:10, so the delayed train is overtaken by
        // departure order; use 70 min so departures AND arrivals reorder
        // consistently (09:10 dep, 09:20 arr vs 09:00 dep, 09:10 arr).
        let patch = tt.patch_delay(pt_core::TrainId(0), 0, Dur::minutes(70), Recovery::None);
        assert!(patch.changed);
        routes.repatch(&tt, &patch);
        assert!(routes.route_is_fifo(&tt, routes.route_of(pt_core::TrainId(0))));
        g.repatch(&tt, &routes, pt_core::TrainId(0), &patch);

        let fresh_routes = Routes::partition(&tt);
        let fresh = TdGraph::build(&tt, &fresh_routes);
        assert_eq!(g.num_nodes(), fresh.num_nodes());
        assert_eq!(g.num_edges(), fresh.num_edges());
        assert_eq!(g.num_plf_points(), fresh.num_plf_points());
        // Same connection start nodes (ids remapped identically)…
        for i in 0..tt.num_connections() {
            let c = ConnId::from_idx(i);
            assert_eq!(
                g.station_of(g.conn_start_node(c)),
                fresh.station_of(fresh.conn_start_node(c)),
                "conn {i}"
            );
        }
        // …and identical edge evaluation everywhere.
        for v in g.node_ids() {
            for (e, ef) in g.edges(v).iter().zip(fresh.edges(v)) {
                for t in [Time::hm(7, 0), Time::hm(8, 30), Time::hm(9, 7), Time::hm(23, 50)] {
                    assert_eq!(g.eval_edge(e, t), fresh.eval_edge(ef, t), "node {v} at {t}");
                }
            }
        }
    }

    #[test]
    fn feed_repatch_rewrites_every_touched_route_and_matches_rebuild() {
        use pt_timetable::{DelayEvent, Recovery};
        // Two independent routes plus an untouched bystander line.
        let mut b = TimetableBuilder::new(Period::DAY);
        let s: Vec<_> =
            (0..5).map(|i| b.add_named_station(format!("{i}"), Dur::minutes(1))).collect();
        for h in [8, 9] {
            b.add_simple_trip(
                &[s[0], s[1], s[2]],
                Time::hm(h, 0),
                &[Dur::minutes(10), Dur::minutes(10)],
                Dur::ZERO,
            )
            .unwrap();
        }
        for h in [10, 11] {
            b.add_simple_trip(&[s[3], s[1]], Time::hm(h, 0), &[Dur::minutes(5)], Dur::ZERO)
                .unwrap();
        }
        b.add_simple_trip(&[s[4], s[0]], Time::hm(7, 0), &[Dur::minutes(5)], Dur::ZERO).unwrap();
        let mut tt = b.build().unwrap();
        let mut routes = Routes::partition(&tt);
        let mut g = TdGraph::build(&tt, &routes);

        // One feed touching both multi-train routes (FIFO-preserving).
        let patch = tt.patch_feed(&[
            DelayEvent::Delay {
                train: pt_core::TrainId(0),
                from_hop: 0,
                delay: Dur::minutes(70),
                recovery: Recovery::None,
            },
            DelayEvent::Delay {
                train: pt_core::TrainId(2),
                from_hop: 0,
                delay: Dur::minutes(70),
                recovery: Recovery::None,
            },
        ]);
        assert!(patch.changed);
        let touched = routes.repatch_feed(&tt, &patch);
        assert_eq!(touched.len(), 2);
        for &r in &touched {
            assert!(routes.route_is_fifo(&tt, r));
        }
        g.repatch_routes(&tt, &routes, &touched, &patch.remapped);

        let fresh_routes = Routes::partition(&tt);
        let fresh = TdGraph::build(&tt, &fresh_routes);
        assert_eq!(g.num_nodes(), fresh.num_nodes());
        assert_eq!(g.num_plf_points(), fresh.num_plf_points());
        for i in 0..tt.num_connections() {
            let c = ConnId::from_idx(i);
            assert_eq!(
                g.station_of(g.conn_start_node(c)),
                fresh.station_of(fresh.conn_start_node(c)),
                "conn {i}"
            );
        }
        for v in g.node_ids() {
            for (e, ef) in g.edges(v).iter().zip(fresh.edges(v)) {
                for t in [Time::hm(7, 0), Time::hm(9, 5), Time::hm(10, 30), Time::hm(23, 50)] {
                    assert_eq!(g.eval_edge(e, t), fresh.eval_edge(ef, t), "node {v} at {t}");
                }
            }
        }
    }

    #[test]
    fn kind_view_partitions_the_adjacency() {
        let (_, _, g) = two_station_graph();
        let k = g.kind_csr();
        for v in g.node_ids() {
            let (ch, cw) = k.const_edges(v.idx());
            let (th, tp) = k.td_edges(v.idx());
            let consts: Vec<(u32, u32)> = g
                .edges(v)
                .iter()
                .filter_map(|e| match e.weight {
                    EdgeWeight::Const(d) => Some((e.head.0, d.secs())),
                    EdgeWeight::Td(_) => None,
                })
                .collect();
            let tds: Vec<(u32, u32)> = g
                .edges(v)
                .iter()
                .filter_map(|e| match e.weight {
                    EdgeWeight::Td(idx) => Some((e.head.0, idx)),
                    EdgeWeight::Const(_) => None,
                })
                .collect();
            assert_eq!(ch.iter().copied().zip(cw.iter().copied()).collect::<Vec<_>>(), consts);
            assert_eq!(th.iter().copied().zip(tp.iter().copied()).collect::<Vec<_>>(), tds);
        }
        // Span covers the longest transfer plus a full-period wait + ride.
        let span = g.max_edge_span_secs();
        assert!(span >= g.period().len() - 1);
    }

    #[test]
    fn repatch_keeps_span_bound_valid() {
        use pt_timetable::Recovery;
        let (mut tt, mut routes, mut g) = two_station_graph();
        let before = g.max_edge_span_secs();
        // Delays preserve hop durations, so the bound may not shrink and
        // must still dominate every PLF duration after the repatch.
        let patch = tt.patch_delay(pt_core::TrainId(0), 0, Dur::minutes(70), Recovery::None);
        assert!(patch.changed);
        routes.repatch(&tt, &patch);
        g.repatch(&tt, &routes, pt_core::TrainId(0), &patch);
        let after = g.max_edge_span_secs();
        assert!(after >= before);
        let true_max = g
            .node_ids()
            .flat_map(|v| g.edges(v))
            .filter_map(|e| match e.weight {
                EdgeWeight::Td(idx) => Some(g.plf(idx).max_dur().secs()),
                EdgeWeight::Const(_) => None,
            })
            .max()
            .unwrap_or(0);
        assert!(after >= g.period().len() - 1 + true_max);
    }

    #[test]
    fn multi_hop_route_chains_route_nodes() {
        let mut b = TimetableBuilder::new(Period::DAY);
        let s: Vec<_> = (0..3).map(|i| b.add_named_station(format!("{i}"), Dur::ZERO)).collect();
        b.add_simple_trip(
            &[s[0], s[1], s[2]],
            Time::hm(6, 0),
            &[Dur::minutes(5), Dur::minutes(7)],
            Dur::ZERO,
        )
        .unwrap();
        let tt = b.build().unwrap();
        let routes = Routes::partition(&tt);
        let g = TdGraph::build(&tt, &routes);
        // 3 station + 3 route nodes; 3 board + 3 alight + 2 route edges.
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 8);
        // Ride through: route node of hop 0 at 06:00 → arr 06:05 at hop 1,
        // depart 06:05 (zero dwell) → arr 06:12.
        let rn0 = NodeId(3);
        let e01 = g.edges(rn0).iter().find(|e| matches!(e.weight, EdgeWeight::Td(_))).unwrap();
        let t1 = g.eval_edge(e01, Time::hm(6, 0));
        assert_eq!(t1, Time::hm(6, 5));
        let rn1 = e01.head;
        let e12 = g.edges(rn1).iter().find(|e| matches!(e.weight, EdgeWeight::Td(_))).unwrap();
        assert_eq!(g.eval_edge(e12, t1), Time::hm(6, 12));
    }
}
