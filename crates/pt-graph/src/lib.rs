//! Graph models derived from a periodic timetable.
//!
//! * [`TdGraph`] — the *realistic time-dependent model* of Pyrga et al.
//!   (paper §2, Fig. 1): one station node per station, one route node per
//!   (route, stop) pair, constant transfer edges and time-dependent route
//!   edges carrying piecewise-linear travel-time functions.
//! * [`StationGraph`] — the condensed station graph `G_S` (paper §4): an
//!   edge `(S1, S2)` iff at least one train runs from `S1` to `S2`, plus its
//!   reverse, used to determine *local* and *via* stations of a target and
//!   to select transfer stations by degree or contraction.

pub mod station_graph;
pub mod tdgraph;

pub use station_graph::{StationGraph, ViaLocal};
pub use tdgraph::{EdgeKindCsr, EdgeWeight, TdGraph};
