//! The station graph `G_S` (paper §4, Fig. 3).
//!
//! `G_S = (S, E_S)` has an edge `(S1, S2)` iff at least one train runs from
//! `S1` to `S2`. It carries scalar lower-bound weights (the minimum leg
//! duration) for the contraction-based transfer-station selection, and its
//! reverse is used by the DFS that computes the *local* and *via* stations
//! of a query target.

use pt_core::{Dur, StationId};
use pt_timetable::Timetable;

/// The condensed station graph with forward and reverse adjacency.
#[derive(Debug, Clone)]
pub struct StationGraph {
    first_out: Vec<u32>,
    out_heads: Vec<StationId>,
    /// Minimum leg duration per forward edge (lower bound on travel time).
    out_weights: Vec<Dur>,
    first_in: Vec<u32>,
    in_tails: Vec<StationId>,
}

/// Result of the local/via DFS from a target station `T`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViaLocal {
    /// `via(T)`: transfer stations separating `T ∪ local(T)` from the rest.
    pub via: Vec<StationId>,
    /// `local(T)`: stations reaching `T` through non-transfer stations only.
    pub local: Vec<StationId>,
}

impl ViaLocal {
    /// `true` iff an `S`–`T` query from `source` is *local* (no distance
    /// table pruning applies, paper §4).
    pub fn is_local_query(&self, source: StationId) -> bool {
        self.local.contains(&source)
    }
}

impl StationGraph {
    /// Builds the station graph of a timetable.
    pub fn build(tt: &Timetable) -> StationGraph {
        let n = tt.num_stations();
        // Collect unique (from, to) pairs with min duration.
        let mut edges: Vec<(StationId, StationId, Dur)> = Vec::new();
        for s in tt.station_ids() {
            let conns = tt.conn(s);
            let mut targets: Vec<(StationId, Dur)> = Vec::new();
            for c in conns {
                match targets.iter_mut().find(|(t, _)| *t == c.to) {
                    Some((_, d)) => *d = (*d).min(c.dur()),
                    None => targets.push((c.to, c.dur())),
                }
            }
            targets.sort_unstable_by_key(|&(t, _)| t);
            for (t, d) in targets {
                edges.push((s, t, d));
            }
        }

        let mut first_out = vec![0u32; n + 1];
        for &(s, _, _) in &edges {
            first_out[s.idx() + 1] += 1;
        }
        for i in 1..=n {
            first_out[i] += first_out[i - 1];
        }
        let out_heads: Vec<StationId> = edges.iter().map(|&(_, t, _)| t).collect();
        let out_weights: Vec<Dur> = edges.iter().map(|&(_, _, d)| d).collect();

        // Reverse adjacency.
        let mut first_in = vec![0u32; n + 1];
        for &(_, t, _) in &edges {
            first_in[t.idx() + 1] += 1;
        }
        for i in 1..=n {
            first_in[i] += first_in[i - 1];
        }
        let mut cursor = first_in.clone();
        let mut in_tails = vec![StationId(0); edges.len()];
        for &(s, t, _) in &edges {
            let at = cursor[t.idx()] as usize;
            in_tails[at] = s;
            cursor[t.idx()] += 1;
        }

        StationGraph { first_out, out_heads, out_weights, first_in, in_tails }
    }

    /// Number of stations.
    #[inline]
    pub fn num_stations(&self) -> usize {
        self.first_out.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_heads.len()
    }

    /// Forward neighbours of `s` with minimum leg durations.
    #[inline]
    pub fn out(&self, s: StationId) -> impl Iterator<Item = (StationId, Dur)> + '_ {
        let lo = self.first_out[s.idx()] as usize;
        let hi = self.first_out[s.idx() + 1] as usize;
        self.out_heads[lo..hi].iter().copied().zip(self.out_weights[lo..hi].iter().copied())
    }

    /// Stations with an edge *into* `s`.
    #[inline]
    pub fn incoming(&self, s: StationId) -> &[StationId] {
        let lo = self.first_in[s.idx()] as usize;
        let hi = self.first_in[s.idx() + 1] as usize;
        &self.in_tails[lo..hi]
    }

    /// Undirected degree: number of distinct neighbours (either direction).
    /// The "degree > k" transfer-station selection of §4 uses this.
    pub fn degree(&self, s: StationId) -> usize {
        let mut nbrs: Vec<StationId> =
            self.out(s).map(|(t, _)| t).chain(self.incoming(s).iter().copied()).collect();
        nbrs.sort_unstable();
        nbrs.dedup();
        nbrs.len()
    }

    /// Determines `via(T)` and `local(T)` with a DFS on the reverse station
    /// graph, pruned at transfer stations (paper §4, "Determining via(T)").
    ///
    /// Special case: if `T` is itself a transfer station, `local(T) = ∅` and
    /// `via(T) = {T}`.
    pub fn via_and_local(&self, t: StationId, is_transfer: &[bool]) -> ViaLocal {
        assert_eq!(is_transfer.len(), self.num_stations());
        if is_transfer[t.idx()] {
            return ViaLocal { via: vec![t], local: Vec::new() };
        }
        let mut seen = vec![false; self.num_stations()];
        let mut via = Vec::new();
        let mut local = Vec::new();
        let mut stack = vec![t];
        seen[t.idx()] = true;
        while let Some(v) = stack.pop() {
            for &u in self.incoming(v) {
                if seen[u.idx()] {
                    continue;
                }
                seen[u.idx()] = true;
                if is_transfer[u.idx()] {
                    via.push(u); // touched, not expanded
                } else {
                    local.push(u);
                    stack.push(u);
                }
            }
        }
        via.sort_unstable();
        local.sort_unstable();
        ViaLocal { via, local }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_core::{Period, Time};
    use pt_timetable::TimetableBuilder;

    /// A path network 0 → 1 → 2 → 3 plus a shortcut 0 → 2.
    fn path_graph() -> StationGraph {
        let mut b = TimetableBuilder::new(Period::DAY);
        let s: Vec<_> = (0..4).map(|i| b.add_named_station(format!("{i}"), Dur::ZERO)).collect();
        b.add_simple_trip(
            &[s[0], s[1], s[2], s[3]],
            Time::hm(8, 0),
            &[Dur::minutes(5), Dur::minutes(5), Dur::minutes(5)],
            Dur::ZERO,
        )
        .unwrap();
        b.add_simple_trip(&[s[0], s[2]], Time::hm(9, 0), &[Dur::minutes(7)], Dur::ZERO).unwrap();
        StationGraph::build(&b.build().unwrap())
    }

    #[test]
    fn edges_are_unique_with_min_weight() {
        let mut b = TimetableBuilder::new(Period::DAY);
        let a = b.add_named_station("A", Dur::ZERO);
        let c = b.add_named_station("B", Dur::ZERO);
        b.add_simple_trip(&[a, c], Time::hm(8, 0), &[Dur::minutes(12)], Dur::ZERO).unwrap();
        b.add_simple_trip(&[a, c], Time::hm(9, 0), &[Dur::minutes(8)], Dur::ZERO).unwrap();
        let g = StationGraph::build(&b.build().unwrap());
        assert_eq!(g.num_edges(), 1);
        let (head, w) = g.out(a).next().unwrap();
        assert_eq!(head, c);
        assert_eq!(w, Dur::minutes(8)); // the faster train
    }

    #[test]
    fn incoming_mirrors_outgoing() {
        let g = path_graph();
        assert_eq!(g.incoming(StationId(2)), &[StationId(0), StationId(1)]);
        assert_eq!(g.incoming(StationId(0)), &[] as &[StationId]);
        let outs: Vec<_> = g.out(StationId(0)).map(|(t, _)| t).collect();
        assert_eq!(outs, vec![StationId(1), StationId(2)]);
    }

    #[test]
    fn degree_counts_distinct_neighbours() {
        let g = path_graph();
        // Station 2: out {3}, in {0, 1} → 3 distinct.
        assert_eq!(g.degree(StationId(2)), 3);
        // Station 0: out {1, 2}, in {} → 2.
        assert_eq!(g.degree(StationId(0)), 2);
    }

    #[test]
    fn via_local_stops_at_transfer_stations() {
        let g = path_graph();
        // Transfer stations: {1}. Target 3: reverse reachability 3←2←{1,0}.
        let mut is_transfer = vec![false; 4];
        is_transfer[1] = true;
        let vl = g.via_and_local(StationId(3), &is_transfer);
        assert_eq!(vl.via, vec![StationId(1)]);
        // 2 is local (direct), 0 is local via the 0→2 shortcut.
        assert_eq!(vl.local, vec![StationId(0), StationId(2)]);
        assert!(vl.is_local_query(StationId(0)));
        assert!(!vl.is_local_query(StationId(1)));
    }

    #[test]
    fn via_local_blocked_source_is_global() {
        let g = path_graph();
        // Transfer stations {1, 2}: station 0 can only reach 3 through them.
        let mut is_transfer = vec![false; 4];
        is_transfer[1] = true;
        is_transfer[2] = true;
        let vl = g.via_and_local(StationId(3), &is_transfer);
        assert_eq!(vl.via, vec![StationId(2)]);
        assert!(vl.local.is_empty());
        assert!(!vl.is_local_query(StationId(0)));
    }

    #[test]
    fn transfer_target_is_its_own_via() {
        let g = path_graph();
        let mut is_transfer = vec![false; 4];
        is_transfer[3] = true;
        let vl = g.via_and_local(StationId(3), &is_transfer);
        assert_eq!(vl.via, vec![StationId(3)]);
        assert!(vl.local.is_empty());
    }
}
