//! Cross-algorithm equivalence checking.
//!
//! The correctness contract of the whole workspace (and of the paper): on
//! any timetable, every profile algorithm computes *the same* reduced
//! arrival profiles, and evaluating a profile at a departure time equals
//! the label-setting time-query baseline (`dist(S, T, τ)`, §2). This
//! module checks, for a set of sampled source stations:
//!
//! * sequential SPCS (`ProfileEngine`, 1 thread) — the reference,
//! * the label-correcting profile search (Table 1's baseline),
//! * parallel SPCS under **all three** `conn(S)` partition strategies
//!   (§3.2) at every requested thread count,
//! * SPCS with self-pruning disabled (the ablation path), sequential and
//!   parallel,
//! * the batch layer: `ProfileEngine::many_to_all` over all sources and
//!   `S2sEngine::batch` over sampled pairs, both against the sequential
//!   profiles,
//! * `time_query::earliest_arrivals` evaluated against the sequential
//!   profiles at sampled departure times (including late-night wrap-around
//!   departures).
//!
//! Used by the `conncheck` binary (full networks) and by the tier-1
//! integration test `tests/conncheck_fast.rs` (scaled-down fast mode).

use std::sync::Arc;

use pt_core::{Dur, StationId, Time, TrainId};
use pt_spcs::{
    label_correcting, time_query, BorderSpec, DelayUpdate, DistanceTable, KernelMode, Network,
    PartitionStrategy, ProfileEngine, ProfileSet, S2sEngine, ShardId, ShardedService,
    TransferSelection,
};
use pt_timetable::{DelayEvent, Recovery, TimetableBuilder};

/// The three partition strategies of §3.2, with display names.
pub const STRATEGIES: [(&str, PartitionStrategy); 3] = [
    ("time_slots", PartitionStrategy::EqualTimeSlots),
    ("equal_conns", PartitionStrategy::EqualConnections),
    ("kmeans", PartitionStrategy::KMeans { iters: 20 }),
];

/// Result of [`cross_check`] on one network.
#[derive(Debug)]
pub struct CheckOutcome {
    pub network: String,
    pub sources: usize,
    /// Number of whole-profile-set / arrival comparisons performed.
    pub comparisons: usize,
    /// Human-readable description of every disagreement found (capped).
    pub mismatches: Vec<String>,
}

impl CheckOutcome {
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty()
    }
}

const MAX_REPORTED: usize = 20;

fn record(mismatches: &mut Vec<String>, msg: String) {
    if mismatches.len() < MAX_REPORTED {
        mismatches.push(msg);
    }
}

/// Runs every cross-algorithm comparison on `net`; see the module docs.
pub fn cross_check(
    name: &str,
    net: &Network,
    sources: &[StationId],
    threads: &[usize],
    departures: &[Time],
) -> CheckOutcome {
    let period = net.timetable().period();
    let mut comparisons = 0usize;
    let mut mismatches = Vec::new();

    // Sequential SPCS is the reference for everything below.
    let seqs: Vec<Arc<ProfileSet>> =
        sources.iter().map(|&s| ProfileEngine::new().one_to_all(net, s)).collect();

    for (&s, seq) in sources.iter().zip(&seqs) {
        let lc = label_correcting::profile_search(net, s);
        comparisons += 1;
        if lc.profiles != **seq {
            record(
                &mut mismatches,
                format!("{name}: label-correcting != sequential SPCS from {s}"),
            );
        }

        // Ablation path: disabling self-pruning changes work, never results.
        let nopruning = ProfileEngine::new().self_pruning(false).one_to_all(net, s);
        comparisons += 1;
        if &nopruning != seq {
            record(
                &mut mismatches,
                format!("{name}: self_pruning(false) != sequential SPCS from {s}"),
            );
        }

        for (strat_name, strat) in STRATEGIES {
            for &p in threads {
                let par = ProfileEngine::new().threads(p).strategy(strat).one_to_all(net, s);
                comparisons += 1;
                if &par != seq {
                    record(
                        &mut mismatches,
                        format!(
                            "{name}: parallel SPCS ({strat_name}, p={p}) != sequential from {s}"
                        ),
                    );
                }
            }
        }

        // Parallel ablation: no self-pruning on the split search either.
        if let Some(&p) = threads.first() {
            let par_nop = ProfileEngine::new().threads(p).self_pruning(false).one_to_all(net, s);
            comparisons += 1;
            if &par_nop != seq {
                record(
                    &mut mismatches,
                    format!("{name}: parallel self_pruning(false) p={p} != sequential from {s}"),
                );
            }
        }

        for &dep in departures {
            let truth = time_query::earliest_arrivals(net, s, dep);
            for t in net.station_ids() {
                if t == s {
                    continue; // source-profile convention, see ProfileSet::profile
                }
                comparisons += 1;
                let got = seq.profile(t).eval_arr(dep, period);
                let want = truth.arrival_at(t);
                if got != want {
                    record(
                        &mut mismatches,
                        format!(
                            "{name}: profile eval {s} -> {t} at dep {dep}: \
                             profile says {got}, time-query says {want}"
                        ),
                    );
                }
            }
        }
    }

    // Batch layer: many_to_all must reproduce the per-source sequential
    // profiles exactly, under both its across-query regime (sources >=
    // threads) and its within-query fallback.
    for &p in threads {
        let batch = ProfileEngine::new().threads(p).many_to_all(net, sources);
        for ((got, want), &s) in batch.iter().zip(&seqs).zip(sources) {
            comparisons += 1;
            if got != want {
                record(
                    &mut mismatches,
                    format!("{name}: many_to_all (p={p}) != sequential from {s}"),
                );
            }
        }
    }

    // Batch station-to-station: every source paired with a spread of
    // targets, answered by S2sEngine::batch, against the sequential
    // one-to-all profiles.
    let ns = net.num_stations() as u32;
    let pairs: Vec<(StationId, StationId)> = sources
        .iter()
        .enumerate()
        .flat_map(|(i, &s)| {
            [(s, StationId((i as u32 * 7 + 1) % ns)), (s, StationId((i as u32 * 13 + 3) % ns))]
        })
        .filter(|(s, t)| s != t)
        .collect();
    if !pairs.is_empty() {
        for &p in threads {
            let results = S2sEngine::new().threads(p).batch(net, &pairs);
            for (r, &(s, t)) in results.iter().zip(&pairs) {
                let si = sources.iter().position(|&x| x == s).expect("pair source is sampled");
                comparisons += 1;
                if &r.profile != seqs[si].profile(t) {
                    record(
                        &mut mismatches,
                        format!("{name}: S2sEngine::batch (p={p}) {s}->{t} != sequential profile"),
                    );
                }
            }
        }
    }

    CheckOutcome { network: name.to_string(), sources: sources.len(), comparisons, mismatches }
}

/// Departure times exercising normal daytime plus the period wrap-around.
pub fn standard_departures() -> Vec<Time> {
    vec![Time::hm(0, 30), Time::hm(7, 45), Time::hm(12, 0), Time::hm(23, 30)]
}

/// The `--kernel` ablation battery: forces the scalar heap kernel and the
/// SoA bucket-ring kernel explicitly (never `Auto`, which would pick one)
/// and cross-validates **both** against the label-setting time-query
/// ground truth — not just against each other, so a bug shared by the
/// profile reduction cannot survive the A/B. Covers sequential and
/// parallel one-to-all plus station-to-station with and without the
/// stopping criterion.
pub fn kernel_check(
    name: &str,
    net: &Network,
    sources: &[StationId],
    threads: &[usize],
    departures: &[Time],
) -> CheckOutcome {
    let period = net.timetable().period();
    let mut comparisons = 0usize;
    let mut mismatches = Vec::new();

    let scalar = ProfileEngine::new().kernel(KernelMode::Scalar);
    let soa = ProfileEngine::new().kernel(KernelMode::Soa);
    for &s in sources {
        let want = scalar.one_to_all(net, s);
        let got = soa.one_to_all(net, s);
        comparisons += 1;
        if got != want {
            record(&mut mismatches, format!("{name}: SoA kernel != scalar kernel from {s}"));
        }
        for &p in threads {
            let par = ProfileEngine::new().kernel(KernelMode::Soa).threads(p).one_to_all(net, s);
            comparisons += 1;
            if par != want {
                record(
                    &mut mismatches,
                    format!("{name}: parallel SoA kernel (p={p}) != scalar from {s}"),
                );
            }
        }
        for &dep in departures {
            let truth = time_query::earliest_arrivals(net, s, dep);
            for t in net.station_ids() {
                if t == s {
                    continue; // source-profile convention, see ProfileSet::profile
                }
                comparisons += 2;
                let w = truth.arrival_at(t);
                if want.profile(t).eval_arr(dep, period) != w {
                    record(
                        &mut mismatches,
                        format!("{name}: scalar kernel {s} -> {t} at {dep} != time-query"),
                    );
                }
                if got.profile(t).eval_arr(dep, period) != w {
                    record(
                        &mut mismatches,
                        format!("{name}: SoA kernel {s} -> {t} at {dep} != time-query"),
                    );
                }
            }
        }
    }

    // Station-to-station: the SoA s2s kernel (with and without the
    // stopping criterion) against the scalar s2s kernel.
    let s2s_scalar = S2sEngine::new().kernel(KernelMode::Scalar);
    let s2s_soa = S2sEngine::new().kernel(KernelMode::Soa);
    let s2s_nostop = S2sEngine::new().kernel(KernelMode::Soa).stopping_criterion(false);
    let ns = net.num_stations() as u32;
    for (i, &s) in sources.iter().enumerate() {
        let t = StationId((i as u32 * 7 + 1) % ns);
        if s == t {
            continue;
        }
        let want = s2s_scalar.query(net, s, t);
        comparisons += 2;
        if s2s_soa.query(net, s, t).profile != want.profile {
            record(&mut mismatches, format!("{name}: SoA s2s {s} -> {t} != scalar s2s"));
        }
        if s2s_nostop.query(net, s, t).profile != want.profile {
            record(&mut mismatches, format!("{name}: SoA s2s (no stop) {s} -> {t} != scalar"));
        }
    }

    CheckOutcome { network: name.to_string(), sources: sources.len(), comparisons, mismatches }
}

/// A sharded region network **and** the merged monolithic network it was
/// cut from — the ground truth for the cross-shard gateway: a stitched
/// profile must equal, byte for byte, the profile the monolith computes
/// (reduced profiles are canonical per arrival function).
///
/// Built constructively by [`gateway_scenario`]: `borders` physical border
/// stations (same name, same transfer time) are present in **every**
/// shard, each shard adds its own local stations and random within-shard
/// trips, and the monolith carries one copy of each border plus all
/// shards' locals and all trips.
#[derive(Debug, Clone)]
pub struct GatewayScenario {
    /// One region network per shard; borders occupy local ids
    /// `0..borders`, locals follow.
    pub shards: Vec<Network>,
    /// The merged single network.
    pub mono: Network,
    /// Per shard: local station id → monolith station id.
    pub to_mono: Vec<Vec<StationId>>,
    /// Per shard: the monolith [`TrainId`] offset of its first trip (the
    /// monolith replays each shard's trips in shard order).
    pub mono_train_base: Vec<u32>,
}

/// Generates a deterministic random [`GatewayScenario`]: `num_shards`
/// regions sharing `borders` border stations (named `b0..`, 3-minute
/// transfers), each with `locals` region-local stations (`s{shard}_{i}`,
/// 2-minute transfers) and `trips` random trips over 2–4 of its stations.
pub fn gateway_scenario(
    num_shards: usize,
    borders: usize,
    locals: usize,
    trips: usize,
    seed: u64,
) -> GatewayScenario {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    assert!(num_shards >= 2 && borders >= 1, "a gateway scenario needs shards meeting somewhere");
    let period = pt_core::Period::DAY;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6A7E);

    let mut mono_b = TimetableBuilder::new(period);
    for k in 0..borders {
        mono_b.add_named_station(format!("b{k}"), Dur::minutes(3));
    }
    let mut shard_builders = Vec::new();
    let mut to_mono = Vec::new();
    for sh in 0..num_shards {
        let mut b = TimetableBuilder::new(period);
        let mut map = Vec::with_capacity(borders + locals);
        for k in 0..borders {
            b.add_named_station(format!("b{k}"), Dur::minutes(3));
            map.push(StationId(k as u32));
        }
        for i in 0..locals {
            b.add_named_station(format!("s{sh}_{i}"), Dur::minutes(2));
            map.push(mono_b.add_named_station(format!("s{sh}_{i}"), Dur::minutes(2)));
        }
        shard_builders.push(b);
        to_mono.push(map);
    }

    let mut mono_train_base = Vec::with_capacity(num_shards);
    let mut trains = 0u32;
    let per_shard_stations = (borders + locals) as u32;
    for (sh, b) in shard_builders.iter_mut().enumerate() {
        mono_train_base.push(trains);
        for _ in 0..trips {
            let num_stops = rng.gen_range(2..=4usize);
            let mut stops = Vec::with_capacity(num_stops);
            let mut last = u32::MAX;
            for _ in 0..num_stops {
                let s = loop {
                    let s = rng.gen_range(0..per_shard_stations);
                    if s != last {
                        break s;
                    }
                };
                last = s;
                stops.push(StationId(s));
            }
            let start = Time::hm(rng.gen_range(5..22u32), rng.gen_range(0..60u32));
            let legs: Vec<Dur> =
                (1..num_stops).map(|_| Dur::minutes(rng.gen_range(5..40u32))).collect();
            b.add_simple_trip(&stops, start, &legs, Dur::ZERO).expect("generated trip is valid");
            let mono_stops: Vec<StationId> =
                stops.iter().map(|&s| to_mono[sh][s.0 as usize]).collect();
            mono_b
                .add_simple_trip(&mono_stops, start, &legs, Dur::ZERO)
                .expect("mapped trip is valid");
            trains += 1;
        }
    }

    GatewayScenario {
        shards: shard_builders
            .into_iter()
            .map(|b| Network::new(b.build().expect("generated shard timetable is valid")))
            .collect(),
        mono: Network::new(mono_b.build().expect("merged timetable is valid")),
        to_mono,
        mono_train_base,
    }
}

/// Applies the same deterministic random delays to every shard **and** to
/// the monolith (per-train patches are train-local, so disrupting the two
/// representations with mapped events keeps them equivalent). Returns the
/// disrupted copy — the "+delays" input for [`gateway_check`].
pub fn disrupt_scenario(
    sc: &GatewayScenario,
    events_per_shard: usize,
    seed: u64,
) -> GatewayScenario {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(seed ^ 0xD15);
    let mut out = sc.clone();
    for sh in 0..out.shards.len() {
        let trains = out.shards[sh].timetable().num_trains() as u32;
        let events = crate::random_feed(&mut rng, trains, events_per_shard, 60);
        out.shards[sh].apply_feed(&events);
        let mapped: Vec<DelayEvent> =
            events.iter().map(|&e| remap_train(e, sc.mono_train_base[sh])).collect();
        out.mono.apply_feed(&mapped);
    }
    out
}

/// Shifts an event's train id into the monolith's id space.
fn remap_train(e: DelayEvent, base: u32) -> DelayEvent {
    match e {
        DelayEvent::Delay { train, from_hop, delay, recovery } => {
            DelayEvent::Delay { train: TrainId(train.0 + base), from_hop, delay, recovery }
        }
        DelayEvent::Cancel { train } => DelayEvent::Cancel { train: TrainId(train.0 + base) },
    }
}

/// The `--gateway` battery: builds a [`ShardedService`] with a
/// [`BorderSpec::ByName`] gateway over the scenario's shards and holds
/// every sampled **cross-shard** pair's stitched profile byte-equal to the
/// merged monolith's sequential profile — on the scenario as given, and
/// again after each of `feeds` mixed feed rounds applied through
/// [`ShardedService::apply_feed`] (with the mapped events applied to the
/// monolith), so the border-set refresh path is exercised live. Pairs are
/// answered through [`ShardedService::s2s_batch`], covering the batch
/// demux and the all-shards-pinned-up-front cut.
pub fn gateway_check(
    name: &str,
    sc: &GatewayScenario,
    pairs_per_shard_pair: usize,
    feeds: usize,
    events_per_feed: usize,
    seed: u64,
) -> CheckOutcome {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(seed ^ 0x6A7E);
    let svc = ShardedService::builder().gateway(BorderSpec::ByName).build(sc.shards.clone());
    let mut mono = sc.mono.clone();
    let mut comparisons = 0usize;
    let mut mismatches = Vec::new();

    // Sampled cross-shard pairs, fixed for all rounds: every ordered shard
    // pair contributes `pairs_per_shard_pair` random pairs plus, where the
    // sample misses them, border endpoints are naturally included since
    // borders share the local id range.
    let mut pairs: Vec<(StationId, StationId)> = Vec::new();
    let mut mono_pairs: Vec<(StationId, StationId)> = Vec::new();
    for a in 0..sc.shards.len() {
        for b in 0..sc.shards.len() {
            if a == b {
                continue;
            }
            for _ in 0..pairs_per_shard_pair {
                let (s, t) = loop {
                    let s = rng.gen_range(0..sc.to_mono[a].len());
                    let t = rng.gen_range(0..sc.to_mono[b].len());
                    // The same physical border on both sides is the same
                    // mono station — the self-profile convention differs
                    // by design, so resample.
                    if sc.to_mono[a][s] != sc.to_mono[b][t] {
                        break (s, t);
                    }
                };
                pairs.push((
                    svc.global_id(ShardId(a as u32), StationId(s as u32)).expect("sampled local"),
                    svc.global_id(ShardId(b as u32), StationId(t as u32)).expect("sampled local"),
                ));
                mono_pairs.push((sc.to_mono[a][s], sc.to_mono[b][t]));
            }
        }
    }

    let check_round =
        |round: &str, mono: &Network, comparisons: &mut usize, mismatches: &mut Vec<String>| {
            let results = svc.s2s_batch(&pairs);
            for ((routed, &(gs, gt)), &(ms, mt)) in results.iter().zip(&pairs).zip(&mono_pairs) {
                *comparisons += 1;
                let routed = match routed {
                    Ok(r) => r,
                    Err(e) => {
                        record(mismatches, format!("{name}{round}: {gs}->{gt} refused: {e}"));
                        continue;
                    }
                };
                let want = ProfileEngine::new().one_to_all(mono, ms);
                if &routed.value.profile != want.profile(mt) {
                    record(
                        mismatches,
                        format!(
                            "{name}{round}: stitched {gs}->{gt} != monolithic {ms}->{mt} \
                         ({} vs {} points)",
                            routed.value.profile.points().len(),
                            want.profile(mt).points().len()
                        ),
                    );
                }
            }
        };

    check_round("", &mono, &mut comparisons, &mut mismatches);
    for round in 0..feeds {
        let mut svc_events = Vec::with_capacity(events_per_feed);
        let mut mono_events = Vec::with_capacity(events_per_feed);
        for _ in 0..events_per_feed {
            let sh = rng.gen_range(0..sc.shards.len());
            let trains = sc.shards[sh].timetable().num_trains() as u32;
            let event = crate::random_feed(&mut rng, trains, 1, 60)[0];
            svc_events.push((ShardId(sh as u32), event));
            mono_events.push(remap_train(event, sc.mono_train_base[sh]));
        }
        svc.apply_feed(&svc_events).expect("shard ids are in range");
        mono.apply_feed(&mono_events);
        check_round(&format!("+feed{round}"), &mono, &mut comparisons, &mut mismatches);
    }

    CheckOutcome { network: name.to_string(), sources: pairs.len(), comparisons, mismatches }
}

/// Applies `num_delays` deterministic random delays to a copy of `net`
/// through the incremental patch path; returns the patched copy plus
/// (`patched`, `rebuilt`) update counts. Shared by the delay-mode battery
/// and the `--kernel` ablation so both disrupt the network identically.
pub fn apply_random_delays(net: &Network, num_delays: usize, seed: u64) -> (Network, usize, usize) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(seed ^ 0xDE1A);
    let mut patched_net = net.clone();
    let trains = patched_net.timetable().num_trains() as u32;
    let (mut patched, mut rebuilt) = (0usize, 0usize);
    for _ in 0..num_delays {
        let train = TrainId(rng.gen_range(0..trains.max(1)));
        let from_hop = rng.gen_range(0..4u16);
        let delay = Dur::minutes(rng.gen_range(1..90u32));
        let recovery = if rng.gen_range(0..2u8) == 0 {
            Recovery::None
        } else {
            Recovery::CatchUp { per_hop: Dur::minutes(rng.gen_range(1..20u32)) }
        };
        match patched_net.apply_delay(train, from_hop, delay, recovery) {
            DelayUpdate::Unchanged => {}
            DelayUpdate::Patched => patched += 1,
            DelayUpdate::Rebuilt => rebuilt += 1,
        }
    }
    (patched_net, patched, rebuilt)
}

/// Drives `num_feeds` random batched feeds through [`Network::apply_feed`]
/// on a copy of `net`; returns the fed copy and the event count. The
/// lightweight sibling of [`cross_check_after_feed`] for batteries (like
/// the `--kernel` ablation) that only need a feed-disrupted network, not
/// the per-feed table checks.
pub fn apply_random_feeds(
    net: &Network,
    num_feeds: usize,
    events_per_feed: usize,
    seed: u64,
) -> (Network, usize) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(seed ^ 0xFEED);
    let mut fed = net.clone();
    let trains = fed.timetable().num_trains() as u32;
    let mut events = 0usize;
    for _ in 0..num_feeds {
        let feed = crate::random_feed(&mut rng, trains, events_per_feed, 90);
        events += feed.len();
        fed.apply_feed(&feed);
    }
    (fed, events)
}

/// The calendar battery: stripes `net`'s trains across a multi-service
/// [`pt_timetable::ServiceCalendar`] (weekday / weekend /
/// summer-with-holiday-exception /
/// unassigned-daily), materializes several concrete query days through
/// [`pt_timetable::Timetable::for_day`], and checks every day network
/// against *independent* reconstructions:
///
/// * the active-train set is re-derived here with a different weekday
///   algorithm (Sakamoto's congruence, vs the model's civil-days
///   computation) and the activation rules restated inline — a shared bug
///   in the date arithmetic cannot cancel out;
/// * the day timetable's connections must equal a from-scratch
///   [`pt_timetable::Timetable`] built from that independently filtered,
///   re-numbered connection list;
/// * sequential SPCS profiles from every sampled source must agree
///   between the `for_day` network and the independent rebuild, and
///   `time_query::earliest_arrivals` on the day network must match those
///   profiles at every sampled departure;
/// * an *empty* calendar's day must be query-identical to the original
///   network from every sampled source (introducing calendars changes
///   nothing until services are assigned).
pub fn calendar_check(
    name: &str,
    net: &Network,
    sources: &[StationId],
    departures: &[Time],
) -> CheckOutcome {
    use pt_timetable::{Date, ServiceCalendar, ServicePattern, Timetable};

    let tt = net.timetable();
    let num_trains = tt.num_trains();
    let mut comparisons = 0usize;
    let mut mismatches = Vec::new();

    let date = |y, m, d| Date::new(y, m, d).expect("battery dates are valid");
    let year = (date(2026, 1, 1), date(2026, 12, 31));
    let holiday = date(2026, 7, 4);

    let mut cal = ServiceCalendar::new();
    let weekday = cal.add_service(ServicePattern::weekdays(year.0, year.1));
    let weekend = cal.add_service(ServicePattern::weekends(year.0, year.1));
    let summer = cal.add_service(
        ServicePattern::daily(date(2026, 6, 1), date(2026, 8, 31)).with_removed(&[holiday]),
    );
    for t in 0..num_trains as u32 {
        match t % 4 {
            0 => cal.assign(TrainId(t), weekday).expect("service defined"),
            1 => cal.assign(TrainId(t), weekend).expect("service defined"),
            2 => cal.assign(TrainId(t), summer).expect("service defined"),
            _ => {} // unassigned: runs daily
        }
    }

    // Independent activation oracle: Sakamoto's weekday congruence plus the
    // service rules restated from scratch (not via ServicePattern).
    let sakamoto_weekday = |d: Date| -> usize {
        // 0 = Sunday .. 6 = Saturday.
        const T: [i32; 12] = [0, 3, 2, 5, 0, 3, 5, 1, 4, 6, 2, 4];
        let (mut y, m, dd) = (d.year(), d.month() as usize, d.day() as i32);
        if m < 3 {
            y -= 1;
        }
        ((y + y / 4 - y / 100 + y / 400 + T[m - 1] + dd) % 7) as usize
    };
    let oracle_active = |t: u32, d: Date| -> bool {
        let dow = sakamoto_weekday(d);
        let in_year = d >= year.0 && d <= year.1;
        match t % 4 {
            0 => in_year && (1..=5).contains(&dow),
            1 => in_year && (dow == 0 || dow == 6),
            2 => d >= date(2026, 6, 1) && d <= date(2026, 8, 31) && d != holiday,
            _ => true,
        }
    };

    let days = [
        date(2026, 8, 8),   // Saturday, mid-summer
        date(2026, 8, 10),  // Monday
        holiday,            // Saturday removed from the summer service
        date(2025, 12, 29), // Monday before every range opens
    ];
    for day_date in days {
        let day = match tt.for_day(&cal, day_date) {
            Ok(d) => d,
            Err(e) => {
                record(&mut mismatches, format!("{name}: for_day({day_date}) failed: {e}"));
                continue;
            }
        };

        // Structural: equal to the independent filter + dense re-map.
        let mut remap = vec![u32::MAX; num_trains];
        let mut kept = 0u32;
        for t in 0..num_trains as u32 {
            if oracle_active(t, day_date) {
                remap[t as usize] = kept;
                kept += 1;
            }
        }
        let expected_conns: Vec<_> = tt
            .connections()
            .into_iter()
            .filter_map(|mut c| {
                let new = remap[c.train.idx()];
                (new != u32::MAX).then(|| {
                    c.train = TrainId(new);
                    c
                })
            })
            .collect();
        let expected = Timetable::new(tt.period(), tt.stations().to_vec(), expected_conns, kept)
            .expect("filtered subset of a valid timetable is valid");
        comparisons += 1;
        if day.timetable.num_trains() != kept as usize
            || day.timetable.connections() != expected.connections()
        {
            record(
                &mut mismatches,
                format!(
                    "{name}: for_day({day_date}) != independent filter \
                     ({} trains vs {kept}, {} conns vs {})",
                    day.timetable.num_trains(),
                    day.timetable.num_connections(),
                    expected.num_connections()
                ),
            );
            continue;
        }

        // Behavioural: profiles agree between the day network and the
        // rebuild, and time queries agree with the day profiles.
        let day_net = Network::build(&day.timetable);
        let ref_net = Network::build(&expected);
        for &s in sources {
            let from_day = ProfileEngine::new().one_to_all(&day_net, s);
            let from_ref = ProfileEngine::new().one_to_all(&ref_net, s);
            comparisons += 1;
            if from_day != from_ref {
                record(
                    &mut mismatches,
                    format!("{name}: day({day_date}) profiles != rebuilt filter from {s}"),
                );
            }
            for &dep in departures {
                let truth = time_query::earliest_arrivals(&day_net, s, dep);
                comparisons += 1;
                let disagrees = day_net.station_ids().any(|t| {
                    t != s // source-profile convention, see ProfileSet::profile
                        && truth.arrival_at(t) != from_day.profile(t).eval_arr(dep, tt.period())
                });
                if disagrees {
                    record(
                        &mut mismatches,
                        format!(
                            "{name}: day({day_date}) time query from {s} at {dep} \
                             != profile evaluation"
                        ),
                    );
                }
            }
        }
    }

    // An empty calendar must be a no-op: same trains, same answers.
    let empty_day = tt
        .for_day(&ServiceCalendar::new(), date(2026, 8, 8))
        .expect("empty calendar filters nothing");
    comparisons += 1;
    if empty_day.timetable.connections() != tt.connections() {
        record(&mut mismatches, format!("{name}: empty-calendar day dropped connections"));
    }
    let empty_net = Network::build(&empty_day.timetable);
    for &s in sources {
        comparisons += 1;
        if ProfileEngine::new().one_to_all(&empty_net, s) != ProfileEngine::new().one_to_all(net, s)
        {
            record(
                &mut mismatches,
                format!("{name}: empty-calendar day != original network from {s}"),
            );
        }
    }

    CheckOutcome {
        network: format!("{name}+calendar"),
        sources: sources.len(),
        comparisons,
        mismatches,
    }
}

/// The fully dynamic scenario (§5.1): applies `num_delays` deterministic
/// delays to a copy of `net` through the incremental path
/// ([`Network::apply_delay`]), asserts the patched network is
/// query-equivalent to a from-scratch rebuild of its timetable, and then
/// runs the whole [`cross_check`] battery on the patched network — so the
/// dynamic path inherits the zero-mismatch guarantee of the static one.
///
/// Returns the outcome plus the patched network's update counts
/// (`patched`, `rebuilt`) for reporting.
pub fn cross_check_after_delays(
    name: &str,
    net: &Network,
    sources: &[StationId],
    threads: &[usize],
    departures: &[Time],
    num_delays: usize,
    seed: u64,
) -> (CheckOutcome, usize, usize) {
    let (patched_net, patched, rebuilt) = apply_random_delays(net, num_delays, seed);

    let mut outcome = {
        // The patched network must answer exactly like a fresh build of the
        // same (patched) timetable.
        let rebuilt_net = Network::build(patched_net.timetable());
        let mut mismatches = Vec::new();
        let mut comparisons = 0usize;
        for &s in sources {
            comparisons += 1;
            let from_patch = ProfileEngine::new().one_to_all(&patched_net, s);
            let from_rebuild = ProfileEngine::new().one_to_all(&rebuilt_net, s);
            if from_patch != from_rebuild {
                record(
                    &mut mismatches,
                    format!("{name}: patched network != rebuilt network from {s}"),
                );
            }
        }
        CheckOutcome {
            network: format!("{name}+delays"),
            sources: sources.len(),
            comparisons,
            mismatches,
        }
    };

    // The full static battery on the patched network.
    let inner = cross_check(&format!("{name}+delays"), &patched_net, sources, threads, departures);
    outcome.comparisons += inner.comparisons;
    outcome.mismatches.extend(inner.mismatches);
    outcome.mismatches.truncate(MAX_REPORTED);
    (outcome, patched, rebuilt)
}

/// Aggregate counters of one [`cross_check_after_feed`] run.
#[derive(Debug, Default, Clone, Copy)]
pub struct FeedCheckStats {
    /// Feed events applied (over all batches).
    pub events: usize,
    /// Per-event [`DelayUpdate::Patched`] outcomes.
    pub patched: usize,
    /// Per-event [`DelayUpdate::Rebuilt`] outcomes.
    pub rebuilt: usize,
    /// Distance-table rows recomputed by the incremental refreshes.
    pub rows_refreshed: usize,
}

/// The *batched* dynamic scenario: drives `num_feeds` random feeds of
/// `events_per_feed` events each (delays, pile-ups on one train, and
/// cancellations) through [`Network::apply_feed`] on a copy of `net`,
/// checking after **every** feed that
///
/// * the generation moved by exactly one iff the feed changed anything
///   (one cache invalidation per feed, however many events),
/// * the patched network is query-identical to a from-scratch rebuild of
///   its timetable (sampled sources),
/// * the incrementally refreshed [`DistanceTable`] matches a from-scratch
///   build **entry for entry** — every ordered pair of transfer stations,
///
/// and finally runs the whole static [`cross_check`] battery on the fed
/// network plus an [`S2sEngine`] pass over the refreshed table. Any
/// disagreement lands in the outcome's mismatch list.
#[allow(clippy::too_many_arguments)]
pub fn cross_check_after_feed(
    name: &str,
    net: &Network,
    sources: &[StationId],
    threads: &[usize],
    departures: &[Time],
    num_feeds: usize,
    events_per_feed: usize,
    seed: u64,
) -> (CheckOutcome, FeedCheckStats) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(seed ^ 0xFEED);
    let mut fed = net.clone();
    let trains = fed.timetable().num_trains() as u32;
    let mut table = DistanceTable::build(&fed, &TransferSelection::Fraction(0.15));
    let mut stats = FeedCheckStats::default();
    let mut mismatches = Vec::new();
    let mut comparisons = 0usize;

    for feed_no in 0..num_feeds {
        let events = crate::random_feed(&mut rng, trains, events_per_feed, 90);
        let gen_before = fed.generation();
        let summary = fed.apply_feed(&events);
        stats.events += events.len();
        stats.patched += summary.events.iter().filter(|&&u| u == DelayUpdate::Patched).count();
        stats.rebuilt += summary.events.iter().filter(|&&u| u == DelayUpdate::Rebuilt).count();

        comparisons += 1;
        let expected_bump = u64::from(summary.changed());
        if fed.generation() != gen_before + expected_bump {
            record(
                &mut mismatches,
                format!(
                    "{name}: feed {feed_no} of {} events bumped the generation {} times",
                    events.len(),
                    fed.generation() - gen_before
                ),
            );
        }

        // Query-identical to a from-scratch rebuild, from every sampled
        // source.
        let rebuilt_net = Network::build(fed.timetable());
        for &s in sources {
            comparisons += 1;
            if ProfileEngine::new().one_to_all(&fed, s)
                != ProfileEngine::new().one_to_all(&rebuilt_net, s)
            {
                record(
                    &mut mismatches,
                    format!("{name}: fed network != rebuilt network from {s} (feed {feed_no})"),
                );
            }
        }

        // Incremental table refresh vs from-scratch build, entry for entry.
        match table.refresh(&fed) {
            Err(e) => record(&mut mismatches, format!("{name}: refresh failed: {e}")),
            Ok(rows) => {
                stats.rows_refreshed += rows;
                let scratch = DistanceTable::build_for(&fed, table.stations().to_vec());
                for &a in table.stations() {
                    for &b in table.stations() {
                        comparisons += 1;
                        if table.profile(a, b) != scratch.profile(a, b) {
                            record(
                                &mut mismatches,
                                format!(
                                    "{name}: refreshed table D({a}, {b}) != rebuilt \
                                     (feed {feed_no})"
                                ),
                            );
                        }
                    }
                }
            }
        }
    }

    // Table-pruned s2s queries through the refreshed table agree with the
    // sequential one-to-all profiles on the fed network.
    let s2s = S2sEngine::new().with_table(&table);
    let ns = fed.num_stations() as u32;
    for (i, &s) in sources.iter().enumerate() {
        let t = StationId((i as u32 * 11 + 5) % ns);
        if s == t {
            continue;
        }
        comparisons += 1;
        match s2s.try_query(&fed, s, t) {
            Err(e) => record(&mut mismatches, format!("{name}: refreshed table rejected: {e}")),
            Ok(r) => {
                let want = ProfileEngine::new().one_to_all(&fed, s);
                if &r.profile != want.profile(t) {
                    record(
                        &mut mismatches,
                        format!("{name}: s2s over refreshed table {s}->{t} != sequential"),
                    );
                }
            }
        }
    }

    // The full static battery on the fed network.
    let inner = cross_check(&format!("{name}+feed"), &fed, sources, threads, departures);
    comparisons += inner.comparisons;
    mismatches.extend(inner.mismatches);
    mismatches.truncate(MAX_REPORTED);
    let outcome = CheckOutcome {
        network: format!("{name}+feed"),
        sources: sources.len(),
        comparisons,
        mismatches,
    };
    (outcome, stats)
}
