//! Shared harness for regenerating the paper's tables.
//!
//! The binaries (`table1`, `table2`, `ablation`) print rows in the layout
//! of the paper's Tables 1 and 2; this library holds the common pieces:
//! network instantiation, seeded query workloads and formatting.
//!
//! Environment knobs (all optional):
//!
//! * `BC_SCALE` — network scale factor (default `0.5`; `1.0` ≈ one tenth of
//!   the paper's input sizes, see `pt-timetable::synthetic::presets`),
//! * `BC_QUERIES` — queries per configuration (default `15`; the paper uses
//!   1 000 on a 2009 dual Xeon — scale up when you have the hours),
//! * `BC_LC_QUERIES` — queries for the label-correcting baseline (default
//!   `3`; LC is an order of magnitude slower, the paper's point),
//! * `BC_THREADS` — comma-separated thread counts (default `1,2,4,8`),
//! * `BC_NETWORKS` — comma-separated substring filter on network names,
//! * `BC_SEED` — workload seed (default `2010`).

pub mod conncheck;
pub mod report;

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pt_core::{Dur, StationId, TrainId};
use pt_timetable::synthetic::presets::{self, Preset};
use pt_timetable::{DelayEvent, Recovery};

/// Benchmark configuration resolved from the environment.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    pub scale: f64,
    pub queries: usize,
    pub lc_queries: usize,
    pub threads: Vec<usize>,
    pub networks: Option<Vec<String>>,
    pub seed: u64,
}

/// Reads and parses one `BC_*` environment knob, falling back to `default`
/// when the variable is unset or unparsable. Every scalar knob — in this
/// library *and* in the binaries (`BC_TP_THREADS`, `BC_S2S_THREADS`, …) —
/// goes through here; don't hand-roll `std::env::var` parsing per binary.
pub fn env_parse<T: std::str::FromStr>(key: &str, default: T) -> T {
    parse_scalar(std::env::var(key).ok(), default)
}

/// Reads a comma-separated `BC_*` list knob (`BC_THREADS=1,2,4`),
/// trimming each element; `None` when the variable is unset. The
/// list-shaped sibling of [`env_parse`].
///
/// # Panics
///
/// On any unparsable element, naming the knob and the offending token. A
/// silently dropped element would run the bench with a *different*
/// configuration than the one asked for — and the baseline gate compares
/// runs by configuration, so a typo must stop the run, not skew it.
pub fn env_list<T: std::str::FromStr>(key: &str) -> Option<Vec<T>> {
    parse_list(key, std::env::var(key).ok())
}

/// Pure parsing seam behind [`env_parse`], testable without touching the
/// process environment (`set_var` is unsound under the parallel test
/// harness).
fn parse_scalar<T: std::str::FromStr>(raw: Option<String>, default: T) -> T {
    raw.and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Pure parsing seam behind [`env_list`]; fails fast on bad elements.
fn parse_list<T: std::str::FromStr>(key: &str, raw: Option<String>) -> Option<Vec<T>> {
    raw.map(|v| {
        v.split(',')
            .map(|t| {
                let t = t.trim();
                t.parse().unwrap_or_else(|_| {
                    panic!("{key}: cannot parse list element {t:?} (full value {v:?})")
                })
            })
            .collect()
    })
}

impl BenchConfig {
    /// Reads the `BC_*` environment variables.
    pub fn from_env() -> Self {
        let threads = env_list("BC_THREADS").unwrap_or_else(|| vec![1, 2, 4, 8]);
        let networks = env_list::<String>("BC_NETWORKS")
            .map(|v| v.into_iter().map(|s| s.to_lowercase()).collect());
        BenchConfig {
            scale: env_parse("BC_SCALE", 0.5),
            queries: env_parse("BC_QUERIES", 15),
            lc_queries: env_parse("BC_LC_QUERIES", 3),
            threads,
            networks,
            seed: env_parse("BC_SEED", 2010),
        }
    }

    /// Instantiates the five evaluation networks, filtered by
    /// `BC_NETWORKS`.
    pub fn networks(&self) -> Vec<Preset> {
        presets::all_presets(self.scale).into_iter().filter(|p| self.matches(p.name)).collect()
    }

    /// `true` iff the `BC_NETWORKS` filter admits a network of this name
    /// (always true without a filter). Lets benches that instantiate extra
    /// presets outside [`BenchConfig::networks`] — e.g. `throughput`'s
    /// large Metro network — honor the same filter.
    pub fn matches(&self, name: &str) -> bool {
        match &self.networks {
            None => true,
            Some(filter) => {
                let name = name.to_lowercase();
                filter.iter().any(|f| name.contains(f))
            }
        }
    }
}

/// `count` random stations (with repetition), deterministic in `seed`.
pub fn random_stations(num_stations: usize, count: usize, seed: u64) -> Vec<StationId> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| StationId(rng.gen_range(0..num_stations as u32))).collect()
}

/// `count` random ordered station pairs with distinct endpoints.
pub fn random_pairs(num_stations: usize, count: usize, seed: u64) -> Vec<(StationId, StationId)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5A5A);
    (0..count)
        .map(|_| loop {
            let s = rng.gen_range(0..num_stations as u32);
            let t = rng.gen_range(0..num_stations as u32);
            if s != t {
                return (StationId(s), StationId(t));
            }
        })
        .collect()
}

/// A deterministic batch of feed events — the mix of a live GTFS-RT-style
/// stream: mostly delays (half with catch-up recovery, up to
/// `max_delay_min` minutes, from a random hop), one in four a
/// cancellation. Shared by conncheck's feed mode and the `throughput`
/// feed phase so the workload shape cannot diverge between them.
pub fn random_feed(
    rng: &mut StdRng,
    num_trains: u32,
    len: usize,
    max_delay_min: u32,
) -> Vec<DelayEvent> {
    (0..len)
        .map(|_| {
            let train = TrainId(rng.gen_range(0..num_trains.max(1)));
            if rng.gen_range(0..4u8) == 0 {
                DelayEvent::Cancel { train }
            } else {
                let recovery = if rng.gen_range(0..2u8) == 0 {
                    Recovery::None
                } else {
                    Recovery::CatchUp { per_hop: Dur::minutes(rng.gen_range(1..20u32)) }
                };
                DelayEvent::Delay {
                    train,
                    from_hop: rng.gen_range(0..4u16),
                    delay: Dur::minutes(rng.gen_range(1..max_delay_min.max(2))),
                    recovery,
                }
            }
        })
        .collect()
}

/// Milliseconds with one decimal.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// `m:ss` like the paper's preprocessing-time column.
pub fn fmt_mmss(d: Duration) -> String {
    let s = d.as_secs();
    format!("{}:{:02}", s / 60, s % 60)
}

/// Mean over query repetitions.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic() {
        assert_eq!(random_stations(50, 10, 7), random_stations(50, 10, 7));
        assert_eq!(random_pairs(50, 10, 7), random_pairs(50, 10, 7));
        assert!(random_pairs(50, 100, 3).iter().all(|(s, t)| s != t));
    }

    #[test]
    fn config_defaults_are_sane() {
        let cfg = BenchConfig::from_env();
        assert!(cfg.scale > 0.0);
        assert!(!cfg.threads.is_empty());
    }

    #[test]
    fn env_helpers_fall_back_and_parse_lists() {
        // The public fns read unset probe names (no set_var: mutating the
        // environment races the parallel test harness); the parsing goes
        // through the pure seams.
        assert_eq!(env_parse("BC_TEST_UNSET_SCALAR", 7usize), 7);
        assert_eq!(env_list::<usize>("BC_TEST_UNSET_LIST"), None);
        assert_eq!(parse_scalar(Some("42".into()), 0usize), 42);
        assert_eq!(parse_scalar(Some("junk".into()), 3usize), 3);
        assert_eq!(parse_list::<usize>("BC_THREADS", Some(" 1, 2 ,4".into())), Some(vec![1, 2, 4]));
        assert_eq!(parse_list::<usize>("BC_THREADS", None), None);
        assert_eq!(
            parse_list::<String>("BC_NETWORKS", Some("oahu, metro".into())),
            Some(vec!["oahu".to_string(), "metro".to_string()])
        );
    }

    #[test]
    #[should_panic(expected = "BC_THREADS: cannot parse list element \"junk\"")]
    fn a_bad_list_element_fails_fast_naming_knob_and_token() {
        parse_list::<usize>("BC_THREADS", Some(" 1, 2 ,4,junk".into()));
    }

    #[test]
    #[should_panic(expected = "BC_TP_THREADS: cannot parse list element \"\"")]
    fn an_empty_list_element_is_rejected_too() {
        // `BC_TP_THREADS=1,,4` asks for something; silently running `1,4`
        // would gate against the wrong baseline configuration.
        parse_list::<usize>("BC_TP_THREADS", Some("1,,4".into()));
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_mmss(Duration::from_secs(83)), "1:23");
        assert_eq!(ms(Duration::from_millis(2)), 2.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
