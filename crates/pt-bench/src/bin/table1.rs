//! Regenerates **Table 1** of the paper: one-to-all profile queries with
//! the parallel self-pruning connection-setting algorithm (CS) on 1, 2, 4
//! and 8 cores, compared to the label-correcting approach (LC).
//!
//! For every network, random source stations are drawn and the mean number
//! of settled queue elements (summed over cores), the mean query time and
//! the speed-up over the single-core run are reported — the paper's exact
//! columns.
//!
//! ```text
//! cargo run --release -p pt-bench --bin table1
//! ```

use std::time::Instant;

use pt_bench::{mean, ms, random_stations, BenchConfig};
use pt_spcs::{label_correcting, Network, ProfileEngine};

fn main() {
    let cfg = BenchConfig::from_env();
    println!("# Table 1 — one-to-all profile queries (CS on p cores vs. LC)");
    println!(
        "# scale={} queries={} lc_queries={} seed={} (host: {} cpus)",
        cfg.scale,
        cfg.queries,
        cfg.lc_queries,
        cfg.seed,
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    );
    println!();

    for preset in cfg.networks() {
        let stats = preset.timetable.stats();
        let build = Instant::now();
        let net = Network::new(preset.timetable);
        println!(
            "## {}  ({} stations, {} conns, {:.0} conns/station; graph built in {:.1}s)",
            preset.name,
            stats.stations,
            stats.connections,
            stats.conns_per_station,
            build.elapsed().as_secs_f64()
        );
        println!(
            "{:<6} {:>6} {:>16} {:>12} {:>8}",
            "algo", "p", "settled conns", "time [ms]", "spd-up"
        );

        let sources = random_stations(net.num_stations(), cfg.queries, cfg.seed);
        let mut base_ms = 0.0;
        for &p in &cfg.threads {
            // One persistent engine per configuration: workspaces and the
            // worker pool are reused across the whole query stream.
            let engine = ProfileEngine::new().threads(p);
            let mut settled = Vec::new();
            let mut times = Vec::new();
            for &s in &sources {
                let t0 = Instant::now();
                let res = engine.one_to_all_with_stats(&net, s);
                times.push(ms(t0.elapsed()));
                settled.push(res.stats.settled as f64);
            }
            let t = mean(&times);
            if p == 1 {
                base_ms = t;
            }
            println!(
                "{:<6} {:>6} {:>16.0} {:>12.1} {:>8.1}",
                "CS",
                p,
                mean(&settled),
                t,
                if t > 0.0 { base_ms / t } else { 0.0 }
            );
        }

        // Label-correcting baseline (single core, as in the paper).
        let lc_sources = &sources[..cfg.lc_queries.min(sources.len())];
        let mut settled = Vec::new();
        let mut times = Vec::new();
        for &s in lc_sources {
            let t0 = Instant::now();
            let res = label_correcting::profile_search(&net, s);
            times.push(ms(t0.elapsed()));
            settled.push(res.stats.settled as f64);
        }
        println!("{:<6} {:>6} {:>16.0} {:>12.1} {:>8}", "LC", 1, mean(&settled), mean(&times), "—");
        println!();
    }
}
