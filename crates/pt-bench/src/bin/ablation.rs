//! Ablations backing the paper's design discussions.
//!
//! ```text
//! cargo run --release -p pt-bench --bin ablation -- partition
//! cargo run --release -p pt-bench --bin ablation -- self-pruning
//! cargo run --release -p pt-bench --bin ablation -- stopping
//! ```
//!
//! * `partition` — §3.2's choice of partition: balance (class sizes and
//!   per-thread settled counts) and query time of equal time-slots vs.
//!   equal connections vs. k-means.
//! * `self-pruning` — §3.1's claim: settled elements and query time with
//!   self-pruning on/off.
//! * `stopping` — §4's stopping criterion: station-to-station query time
//!   with/without (the paper reports ≈ 20 % acceleration).

use std::time::Instant;

use pt_bench::{mean, ms, random_pairs, random_stations, BenchConfig};
use pt_spcs::{Network, ProfileEngine, S2sEngine};

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "partition".to_string());
    let cfg = BenchConfig::from_env();
    match mode.as_str() {
        "partition" => partition(&cfg),
        "self-pruning" => self_pruning(&cfg),
        "stopping" => stopping(&cfg),
        other => {
            eprintln!("unknown ablation `{other}`; use partition | self-pruning | stopping");
            std::process::exit(2);
        }
    }
}

fn partition(cfg: &BenchConfig) {
    println!("# Ablation — conn(S) partition strategies (§3.2), p = 4");
    let strategies = pt_bench::conncheck::STRATEGIES;
    for preset in cfg.networks() {
        let net = Network::new(preset.timetable);
        let sources = random_stations(net.num_stations(), cfg.queries, cfg.seed);
        println!("\n## {}", preset.name);
        println!(
            "{:<12} {:>12} {:>18} {:>12}",
            "strategy", "time [ms]", "imbalance(settled)", "settled"
        );
        for (name, strat) in strategies {
            let engine = ProfileEngine::new().threads(4).strategy(strat);
            let mut times = Vec::new();
            let mut settled = Vec::new();
            let mut imb = Vec::new();
            for &s in &sources {
                let t0 = Instant::now();
                let r = engine.one_to_all_with_stats(&net, s);
                times.push(ms(t0.elapsed()));
                settled.push(r.stats.settled as f64);
                let max = r.thread_settled.iter().max().copied().unwrap_or(0) as f64;
                let avg = r.stats.settled as f64 / r.thread_settled.len() as f64;
                imb.push(if avg > 0.0 { max / avg } else { 1.0 });
            }
            println!(
                "{:<12} {:>12.1} {:>18.2} {:>12.0}",
                name,
                mean(&times),
                mean(&imb),
                mean(&settled)
            );
        }
    }
}

fn self_pruning(cfg: &BenchConfig) {
    println!("# Ablation — self-pruning (§3.1), single thread");
    for preset in cfg.networks() {
        let net = Network::new(preset.timetable);
        let sources = random_stations(net.num_stations(), cfg.queries, cfg.seed);
        println!("\n## {}", preset.name);
        println!("{:<10} {:>14} {:>12}", "pruning", "settled conns", "time [ms]");
        for on in [true, false] {
            let engine = ProfileEngine::new().self_pruning(on);
            let mut times = Vec::new();
            let mut settled = Vec::new();
            for &s in &sources {
                let t0 = Instant::now();
                let r = engine.one_to_all_with_stats(&net, s);
                times.push(ms(t0.elapsed()));
                settled.push(r.stats.settled as f64);
            }
            println!(
                "{:<10} {:>14.0} {:>12.1}",
                if on { "on" } else { "off" },
                mean(&settled),
                mean(&times)
            );
        }
    }
}

fn stopping(cfg: &BenchConfig) {
    println!("# Ablation — stopping criterion (§4, Thm 2), station-to-station, p = 8");
    for preset in cfg.networks() {
        let net = Network::new(preset.timetable);
        let pairs = random_pairs(net.num_stations(), cfg.queries, cfg.seed);
        println!("\n## {}", preset.name);
        println!("{:<10} {:>14} {:>12}", "stopping", "settled conns", "time [ms]");
        for on in [true, false] {
            let engine = S2sEngine::new().threads(8).stopping_criterion(on);
            let mut times = Vec::new();
            let mut settled = Vec::new();
            for &(s, t) in &pairs {
                let t0 = Instant::now();
                let r = engine.query(&net, s, t);
                times.push(ms(t0.elapsed()));
                settled.push(r.stats.settled as f64);
            }
            println!(
                "{:<10} {:>14.0} {:>12.1}",
                if on { "on" } else { "off" },
                mean(&settled),
                mean(&times)
            );
        }
    }
}
