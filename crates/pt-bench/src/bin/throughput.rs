//! Sustained query throughput: the engine-as-a-service benchmark.
//!
//! The paper's tables measure single-query latency; the ROADMAP's north
//! star is a long-lived engine under heavy query traffic. This binary
//! measures sustained queries/sec for one-to-all and station-to-station
//! workloads in three execution models:
//!
//! * **cold** — a fresh engine per query (full per-query label-array
//!   allocation): the seed behaviour,
//! * **warm** — one persistent engine, queries answered one at a time with
//!   within-query parallelism on reused workspaces,
//! * **batch** — the two-level driver ([`ProfileEngine::many_to_all`] /
//!   [`S2sEngine::batch`]): whole queries distributed across the pool,
//! * **cached** — the warm engine behind the generation-keyed LRU
//!   ([`ProfileEngine::with_cache`]): a replayed workload is answered
//!   entirely from cache; the hit rate is reported in the JSON,
//! * **feed** — the live-update phase: batches of GTFS-RT-style
//!   `DelayEvent`s (delays + cancellations) through
//!   [`Network::apply_feed`], reporting events/sec, repatch-vs-rebuild
//!   route counts, and the cache hit rate of a workload replayed across
//!   the feeds (each feed costs exactly one invalidation),
//! * **publish** — the copy-on-write snapshot cost: single-train-delay
//!   feeds through a [`ConcurrentNetwork`] with a small distance table,
//!   reporting per-publish p50/p99 ns, the copied-vs-shared bucket /
//!   route / table-row counts, and the speedup over the pre-CoW
//!   behaviour (a full deep clone of network + table per publish),
//! * **shard** — the multi-network serving phase: every preset becomes a
//!   shard of one [`ShardedService`] (padded with staggered copies up to
//!   three shards when a `BC_NETWORKS` filter leaves fewer), a mixed
//!   global-id workload is demultiplexed through `many_to_all` (aggregate
//!   queries/sec, per-shard balance, striped-cache hit rate on a replay)
//!   and a shard-tagged event stream through the router's `apply_feed`
//!   (aggregate events/sec, at most one generation bump per shard per
//!   feed),
//! * **gateway** — the cross-shard stitching phase: a generated
//!   three-region scenario sharing border stations is served through a
//!   gateway-enabled [`ShardedService`]; sampled cross-shard pairs are
//!   answered by stitching source→border ⊕ border→target profiles and
//!   timed against the merged monolithic network answering the mapped
//!   pairs directly (the stitch-overhead ratio is the honest price of
//!   the cut), then a mixed live feed proves the border tables refresh
//!   only touched rows — and at least one,
//! * **concurrent** — the snapshot-isolation phase: `BC_CONC_CLIENTS`
//!   client threads (default 4) hammer one shared `&self`
//!   [`ShardedService`] while a writer thread streams live feeds through
//!   it; reports aggregate queries/sec against a single-thread reference
//!   on the same service (speedup > 1 proves the concurrent serving core
//!   scales), plus the feed events applied and snapshots published
//!   mid-flight. Engines run single-threaded here so all parallelism
//!   comes from the client threads,
//! * **replay** — the ingestion phase: one recorded feed day (CSV and
//!   JSON wire lines alternating) streamed through a fresh
//!   [`ShardedService`] by the pt-feed `FeedDriver` — decode, roster
//!   validation, bounded-queue batching, `apply_feed` per touched shard —
//!   reporting end-to-end events/sec and asserting zero quarantine on the
//!   clean recorded day.
//!
//! Results are printed and written to `BENCH_spcs.json` (override with
//! `BC_JSON_OUT`) so the perf trajectory is tracked across PRs: per-query
//! median ns, queries/sec, thread balance, and workspace growth counters
//! proving the hot path does not allocate. `ci/check_bench.py` validates
//! the document and gates regressions against `BENCH_baseline.json`.
//!
//! ```text
//! cargo run --release -p pt-bench --bin throughput
//! ```
//!
//! Knobs: the usual `BC_*` set plus `BC_TP_THREADS` (worker count,
//! default `min(8, cpus)`).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pt_bench::conncheck::gateway_scenario;
use pt_bench::report::{balance, json_out_path, median, percentile, write_json, Json};
use pt_bench::{env_parse, random_feed, random_pairs, random_stations, BenchConfig};
use pt_core::{Dur, StationId, Time, TrainId};
use pt_feed::{encode_csv, encode_json, FeedDriver, FeedDriverConfig, RecordedFeed, WireEvent};
use pt_spcs::{
    BorderSpec, ConcurrentNetwork, KernelMode, Network, ProfileEngine, QueryStats, S2sEngine,
    ShardId, ShardedService, TransferSelection,
};
use pt_timetable::synthetic::presets;
use pt_timetable::{DelayEvent, Recovery};

fn main() {
    let cfg = BenchConfig::from_env();
    let queries = cfg.queries.max(1); // a throughput run needs at least one query
    let cpus = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let threads: usize = env_parse("BC_TP_THREADS", cpus.min(8));
    // Kernel for the cold/warm/batch/cached phases; the dedicated kernel
    // phase below always measures Scalar and Soa explicitly.
    let kernel: KernelMode = env_parse("BC_KERNEL", KernelMode::Auto);

    println!("# Throughput — sustained queries/sec, cold vs warm vs batch");
    println!(
        "# scale={} queries={queries} threads={} kernel={kernel} seed={} (host: {cpus} cpus)",
        cfg.scale, threads, cfg.seed
    );
    println!();

    // The five paper networks plus the large Metro preset — the ≥200-station
    // input (at the CI scale 0.05) whose slot counts put the SoA kernels in
    // their intended regime.
    let mut presets = cfg.networks();
    if cfg.matches("Metro") {
        presets.push(presets::metro_like(cfg.scale));
    }

    let mut networks_json = Vec::new();
    for preset in presets {
        let stats = preset.timetable.stats();
        let mut net = Network::new(preset.timetable);
        println!("## {}  ({} stations, {} conns)", preset.name, stats.stations, stats.connections);

        let sources = random_stations(net.num_stations(), queries, cfg.seed);
        let pairs = random_pairs(net.num_stations(), queries, cfg.seed);

        // --- one-to-all ---------------------------------------------------
        // Cold: a fresh engine (and pool) per query — the seed behaviour.
        let mut cold_ns = Vec::new();
        for &s in &sources {
            let t0 = Instant::now();
            let _ = ProfileEngine::new().threads(threads).kernel(kernel).one_to_all(&net, s);
            cold_ns.push(t0.elapsed().as_nanos() as f64);
        }

        // Warm: one persistent engine, within-query parallelism.
        let engine = ProfileEngine::new().threads(threads).kernel(kernel);
        let _ = engine.one_to_all(&net, sources[0]); // warm-up: size the workspaces
        let grows_before = engine.workspace_grow_events();
        let mut warm_ns = Vec::new();
        let mut thread_settled = Vec::new();
        for &s in &sources {
            let t0 = Instant::now();
            let r = engine.one_to_all_with_stats(&net, s);
            warm_ns.push(t0.elapsed().as_nanos() as f64);
            thread_settled = r.thread_settled;
        }
        let warm_growth = engine.workspace_grow_events() - grows_before;

        // Batch: across-query parallelism over the same pool.
        let t0 = Instant::now();
        let batch_results = engine.many_to_all(&net, &sources);
        let batch_total_ns = t0.elapsed().as_nanos() as f64;
        assert_eq!(batch_results.len(), sources.len());

        // Cached: the generation-keyed LRU in front of the warm engine. The
        // first pass fills the cache (misses, full searches); the timed
        // second pass replays the identical workload and must be all hits —
        // the repeated-source regime of real query traffic.
        let cached_engine =
            ProfileEngine::new().threads(threads).kernel(kernel).with_cache(sources.len().max(1));
        for &s in &sources {
            let _ = cached_engine.one_to_all(&net, s);
        }
        let t0 = Instant::now();
        for &s in &sources {
            let _ = cached_engine.one_to_all(&net, s);
        }
        let cached_total_ns = t0.elapsed().as_nanos() as f64;
        let cache = cached_engine.cache_stats().expect("cache enabled");
        assert!(cache.hits >= sources.len() as u64, "warm replay must hit");

        let n = sources.len() as f64;
        let qps = |total_ns: f64| if total_ns > 0.0 { n / (total_ns * 1e-9) } else { 0.0 };
        let cold_total: f64 = cold_ns.iter().sum();
        let warm_total: f64 = warm_ns.iter().sum();
        let batch_speedup = if batch_total_ns > 0.0 { cold_total / batch_total_ns } else { 0.0 };

        println!("one-to-all ({} queries, p={threads}):", sources.len());
        println!("  {:<10} {:>14} {:>12}", "mode", "median [ms]", "queries/s");
        println!("  {:<10} {:>14.2} {:>12.1}", "cold", median(&cold_ns) / 1e6, qps(cold_total));
        println!("  {:<10} {:>14.2} {:>12.1}", "warm", median(&warm_ns) / 1e6, qps(warm_total));
        println!(
            "  {:<10} {:>14.2} {:>12.1}   ({batch_speedup:.1}x vs cold)",
            "batch",
            batch_total_ns / n / 1e6,
            qps(batch_total_ns)
        );
        println!(
            "  {:<10} {:>14.2} {:>12.1}   (hit rate {:.0}%, {} hits / {} misses)",
            "cached",
            cached_total_ns / n / 1e6,
            qps(cached_total_ns),
            cache.hit_rate() * 100.0,
            cache.hits,
            cache.misses
        );
        println!(
            "  thread balance (max/avg settled): {:.2}; warm-path workspace growth: {warm_growth}",
            balance(&thread_settled)
        );

        // --- station-to-station -------------------------------------------
        let mut s2s_cold_ns = Vec::new();
        for &(s, t) in &pairs {
            let t0 = Instant::now();
            let _ = S2sEngine::new().threads(threads).kernel(kernel).query(&net, s, t);
            s2s_cold_ns.push(t0.elapsed().as_nanos() as f64);
        }
        let s2s_engine = S2sEngine::new().threads(threads).kernel(kernel);
        let t0 = Instant::now();
        let s2s_batch = s2s_engine.batch(&net, &pairs);
        let s2s_batch_ns = t0.elapsed().as_nanos() as f64;
        assert_eq!(s2s_batch.len(), pairs.len());
        let s2s_cold_total: f64 = s2s_cold_ns.iter().sum();
        println!("s2s ({} queries, p={threads}):", pairs.len());
        println!(
            "  cold {:.1} q/s, batch {:.1} q/s ({:.1}x)",
            qps(s2s_cold_total),
            qps(s2s_batch_ns),
            if s2s_batch_ns > 0.0 { s2s_cold_total / s2s_batch_ns } else { 0.0 }
        );

        // --- kernel ablation (scalar heap vs SoA bucket ring) -------------
        // Both kernels answer the identical warm one-to-all workload on one
        // persistent engine each, with the first result pair cross-checked
        // so the A/B can never silently compare different answers. Runs
        // before the feed phase (which mutates the network).
        let mut kernel_qps = [0.0f64; 2];
        let mut kernel_merge = [0u64; 2];
        let mut soa_stats = QueryStats::default();
        let mut reference = None;
        for (slot, mode) in [KernelMode::Scalar, KernelMode::Soa].into_iter().enumerate() {
            let eng = ProfileEngine::new().threads(threads).kernel(mode);
            let first = eng.one_to_all(&net, sources[0]); // warm-up: size the workspaces
            match &reference {
                None => reference = Some(first),
                Some(want) => assert_eq!(&first, want, "kernel results diverge"),
            }
            let mut stats = QueryStats::default();
            let t0 = Instant::now();
            for &s in &sources {
                stats += eng.one_to_all_with_stats(&net, s).stats;
            }
            let total = t0.elapsed().as_nanos() as f64;
            kernel_qps[slot] = qps(total);
            kernel_merge[slot] = stats.merge_ns;
            if slot == 1 {
                soa_stats = stats;
            }
        }
        let soa_speedup = if kernel_qps[0] > 0.0 { kernel_qps[1] / kernel_qps[0] } else { 0.0 };
        let merge_ratio =
            if kernel_merge[0] > 0 { kernel_merge[1] as f64 / kernel_merge[0] as f64 } else { 0.0 };
        println!("kernel ({} queries, p={threads}):", sources.len());
        println!(
            "  scalar {:.1} q/s (merge {:.2} ms), soa {:.1} q/s (merge {:.2} ms) — \
             {soa_speedup:.2}x qps, {merge_ratio:.2}x merge",
            kernel_qps[0],
            kernel_merge[0] as f64 / 1e6,
            kernel_qps[1],
            kernel_merge[1] as f64 / 1e6,
        );
        println!(
            "  soa counters: {} bucket phases, {} lane chunks, {} masked prunes",
            soa_stats.bucket_phases, soa_stats.lane_chunks, soa_stats.masked_prunes
        );

        // --- live feed (runs last: it mutates the network) ----------------
        // Batches of 100 GTFS-RT-style events through apply_feed: one
        // generation bump and at most one repatch per touched route per
        // batch, however many events pile onto a route.
        let num_feeds = 5usize;
        let events_per_feed = 100usize;
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xF00D);
        let num_trains = net.timetable().num_trains() as u32;
        let (mut touched, mut repatched, mut refit, mut bumps) = (0usize, 0usize, 0usize, 0u64);
        let mut feed_ns = 0f64;
        for _ in 0..num_feeds {
            let events = random_feed(&mut rng, num_trains, events_per_feed, 60);
            let gen_before = net.generation();
            let t0 = Instant::now();
            let summary = net.apply_feed(&events);
            feed_ns += t0.elapsed().as_nanos() as f64;
            touched += summary.touched_routes;
            repatched += summary.repatched_routes;
            refit += summary.refit_routes;
            bumps += net.generation() - gen_before;
        }
        let total_events = (num_feeds * events_per_feed) as f64;
        let events_per_sec = if feed_ns > 0.0 { total_events / (feed_ns * 1e-9) } else { 0.0 };
        // One bump per feed that changed anything, never one per event (a
        // feed whose events all net out legally costs zero).
        assert!(bumps >= 1 && bumps as usize <= num_feeds, "{bumps} bumps for {num_feeds} feeds");

        // Post-feed cache behaviour: the fed network is a new generation,
        // so one replay refills the cache (misses) and the next is all
        // hits — the whole feed cost a single invalidation.
        let pre = cached_engine.cache_stats().expect("cache enabled");
        for _ in 0..2 {
            for &s in &sources {
                let _ = cached_engine.one_to_all(&net, s);
            }
        }
        let post = cached_engine.cache_stats().expect("cache enabled");
        let (dh, dm) = (post.hits - pre.hits, post.misses - pre.misses);
        let post_feed_hit_rate = if dh + dm > 0 { dh as f64 / (dh + dm) as f64 } else { 0.0 };

        println!("feed ({num_feeds} feeds x {events_per_feed} events):");
        println!(
            "  {events_per_sec:.0} events/s; routes: {touched} touched, {repatched} repatched, \
             {refit} refit; post-feed cache hit rate {:.0}%",
            post_feed_hit_rate * 100.0
        );

        // --- publish (copy-on-write snapshot cost) ------------------------
        // Single-train-delay feeds through a ConcurrentNetwork with a small
        // distance table: per publish, what got copied vs what stayed
        // `Arc`-shared with the previous snapshot, and the p50/p99 cost of
        // building + swapping in the snapshot. The reference is the pre-CoW
        // behaviour — a full deep clone of network and table per publish.
        let publish_rounds = 8usize;
        let cnet = ConcurrentNetwork::with_table(net.clone(), &TransferSelection::Fraction(0.1));
        let mut prev = cnet.snapshot();
        let stations_n = prev.num_stations();
        let table_rows = prev.table().map(|t| t.len()).unwrap_or(0);
        let mut publish_ns: Vec<f64> = Vec::new();
        let (mut buckets_shared, mut buckets_copied) = (0usize, 0usize);
        let (mut routes_shared, mut routes_copied) = (0usize, 0usize);
        let (mut rows_shared, mut rows_copied) = (0usize, 0usize);
        let mut tried = 0u32;
        while publish_ns.len() < publish_rounds && tried < publish_rounds as u32 * 4 {
            let ev = DelayEvent::Delay {
                train: TrainId(tried * 3 % num_trains.max(1)),
                from_hop: 0,
                delay: Dur::minutes(3 + tried % 9),
                recovery: Recovery::None,
            };
            tried += 1;
            let outcome = cnet.apply_feed(&[ev]);
            if !outcome.summary.changed() {
                continue;
            }
            let snap = outcome.published.clone().expect("changed feeds publish");
            publish_ns.push(outcome.publish_ns as f64);
            let sb = snap.timetable().shared_buckets_with(prev.timetable());
            buckets_shared += sb;
            buckets_copied += stations_n - sb;
            let sr = snap.routes().shared_routes_with(prev.routes());
            routes_shared += sr;
            routes_copied += snap.routes().len().saturating_sub(sr);
            if let (Some(new), Some(old)) = (snap.shared_table(), prev.shared_table()) {
                let shared = new.shared_rows_with(&old);
                rows_shared += shared;
                rows_copied += new.len() - shared;
            }
            prev = snap;
        }
        assert!(!publish_ns.is_empty(), "single-train delays must publish");

        // Pre-CoW reference: every publish deep-cloned the whole network
        // and table, and deep-dropped the snapshot it displaced. Time a
        // clone + drop cycle (the CoW p50 likewise includes dropping the
        // displaced snapshot inside the slot swap); median of 3 rounds.
        let snap = cnet.snapshot();
        let mut full_rounds: Vec<f64> = Vec::new();
        for _ in 0..3 {
            let t0 = Instant::now();
            let full_net = snap.network().deep_clone_same_epoch();
            let full_table = snap.table().map(|t| t.deep_clone());
            drop(std::hint::black_box((full_net, full_table)));
            full_rounds.push(t0.elapsed().as_nanos() as f64);
        }
        let full_clone_ns = median(&full_rounds);

        let publish_p50 = median(&publish_ns);
        let publish_p99 = percentile(&publish_ns, 99.0);
        let publish_speedup = if publish_p50 > 0.0 { full_clone_ns / publish_p50 } else { 0.0 };
        println!("publish ({} single-train publishes, {table_rows} table rows):", publish_ns.len());
        println!(
            "  p50 {:.1} us, p99 {:.1} us vs full clone {:.1} us ({publish_speedup:.1}x); \
             copied/shared per publish: buckets {buckets_copied}/{buckets_shared}, \
             routes {routes_copied}/{routes_shared}, rows {rows_copied}/{rows_shared}",
            publish_p50 / 1e3,
            publish_p99 / 1e3,
            full_clone_ns / 1e3,
        );
        println!();

        networks_json.push(Json::obj([
            ("name", Json::from(preset.name)),
            ("stations", Json::from(stats.stations)),
            ("connections", Json::from(stats.connections)),
            (
                "one_to_all",
                Json::obj([
                    ("queries", Json::from(sources.len())),
                    ("threads", Json::from(threads)),
                    (
                        "cold",
                        Json::obj([
                            ("median_ns", Json::from(median(&cold_ns) as u64)),
                            ("qps", Json::from(qps(cold_total))),
                        ]),
                    ),
                    (
                        "warm",
                        Json::obj([
                            ("median_ns", Json::from(median(&warm_ns) as u64)),
                            ("qps", Json::from(qps(warm_total))),
                            ("workspace_growth_after_warmup", Json::from(warm_growth)),
                        ]),
                    ),
                    (
                        "batch",
                        Json::obj([
                            ("total_ns", Json::from(batch_total_ns as u64)),
                            ("mean_ns", Json::from((batch_total_ns / n) as u64)),
                            ("qps", Json::from(qps(batch_total_ns))),
                            ("speedup_vs_cold", Json::from(batch_speedup)),
                        ]),
                    ),
                    (
                        "cached",
                        Json::obj([
                            ("qps", Json::from(qps(cached_total_ns))),
                            ("hit_rate", Json::from(cache.hit_rate())),
                            ("hits", Json::from(cache.hits)),
                            ("misses", Json::from(cache.misses)),
                            ("evictions", Json::from(cache.evictions)),
                        ]),
                    ),
                    ("thread_balance", Json::from(balance(&thread_settled))),
                ]),
            ),
            (
                "s2s",
                Json::obj([
                    ("queries", Json::from(pairs.len())),
                    ("cold_qps", Json::from(qps(s2s_cold_total))),
                    ("batch_qps", Json::from(qps(s2s_batch_ns))),
                    (
                        "batch_speedup_vs_cold",
                        Json::from(if s2s_batch_ns > 0.0 {
                            s2s_cold_total / s2s_batch_ns
                        } else {
                            0.0
                        }),
                    ),
                ]),
            ),
            (
                "kernel",
                Json::obj([
                    ("queries", Json::from(sources.len())),
                    ("scalar_qps", Json::from(kernel_qps[0])),
                    ("soa_qps", Json::from(kernel_qps[1])),
                    ("soa_speedup", Json::from(soa_speedup)),
                    ("scalar_merge_ns", Json::from(kernel_merge[0])),
                    ("soa_merge_ns", Json::from(kernel_merge[1])),
                    ("merge_ratio", Json::from(merge_ratio)),
                    ("bucket_phases", Json::from(soa_stats.bucket_phases)),
                    ("lane_chunks", Json::from(soa_stats.lane_chunks)),
                    ("masked_prunes", Json::from(soa_stats.masked_prunes)),
                ]),
            ),
            (
                "feed",
                Json::obj([
                    ("feeds", Json::from(num_feeds)),
                    ("events", Json::from(num_feeds * events_per_feed)),
                    ("events_per_sec", Json::from(events_per_sec)),
                    ("generation_bumps", Json::from(bumps)),
                    ("routes_touched", Json::from(touched)),
                    ("routes_repatched", Json::from(repatched)),
                    ("routes_refit", Json::from(refit)),
                    ("post_feed_cache_hit_rate", Json::from(post_feed_hit_rate)),
                ]),
            ),
            (
                "publish",
                Json::obj([
                    ("publishes", Json::from(publish_ns.len())),
                    ("p50_ns", Json::from(publish_p50 as u64)),
                    ("p99_ns", Json::from(publish_p99 as u64)),
                    ("full_clone_ns", Json::from(full_clone_ns as u64)),
                    ("speedup_vs_full_clone", Json::from(publish_speedup)),
                    ("table_rows", Json::from(table_rows)),
                    ("buckets_copied", Json::from(buckets_copied)),
                    ("buckets_shared", Json::from(buckets_shared)),
                    ("routes_copied", Json::from(routes_copied)),
                    ("routes_shared", Json::from(routes_shared)),
                    ("rows_copied", Json::from(rows_copied)),
                    ("rows_shared", Json::from(rows_shared)),
                ]),
            ),
        ]));
    }

    // --- sharded serving --------------------------------------------------
    // One router over several networks: every preset becomes a shard,
    // padded with staggered copies of the existing shards up to three so
    // the phase stays meaningful under a BC_NETWORKS filter. Tables are
    // omitted here (their build cost would dwarf the routed work being
    // measured); the per-feed scoped refresh is covered by the scenario
    // tests and the conncheck feed mode.
    let mut shard_nets: Vec<Network> =
        cfg.networks().into_iter().map(|p| Network::new(p.timetable)).collect();
    if shard_nets.is_empty() {
        eprintln!("throughput: no network matches BC_NETWORKS filter — nothing to measure");
        std::process::exit(2); // same convention as conncheck
    }
    let distinct = shard_nets.len();
    while shard_nets.len() < 3 {
        let copy = shard_nets[shard_nets.len() % distinct].clone();
        shard_nets.push(copy);
    }
    let num_shards = shard_nets.len();
    let stations_total: usize = shard_nets.iter().map(Network::num_stations).sum();
    // A copy of the shard networks for the concurrent phase below (cloned
    // before the router takes ownership).
    let conc_nets: Vec<Network> = shard_nets.clone();
    let shard_queries = queries * num_shards;
    let svc = ShardedService::builder()
        .threads(threads)
        .cache(shard_queries) // every stripe can hold the whole replay
        .build(shard_nets);

    let sources: Vec<StationId> = random_stations(stations_total, shard_queries, cfg.seed ^ 0x5A);
    let mut per_shard_queries = vec![0u64; num_shards];
    for &s in &sources {
        per_shard_queries[svc.owner(s).expect("workload stays in range").idx()] += 1;
    }

    // Cold pass: every shard engine warms up and fills its cache stripe.
    let t0 = Instant::now();
    let cold = svc.many_to_all(&sources);
    let shard_cold_ns = t0.elapsed().as_nanos() as f64;
    assert!(cold.iter().all(Result::is_ok), "uniform workload must route");
    // Replay: all hits, answered from the per-shard stripes.
    let before = svc.cache_stats().expect("cache enabled");
    let t0 = Instant::now();
    let replay = svc.many_to_all(&sources);
    let shard_replay_ns = t0.elapsed().as_nanos() as f64;
    assert!(replay.iter().all(Result::is_ok));
    let after = svc.cache_stats().expect("cache enabled");
    let (dh, dm) = (after.hits - before.hits, after.misses - before.misses);
    let shard_hit_rate = if dh + dm > 0 { dh as f64 / (dh + dm) as f64 } else { 0.0 };

    // Mixed feed: shard-tagged events, one apply_feed per shard per feed.
    let shard_feeds = 5usize;
    let events_per_shard_feed = 20usize;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5AF0);
    let mut shard_events = 0usize;
    let mut shard_feed_ns = 0f64;
    let mut bumps = vec![0u64; num_shards];
    for _ in 0..shard_feeds {
        let mut feed = Vec::new();
        for shard in svc.shard_ids() {
            let trains = svc.network(shard).unwrap().timetable().num_trains() as u32;
            for ev in random_feed(&mut rng, trains, events_per_shard_feed, 45) {
                feed.push((shard, ev));
            }
        }
        let gens: Vec<u64> =
            svc.shard_ids().map(|sh| svc.network(sh).unwrap().generation()).collect();
        shard_events += feed.len();
        let t0 = Instant::now();
        let summary = svc.apply_feed(&feed).expect("tagged shards exist");
        shard_feed_ns += t0.elapsed().as_nanos() as f64;
        for (i, (sh, &g)) in svc.shard_ids().zip(&gens).enumerate() {
            let bumped = svc.network(sh).unwrap().generation() - g;
            assert!(bumped <= 1, "{sh} bumped {bumped}x in one feed");
            bumps[i] += bumped;
        }
        assert_eq!(summary.events.len(), feed.len());
    }
    let shard_eps =
        if shard_feed_ns > 0.0 { shard_events as f64 / (shard_feed_ns * 1e-9) } else { 0.0 };
    let total_bumps: u64 = bumps.iter().sum();
    assert!(total_bumps as usize <= shard_feeds * num_shards);

    println!("## shard ({num_shards} shards, {stations_total} stations total)");
    println!(
        "  {} routed queries: cold {:.1} q/s, replay {:.1} q/s (stripe hit rate {:.0}%); \
         per-shard balance {:.2}",
        shard_queries,
        rate(shard_queries, shard_cold_ns),
        rate(shard_queries, shard_replay_ns),
        shard_hit_rate * 100.0,
        balance(&per_shard_queries)
    );
    println!(
        "  {shard_events} mixed feed events over {shard_feeds} feeds: {shard_eps:.0} events/s, \
         {total_bumps} generation bumps (≤ one per shard per feed)"
    );
    println!();

    let shard_json = Json::obj([
        ("shards", Json::from(num_shards)),
        ("stations_total", Json::from(stations_total)),
        ("queries", Json::from(shard_queries)),
        ("qps", Json::from(rate(shard_queries, shard_cold_ns))),
        ("replay_qps", Json::from(rate(shard_queries, shard_replay_ns))),
        ("hit_rate", Json::from(shard_hit_rate)),
        ("shard_balance", Json::from(balance(&per_shard_queries))),
        ("feeds", Json::from(shard_feeds)),
        ("events", Json::from(shard_events)),
        ("events_per_sec", Json::from(shard_eps)),
        ("generation_bumps", Json::from(total_bumps)),
    ]);

    // --- concurrent serving (snapshot isolation) --------------------------
    // M client threads vs ONE shared service (`&self` queries) while a
    // writer streams feeds through it. Engines are single-threaded so the
    // aggregate throughput gain over the single-thread reference comes
    // entirely from the concurrent serving core: snapshot pinning, shared
    // cache stripes, per-query workspace checkout.
    let conc_clients: usize = env_parse("BC_CONC_CLIENTS", 4);
    let conc_svc = ShardedService::builder().threads(1).build(conc_nets);
    let conc_sources: Vec<StationId> =
        random_stations(stations_total, queries * num_shards, cfg.seed ^ 0xC0);

    // Warm pass (sizes every shard's workspaces), then the single-thread
    // reference: one client, no writer.
    for &s in &conc_sources {
        let _ = conc_svc.one_to_all(s).expect("workload stays in range");
    }
    let t0 = Instant::now();
    for &s in &conc_sources {
        let _ = conc_svc.one_to_all(s).expect("workload stays in range");
    }
    let single_ns = t0.elapsed().as_nanos() as f64;
    let single_qps = rate(conc_sources.len(), single_ns);

    // Concurrent pass: clients each replay the full workload; the writer
    // streams shard-tagged feeds until the last client finishes. Elapsed
    // is measured at client join (the writer is stopped after).
    let stop = std::sync::atomic::AtomicBool::new(false);
    let feed_events = std::sync::atomic::AtomicU64::new(0);
    let t0 = Instant::now();
    let conc_ns = std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xCAFE);
            let shards: Vec<_> = conc_svc.shard_ids().collect();
            let mut tick = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                // Round-robin one shard per tick: a steady live stream, not
                // a writer that monopolizes the machine.
                let shard = shards[tick % shards.len()];
                tick += 1;
                let trains = conc_svc.network(shard).unwrap().timetable().num_trains() as u32;
                let events: Vec<_> =
                    random_feed(&mut rng, trains, 10, 45).into_iter().map(|e| (shard, e)).collect();
                feed_events.fetch_add(events.len() as u64, std::sync::atomic::Ordering::Relaxed);
                let _ = conc_svc.apply_feed(&events).expect("tagged shards exist");
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        });
        let clients: Vec<_> = (0..conc_clients)
            .map(|_| {
                let conc_svc = &conc_svc;
                let conc_sources = &conc_sources;
                scope.spawn(move || {
                    for &s in conc_sources {
                        let _ = conc_svc.one_to_all(s).expect("workload stays in range");
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().expect("client must not panic");
        }
        let elapsed = t0.elapsed().as_nanos() as f64;
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        writer.join().expect("writer must not panic");
        elapsed
    });
    let conc_queries = conc_sources.len() * conc_clients;
    let conc_qps = rate(conc_queries, conc_ns);
    let speedup = if single_qps > 0.0 { conc_qps / single_qps } else { 0.0 };
    let feed_events = feed_events.into_inner();
    let publishes: u64 = conc_svc.shard_ids().map(|sh| conc_svc.publishes(sh).unwrap()).sum();
    assert!(publishes >= 1, "the writer must publish at least one snapshot mid-flight");

    println!("## concurrent ({conc_clients} clients vs 1 service, live feed stream)");
    println!(
        "  {conc_queries} queries: {conc_qps:.1} q/s aggregate vs {single_qps:.1} q/s \
         single-thread ({speedup:.2}x); {feed_events} feed events, {publishes} snapshots \
         published mid-flight"
    );
    println!();

    // `host_cpus` travels with the phase: on a 1-cpu host the clients
    // time-slice one core, so aggregate q/s *below* the single-thread
    // reference is expected — the regression gate must then hold the
    // absolute q/s floor instead of the speedup (see ci/check_bench.py).
    let concurrent_json = Json::obj([
        ("clients", Json::from(conc_clients)),
        ("host_cpus", Json::from(cpus)),
        ("queries", Json::from(conc_queries)),
        ("queries_per_sec", Json::from(conc_qps)),
        ("single_thread_qps", Json::from(single_qps)),
        ("speedup_vs_single_thread", Json::from(speedup)),
        ("feed_events", Json::from(feed_events)),
        ("publishes", Json::from(publishes)),
    ]);

    // --- gateway (cross-shard stitching vs the merged monolith) -----------
    // A generated three-region scenario sharing two border stations. The
    // gateway-enabled service answers cross-shard pairs by stitching
    // border profile sets; the monolith answers the mapped pairs directly
    // through the batch s2s engine. Scenario size is fixed (not scaled by
    // BC_SCALE): the phase measures the stitch machinery, not network
    // size, and a fixed shape keeps the baseline config stable.
    let (gw_shards, gw_borders, gw_locals, gw_trips) = (3usize, 2usize, 6usize, 16usize);
    let sc = gateway_scenario(gw_shards, gw_borders, gw_locals, gw_trips, cfg.seed ^ 0x6A7E);
    let gw_svc = ShardedService::builder()
        .threads(threads)
        .gateway(BorderSpec::ByName)
        .build(sc.shards.clone());
    let gw_queries = (queries * 4).max(8);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x6A);
    let mut gw_pairs = Vec::with_capacity(gw_queries);
    let mut mono_pairs = Vec::with_capacity(gw_queries);
    while gw_pairs.len() < gw_queries {
        let a = rng.gen_range(0..gw_shards);
        let b = loop {
            let b = rng.gen_range(0..gw_shards);
            if b != a {
                break b;
            }
        };
        let s = rng.gen_range(0..sc.to_mono[a].len());
        let t = rng.gen_range(0..sc.to_mono[b].len());
        if sc.to_mono[a][s] == sc.to_mono[b][t] {
            continue; // the same physical border seen from both shards
        }
        gw_pairs.push((
            gw_svc.global_id(ShardId(a as u32), StationId(s as u32)).expect("sampled local"),
            gw_svc.global_id(ShardId(b as u32), StationId(t as u32)).expect("sampled local"),
        ));
        mono_pairs.push((sc.to_mono[a][s], sc.to_mono[b][t]));
    }

    // Warm pass builds the border tables and sizes every shard's
    // workspaces; the timed pass measures steady-state stitching.
    let warm = gw_svc.s2s_batch(&gw_pairs);
    assert!(warm.iter().all(Result::is_ok), "cross-shard pairs must stitch");
    let t0 = Instant::now();
    let stitched = gw_svc.s2s_batch(&gw_pairs);
    let cross_qps = rate(gw_pairs.len(), t0.elapsed().as_nanos() as f64);

    let mono_engine = S2sEngine::new().threads(threads).kernel(kernel);
    let _ = mono_engine.batch(&sc.mono, &mono_pairs); // warm-up
    let t0 = Instant::now();
    let mono_res = mono_engine.batch(&sc.mono, &mono_pairs);
    let mono_qps = rate(mono_pairs.len(), t0.elapsed().as_nanos() as f64);
    // Spot-check the timed workload itself; the full battery (pristine /
    // delayed / live-fed) is `conncheck --gateway`.
    for (r, m) in stitched.iter().zip(&mono_res) {
        let r = r.as_ref().expect("warmed pairs keep stitching");
        assert_eq!(r.value.profile, m.profile, "stitch diverges from monolith");
    }
    let stitch_overhead = if cross_qps > 0.0 { mono_qps / cross_qps } else { 0.0 };

    // Live feed: events through the service invalidate touched border
    // rows; the next batch refreshes them scoped. A feed can legally net
    // out to nothing, so feed until at least one row refreshed.
    let rows_before: u64 =
        gw_svc.gateway_stats().expect("gateway enabled").rows_refreshed.iter().sum();
    let mut gw_feed_rows = 0u64;
    let mut gw_feed_events = 0usize;
    let mut gw_feed_rounds = 0u32;
    while gw_feed_rows == 0 {
        gw_feed_rounds += 1;
        assert!(gw_feed_rounds <= 8, "eight mixed feeds must touch a border row");
        let mut events = Vec::new();
        for sh in 0..gw_shards {
            let shard = ShardId(sh as u32);
            let trains = gw_svc.network(shard).unwrap().timetable().num_trains() as u32;
            for ev in random_feed(&mut rng, trains, 4, 45) {
                events.push((shard, ev));
            }
        }
        gw_feed_events += events.len();
        gw_svc.apply_feed(&events).expect("tagged shards exist");
        let refreshed = gw_svc.s2s_batch(&gw_pairs);
        assert!(refreshed.iter().all(Result::is_ok));
        let rows_now: u64 =
            gw_svc.gateway_stats().expect("gateway enabled").rows_refreshed.iter().sum();
        gw_feed_rows = rows_now - rows_before;
    }
    let gw_stats = gw_svc.gateway_stats().expect("gateway enabled");

    println!("## gateway ({gw_shards} shards, {} border groups)", gw_stats.groups);
    println!(
        "  {} cross-shard queries: stitched {cross_qps:.1} q/s vs monolithic {mono_qps:.1} q/s \
         ({stitch_overhead:.2}x overhead)",
        gw_pairs.len()
    );
    println!(
        "  {gw_feed_events} mixed feed events over {gw_feed_rounds} feeds refreshed \
         {gw_feed_rows} border rows (scoped, not a rebuild)"
    );
    println!();

    let gateway_json = Json::obj([
        ("shards", Json::from(gw_shards)),
        ("border_groups", Json::from(gw_stats.groups)),
        ("queries", Json::from(gw_pairs.len())),
        ("cross_queries_per_sec", Json::from(cross_qps)),
        ("mono_queries_per_sec", Json::from(mono_qps)),
        ("stitch_overhead", Json::from(stitch_overhead)),
        ("feed_rows_refreshed", Json::from(gw_feed_rows)),
    ]);

    // --- replay (feed ingestion) ------------------------------------------
    // One recorded feed day streamed through a fresh sharded service by the
    // pt-feed FeedDriver: wire decode (CSV and JSON lines alternating),
    // roster validation, bounded-queue batching, one apply_feed per touched
    // shard per batch. The recorded day is clean by construction, so the
    // zero-quarantine assertion holds here and is re-checked by CI on the
    // emitted JSON.
    let replay_events: usize = env_parse("BC_REPLAY_EVENTS", 400);
    let mut replay_nets: Vec<Network> =
        cfg.networks().into_iter().map(|p| Network::new(p.timetable)).collect();
    let distinct = replay_nets.len();
    while replay_nets.len() < 3 {
        let copy = replay_nets[replay_nets.len() % distinct].clone();
        replay_nets.push(copy);
    }
    let replay_shards = replay_nets.len();
    let replay_svc = ShardedService::builder().threads(threads).build(replay_nets);
    let trains_per_shard: Vec<u32> = replay_svc
        .shard_ids()
        .map(|sh| replay_svc.network(sh).unwrap().timetable().num_trains() as u32)
        .collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xFEED);
    let mut lines = Vec::with_capacity(replay_events + 2);
    lines.push("# recorded feed day (synthetic)".to_string());
    for i in 0..replay_events {
        let shard = i % replay_shards;
        let event = random_feed(&mut rng, trains_per_shard[shard], 1, 45)
            .pop()
            .expect("one event requested");
        let wire = WireEvent {
            // Producer clock: one service day, 06:00 onward, monotone.
            time: Time(6 * 3600 + (i * 43_200 / replay_events.max(1)) as u32),
            shard: ShardId(shard as u32),
            event,
        };
        lines.push(if i % 2 == 0 { encode_csv(&wire) } else { encode_json(&wire) });
    }
    let replay_lines = lines.len();
    let mut replay_src = RecordedFeed::new(lines, 64);
    let mut replay_driver = FeedDriver::new(&replay_svc, FeedDriverConfig::replay());
    let t0 = Instant::now();
    let replay_stats = replay_driver.run(&mut replay_src).expect("recorded source never fails");
    let replay_ns = t0.elapsed().as_nanos() as f64;
    assert!(
        replay_stats.quarantine.is_empty(),
        "recorded day is clean: {}",
        replay_stats.quarantine
    );
    assert_eq!(replay_stats.events_applied as usize, replay_events, "every event applied");
    let replay_eps = rate(replay_events, replay_ns);

    println!("## replay ({replay_shards} shards, {replay_events} recorded events)");
    println!(
        "  ingested {replay_lines} lines end-to-end: {replay_eps:.0} events/s in {} batches \
         ({} changed), queue high-water {}, {}",
        replay_stats.batches_applied,
        replay_stats.changed_batches,
        replay_stats.max_queue_len,
        replay_stats.quarantine
    );
    println!();

    let replay_json = Json::obj([
        ("shards", Json::from(replay_shards)),
        ("lines", Json::from(replay_lines)),
        ("events", Json::from(replay_events)),
        ("events_per_sec", Json::from(replay_eps)),
        ("batches", Json::from(replay_stats.batches_applied)),
        ("changed_batches", Json::from(replay_stats.changed_batches)),
        ("quarantined", Json::from(replay_stats.quarantine.total)),
        ("out_of_order", Json::from(replay_stats.out_of_order)),
        ("max_queue", Json::from(replay_stats.max_queue_len)),
    ]);

    let pool = rayon::global().stats();
    let doc = Json::obj([
        ("bench", Json::from("spcs_throughput")),
        ("scale", Json::from(cfg.scale)),
        ("seed", Json::from(cfg.seed)),
        ("threads", Json::from(threads)),
        ("networks", Json::Arr(networks_json)),
        ("shard", shard_json),
        ("concurrent", concurrent_json),
        ("gateway", gateway_json),
        ("replay", replay_json),
        (
            "pool",
            Json::obj([
                ("executed", Json::from(pool.executed)),
                ("stolen", Json::from(pool.stolen)),
            ]),
        ),
    ]);
    let path = json_out_path("BENCH_spcs.json");
    if let Err(e) = write_json(&path, &doc) {
        eprintln!("failed to write {}: {e}", path.display());
        std::process::exit(1);
    }
}

/// `n` items over `total_ns` nanoseconds as a per-second rate.
fn rate(n: usize, total_ns: f64) -> f64 {
    if total_ns > 0.0 {
        n as f64 / (total_ns * 1e-9)
    } else {
        0.0
    }
}
