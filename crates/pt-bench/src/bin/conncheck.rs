//! Diagnostic: connectivity of the generated evaluation networks, plus the
//! cross-algorithm equivalence check.
//!
//! Section 1 prints, for each preset, the number of weakly connected
//! components of the station graph and the count of entirely unserved
//! stations. Real feeds are connected; the generators guarantee it via
//! connector lines — this tool verifies that invariant at any scale.
//!
//! Section 2 runs [`pt_bench::conncheck::cross_check`]: sequential SPCS vs
//! label-correcting vs parallel SPCS (all three partition strategies, at
//! the `BC_THREADS` thread counts) vs the label-setting time-query
//! baseline, on `BC_QUERIES` sampled sources per network — then repeats
//! the battery after a burst of single delay patches (delay mode) and
//! after batched feeds of delays + cancellations (feed mode, which also
//! checks the incremental distance-table refresh entry-for-entry against
//! a from-scratch build). Any disagreement is printed and the process
//! exits non-zero.
//!
//! With `--kernel` the binary switches to the kernel ablation battery
//! instead: the scalar heap kernel and the SoA bucket-ring kernel are
//! forced explicitly and both cross-validated against the time-query
//! ground truth — on the pristine networks, after the same delay burst as
//! delay mode, and after the same batched feeds as feed mode.
//!
//! With `--gateway` it runs the cross-shard gateway battery instead:
//! generated region shards sharing border stations are served through a
//! `ShardedService` with a by-name gateway, and every sampled cross-shard
//! pair's stitched profile is held byte-equal to the merged monolithic
//! network's sequential profile — pristine, after a delay burst, and
//! across live mixed feeds applied through the service (exercising the
//! scoped border-set refresh).
//!
//! With `--calendar` it runs the service-calendar battery instead: every
//! preset's trains are striped across weekday / weekend / summer services
//! and several concrete query days are materialized through
//! `Timetable::for_day`, each held equal — structurally and on profile /
//! time-query answers — to an independent filter-and-rebuild whose dates
//! are re-derived with a different weekday algorithm.
//!
//! ```text
//! cargo run --release --bin conncheck [-- --kernel | --gateway | --calendar]
//! ```
//!
//! Knobs: `BC_SCALE` (default 0.5), `BC_QUERIES` sources per network
//! (default 15, capped at 64), `BC_THREADS` (default 1,2,4,8),
//! `BC_NETWORKS` name filter, `BC_SEED`.

use pt_bench::conncheck::{
    apply_random_delays, apply_random_feeds, calendar_check, cross_check, cross_check_after_delays,
    cross_check_after_feed, disrupt_scenario, gateway_check, gateway_scenario, kernel_check,
    standard_departures,
};
use pt_bench::BenchConfig;
use pt_core::StationId;
use pt_graph::StationGraph;
use pt_spcs::Network;

fn main() {
    let cfg = BenchConfig::from_env();
    let mut networks = Vec::new();
    for preset in cfg.networks() {
        let tt = preset.timetable;
        let sg = StationGraph::build(&tt);
        let n = sg.num_stations();
        let mut comp = vec![usize::MAX; n];
        let mut ncomp = 0;
        for s in 0..n {
            if comp[s] != usize::MAX {
                continue;
            }
            let mut stack = vec![s];
            comp[s] = ncomp;
            while let Some(v) = stack.pop() {
                let vid = StationId(v as u32);
                for (h, _) in sg.out(vid) {
                    if comp[h.idx()] == usize::MAX {
                        comp[h.idx()] = ncomp;
                        stack.push(h.idx());
                    }
                }
                for &h in sg.incoming(vid) {
                    if comp[h.idx()] == usize::MAX {
                        comp[h.idx()] = ncomp;
                        stack.push(h.idx());
                    }
                }
            }
            ncomp += 1;
        }
        let mut sizes = vec![0usize; ncomp];
        for &c in &comp {
            sizes[c] += 1;
        }
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let unserved = (0..n)
            .filter(|&s| {
                let sid = StationId(s as u32);
                tt.conn(sid).is_empty() && sg.incoming(sid).is_empty()
            })
            .count();
        println!(
            "{:<16} stations={:<6} components={:<3} largest={:<6} unserved={}",
            preset.name, n, ncomp, sizes[0], unserved
        );
        networks.push((preset.name, tt));
    }

    if networks.is_empty() {
        eprintln!("conncheck: no network matches BC_NETWORKS filter — nothing to check");
        std::process::exit(2);
    }

    let departures = standard_departures();
    let sources_per_net = cfg.queries.clamp(1, 64);
    let mut total_mismatches = 0usize;

    // --gateway: the cross-shard gateway battery (stitched vs monolithic)
    // on generated region scenarios, instead of the full cross-algorithm
    // battery over the presets.
    if std::env::args().skip(1).any(|a| a == "--gateway") {
        println!();
        println!("gateway: stitched cross-shard profiles vs the merged monolith");
        let pairs = sources_per_net.clamp(1, 16);
        // (shards, borders, locals, trips): a two-region cut with one
        // border, and a three-region cut with two borders (multi-alias
        // groups and border-chain journeys).
        for (shards, borders, locals, trips) in [(2usize, 1usize, 5usize, 14usize), (3, 2, 4, 12)] {
            let name = format!("gw{shards}x{borders}");
            let sc = gateway_scenario(shards, borders, locals, trips, cfg.seed);
            let pristine = gateway_check(&name, &sc, pairs, 0, 0, cfg.seed);
            let delayed_sc = disrupt_scenario(&sc, 6, cfg.seed);
            let delayed =
                gateway_check(&format!("{name}+delays"), &delayed_sc, pairs, 0, 0, cfg.seed);
            // Live feeds through the service: 3 rounds of 8 mixed events,
            // re-checked after every round.
            let fed = gateway_check(&format!("{name}+feed"), &sc, pairs, 3, 8, cfg.seed);
            for outcome in [&pristine, &delayed, &fed] {
                println!(
                    "{:<16} pairs={:<4} comparisons={:<8} mismatches={}",
                    outcome.network,
                    outcome.sources,
                    outcome.comparisons,
                    outcome.mismatches.len()
                );
                for m in &outcome.mismatches {
                    eprintln!("  MISMATCH: {m}");
                }
                total_mismatches += outcome.mismatches.len();
            }
        }
        if total_mismatches > 0 {
            eprintln!("conncheck --gateway FAILED: {total_mismatches} mismatch(es)");
            std::process::exit(1);
        }
        println!("conncheck --gateway OK: zero mismatches");
        return;
    }

    // --calendar: the service-calendar battery — every preset's trains are
    // striped across weekday/weekend/summer services, several concrete
    // query days are materialized through `Timetable::for_day`, and each
    // day network is held equal to an independent filter + rebuild (dates
    // re-derived with a different weekday algorithm), both structurally
    // and on profile / time-query answers. Pristine and after a feed: a
    // delayed dataset's day must filter the *delayed* connections.
    if std::env::args().skip(1).any(|a| a == "--calendar") {
        println!();
        println!("calendar: for_day vs independent filter + rebuild");
        for (name, tt) in networks {
            let net = Network::new(tt);
            let sources = pt_bench::random_stations(net.num_stations(), sources_per_net, cfg.seed);
            let pristine = calendar_check(name, &net, &sources, &departures);
            let (fed_net, events) = apply_random_feeds(&net, 2, 10, cfg.seed);
            let fed = calendar_check(&format!("{name}+feed"), &fed_net, &sources, &departures);
            for outcome in [&pristine, &fed] {
                println!(
                    "{:<16} sources={:<3} comparisons={:<8} mismatches={}",
                    outcome.network,
                    outcome.sources,
                    outcome.comparisons,
                    outcome.mismatches.len()
                );
                for m in &outcome.mismatches {
                    eprintln!("  MISMATCH: {m}");
                }
                total_mismatches += outcome.mismatches.len();
            }
            println!("{:<16} ({} feed events before the second battery)", name, events);
        }
        if total_mismatches > 0 {
            eprintln!("conncheck --calendar FAILED: {total_mismatches} mismatch(es)");
            std::process::exit(1);
        }
        println!("conncheck --calendar OK: zero mismatches");
        return;
    }

    // --kernel: the kernel ablation battery (scalar vs SoA vs time-query)
    // on pristine, delayed and fed networks, instead of the full
    // cross-algorithm battery.
    if std::env::args().skip(1).any(|a| a == "--kernel") {
        println!();
        println!("kernel ablation: scalar heap vs SoA bucket ring vs time-query");
        for (name, tt) in networks {
            let net = Network::new(tt);
            let sources = pt_bench::random_stations(net.num_stations(), sources_per_net, cfg.seed);
            let pristine = kernel_check(name, &net, &sources, &cfg.threads, &departures);
            let (delayed_net, patched, rebuilt) = apply_random_delays(&net, 8, cfg.seed);
            let delayed = kernel_check(
                &format!("{name}+delays"),
                &delayed_net,
                &sources,
                &cfg.threads,
                &departures,
            );
            let (fed_net, events) = apply_random_feeds(&net, 3, 12, cfg.seed);
            let fed = kernel_check(
                &format!("{name}+feed"),
                &fed_net,
                &sources,
                &cfg.threads,
                &departures,
            );
            for outcome in [&pristine, &delayed, &fed] {
                println!(
                    "{:<16} sources={:<3} comparisons={:<8} mismatches={}",
                    outcome.network,
                    outcome.sources,
                    outcome.comparisons,
                    outcome.mismatches.len()
                );
                for m in &outcome.mismatches {
                    eprintln!("  MISMATCH: {m}");
                }
                total_mismatches += outcome.mismatches.len();
            }
            println!(
                "{:<16} (disruptions: {patched} patched, {rebuilt} rebuilt, {events} feed events)",
                name
            );
        }
        if total_mismatches > 0 {
            eprintln!("conncheck --kernel FAILED: {total_mismatches} mismatch(es)");
            std::process::exit(1);
        }
        println!("conncheck --kernel OK: zero mismatches");
        return;
    }

    println!();
    println!("cross-check: sequential SPCS vs LC vs parallel SPCS vs time-query");
    for (name, tt) in networks {
        let net = Network::new(tt);
        let sources = pt_bench::random_stations(net.num_stations(), sources_per_net, cfg.seed);
        let outcome = cross_check(name, &net, &sources, &cfg.threads, &departures);
        println!(
            "{:<16} sources={:<3} comparisons={:<8} mismatches={}",
            outcome.network,
            outcome.sources,
            outcome.comparisons,
            outcome.mismatches.len()
        );
        for m in &outcome.mismatches {
            eprintln!("  MISMATCH: {m}");
        }
        total_mismatches += outcome.mismatches.len();

        // Delay mode: the same battery on a network disrupted through the
        // incremental patch path, checked against a full rebuild first.
        let (delayed, patched, rebuilt) =
            cross_check_after_delays(name, &net, &sources, &cfg.threads, &departures, 8, cfg.seed);
        println!(
            "{:<16} sources={:<3} comparisons={:<8} mismatches={} (updates: {patched} patched, {rebuilt} rebuilt)",
            delayed.network,
            delayed.sources,
            delayed.comparisons,
            delayed.mismatches.len()
        );
        for m in &delayed.mismatches {
            eprintln!("  MISMATCH: {m}");
        }
        total_mismatches += delayed.mismatches.len();

        // Feed mode: batched delays + cancellations through apply_feed,
        // with the incremental distance-table refresh checked entry for
        // entry against a from-scratch build after every feed.
        let (fed, feed_stats) = cross_check_after_feed(
            name,
            &net,
            &sources,
            &cfg.threads,
            &departures,
            3,
            12,
            cfg.seed,
        );
        println!(
            "{:<16} sources={:<3} comparisons={:<8} mismatches={} (feed: {} events, {} patched, \
             {} rebuilt, {} table rows refreshed)",
            fed.network,
            fed.sources,
            fed.comparisons,
            fed.mismatches.len(),
            feed_stats.events,
            feed_stats.patched,
            feed_stats.rebuilt,
            feed_stats.rows_refreshed
        );
        for m in &fed.mismatches {
            eprintln!("  MISMATCH: {m}");
        }
        total_mismatches += fed.mismatches.len();
    }
    if total_mismatches > 0 {
        eprintln!("conncheck FAILED: {total_mismatches} mismatch(es)");
        std::process::exit(1);
    }
    println!("conncheck OK: zero mismatches");
}
