//! Diagnostic: connectivity of the generated evaluation networks.
//!
//! Prints, for each preset, the number of weakly connected components of
//! the station graph and the count of entirely unserved stations. Real
//! feeds are connected; the generators guarantee it via connector lines —
//! this tool verifies that invariant at any scale.
//!
//! ```text
//! cargo run --release -p pt-bench --bin conncheck
//! ```

use pt_core::StationId;
use pt_graph::StationGraph;

fn main() {
    let scale = std::env::var("BC_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(0.5);
    for preset in pt_timetable::synthetic::presets::all_presets(scale) {
        let tt = preset.timetable;
        let sg = StationGraph::build(&tt);
        let n = sg.num_stations();
        let mut comp = vec![usize::MAX; n];
        let mut ncomp = 0;
        for s in 0..n {
            if comp[s] != usize::MAX {
                continue;
            }
            let mut stack = vec![s];
            comp[s] = ncomp;
            while let Some(v) = stack.pop() {
                let vid = StationId(v as u32);
                for (h, _) in sg.out(vid) {
                    if comp[h.idx()] == usize::MAX {
                        comp[h.idx()] = ncomp;
                        stack.push(h.idx());
                    }
                }
                for &h in sg.incoming(vid) {
                    if comp[h.idx()] == usize::MAX {
                        comp[h.idx()] = ncomp;
                        stack.push(h.idx());
                    }
                }
            }
            ncomp += 1;
        }
        let mut sizes = vec![0usize; ncomp];
        for &c in &comp {
            sizes[c] += 1;
        }
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let unserved = (0..n)
            .filter(|&s| {
                let sid = StationId(s as u32);
                tt.conn(sid).is_empty() && sg.incoming(sid).is_empty()
            })
            .count();
        println!(
            "{:<16} stations={:<6} components={:<3} largest={:<6} unserved={}",
            preset.name, n, ncomp, sizes[0], unserved
        );
    }
}
