//! Regenerates **Table 2** of the paper: station-to-station queries with
//! the stopping criterion, pruned by distance tables of varying size.
//!
//! For every network the harness builds distance tables over 0 % (no
//! table), 1 %, 2.5 %, 5 % and 10 % of the stations (selected by
//! contraction) plus the `deg > 2` selection, and reports preprocessing
//! time, table size, mean settled queue elements, mean query time, the
//! mean master-merge time (the §3.2 merge overhead, measured separately)
//! and the speed-up over the 0 % configuration — the paper's exact columns
//! plus the merge number the paper only discusses qualitatively.
//!
//! ```text
//! cargo run --release -p pt-bench --bin table2
//! ```
//!
//! Extra knobs: `BC_FRACTIONS` (default `0.01,0.025,0.05,0.10`),
//! `BC_S2S_THREADS` (default `8`, the paper's Table 2 core count) and
//! `BC_KERNEL` (`scalar`/`soa`/`auto`, default `auto`) selecting the label
//! kernel; the `buckets` column (mean bucket phases swept by the SoA ring)
//! shows which kernel actually answered each row — it is zero whenever the
//! scalar heap ran.

use std::time::Instant;

use pt_bench::{env_list, env_parse, fmt_mmss, mean, ms, random_pairs, BenchConfig};
use pt_spcs::{DistanceTable, KernelMode, Network, S2sEngine, TransferSelection};

fn main() {
    let cfg = BenchConfig::from_env();
    let fractions: Vec<f64> =
        env_list("BC_FRACTIONS").unwrap_or_else(|| vec![0.01, 0.025, 0.05, 0.10]);
    let threads: usize = env_parse("BC_S2S_THREADS", 8);
    let kernel: KernelMode = env_parse("BC_KERNEL", KernelMode::Auto);

    println!("# Table 2 — station-to-station queries with distance-table pruning");
    println!(
        "# scale={} queries={} threads={} kernel={kernel} seed={} fractions={:?} + deg>2",
        cfg.scale, cfg.queries, threads, cfg.seed, fractions
    );
    println!();

    for preset in cfg.networks() {
        let stats = preset.timetable.stats();
        let net = Network::new(preset.timetable);
        println!("## {}  ({} stations, {} conns)", preset.name, stats.stations, stats.connections);
        println!(
            "{:<8} {:>8} {:>10} {:>14} {:>11} {:>11} {:>9} {:>7}",
            "trans",
            "prepro",
            "size[MiB]",
            "settled conns",
            "time [ms]",
            "merge [ms]",
            "buckets",
            "spd-up"
        );
        let pairs = random_pairs(net.num_stations(), cfg.queries, cfg.seed);

        // Baseline: stopping criterion only (the paper's 0.0 % row). The
        // engine persists across the query stream (workspace + pool reuse);
        // the master-merge share of each query is reported separately — the
        // §3.2 merge-overhead number the paper discusses but never gives.
        let run = |engine: &mut S2sEngine<'_>, net: &Network| -> (f64, f64, f64, f64) {
            let mut settled = Vec::new();
            let mut times = Vec::new();
            let mut merge_ms = Vec::new();
            let mut buckets = Vec::new();
            for &(s, t) in &pairs {
                let t0 = Instant::now();
                let r = engine.query(net, s, t);
                times.push(ms(t0.elapsed()));
                settled.push(r.stats.settled as f64);
                merge_ms.push(r.stats.merge_ns as f64 / 1e6);
                buckets.push(r.stats.bucket_phases as f64);
            }
            (mean(&settled), mean(&times), mean(&merge_ms), mean(&buckets))
        };

        let mut engine = S2sEngine::new().threads(threads).kernel(kernel);
        let (settled0, time0, merge0, buckets0) = run(&mut engine, &net);
        println!(
            "{:<8} {:>8} {:>10} {:>14.0} {:>11.1} {:>11.2} {:>9.0} {:>7.1}",
            "0.0%", "—", "—", settled0, time0, merge0, buckets0, 1.0
        );

        let mut selections: Vec<(String, TransferSelection)> = fractions
            .iter()
            .map(|&f| (format!("{:.1}%", f * 100.0), TransferSelection::Fraction(f)))
            .collect();
        selections.push(("deg>2".to_string(), TransferSelection::DegreeAbove(2)));

        for (label, sel) in selections {
            let table = DistanceTable::build(&net, &sel);
            if table.is_empty() {
                println!("{label:<8} (no transfer stations selected — skipped)");
                continue;
            }
            let mut engine = S2sEngine::new().threads(threads).kernel(kernel).with_table(&table);
            let (settled, time, merge, buckets) = run(&mut engine, &net);
            println!(
                "{:<8} {:>8} {:>10.1} {:>14.0} {:>11.1} {:>11.2} {:>9.0} {:>7.1}",
                label,
                fmt_mmss(table.build_time()),
                table.size_mib(),
                settled,
                time,
                merge,
                buckets,
                if time > 0.0 { time0 / time } else { 0.0 }
            );
        }
        println!();
    }
}
