//! Machine-readable benchmark output (`BENCH_spcs.json`).
//!
//! The table binaries print the paper's layout for humans; this module
//! writes the same measurements as JSON so the perf trajectory can be
//! tracked across PRs by scripts. No external JSON crate exists in the
//! offline build environment, so a minimal value tree + serializer lives
//! here (string escaping included — enough for our own keys and names).
//!
//! Conventions: durations are reported as integer nanoseconds
//! (`median_ns`), rates as queries per second (`qps`), balance as the
//! max-over-average settled-count ratio across threads (`1.0` = perfect).

use std::fmt::Write as _;

/// A JSON value. Construct with the `From` impls and [`Json::obj`] /
/// [`Json::arr`].
#[derive(Debug, Clone)]
pub enum Json {
    Null,
    Bool(bool),
    /// Finite floats only; non-finite values serialize as `null`.
    Num(f64),
    Int(i64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        i64::try_from(v).map(Json::Int).unwrap_or(Json::Num(v as f64))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::from(v as u64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// An object from `(key, value)` pairs, preserving order.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// An array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) if x.is_finite() => {
                let _ = write!(out, "{x}");
            }
            Json::Num(_) => out.push_str("null"),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    pad(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Resolves the output path: `BC_JSON_OUT` env override, else `default`.
pub fn json_out_path(default: &str) -> std::path::PathBuf {
    std::env::var("BC_JSON_OUT").unwrap_or_else(|_| default.to_string()).into()
}

/// Writes `value` to `path`, reporting the destination on stderr.
pub fn write_json(path: &std::path::Path, value: &Json) -> std::io::Result<()> {
    std::fs::write(path, value.render())?;
    eprintln!("wrote {}", path.display());
    Ok(())
}

/// Median of a sample (ns, ms, …); `0.0` for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// The `p`-th percentile (0 ≤ `p` ≤ 100) by linear rank over the sorted
/// sample, `0.0` on empty input. `percentile(xs, 50.0)` is the lower
/// median; benches report `p50`/`p99` of per-publish costs with it.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Thread balance: max settled over average settled (`1.0` = perfectly
/// balanced, `p` = one thread did everything).
pub fn balance(thread_settled: &[u64]) -> f64 {
    if thread_settled.is_empty() {
        return 1.0;
    }
    let max = thread_settled.iter().copied().max().unwrap_or(0) as f64;
    let avg = thread_settled.iter().sum::<u64>() as f64 / thread_settled.len() as f64;
    if avg > 0.0 {
        max / avg
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let v = Json::obj([
            ("name", Json::from("city \"A\"\n")),
            ("qps", Json::from(1234.5)),
            ("threads", Json::from(vec![1u64, 2, 4])),
            ("empty", Json::arr([])),
            ("nan", Json::Num(f64::NAN)),
        ]);
        let s = v.render();
        assert!(s.contains("\"city \\\"A\\\"\\n\""));
        assert!(s.contains("\"qps\": 1234.5"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.contains("\"nan\": null"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn median_and_balance() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(balance(&[10, 10]), 1.0);
        assert_eq!(balance(&[20, 0]), 2.0);
        assert_eq!(balance(&[]), 1.0);
    }

    #[test]
    fn u64_overflowing_i64_degrades_to_float() {
        let v = Json::from(u64::MAX);
        assert!(matches!(v, Json::Num(_)));
    }
}
