//! Criterion bench backing Table 2: station-to-station queries — stopping
//! criterion only vs. distance-table pruning at 5 % transfer stations.

use criterion::{criterion_group, criterion_main, Criterion};
use pt_spcs::{DistanceTable, Network, S2sEngine, TransferSelection};
use pt_timetable::synthetic::presets;

fn s2s(c: &mut Criterion) {
    let net = Network::new(presets::oahu_like(0.08).timetable);
    let pairs = pt_bench::random_pairs(net.num_stations(), 8, 42);
    let table = DistanceTable::build(&net, &TransferSelection::Fraction(0.05));

    let mut group = c.benchmark_group("s2s/oahu");
    group.sample_size(10);
    group.bench_function("stopping_only", |b| {
        let engine = S2sEngine::new().threads(2);
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            engine.query(&net, s, t)
        });
    });
    group.bench_function("table_5pct", |b| {
        let engine = S2sEngine::new().threads(2).with_table(&table);
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            engine.query(&net, s, t)
        });
    });
    group.bench_function("no_stopping", |b| {
        let engine = S2sEngine::new().threads(2).stopping_criterion(false);
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            engine.query(&net, s, t)
        });
    });
    group.finish();
}

criterion_group!(benches, s2s);
criterion_main!(benches);
