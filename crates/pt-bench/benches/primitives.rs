//! Micro-benchmarks of the building blocks: PLF evaluation, connection
//! reduction, heap arity (the paper uses a binary heap; 4-ary is the
//! engineering alternative) and the partition strategies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pt_core::{Dur, Period, Plf, PlfPoint, Profile, ProfilePoint, Time};
use pt_heap::{BinaryHeap, QuaternaryHeap};
use pt_timetable::synthetic::presets;

fn plf_points(n: u32) -> Vec<PlfPoint> {
    (0..n).map(|i| PlfPoint::new(Time(i * (86_400 / n)), Dur(300 + (i * 37) % 900))).collect()
}

fn plf(c: &mut Criterion) {
    let period = Period::DAY;
    let mut group = c.benchmark_group("plf");
    for n in [16u32, 128, 1024] {
        let f = Plf::from_points(plf_points(n), period);
        group.bench_with_input(BenchmarkId::new("eval", n), &f, |b, f| {
            let mut t = 0u32;
            b.iter(|| {
                t = (t + 7919) % 86_400;
                f.eval_dur(Time(t), period)
            });
        });
        group.bench_with_input(BenchmarkId::new("reduce", n), &n, |b, &n| {
            let pts: Vec<ProfilePoint> = (0..n)
                .map(|i| {
                    ProfilePoint::new(
                        Time(i * (86_400 / n)),
                        Time(i * (86_400 / n) + 300 + (i * 7919) % 3600),
                    )
                })
                .collect();
            b.iter(|| Profile::from_unreduced(pts.clone(), period));
        });
    }
    group.finish();
}

fn heaps(c: &mut Criterion) {
    let mut group = c.benchmark_group("heap");
    const N: usize = 10_000;
    let keys: Vec<u64> = (0..N).map(|i| ((i * 2654435761) % 1_000_000) as u64).collect();
    group.bench_function("binary_push_pop", |b| {
        b.iter(|| {
            let mut h = BinaryHeap::new(N);
            for (slot, &k) in keys.iter().enumerate() {
                h.push_or_decrease(slot, k);
            }
            let mut sum = 0u64;
            while let Some((_, k)) = h.pop() {
                sum += k;
            }
            sum
        });
    });
    group.bench_function("quaternary_push_pop", |b| {
        b.iter(|| {
            let mut h = QuaternaryHeap::new(N);
            for (slot, &k) in keys.iter().enumerate() {
                h.push_or_decrease(slot, k);
            }
            let mut sum = 0u64;
            while let Some((_, k)) = h.pop() {
                sum += k;
            }
            sum
        });
    });
    group.finish();
}

fn partitions(c: &mut Criterion) {
    let tt = presets::oahu_like(0.08).timetable;
    // The busiest station's conn(S).
    let busiest = tt.station_ids().max_by_key(|&s| tt.conn(s).len()).expect("non-empty network");
    let conns = tt.conn(busiest);
    let mut group = c.benchmark_group("partition");
    for (name, strat) in pt_bench::conncheck::STRATEGIES {
        group.bench_function(name, |b| {
            b.iter(|| strat.partition(conns, 8, Period::DAY));
        });
    }
    group.finish();
}

criterion_group!(benches, plf, heaps, partitions);
criterion_main!(benches);
