//! Criterion bench backing Table 1: one-to-all profile queries — CS at
//! several thread counts against the label-correcting baseline, on a small
//! Oahu-like city network and a Germany-like rail network.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pt_core::StationId;
use pt_spcs::{label_correcting, Network, ProfileEngine};
use pt_timetable::synthetic::presets;

fn bench_networks() -> Vec<(&'static str, Network)> {
    vec![
        ("oahu", Network::new(presets::oahu_like(0.08).timetable)),
        ("germany", Network::new(presets::germany_like(0.12).timetable)),
    ]
}

fn one_to_all(c: &mut Criterion) {
    for (name, net) in bench_networks() {
        let mut group = c.benchmark_group(format!("one_to_all/{name}"));
        group.sample_size(10);
        let sources: Vec<StationId> = pt_bench::random_stations(net.num_stations(), 4, 42);
        for p in [1usize, 2, 4] {
            group.bench_with_input(BenchmarkId::new("cs", p), &p, |b, &p| {
                let mut i = 0;
                b.iter(|| {
                    let s = sources[i % sources.len()];
                    i += 1;
                    ProfileEngine::new().threads(p).one_to_all(&net, s)
                });
            });
        }
        group.bench_function("lc", |b| {
            let mut i = 0;
            b.iter(|| {
                let s = sources[i % sources.len()];
                i += 1;
                label_correcting::profile_search(&net, s)
            });
        });
        group.finish();
    }
}

criterion_group!(benches, one_to_all);
criterion_main!(benches);
