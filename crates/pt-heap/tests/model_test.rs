//! Model test: the indexed heap against a reference priority map, driven by
//! random operation sequences, for both arities.

use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    PushOrDecrease { slot: usize, key: u64 },
    Pop,
    Clear,
}

fn ops(slots: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            6 => (0..slots, 0u64..1000).prop_map(|(slot, key)| Op::PushOrDecrease { slot, key }),
            3 => Just(Op::Pop),
            1 => Just(Op::Clear),
        ],
        0..200,
    )
}

fn run_model<const D: usize>(ops: Vec<Op>) -> Result<(), TestCaseError> {
    const SLOTS: usize = 24;
    let mut heap = pt_heap::IndexedHeap::<D>::new(SLOTS);
    // Reference: slot -> key, popped in (key, insertion-order-agnostic) order.
    let mut model: BTreeMap<usize, u64> = BTreeMap::new();
    for op in ops {
        match op {
            Op::PushOrDecrease { slot, key } => {
                let model_changed = match model.get(&slot) {
                    Some(&k) if k <= key => false,
                    _ => {
                        model.insert(slot, key);
                        true
                    }
                };
                let heap_changed = heap.push_or_decrease(slot, key);
                prop_assert_eq!(heap_changed, model_changed);
            }
            Op::Pop => match heap.pop() {
                None => prop_assert!(model.is_empty()),
                Some((slot, key)) => {
                    let min = *model.values().min().expect("model non-empty");
                    prop_assert_eq!(key, min, "popped key must be the minimum");
                    prop_assert_eq!(model.remove(&slot), Some(key));
                }
            },
            Op::Clear => {
                heap.clear();
                model.clear();
            }
        }
        prop_assert!(heap.check_invariants());
        prop_assert_eq!(heap.len(), model.len());
        for slot in 0..SLOTS {
            prop_assert_eq!(heap.key_of(slot), model.get(&slot).copied());
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn binary_heap_matches_model(ops in ops(24)) {
        run_model::<2>(ops)?;
    }

    #[test]
    fn quaternary_heap_matches_model(ops in ops(24)) {
        run_model::<4>(ops)?;
    }

    #[test]
    fn heapsort_property(keys in prop::collection::vec(0u64..10_000, 1..256)) {
        // Distinct slots, arbitrary keys: pops come out sorted.
        let mut h = pt_heap::QuaternaryHeap::new(keys.len());
        for (slot, &k) in keys.iter().enumerate() {
            h.push_or_decrease(slot, k);
        }
        let mut popped = Vec::with_capacity(keys.len());
        while let Some((_, k)) = h.pop() {
            popped.push(k);
        }
        let mut want = keys.clone();
        want.sort_unstable();
        prop_assert_eq!(popped, want);
    }
}
