//! Indexed d-ary min-heaps with `decrease-key`.
//!
//! The paper's searches (time-query, connection-setting, station-to-station)
//! all follow the Dijkstra pattern: a monotone priority queue over a dense
//! slot space — node ids for the time-query, `(node, connection)` pairs for
//! connection-setting — where the key of a queued element may only decrease
//! (`key(w,i) := min(key(w,i), arr_tent)`, paper §3.1). An *indexed* heap
//! stores each slot's heap position so a decrease is `O(log n)` with no
//! stale duplicates, keeping the "settled connections" counters of Tables 1
//! and 2 exact.
//!
//! The arity is a const generic: [`BinaryHeap`] (`D = 2`) matches the
//! paper's implementation ("as priority queue we use a binary heap", §5);
//! [`QuaternaryHeap`] (`D = 4`) trades comparisons for cache locality and is
//! usually faster — `pt-bench` ships an ablation comparing the two.

/// Marker for "slot not on the heap".
const INVALID_POS: u32 = u32::MAX;

/// An indexed d-ary min-heap over the dense slot space `0..capacity`.
///
/// Keys are `u64` (`(arrival_time, tiebreak)` pairs pack into one word);
/// ties are broken by slot order of insertion into the sift, which is
/// deterministic for a fixed insertion sequence.
#[derive(Debug, Clone)]
pub struct IndexedHeap<const D: usize = 2> {
    /// `(key, slot)` pairs in heap order.
    data: Vec<(u64, u32)>,
    /// `pos[slot]` = index into `data`, or `INVALID_POS`.
    pos: Vec<u32>,
}

/// The paper's queue: an indexed binary heap.
pub type BinaryHeap = IndexedHeap<2>;
/// A 4-ary variant with better cache behaviour on large queues.
pub type QuaternaryHeap = IndexedHeap<4>;

impl<const D: usize> IndexedHeap<D> {
    /// Creates a heap over the slot space `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        assert!(D >= 2, "heap arity must be at least 2");
        assert!(capacity < INVALID_POS as usize, "slot space too large");
        IndexedHeap { data: Vec::new(), pos: vec![INVALID_POS; capacity] }
    }

    /// Number of queued elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` iff no element is queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The slot-space capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.pos.len()
    }

    /// Grows the slot space to at least `capacity`, keeping queued elements.
    /// Returns `true` iff the slot space actually grew (used by workspace
    /// allocation accounting).
    pub fn grow(&mut self, capacity: usize) -> bool {
        if capacity > self.pos.len() {
            self.pos.resize(capacity, INVALID_POS);
            true
        } else {
            false
        }
    }

    /// Prepares the heap for a fresh query over the slot space
    /// `0..capacity`: grows the slot space if needed and removes all queued
    /// elements — in `O(len)`, **keeping every allocation** (both the
    /// element storage and the position index survive, so a warm heap
    /// performs no allocation at all). Returns `true` iff the slot space
    /// grew.
    pub fn reset(&mut self, capacity: usize) -> bool {
        let grew = self.grow(capacity);
        self.clear();
        grew
    }

    /// `true` iff `slot` is currently queued.
    #[inline]
    pub fn contains(&self, slot: usize) -> bool {
        self.pos[slot] != INVALID_POS
    }

    /// Current key of `slot`, if queued.
    #[inline]
    pub fn key_of(&self, slot: usize) -> Option<u64> {
        let p = self.pos[slot];
        (p != INVALID_POS).then(|| self.data[p as usize].0)
    }

    /// Inserts `slot` with `key`, or lowers its key to `key` if that is
    /// smaller than the current one. Returns `true` iff the queue changed.
    /// This is the paper's `key(w,i) := min(key(w,i), arr_tent)` operation.
    #[inline]
    pub fn push_or_decrease(&mut self, slot: usize, key: u64) -> bool {
        let p = self.pos[slot];
        if p == INVALID_POS {
            let at = self.data.len();
            self.data.push((key, slot as u32));
            self.pos[slot] = at as u32;
            self.sift_up(at);
            true
        } else if key < self.data[p as usize].0 {
            self.data[p as usize].0 = key;
            self.sift_up(p as usize);
            true
        } else {
            false
        }
    }

    /// Removes and returns the minimum `(slot, key)` element.
    #[inline]
    pub fn pop(&mut self) -> Option<(usize, u64)> {
        let &(key, slot) = self.data.first()?;
        self.pos[slot as usize] = INVALID_POS;
        let last = self.data.pop().expect("non-empty");
        if !self.data.is_empty() {
            self.data[0] = last;
            self.pos[last.1 as usize] = 0;
            self.sift_down(0);
        }
        Some((slot as usize, key))
    }

    /// Smallest key without removing it.
    #[inline]
    pub fn peek(&self) -> Option<(usize, u64)> {
        self.data.first().map(|&(k, s)| (s as usize, k))
    }

    /// Removes all queued elements (O(len), not O(capacity)).
    pub fn clear(&mut self) {
        for &(_, slot) in &self.data {
            self.pos[slot as usize] = INVALID_POS;
        }
        self.data.clear();
    }

    /// Verifies the heap invariant and position index — used by tests.
    pub fn check_invariants(&self) -> bool {
        self.data.iter().enumerate().all(|(i, &(k, s))| {
            self.pos[s as usize] == i as u32 && (i == 0 || self.data[(i - 1) / D].0 <= k)
        })
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        let item = self.data[i];
        while i > 0 {
            let parent = (i - 1) / D;
            if self.data[parent].0 <= item.0 {
                break;
            }
            self.data[i] = self.data[parent];
            self.pos[self.data[i].1 as usize] = i as u32;
            i = parent;
        }
        self.data[i] = item;
        self.pos[item.1 as usize] = i as u32;
    }

    #[inline]
    fn sift_down(&mut self, mut i: usize) {
        let item = self.data[i];
        let len = self.data.len();
        loop {
            let first_child = i * D + 1;
            if first_child >= len {
                break;
            }
            let last_child = (first_child + D).min(len);
            let mut best = first_child;
            for c in first_child + 1..last_child {
                if self.data[c].0 < self.data[best].0 {
                    best = c;
                }
            }
            if self.data[best].0 >= item.0 {
                break;
            }
            self.data[i] = self.data[best];
            self.pos[self.data[i].1 as usize] = i as u32;
            i = best;
        }
        self.data[i] = item;
        self.pos[item.1 as usize] = i as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_orders_by_key() {
        let mut h = BinaryHeap::new(10);
        for (slot, key) in [(3, 30), (1, 10), (4, 40), (2, 20)] {
            assert!(h.push_or_decrease(slot, key));
        }
        assert_eq!(h.len(), 4);
        let mut out = Vec::new();
        while let Some((slot, key)) = h.pop() {
            out.push((slot, key));
        }
        assert_eq!(out, vec![(1, 10), (2, 20), (3, 30), (4, 40)]);
        assert!(h.is_empty());
    }

    #[test]
    fn decrease_key_reorders() {
        let mut h = BinaryHeap::new(4);
        h.push_or_decrease(0, 100);
        h.push_or_decrease(1, 50);
        assert!(h.push_or_decrease(0, 10)); // decrease 100 -> 10
        assert!(!h.push_or_decrease(1, 60)); // increase is refused
        assert_eq!(h.pop(), Some((0, 10)));
        assert_eq!(h.pop(), Some((1, 50)));
    }

    #[test]
    fn contains_and_key_of_track_membership() {
        let mut h = QuaternaryHeap::new(8);
        assert!(!h.contains(5));
        h.push_or_decrease(5, 42);
        assert!(h.contains(5));
        assert_eq!(h.key_of(5), Some(42));
        h.pop();
        assert!(!h.contains(5));
        assert_eq!(h.key_of(5), None);
    }

    #[test]
    fn clear_resets_positions() {
        let mut h = BinaryHeap::new(6);
        for s in 0..6 {
            h.push_or_decrease(s, 100 - s as u64);
        }
        h.clear();
        assert!(h.is_empty());
        for s in 0..6 {
            assert!(!h.contains(s));
        }
        // Reusable after clear.
        h.push_or_decrease(2, 7);
        assert_eq!(h.pop(), Some((2, 7)));
    }

    #[test]
    fn grow_extends_slot_space() {
        let mut h = BinaryHeap::new(2);
        h.push_or_decrease(1, 5);
        assert!(h.grow(10));
        assert!(!h.grow(4), "shrinking grow must be a no-op");
        h.push_or_decrease(9, 3);
        assert_eq!(h.pop(), Some((9, 3)));
        assert_eq!(h.pop(), Some((1, 5)));
    }

    #[test]
    fn reset_clears_and_preserves_capacity() {
        let mut h = BinaryHeap::new(4);
        for s in 0..4 {
            h.push_or_decrease(s, 10 - s as u64);
        }
        assert!(h.reset(8), "first reset grows the slot space");
        assert!(h.is_empty());
        assert_eq!(h.capacity(), 8);
        h.push_or_decrease(7, 1);
        // A warm reset to the same capacity keeps everything allocated.
        assert!(!h.reset(8));
        assert!(h.is_empty());
        assert_eq!(h.capacity(), 8);
        for s in 0..8 {
            assert!(!h.contains(s));
        }
        h.push_or_decrease(3, 9);
        assert_eq!(h.pop(), Some((3, 9)));
    }

    #[test]
    fn equal_keys_all_drain() {
        let mut h = BinaryHeap::new(5);
        for s in 0..5 {
            h.push_or_decrease(s, 7);
        }
        let mut seen = [false; 5];
        while let Some((s, k)) = h.pop() {
            assert_eq!(k, 7);
            seen[s] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
