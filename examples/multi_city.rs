//! Multi-tenant serving in miniature: three city networks behind one
//! [`ShardedService`]. The router's directory maps every station to its
//! owning shard, queries and batches are demultiplexed to the owning
//! shard's persistent engines (with a per-shard cache stripe), a mixed
//! realtime feed costs each touched shard one generation bump and one
//! scoped distance-table refresh, and cross-shard requests come back as
//! typed redirects instead of wrong answers.
//!
//! ```text
//! cargo run --release --example multi_city
//! ```

use best_connections::prelude::*;
use best_connections::timetable::synthetic::city::{generate_city, CityConfig};

fn main() {
    // Three differently-seeded cities — three tenants of one process.
    let shards: Vec<Network> = [(36, 5, 7), (49, 7, 17), (25, 4, 29)]
        .into_iter()
        .map(|(n, lines, seed)| Network::new(generate_city(&CityConfig::sized(n, lines, seed))))
        .collect();
    let svc = ShardedService::builder()
        .threads(4)
        .cache(128) // per-shard stripe: one city's feed cannot evict another's hits
        .tables(TransferSelection::Fraction(0.15))
        .build(shards);

    println!("serving {} shards, {} stations total:", svc.num_shards(), svc.num_stations());
    for shard in svc.shard_ids() {
        let range = svc.station_range(shard).unwrap();
        let net = svc.network(shard).unwrap();
        println!(
            "  {shard}: stations {}..{} ({} connections, table over {} transfer stations)",
            range.start,
            range.end,
            net.timetable().num_connections(),
            svc.table(shard).unwrap().unwrap().len(),
        );
    }

    // A routed one-to-all: global id 40 lives in the second city.
    let source = StationId(40);
    let routed = svc.one_to_all(source).unwrap();
    let (owner, _) = svc.locate(source).unwrap();
    println!("\none_to_all({source}) routed to {owner}");

    // Station-to-station within the same shard rides that shard's distance
    // table; a cross-shard pair is refused with both owners named.
    let target = StationId(60);
    match svc.s2s(source, target) {
        Ok(r) => {
            println!(
                "s2s({source}, {target}) on {}: {:?} query, arr at 08:00 = {}",
                r.shard,
                r.value.kind,
                r.value.profile.eval_arr(Time::hm(8, 0), Period::DAY)
            );
        }
        Err(e) => println!("s2s({source}, {target}) refused: {e}"),
    }
    let foreign = StationId(10); // first city
    let err = svc.s2s(source, foreign).unwrap_err();
    println!("s2s({source}, {foreign}) refused: {err}");

    // Directed queries are not silently rerouted — the typed error names
    // the owner so a gateway can redirect deliberately.
    let err = svc.one_to_all_on(ShardId(0), source).unwrap_err();
    println!("one_to_all_on(shard 0, {source}) refused: {err}");
    if let RouterError::WrongShard { owner, .. } = err {
        assert_eq!(svc.one_to_all_on(owner, source).unwrap().value, routed.value);
        println!("  …redirected to {owner}: identical answer");
    }

    // A mixed realtime feed: events for shards 0 and 1 arrive interleaved;
    // each shard digests its slice in one pass. Shard 0's slice nets out
    // (delay then cancel of the same train): no generation bump, no
    // refresh. Shard 1 changes: one bump, one scoped table refresh. Shard
    // 2 is never touched at all — its cache stripe keeps every hit.
    let feed = vec![
        (
            ShardId(0),
            DelayEvent::Delay {
                train: TrainId(2),
                from_hop: 0,
                delay: Dur::minutes(12),
                recovery: Recovery::None,
            },
        ),
        (
            ShardId(1),
            DelayEvent::Delay {
                train: TrainId(5),
                from_hop: 1,
                delay: Dur::minutes(25),
                recovery: Recovery::CatchUp { per_hop: Dur::minutes(3) },
            },
        ),
        (ShardId(0), DelayEvent::Cancel { train: TrainId(2) }),
        (
            ShardId(1),
            DelayEvent::Delay {
                train: TrainId(9),
                from_hop: 0,
                delay: Dur::minutes(4),
                recovery: Recovery::None,
            },
        ),
    ];
    let summary = svc.apply_feed(&feed).unwrap();
    println!("\nmixed feed of {} events → per-event {:?}", feed.len(), summary.events);
    for outcome in &summary.shards {
        println!(
            "  {}: {} routes touched, {} table rows refreshed, generation now {}",
            outcome.shard,
            outcome.summary.touched_routes,
            outcome.table_rows_refreshed,
            svc.network(outcome.shard).unwrap().generation()
        );
    }
    assert!(summary.outcome(ShardId(2)).is_none(), "shard 2 received no events");

    // Post-feed queries keep answering — the router refreshed each touched
    // shard's table, so the §4 pruning stays hot.
    let after = svc.s2s(source, target).unwrap();
    println!(
        "post-feed s2s({source}, {target}): {:?} query, arr at 08:00 = {}",
        after.value.kind,
        after.value.profile.eval_arr(Time::hm(8, 0), Period::DAY)
    );
    let agg = svc.cache_stats().unwrap();
    println!(
        "striped cache: {} hits / {} misses over {} entries in {} stripes",
        agg.hits,
        agg.misses,
        agg.entries,
        svc.num_shards()
    );
}
