//! City commute: a Los-Angeles-like bus network, parallel profile search
//! and distance-table-accelerated station-to-station queries.
//!
//! ```text
//! cargo run --release --example city_commute
//! ```

use std::time::Instant;

use best_connections::prelude::*;
use best_connections::timetable::synthetic::presets;

fn main() {
    let scale = std::env::var("BC_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(0.25);
    let preset = presets::los_angeles_like(scale);
    let stats = preset.timetable.stats();
    println!(
        "network `{}`: {} stops, {} connections ({:.0} per stop)",
        preset.name, stats.stations, stats.connections, stats.conns_per_station
    );

    let t0 = Instant::now();
    let net = Network::new(preset.timetable);
    println!(
        "built graphs in {:.2}s: {} nodes, {} edges",
        t0.elapsed().as_secs_f64(),
        net.graph().num_nodes(),
        net.graph().num_edges()
    );

    // Parallel one-to-all profile search from a busy stop.
    let source = (0..net.num_stations() as u32)
        .map(StationId)
        .max_by_key(|&s| net.timetable().conn(s).len())
        .expect("non-empty network");
    for p in [1, 2, 4] {
        let t0 = Instant::now();
        let r = ProfileEngine::new().threads(p).one_to_all_with_stats(&net, source);
        println!(
            "one-to-all from {} on {p} thread(s): {:6.1} ms, {} settled, {} stations reachable",
            net.timetable().station(source).name,
            t0.elapsed().as_secs_f64() * 1e3,
            r.stats.settled,
            r.profiles.reachable(),
        );
    }

    // Batch layer: a morning's worth of queries through one persistent
    // engine — whole queries are distributed across the worker pool, each
    // answered on a reused workspace.
    let sources: Vec<StationId> =
        (0..net.num_stations() as u32).step_by(7).map(StationId).collect();
    let engine = ProfileEngine::new().threads(4);
    let t0 = Instant::now();
    let sets = engine.many_to_all(&net, &sources);
    let elapsed = t0.elapsed().as_secs_f64();
    println!(
        "\nbatch many-to-all: {} queries in {:.2}s ({:.1} queries/s, {} workspace grow events)",
        sets.len(),
        elapsed,
        sets.len() as f64 / elapsed.max(1e-9),
        engine.workspace_grow_events(),
    );

    // Precompute a 10 % distance table, then compare s2s with and without.
    let t0 = Instant::now();
    let table = DistanceTable::build(&net, &TransferSelection::Fraction(0.10));
    println!(
        "\ndistance table over {} transfer stations: {:.1} MiB, built in {:.1}s",
        table.len(),
        table.size_mib(),
        t0.elapsed().as_secs_f64()
    );

    let pairs = [
        (StationId(1), StationId(net.num_stations() as u32 - 2)),
        (StationId(7), StationId(net.num_stations() as u32 / 2)),
    ];
    for (s, t) in pairs {
        let plain = S2sEngine::new().threads(2).query(&net, s, t);
        let pruned = S2sEngine::new().threads(2).with_table(&table).query(&net, s, t);
        assert_eq!(plain.profile, pruned.profile, "pruning must not change results");
        println!(
            "{} → {}: {} connection points | settled {} (stopping only) vs {} ({:?} with table)",
            net.timetable().station(s).name,
            net.timetable().station(t).name,
            plain.profile.len(),
            plain.stats.settled,
            pruned.stats.settled,
            pruned.kind,
        );
        // Morning commute: leave at 08:00.
        let arr = pruned.profile.eval_arr(Time::hm(8, 0), Period::DAY);
        if arr.is_infinite() {
            println!("  unreachable");
        } else {
            println!("  leave 08:00 → arrive {arr}");
        }
    }
}
