//! Rail journey: a Germany-like railway network — the full day's best
//! connections between two cities, the CS-vs-LC comparison of Table 1, and
//! the multi-criteria (arrival, transfers) extension.
//!
//! ```text
//! cargo run --release --example rail_journey
//! ```

use std::time::Instant;

use best_connections::prelude::*;
use best_connections::spcs::{label_correcting, multicriteria};
use best_connections::timetable::synthetic::presets;

fn main() {
    let scale = std::env::var("BC_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(0.4);
    let preset = presets::germany_like(scale);
    let stats = preset.timetable.stats();
    println!(
        "network `{}`: {} stations, {} connections ({:.0} per station)",
        preset.name, stats.stations, stats.connections, stats.conns_per_station
    );
    let net = Network::new(preset.timetable);

    // Two city hubs ("Hbf" stations are the generator's hubs).
    let hubs: Vec<StationId> =
        net.station_ids().filter(|&s| net.timetable().station(s).name.ends_with("Hbf")).collect();
    let (from, to) = (hubs[0], hubs[hubs.len() / 2]);
    println!(
        "\nconnection board {} → {}:",
        net.timetable().station(from).name,
        net.timetable().station(to).name
    );

    // Profile via SPCS.
    let t0 = Instant::now();
    let cs = ProfileEngine::new().threads(2).one_to_all_with_stats(&net, from);
    let cs_time = t0.elapsed();
    let board = cs.profiles.profile(to);
    for p in board.points().iter().take(10) {
        println!("  dep {}  arr {}  (travel {})", p.dep, p.arr, p.dur());
    }
    if board.len() > 10 {
        println!("  … {} departures in total", board.len());
    }

    // The label-correcting baseline computes the same profiles, slower.
    let t0 = Instant::now();
    let lc = label_correcting::profile_search(&net, from);
    let lc_time = t0.elapsed();
    assert_eq!(lc.profiles.profile(to), board, "LC and SPCS must agree");
    println!(
        "\nSPCS (2 threads): {:5.1} ms, {:7} settled  |  LC: {:5.1} ms, {:7} label points",
        cs_time.as_secs_f64() * 1e3,
        cs.stats.settled,
        lc_time.as_secs_f64() * 1e3,
        lc.stats.settled
    );

    // Multi-criteria: minimize transfers as well (the paper's future work).
    let dep = Time::hm(9, 0);
    let pareto = multicriteria::pareto_query(&net, from, dep, to);
    println!("\nleaving at {dep}, Pareto options (arrival ⨯ transfers):");
    for o in &pareto.options {
        println!("  arrive {} with {} transfer(s)", o.arrival, o.transfers);
    }
    let scalar = best_connections::spcs::time_query::earliest_arrival(&net, from, dep, to);
    let best = pareto.options.iter().map(|o| o.arrival).min().unwrap_or(INFINITY);
    assert_eq!(best, scalar, "fastest Pareto option equals the scalar optimum");
}
