//! A feed-driven server loop in miniature — now through the real ingestion
//! stack: recorded GTFS-RT-style wire lines (CSV and JSON), decoded with
//! malformed-input quarantine, batched by the [`FeedDriver`] under
//! backpressure and applied to a live [`ShardedService`] whose queries
//! keep answering throughout.
//!
//! ```text
//! cargo run --release --example live_feed
//! ```

use best_connections::feed::{encode_csv, encode_json, FlakySource, RecordedFeed};
use best_connections::prelude::*;
use best_connections::timetable::synthetic::city::{generate_city, CityConfig};

fn main() {
    // Two city networks, each its own shard of one service.
    let nets: Vec<Network> = [(49, 7, 17), (36, 6, 23)]
        .into_iter()
        .map(|(stations, lines, seed)| {
            Network::new(generate_city(&CityConfig::sized(stations, lines, seed)))
        })
        .collect();
    let svc = ShardedService::builder().cache(64).build(nets);
    for shard in svc.shard_ids() {
        let net = svc.network(shard).unwrap();
        println!(
            "{shard}: {} stations, {} connections",
            net.num_stations(),
            net.timetable().num_connections()
        );
    }

    // A reference query we re-ask as the feed lands (global station ids:
    // shard 0 owns the first 49 stations, shard 1 the next 36).
    let (source, target) = (StationId(3), StationId(40));
    let eight = Time::hm(8, 0);
    let arr_before = query(&svc, source, target, eight);
    println!("\ndist({source}, {target}, 08:00) before feed = {arr_before}");

    // The "recorded day": delays and a cancellation as wire lines, CSV and
    // JSON mixed, plus producer garbage the decoder must quarantine —
    // never panic on — while everything else still applies.
    let wire = |h: u32, m: u32, shard: u32, event| WireEvent {
        time: Time::hm(h, m),
        shard: ShardId(shard),
        event,
    };
    let lines = vec![
        "# recorded 2026-08-08, city pair".to_string(),
        encode_csv(&wire(
            8,
            5,
            0,
            DelayEvent::Delay {
                train: TrainId(0),
                from_hop: 0,
                delay: Dur::minutes(8),
                recovery: Recovery::None,
            },
        )),
        encode_json(&wire(
            8,
            7,
            1,
            DelayEvent::Delay {
                train: TrainId(2),
                from_hop: 1,
                delay: Dur::minutes(12),
                recovery: Recovery::CatchUp { per_hop: Dur::minutes(2) },
            },
        )),
        "8:15,0,delay,oops".to_string(), // malformed: quarantined, not fatal
        encode_csv(&wire(8, 20, 0, DelayEvent::Cancel { train: TrainId(0) })),
        encode_csv(&wire(
            8,
            30,
            0,
            DelayEvent::Delay {
                train: TrainId(9),
                from_hop: 1,
                delay: Dur::minutes(40),
                recovery: Recovery::CatchUp { per_hop: Dur::minutes(5) },
            },
        )),
    ];

    // Poll it through a flaky transport: every third poll fails with a
    // transient error the driver absorbs by retrying with backoff.
    let mut src = FlakySource::new(RecordedFeed::new(lines, 2), 3);
    let mut driver = FeedDriver::new(&svc, FeedDriverConfig::replay());
    let stats = driver.run(&mut src).expect("recorded feed never fails permanently");

    println!("\nfeed driver: {stats}");
    assert_eq!(stats.quarantine.total, 1, "exactly the garbage line");
    for (line_no, line, err) in &stats.quarantine.samples {
        println!("  quarantined line {line_no}: {line:?} — {err}");
    }

    // Serving state moved under us (snapshot-published per shard).
    let gens: Vec<String> = svc
        .shard_ids()
        .map(|sh| {
            let n = svc.network(sh).unwrap();
            format!("{sh} gen {}", n.generation())
        })
        .collect();
    println!("\nshard generations after feed: {}", gens.join(", "));
    let arr_after = query(&svc, source, target, eight);
    println!("dist({source}, {target}, 08:00) after feed = {arr_after}");
}

fn query(svc: &ShardedService, source: StationId, target: StationId, dep: Time) -> Time {
    let routed = svc.s2s(source, target).expect("stations exist");
    let period = svc.network(routed.shard).expect("routed shard exists").timetable().period();
    routed.value.profile.eval_arr(dep, period)
}
