//! A feed-driven server loop in miniature: a live network under batches of
//! realtime updates (delays *and* cancellations), a distance table kept hot
//! by incremental refreshes, and station-to-station queries that recover
//! from a stale table through the typed error instead of crashing.
//!
//! ```text
//! cargo run --release --example live_feed
//! ```

use best_connections::prelude::*;
use best_connections::timetable::synthetic::city::{generate_city, CityConfig};

fn main() {
    let net_tt = generate_city(&CityConfig::sized(49, 7, 17));
    let mut net = Network::new(net_tt);
    let mut table = DistanceTable::build(&net, &TransferSelection::Fraction(0.15));
    println!(
        "network: {} stations, {} connections; distance table over {} transfer stations",
        net.num_stations(),
        net.timetable().num_connections(),
        table.len()
    );

    let (source, target) = (StationId(3), StationId(40));

    // Two feed batches: a cluster of delays, then a partial recovery where
    // one train's announcements are withdrawn entirely.
    let feeds: [Vec<DelayEvent>; 2] = [
        // Small disruptions that keep every route overtaking-free: the
        // whole batch lands on the incremental repatch path.
        vec![
            DelayEvent::Delay {
                train: TrainId(0),
                from_hop: 0,
                delay: Dur::minutes(8),
                recovery: Recovery::None,
            },
            DelayEvent::Delay {
                train: TrainId(0),
                from_hop: 2,
                delay: Dur::minutes(3),
                recovery: Recovery::CatchUp { per_hop: Dur::minutes(1) },
            },
        ],
        // A recovery plus a disruption big enough to overtake: the first
        // train's announcements are withdrawn, the second forces the
        // fallback — scoped to its own route.
        vec![
            DelayEvent::Cancel { train: TrainId(0) },
            DelayEvent::Delay {
                train: TrainId(9),
                from_hop: 1,
                delay: Dur::minutes(40),
                recovery: Recovery::CatchUp { per_hop: Dur::minutes(5) },
            },
        ],
    ];

    for (i, feed) in feeds.iter().enumerate() {
        let summary = net.apply_feed(feed);
        println!(
            "\nfeed {i}: {} events -> {:?}; {} routes touched ({} repatched, {} refit), \
             generation {}",
            feed.len(),
            summary.events,
            summary.touched_routes,
            summary.repatched_routes,
            summary.refit_routes,
            net.generation()
        );

        // The table snapshot predates the feed: the engine refuses with a
        // typed error a server can act on…
        let stale =
            S2sEngine::new().with_table(&table).try_query(&net, source, target).unwrap_err();
        println!("  query rejected: {stale}");
        assert!(stale.refreshable());
        // …by refreshing only the rows the feed can have changed.
        let rows = table.refresh(&net).expect("same network");
        println!("  refreshed {rows}/{} table rows", table.len());
        let result = S2sEngine::new()
            .with_table(&table)
            .try_query(&net, source, target)
            .expect("fresh table answers");
        let eight = Time::hm(8, 0);
        println!(
            "  dist({source}, {target}, 08:00) = {} ({:?} query, {} settled)",
            result.profile.eval_arr(eight, net.timetable().period()),
            result.kind,
            result.stats.settled
        );
    }
}
