//! GTFS round-trip: export a synthetic network as a GTFS-subset directory,
//! load it back, and verify that queries agree — the ingestion path a real
//! feed (the paper's Google-Transit inputs) would take.
//!
//! ```text
//! cargo run --release --example gtfs_roundtrip [output-dir]
//! ```

use best_connections::prelude::*;
use best_connections::timetable::gtfs;
use best_connections::timetable::synthetic::presets;

fn main() {
    let dir = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("best-connections-gtfs"));

    let preset = presets::oahu_like(0.15);
    let original = preset.timetable;
    println!(
        "exporting `{}` ({} stops, {} connections) to {}",
        preset.name,
        original.num_stations(),
        original.num_connections(),
        dir.display()
    );
    gtfs::save_dir(&original, &dir).expect("GTFS export");
    for f in ["stops.txt", "routes.txt", "trips.txt", "stop_times.txt", "transfers.txt"] {
        let len = std::fs::metadata(dir.join(f)).map(|m| m.len()).unwrap_or(0);
        println!("  wrote {f:<15} {len:>9} bytes");
    }

    let loaded = gtfs::load_dir(&dir, Period::DAY, Dur::ZERO).expect("GTFS import");
    println!(
        "\nreloaded: {} stops, {} trains, {} connections",
        loaded.num_stations(),
        loaded.num_trains(),
        loaded.num_connections()
    );
    assert_eq!(loaded.num_stations(), original.num_stations());
    assert_eq!(loaded.num_connections(), original.num_connections());

    // Same profiles before and after the round-trip.
    let net_a = Network::new(original);
    let net_b = Network::new(loaded);
    let source = StationId(0);
    let a = ProfileEngine::new().one_to_all(&net_a, source);
    let b = ProfileEngine::new().one_to_all(&net_b, source);
    let agree = net_a.station_ids().filter(|&s| a.profile(s) == b.profile(s)).count();
    println!("profiles agree for {agree}/{} stations", net_a.num_stations());
    assert_eq!(agree, net_a.num_stations(), "round-trip must preserve semantics");
    println!("round-trip OK");
}
