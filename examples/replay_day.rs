//! Record one synthetic feed day, then replay it through a sharded
//! service — the miniature of the `replay` phase in the throughput bench:
//!
//! 1. **record**: generate a day of delay/cancel events against the
//!    paper-style presets, timestamped 06:00→18:00, and encode them as
//!    wire lines (CSV and JSON alternating, a few comments sprinkled in);
//! 2. **replay**: stream the recording through a [`FeedDriver`] over a
//!    fresh [`ShardedService`] and print the [`FeedStats`] — on a clean
//!    recorded day the quarantine must come back empty.
//!
//! ```text
//! cargo run --release --example replay_day
//! ```

use best_connections::feed::{encode_csv, encode_json, RecordedFeed};
use best_connections::prelude::*;
use best_connections::timetable::synthetic::presets::all_presets;
use pt_bench::random_feed;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The service under feed: every preset becomes a shard.
    let nets: Vec<Network> =
        all_presets(0.2).into_iter().map(|p| Network::new(p.timetable)).collect();
    let num_shards = nets.len();
    let svc = ShardedService::builder().build(nets);
    let trains: Vec<u32> = svc
        .shard_ids()
        .map(|sh| svc.network(sh).unwrap().timetable().num_trains() as u32)
        .collect();
    println!(
        "service: {num_shards} shards, {} stations, trains per shard {trains:?}",
        svc.num_stations()
    );

    // --- record -----------------------------------------------------------
    let events = 600usize;
    let mut rng = StdRng::seed_from_u64(0xDA7);
    let mut lines = vec!["# one recorded service day, synthetic".to_string()];
    for i in 0..events {
        let shard = i % num_shards;
        let event = random_feed(&mut rng, trains[shard], 1, 45).pop().unwrap();
        let wire = WireEvent {
            // One day of producer time: 06:00 + i/events * 12h, monotone.
            time: Time(6 * 3600 + (i * 43_200 / events) as u32),
            shard: ShardId(shard as u32),
            event,
        };
        lines.push(if i % 2 == 0 { encode_csv(&wire) } else { encode_json(&wire) });
        if i % 200 == 199 {
            lines.push(format!("# checkpoint after {} events", i + 1));
        }
    }
    println!("recorded {} lines ({} events)", lines.len(), events);
    println!("  first: {}", lines[1]);
    println!("  then:  {}", lines[2]);

    // --- replay -----------------------------------------------------------
    // 64 lines per poll ≈ a bursty producer; the driver batches them into
    // bounded windows and applies one apply_feed per touched shard.
    let mut src = RecordedFeed::new(lines, 64);
    let mut driver = FeedDriver::new(&svc, FeedDriverConfig::replay());
    let start = std::time::Instant::now();
    let stats = driver.run(&mut src).expect("recorded day replays cleanly");
    let elapsed = start.elapsed();

    println!("\nreplay finished in {elapsed:.2?}:\n{stats}");
    println!(
        "\nend-to-end {:.0} events/s (decode + batch + apply)",
        stats.events_applied as f64 / elapsed.as_secs_f64()
    );
    assert!(stats.quarantine.is_empty(), "a clean recording never quarantines");
    assert_eq!(stats.events_applied as usize, events);

    let gens: Vec<String> = svc
        .shard_ids()
        .map(|sh| format!("{sh} gen {}", svc.network(sh).unwrap().generation()))
        .collect();
    println!("shard generations: {}", gens.join(", "));
}
