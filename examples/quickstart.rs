//! Quickstart: build a toy timetable, run a profile search, evaluate it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use best_connections::prelude::*;

fn main() {
    // Three stations on a line, with an hourly service 06:00–22:00 and a
    // faster express every two hours.
    let mut b = TimetableBuilder::new(Period::DAY);
    let airport = b.add_named_station("Airport", Dur::minutes(5));
    let center = b.add_named_station("City Center", Dur::minutes(3));
    let harbor = b.add_named_station("Harbor", Dur::minutes(2));

    for h in 6..22 {
        // Local: Airport → Center → Harbor, 25 + 15 minutes.
        b.add_simple_trip(
            &[airport, center, harbor],
            Time::hm(h, 0),
            &[Dur::minutes(25), Dur::minutes(15)],
            Dur::minutes(1),
        )
        .expect("valid trip");
        if h % 2 == 0 {
            // Express: Airport → Harbor direct, 30 minutes, at :30.
            b.add_simple_trip(&[airport, harbor], Time::hm(h, 30), &[Dur::minutes(30)], Dur::ZERO)
                .expect("valid trip");
        }
    }
    let tt = b.build().expect("valid timetable");
    println!(
        "timetable: {} stations, {} trains, {} elementary connections",
        tt.num_stations(),
        tt.num_trains(),
        tt.num_connections()
    );

    // One-to-all profile search (the paper's SPCS), on two threads.
    let mut net = Network::new(tt);
    let engine = ProfileEngine::new().threads(2).with_cache(32);
    let result = engine.one_to_all_with_stats(&net, airport);
    println!(
        "one-to-all from Airport: settled {} queue elements ({} self-pruned)",
        result.stats.settled, result.stats.self_pruned
    );

    // The full day's best connections Airport → Harbor.
    let profile = result.profiles.profile(harbor);
    println!("\nAirport → Harbor has {} useful departures:", profile.len());
    for p in profile.points().iter().take(8) {
        println!("  depart {}  →  arrive {}  ({})", p.dep, p.arr, p.dur());
    }
    println!("  ...");

    // Evaluate the profile: "I reach the airport at 09:10 — when am I at
    // the harbor?"
    let dep = Time::hm(9, 10);
    let arr = profile.eval_arr(dep, Period::DAY);
    println!("\nleaving at {dep}, earliest arrival at Harbor: {arr}");

    // A station-to-station query answers the same question with less work.
    let s2s = S2sEngine::new().query(&net, airport, harbor);
    assert_eq!(s2s.profile.eval_arr(dep, Period::DAY), arr);
    println!(
        "station-to-station query settled {} elements (vs {} one-to-all)",
        s2s.stats.settled, result.stats.settled
    );

    // The fully dynamic scenario: a repeated query hits the engine's
    // generation-keyed cache; a live delay invalidates it and the next
    // query searches the patched network — no rebuild, warm workspaces.
    let repeat = engine.one_to_all_with_stats(&net, airport);
    assert_eq!(repeat.stats.cache_hits, 1);
    let update = net.apply_delay(TrainId(0), 0, Dur::minutes(10), Recovery::None);
    let after = engine.one_to_all_with_stats(&net, airport);
    assert_eq!(after.stats.cache_misses, 1);
    println!(
        "\ndelay update ({update:?}): cached repeat answered with no search, \
         post-delay query re-searched ({} settled)",
        after.stats.settled
    );
}
