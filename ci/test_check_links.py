"""Unit tests for check_links.py (run via `python3 -m unittest discover ci`)."""

import tempfile
import unittest
from pathlib import Path

import check_links


class CheckLinksTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = Path(self._tmp.name)
        (self.root / "docs").mkdir()

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, rel, text):
        p = self.root / rel
        p.write_text(text, encoding="utf-8")
        return p

    def test_resolving_relative_link_passes(self):
        self.write("docs/ARCHITECTURE.md", "# a\n")
        readme = self.write("README.md", "see [arch](docs/ARCHITECTURE.md)\n")
        self.assertEqual(check_links.check_file(readme, self.root), [])

    def test_broken_relative_link_fails_with_location(self):
        readme = self.write("README.md", "x\nsee [gone](docs/NOPE.md)\n")
        errors = check_links.check_file(readme, self.root)
        self.assertEqual(len(errors), 1)
        self.assertIn("README.md:2", errors[0])
        self.assertIn("docs/NOPE.md", errors[0])

    def test_external_and_anchor_links_are_skipped(self):
        readme = self.write(
            "README.md",
            "[a](https://example.com/x) [b](#section) [c](mailto:x@y.z)\n",
        )
        self.assertEqual(check_links.check_file(readme, self.root), [])

    def test_anchor_suffix_is_stripped_before_resolution(self):
        self.write("docs/ARCHITECTURE.md", "# a\n")
        readme = self.write("README.md", "[arch](docs/ARCHITECTURE.md#data-flow)\n")
        self.assertEqual(check_links.check_file(readme, self.root), [])

    def test_links_inside_code_fences_are_ignored(self):
        readme = self.write(
            "README.md",
            "```text\n[not a link](nowhere.md)\n```\n",
        )
        self.assertEqual(check_links.check_file(readme, self.root), [])

    def test_sibling_relative_link_resolves_from_containing_file(self):
        self.write("docs/OTHER.md", "# o\n")
        doc = self.write("docs/ARCHITECTURE.md", "[o](OTHER.md)\n")
        self.assertEqual(check_links.check_file(doc, self.root), [])

    def test_main_reports_failure_exit_code(self):
        self.write("README.md", "[gone](missing.md)\n")
        self.assertEqual(check_links.main(["check_links.py", str(self.root)]), 1)

    def test_main_ok_exit_code(self):
        self.write("README.md", "plain text, no links\n")
        self.assertEqual(check_links.main(["check_links.py", str(self.root)]), 0)


if __name__ == "__main__":
    unittest.main()
