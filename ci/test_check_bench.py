"""Unit tests for the check_bench.py gate (run by CI: `python3 -m unittest
discover ci`). They pin the behavior the bench pipeline leans on: a config
mismatch *fails* the gate (it does not silently skip), the drop tolerance
fires at the documented threshold, and disappearing metrics are caught.
"""

import unittest

import check_bench


def doc(qps=100.0, hit_rate=0.5, queries=4, scale=0.05):
    """A minimal throughput document exercising config_of/metrics_of."""
    return {
        "scale": scale,
        "threads": 4,
        "networks": [
            {
                "name": "Oahu",
                "stations": 100,
                "one_to_all": {"queries": queries, "cached": {"hit_rate": hit_rate}},
                "feed": {"events_per_sec": qps},
                "kernel": {"soa_qps": qps},
            }
        ],
        "shard": {"events_per_sec": qps, "hit_rate": hit_rate},
        "concurrent": {"queries_per_sec": qps, "clients": 4},
        "gateway": {"cross_queries_per_sec": qps},
    }


def baseline_for(document, headroom=1.0):
    metrics = check_bench.metrics_of(document)
    for key in metrics:
        if key.endswith(check_bench.THROUGHPUT_SUFFIXES):
            metrics[key] = round(metrics[key] * headroom, 3)
    return {"config": check_bench.config_of(document), "metrics": metrics}


class GateTest(unittest.TestCase):
    def test_matching_config_and_steady_metrics_pass(self):
        current = doc()
        self.assertEqual(check_bench.gate(current, baseline_for(current)), [])

    def test_config_mismatch_is_an_error_not_a_skip(self):
        current = doc()
        drifted = baseline_for(doc(queries=99))
        errors = check_bench.gate(current, drifted)
        self.assertEqual(len(errors), 1)
        self.assertIn("baseline config differs", errors[0])
        self.assertIn("BC_ALLOW_CONFIG_DRIFT=1", errors[0])

    def test_config_drift_opt_out_skips_loudly(self):
        current = doc()
        drifted = baseline_for(doc(queries=99))
        self.assertIsNone(check_bench.gate(current, drifted, allow_drift=True))

    def test_drift_opt_out_does_not_waive_real_drops(self):
        # The opt-out skips only the config check; with matching configs a
        # dropped metric still fails.
        current = doc(qps=50.0)
        baseline = baseline_for(doc(qps=100.0))
        errors = check_bench.gate(current, baseline, allow_drift=True)
        self.assertTrue(errors)

    def test_drop_tolerance_boundary(self):
        baseline = baseline_for(doc(qps=100.0))
        at_floor = doc(qps=100.0 * check_bench.DROP_TOLERANCE)
        self.assertEqual(check_bench.gate(at_floor, baseline), [])
        below = doc(qps=100.0 * check_bench.DROP_TOLERANCE - 1.0)
        errors = check_bench.gate(below, baseline)
        self.assertTrue(any("dropped more than" in e for e in errors))

    def test_gateway_metric_is_gated(self):
        current = doc()
        current["gateway"]["cross_queries_per_sec"] = 1.0
        errors = check_bench.gate(current, baseline_for(doc()))
        self.assertTrue(any("gateway.cross_queries_per_sec" in e for e in errors))

    def test_disappearing_metric_fails(self):
        current = doc()
        del current["gateway"]
        errors = check_bench.gate(current, baseline_for(doc()))
        self.assertTrue(any("disappeared" in e for e in errors))

    def test_hit_rates_are_stored_exactly_but_throughputs_floored(self):
        halved = baseline_for(doc(qps=100.0), headroom=0.5)
        self.assertEqual(halved["metrics"]["Oahu.feed.events_per_sec"], 50.0)
        self.assertEqual(halved["metrics"]["Oahu.cached.hit_rate"], 0.5)


if __name__ == "__main__":
    unittest.main()
