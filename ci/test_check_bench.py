"""Unit tests for the check_bench.py gate (run by CI: `python3 -m unittest
discover ci`). They pin the behavior the bench pipeline leans on: a config
mismatch *fails* the gate (it does not silently skip), the drop tolerance
fires at the documented threshold, and disappearing metrics are caught.
"""

import unittest

import check_bench


def doc(qps=100.0, hit_rate=0.5, queries=4, scale=0.05):
    """A structurally valid throughput document (passes `validate`) small
    enough to mutate per test; stations stay below MIN_KERNEL_STATIONS and
    host_cpus is 1 so the large-network / multi-core floors do not apply."""
    return {
        "scale": scale,
        "threads": 4,
        "networks": [
            {
                "name": "Oahu",
                "stations": 100,
                "one_to_all": {
                    "queries": queries,
                    "cached": {"hits": queries, "hit_rate": hit_rate},
                },
                "feed": {
                    "events": 40,
                    "events_per_sec": qps,
                    "feeds": 4,
                    "generation_bumps": 4,
                    "routes_touched": 10,
                    "routes_repatched": 8,
                    "routes_refit": 2,
                    "post_feed_cache_hit_rate": hit_rate,
                },
                "s2s": {"batch_qps": qps, "batch_speedup_vs_cold": 1.2},
                "kernel": {
                    "queries": queries,
                    "scalar_qps": qps,
                    "soa_qps": qps,
                    "soa_speedup": 1.0,
                    "merge_ratio": 1.0,
                    "bucket_phases": 5,
                    "lane_chunks": 5,
                },
                "publish": {
                    "publishes": 8,
                    "p50_ns": 1000,
                    "p99_ns": 2000,
                    "full_clone_ns": 9000,
                    "speedup_vs_full_clone": 9.0,
                    "buckets_copied": 2,
                    "buckets_shared": 6,
                    "routes_shared": 6,
                },
            }
        ],
        "shard": {
            "shards": 3,
            "stations_total": 300,
            "queries": queries * 3,
            "qps": qps,
            "replay_qps": qps,
            "hit_rate": hit_rate,
            "shard_balance": 1.5,
            "feeds": 5,
            "events": 300,
            "events_per_sec": qps,
            "generation_bumps": 15,
        },
        "concurrent": {
            "clients": 4,
            "queries": queries * 12,
            "queries_per_sec": qps,
            "single_thread_qps": qps,
            "speedup_vs_single_thread": 1.0,
            "feed_events": 100,
            "publishes": 10,
            "host_cpus": 1,
        },
        "gateway": {
            "shards": 3,
            "border_groups": 2,
            "queries": 16,
            "cross_queries_per_sec": qps,
            "mono_queries_per_sec": qps * 2,
            "stitch_overhead": 2.0,
            "feed_rows_refreshed": 4,
        },
        "replay": {
            "shards": 3,
            "lines": 401,
            "events": 400,
            "events_per_sec": qps,
            "batches": 2,
            "changed_batches": 2,
            "quarantined": 0,
            "out_of_order": 0,
            "max_queue": 319,
        },
        "pool": {"executed": 100, "stolen": 10},
    }


def baseline_for(document, headroom=1.0):
    metrics = check_bench.metrics_of(document)
    for key in metrics:
        if key.endswith(check_bench.THROUGHPUT_SUFFIXES):
            metrics[key] = round(metrics[key] * headroom, 3)
    return {"config": check_bench.config_of(document), "metrics": metrics}


class GateTest(unittest.TestCase):
    def test_matching_config_and_steady_metrics_pass(self):
        current = doc()
        self.assertEqual(check_bench.gate(current, baseline_for(current)), [])

    def test_config_mismatch_is_an_error_not_a_skip(self):
        current = doc()
        drifted = baseline_for(doc(queries=99))
        errors = check_bench.gate(current, drifted)
        self.assertEqual(len(errors), 1)
        self.assertIn("baseline config differs", errors[0])
        self.assertIn("BC_ALLOW_CONFIG_DRIFT=1", errors[0])

    def test_config_drift_opt_out_skips_loudly(self):
        current = doc()
        drifted = baseline_for(doc(queries=99))
        self.assertIsNone(check_bench.gate(current, drifted, allow_drift=True))

    def test_drift_opt_out_does_not_waive_real_drops(self):
        # The opt-out skips only the config check; with matching configs a
        # dropped metric still fails.
        current = doc(qps=50.0)
        baseline = baseline_for(doc(qps=100.0))
        errors = check_bench.gate(current, baseline, allow_drift=True)
        self.assertTrue(errors)

    def test_drop_tolerance_boundary(self):
        baseline = baseline_for(doc(qps=100.0))
        at_floor = doc(qps=100.0 * check_bench.DROP_TOLERANCE)
        self.assertEqual(check_bench.gate(at_floor, baseline), [])
        below = doc(qps=100.0 * check_bench.DROP_TOLERANCE - 1.0)
        errors = check_bench.gate(below, baseline)
        self.assertTrue(any("dropped more than" in e for e in errors))

    def test_gateway_metric_is_gated(self):
        current = doc()
        current["gateway"]["cross_queries_per_sec"] = 1.0
        errors = check_bench.gate(current, baseline_for(doc()))
        self.assertTrue(any("gateway.cross_queries_per_sec" in e for e in errors))

    def test_disappearing_metric_fails(self):
        current = doc()
        del current["gateway"]
        errors = check_bench.gate(current, baseline_for(doc()))
        self.assertTrue(any("disappeared" in e for e in errors))

    def test_replay_metric_is_gated(self):
        current = doc()
        current["replay"]["events_per_sec"] = 1.0
        errors = check_bench.gate(current, baseline_for(doc()))
        self.assertTrue(any("replay.events_per_sec" in e for e in errors))

    def test_replay_quarantine_fails_validation(self):
        # The recorded replay day is clean by construction; any quarantined
        # line is a decoder/recorder regression and must fail validation
        # outright (not just drop a throughput number).
        dirty = doc()
        dirty["replay"]["quarantined"] = 3
        errors = check_bench.validate(dirty)
        self.assertTrue(any("quarantined 3 line(s)" in e for e in errors))
        clean_errors = check_bench.validate(doc())
        self.assertFalse(any("quarantined" in e for e in clean_errors))

    def test_missing_replay_phase_fails_validation(self):
        gone = doc()
        del gone["replay"]
        errors = check_bench.validate(gone)
        self.assertTrue(any("replay phase missing" in e for e in errors))

    def test_hit_rates_are_stored_exactly_but_throughputs_floored(self):
        halved = baseline_for(doc(qps=100.0), headroom=0.5)
        self.assertEqual(halved["metrics"]["Oahu.feed.events_per_sec"], 50.0)
        self.assertEqual(halved["metrics"]["Oahu.cached.hit_rate"], 0.5)


if __name__ == "__main__":
    unittest.main()
