#!/usr/bin/env python3
"""Validate BENCH_spcs.json and gate perf regressions against a baseline.

Two jobs, both exercised by CI after the `throughput` smoke run:

1. **Structural validation** (always): the document written by
   `cargo run --release -p pt-bench --bin throughput` must carry every
   phase — per-network cold/warm/batch/cached/feed numbers with their
   invariants (cache hits on a replay, at most one generation bump per
   feed, one rewrite per touched route), the kernel ablation (the SoA
   bucket-ring kernel actually ran — live bucket/lane counters — and on
   large networks, >= MIN_KERNEL_STATIONS stations, keeps pace with the
   scalar heap: soa_speedup >= 0.95 and merge_ratio <= 1.10), the s2s
   batch path at least breaking even with cold queries
   (batch_speedup_vs_cold >= 0.95), the shard phase (>= 2 shards,
   routed queries, striped-cache hit rate, mixed-feed events/sec, at most
   one bump per shard per feed), the publish phase (copy-on-write
   snapshot cost: something shared AND something copied per publish; on
   large networks a single-train-delay publish must be >=
   PUBLISH_MIN_SPEEDUP x faster than the pre-CoW full clone, and across
   networks the p50 publish cost must not scale super-linearly with
   station count — the Oahu-vs-Metro ratio bound), the concurrent phase
   (>= 2 clients against one shared service, snapshots actually published
   mid-flight; the speedup-over-single-thread floor applies only when the
   host has >= 2 cpus — on a 1-cpu host the clients time-slice one core,
   aggregate q/s below the single-thread reference is expected, and the
   absolute q/s floor in the baseline is the gate instead), the gateway
   phase (>= 2 shards stitched at >= 1 border group: cross-shard q/s, the
   merged-monolith reference q/s and their ratio — the stitch overhead —
   plus the border rows the mid-phase feed refreshed), the replay phase
   (the pt-feed ingestion loop streaming one recorded feed day through a
   sharded service: events ingested at > 0 events/sec, at least one
   batch applied, and **zero quarantined lines** — the recorded day is
   clean by construction, so any quarantine means the decoder or the
   recorder regressed) and the work-stealing pool counters
   (stolen <= executed).

2. **Regression gate** (when a baseline file is given): fail on a >30%
   drop in any `events_per_sec` metric or any cached `hit_rate` against
   `BENCH_baseline.json`, printing a trend table either way. A baseline
   whose recorded config differs from the current run is itself a
   failure — a gate that silently skips is a gate that is off — unless
   `BC_ALLOW_CONFIG_DRIFT=1` deliberately waives it for the run.

The committed baseline stores *conservative floors*, not raw measurements:
CI hardware varies run to run, so `--update-baseline` scales every
throughput metric by `--headroom` (default 0.5) before writing. Hit rates
are deterministic for a fixed workload and are stored as measured.

Usage:
    check_bench.py CURRENT.json [BASELINE.json]
    check_bench.py --update-baseline CURRENT.json BASELINE.json [--headroom 0.5]
"""

import argparse
import json
import os
import sys

# Fraction of the baseline a throughput metric may drop to before the gate
# fails (the ISSUE's ">30% drop" criterion).
DROP_TOLERANCE = 0.70

# Metrics whose baseline entry is deflated by --headroom (machine-speed
# dependent); everything else (hit rates) is stored exactly.
THROUGHPUT_SUFFIXES = ("events_per_sec", "queries_per_sec")

# Networks at least this large must show the SoA kernel keeping pace with
# the scalar heap (the small paper presets resolve below the kernel's
# intended slot regime and are not held to the speedup floor).
MIN_KERNEL_STATIONS = 200

# On networks >= MIN_KERNEL_STATIONS stations, a single-train-delay
# publish (spine clone + pointer swap) must beat the pre-CoW full deep
# clone by at least this factor. Small presets publish in a few
# microseconds where fixed costs dominate; they are validated but not
# held to the floor.
PUBLISH_MIN_SPEEDUP = 5.0

# The publish cost may grow at most this factor faster than the station
# count between two networks: p50_big / p50_small must stay within
# PUBLISH_SCALE_SLACK * (stations_big / stations_small). An O(network)
# publish (deep clones sneaking back in) scales with connections x
# profile points and blows through this; the O(touched) spine clone does
# not.
PUBLISH_SCALE_SLACK = 3.0


def fail(errors):
    for e in errors:
        print(f"FAIL: {e}", file=sys.stderr)
    sys.exit(1)


def validate(doc):
    """Structural checks on one throughput document; returns error strings."""
    errors = []

    def check(cond, msg):
        if not cond:
            errors.append(msg)

    networks = doc.get("networks", [])
    check(networks, "no networks in document")
    # Parallel-speedup floors (s2s batch, concurrent aggregate) need a
    # host that can actually run threads side by side; on a 1-cpu host
    # they degenerate to scheduling overhead and only absolute-throughput
    # checks are meaningful.
    host_cpus = doc.get("concurrent", {}).get("host_cpus", 1)
    for net in networks:
        name = net.get("name", "?")
        cached = net["one_to_all"]["cached"]
        check(cached["hits"] > 0, f"{name}: cached phase recorded no hits: {cached}")
        check(cached["hit_rate"] > 0, f"{name}: cached hit rate is zero: {cached}")
        feed = net["feed"]
        check(feed["events"] > 0, f"{name}: feed phase ran no events: {feed}")
        check(feed["events_per_sec"] > 0, f"{name}: feed events/sec is zero: {feed}")
        check(
            0 < feed["generation_bumps"] <= feed["feeds"],
            f"{name}: {feed['generation_bumps']} bumps for {feed['feeds']} feeds",
        )
        check(
            feed["routes_repatched"] + feed["routes_refit"] <= feed["routes_touched"],
            f"{name}: a route was rewritten twice: {feed}",
        )
        check(
            feed["post_feed_cache_hit_rate"] > 0,
            f"{name}: post-feed replay never hit: {feed}",
        )
        s2s = net["s2s"]
        if host_cpus >= 2:
            check(
                s2s["batch_speedup_vs_cold"] >= 0.95,
                f"{name}: s2s batch slower than cold queries: "
                f"speedup {s2s['batch_speedup_vs_cold']:.3f} < 0.95",
            )
        else:
            check(
                s2s["batch_qps"] > 0,
                f"{name}: s2s batch throughput is zero: {s2s}",
            )
        kernel = net["kernel"]
        check(kernel["queries"] > 0, f"{name}: kernel phase ran no queries: {kernel}")
        check(
            kernel["scalar_qps"] > 0 and kernel["soa_qps"] > 0,
            f"{name}: kernel phase recorded no throughput: {kernel}",
        )
        check(
            kernel["bucket_phases"] > 0 and kernel["lane_chunks"] > 0,
            f"{name}: SoA kernel counters are dead (did the forced-Soa "
            f"path really run?): {kernel}",
        )
        if net["stations"] >= MIN_KERNEL_STATIONS:
            check(
                kernel["soa_speedup"] >= 0.95,
                f"{name}: SoA kernel slower than scalar on a large network: "
                f"speedup {kernel['soa_speedup']:.3f} < 0.95",
            )
            check(
                0 < kernel["merge_ratio"] <= 1.10,
                f"{name}: SoA master-merge did not hold its ground: "
                f"merge_ratio {kernel['merge_ratio']:.3f}",
            )
        pub = net.get("publish")
        check(pub is not None, f"{name}: publish phase missing from document")
        if pub is not None:
            check(pub["publishes"] > 0, f"{name}: no publishes measured: {pub}")
            check(
                0 < pub["p50_ns"] <= pub["p99_ns"],
                f"{name}: impossible publish percentiles: {pub}",
            )
            check(pub["full_clone_ns"] > 0, f"{name}: no full-clone reference: {pub}")
            check(
                pub["buckets_copied"] > 0,
                f"{name}: a changed feed must copy its touched buckets: {pub}",
            )
            check(
                pub["buckets_shared"] > 0 and pub["routes_shared"] > 0,
                f"{name}: publishes shared nothing — copy-on-write is off: {pub}",
            )
            if net["stations"] >= MIN_KERNEL_STATIONS:
                check(
                    pub["speedup_vs_full_clone"] >= PUBLISH_MIN_SPEEDUP,
                    f"{name}: publish only {pub['speedup_vs_full_clone']:.2f}x "
                    f"faster than a full clone (< {PUBLISH_MIN_SPEEDUP}x) — "
                    "is the publish path deep-cloning again?",
                )

    # Cross-network scaling gate: the p50 publish cost of the largest
    # network vs the smallest (Oahu vs Metro on the default preset list)
    # must stay within PUBLISH_SCALE_SLACK of their station-count ratio —
    # a spine clone scales with the station/route counts, a deep clone
    # with connections x profile points.
    sized = [
        (net["stations"], net["publish"]["p50_ns"], net["name"])
        for net in networks
        if net.get("publish") and net["publish"]["p50_ns"] > 0 and net["stations"] > 0
    ]
    if len(sized) >= 2:
        small = min(sized)
        big = max(sized)
        ratio = big[1] / small[1]
        bound = PUBLISH_SCALE_SLACK * (big[0] / small[0])
        check(
            ratio <= bound,
            f"publish cost scales with network size: {big[2]} p50 {big[1]}ns is "
            f"{ratio:.1f}x {small[2]}'s {small[1]}ns, allowed "
            f"{bound:.1f}x for {big[0]}/{small[0]} stations",
        )

    shard = doc.get("shard")
    check(shard is not None, "shard phase missing from document")
    if shard is not None:
        check(shard["shards"] >= 2, f"shard phase needs >= 2 shards: {shard}")
        check(shard["queries"] > 0 and shard["qps"] > 0, f"no routed queries: {shard}")
        check(
            shard["hit_rate"] > 0 and shard["replay_qps"] > 0,
            f"striped-cache replay never hit: {shard}",
        )
        check(shard["shard_balance"] >= 1.0, f"impossible shard balance: {shard}")
        check(
            shard["events"] > 0 and shard["events_per_sec"] > 0,
            f"no mixed feed events: {shard}",
        )
        check(
            shard["generation_bumps"] <= shard["feeds"] * shard["shards"],
            f"more than one bump per shard per feed: {shard}",
        )

    conc = doc.get("concurrent")
    check(conc is not None, "concurrent phase missing from document")
    if conc is not None:
        check(conc["clients"] >= 2, f"concurrent phase needs >= 2 clients: {conc}")
        check(
            conc["queries"] > 0 and conc["queries_per_sec"] > 0,
            f"concurrent phase ran no queries: {conc}",
        )
        check(
            conc["single_thread_qps"] > 0 and conc["speedup_vs_single_thread"] > 0,
            f"missing single-thread reference: {conc}",
        )
        check(
            conc["feed_events"] > 0 and conc["publishes"] >= 1,
            f"the writer never published mid-flight: {conc}",
        )
        check(conc.get("host_cpus", 0) >= 1, f"host cpu count missing: {conc}")
        # The speedup-over-single-thread floor is only meaningful when the
        # clients have real cores to run on. On a 1-cpu host N clients
        # time-slice one core and aggregate q/s legitimately lands *below*
        # the single-thread reference (context switches are pure
        # overhead); there the absolute q/s floor recorded in the
        # baseline (concurrent.queries_per_sec) is the gate instead.
        if conc.get("host_cpus", 1) >= 2:
            check(
                conc["speedup_vs_single_thread"] >= 0.95,
                "concurrent serving does not scale on a multi-core host: "
                f"speedup {conc['speedup_vs_single_thread']:.3f} < 0.95 "
                f"with {conc['host_cpus']} cpus",
            )

    gw = doc.get("gateway")
    check(gw is not None, "gateway phase missing from document")
    if gw is not None:
        check(gw["shards"] >= 2, f"gateway phase needs >= 2 shards: {gw}")
        check(gw["border_groups"] >= 1, f"gateway phase found no borders: {gw}")
        check(
            gw["queries"] > 0 and gw["cross_queries_per_sec"] > 0,
            f"gateway phase ran no cross-shard queries: {gw}",
        )
        check(
            gw["mono_queries_per_sec"] > 0,
            f"missing monolithic reference throughput: {gw}",
        )
        check(
            gw["stitch_overhead"] > 0,
            f"impossible stitch overhead (mono/cross qps ratio): {gw}",
        )
        check(
            gw["feed_rows_refreshed"] >= 1,
            f"the feed between rounds never refreshed a border row: {gw}",
        )

    replay = doc.get("replay")
    check(replay is not None, "replay phase missing from document")
    if replay is not None:
        check(replay["shards"] >= 2, f"replay phase needs >= 2 shards: {replay}")
        check(
            replay["events"] > 0 and replay["events_per_sec"] > 0,
            f"replay phase ingested no events: {replay}",
        )
        check(
            replay["batches"] >= 1 and replay["changed_batches"] >= 1,
            f"replay phase never applied a changing batch: {replay}",
        )
        check(
            replay["quarantined"] == 0,
            f"a clean recorded day quarantined {replay['quarantined']} line(s) — "
            f"decoder or recorder regression: {replay}",
        )
        check(
            replay["lines"] >= replay["events"],
            f"fewer wire lines than events decoded from them: {replay}",
        )

    pool = doc.get("pool")
    check(pool is not None, "pool counters missing from document")
    if pool is not None:
        check(
            0 <= pool["stolen"] <= pool["executed"],
            f"impossible pool counters (stolen > executed): {pool}",
        )
    return errors


def config_of(doc):
    conc = doc.get("concurrent", {})
    return {
        "scale": doc.get("scale"),
        "queries": doc["networks"][0]["one_to_all"]["queries"] if doc.get("networks") else 0,
        "threads": doc.get("threads"),
        "networks": [n["name"] for n in doc.get("networks", [])],
        "clients": conc.get("clients"),
    }


def metrics_of(doc):
    """The gated metrics, flat `name -> value`."""
    out = {}
    for net in doc.get("networks", []):
        name = net["name"]
        out[f"{name}.feed.events_per_sec"] = net["feed"]["events_per_sec"]
        out[f"{name}.cached.hit_rate"] = net["one_to_all"]["cached"]["hit_rate"]
        out[f"{name}.kernel.soa_queries_per_sec"] = net["kernel"]["soa_qps"]
    shard = doc.get("shard")
    if shard is not None:
        out["shard.events_per_sec"] = shard["events_per_sec"]
        out["shard.hit_rate"] = shard["hit_rate"]
    conc = doc.get("concurrent")
    if conc is not None:
        out["concurrent.queries_per_sec"] = conc["queries_per_sec"]
    gw = doc.get("gateway")
    if gw is not None:
        out["gateway.cross_queries_per_sec"] = gw["cross_queries_per_sec"]
    replay = doc.get("replay")
    if replay is not None:
        out["replay.events_per_sec"] = replay["events_per_sec"]
    return out


def gate(current, baseline, allow_drift=False):
    """The full regression gate; returns error strings, or `None` when the
    gate was deliberately skipped.

    A baseline recorded under a *different* configuration cannot gate this
    run — and silently skipping the gate is how regressions ship: every
    mis-set knob (or a knob list with a typo) would turn the gate off.
    A config mismatch is therefore an error unless `allow_drift` (the
    `BC_ALLOW_CONFIG_DRIFT=1` escape hatch for deliberate local
    experiments) is set, in which case the gate is skipped *loudly*.
    """
    base_config = baseline.get("config")
    cur_config = config_of(current)
    if base_config != cur_config:
        msg = (
            "baseline config differs from the current run "
            f"({base_config} vs {cur_config})"
        )
        if allow_drift:
            print(
                f"{msg} — regression gate skipped (BC_ALLOW_CONFIG_DRIFT=1); "
                "regenerate the baseline to re-arm it",
                file=sys.stderr,
            )
            return None
        return [
            f"{msg} — run with the baseline's configuration, regenerate the "
            "baseline (--update-baseline), or set BC_ALLOW_CONFIG_DRIFT=1 to "
            "skip the gate deliberately"
        ]
    return compare(current, baseline)


def compare(current, baseline):
    """Prints the trend table; returns error strings for gated drops."""
    errors = []
    base_metrics = baseline["metrics"]
    cur_metrics = metrics_of(current)
    print(f"\n{'metric':<32} {'baseline':>12} {'current':>12} {'ratio':>7}  status")
    for key in sorted(set(base_metrics) | set(cur_metrics)):
        base = base_metrics.get(key)
        cur = cur_metrics.get(key)
        if base is None:
            print(f"{key:<32} {'—':>12} {cur:>12.3g} {'—':>7}  new (not gated)")
            continue
        if cur is None:
            errors.append(f"metric {key} disappeared from the current run")
            print(f"{key:<32} {base:>12.3g} {'—':>12} {'—':>7}  GONE")
            continue
        ratio = cur / base if base else float("inf")
        ok = cur >= base * DROP_TOLERANCE
        print(f"{key:<32} {base:>12.3g} {cur:>12.3g} {ratio:>7.2f}  {'ok' if ok else 'DROP'}")
        if not ok:
            errors.append(
                f"{key} dropped more than {100 * (1 - DROP_TOLERANCE):.0f}%: "
                f"baseline {base:.6g}, current {cur:.6g}"
            )
    print()
    return errors


def write_baseline(current, path, headroom):
    metrics = metrics_of(current)
    for key in metrics:
        if key.endswith(THROUGHPUT_SUFFIXES):
            metrics[key] = round(metrics[key] * headroom, 3)
    doc = {
        "note": (
            "conservative floors for ci/check_bench.py — throughput metrics are "
            "recorded at --headroom of the measured value; regenerate with "
            "`python3 ci/check_bench.py --update-baseline BENCH_spcs.json "
            "BENCH_baseline.json` after an intentional perf change"
        ),
        "headroom": headroom,
        "config": config_of(current),
        "metrics": metrics,
    }
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"wrote baseline {path} (headroom {headroom})")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", help="BENCH_spcs.json from the throughput run")
    ap.add_argument("baseline", nargs="?", help="committed BENCH_baseline.json")
    ap.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the baseline from the current run instead of gating",
    )
    ap.add_argument(
        "--headroom",
        type=float,
        default=0.5,
        help="fraction of measured throughput recorded as the baseline floor",
    )
    args = ap.parse_args()

    with open(args.current) as f:
        current = json.load(f)

    errors = validate(current)
    if errors:
        fail(errors)
    print(
        f"structure ok: {len(current['networks'])} network(s) + shard, "
        "concurrent, gateway, replay and pool phases"
    )
    for name, value in metrics_of(current).items():
        print(f"  {name} = {value:.6g}")

    if args.update_baseline:
        if not args.baseline:
            ap.error("--update-baseline needs a BASELINE path")
        write_baseline(current, args.baseline, args.headroom)
        return

    if args.baseline:
        with open(args.baseline) as f:
            baseline = json.load(f)
        allow_drift = os.environ.get("BC_ALLOW_CONFIG_DRIFT") == "1"
        errors = gate(current, baseline, allow_drift)
        if errors is None:
            return
        if errors:
            fail(errors)
        print("regression gate ok: no metric dropped more than "
              f"{100 * (1 - DROP_TOLERANCE):.0f}% below its baseline floor")


if __name__ == "__main__":
    main()
