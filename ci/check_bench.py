#!/usr/bin/env python3
"""Validate BENCH_spcs.json and gate perf regressions against a baseline.

Two jobs, both exercised by CI after the `throughput` smoke run:

1. **Structural validation** (always): the document written by
   `cargo run --release -p pt-bench --bin throughput` must carry every
   phase — per-network cold/warm/batch/cached/feed numbers with their
   invariants (cache hits on a replay, at most one generation bump per
   feed, one rewrite per touched route), the kernel ablation (the SoA
   bucket-ring kernel actually ran — live bucket/lane counters — and on
   large networks, >= MIN_KERNEL_STATIONS stations, keeps pace with the
   scalar heap: soa_speedup >= 0.95 and merge_ratio <= 1.10), the s2s
   batch path at least breaking even with cold queries
   (batch_speedup_vs_cold >= 0.95), the shard phase (>= 2 shards,
   routed queries, striped-cache hit rate, mixed-feed events/sec, at most
   one bump per shard per feed), the concurrent phase (>= 2 clients
   against one shared service, snapshots actually published mid-flight)
   and the work-stealing pool counters (stolen <= executed).

2. **Regression gate** (when a baseline file is given and its recorded
   config matches): fail on a >30% drop in any `events_per_sec` metric or
   any cached `hit_rate` against `BENCH_baseline.json`, printing a trend
   table either way.

The committed baseline stores *conservative floors*, not raw measurements:
CI hardware varies run to run, so `--update-baseline` scales every
throughput metric by `--headroom` (default 0.5) before writing. Hit rates
are deterministic for a fixed workload and are stored as measured.

Usage:
    check_bench.py CURRENT.json [BASELINE.json]
    check_bench.py --update-baseline CURRENT.json BASELINE.json [--headroom 0.5]
"""

import argparse
import json
import sys

# Fraction of the baseline a throughput metric may drop to before the gate
# fails (the ISSUE's ">30% drop" criterion).
DROP_TOLERANCE = 0.70

# Metrics whose baseline entry is deflated by --headroom (machine-speed
# dependent); everything else (hit rates) is stored exactly.
THROUGHPUT_SUFFIXES = ("events_per_sec", "queries_per_sec")

# Networks at least this large must show the SoA kernel keeping pace with
# the scalar heap (the small paper presets resolve below the kernel's
# intended slot regime and are not held to the speedup floor).
MIN_KERNEL_STATIONS = 200


def fail(errors):
    for e in errors:
        print(f"FAIL: {e}", file=sys.stderr)
    sys.exit(1)


def validate(doc):
    """Structural checks on one throughput document; returns error strings."""
    errors = []

    def check(cond, msg):
        if not cond:
            errors.append(msg)

    networks = doc.get("networks", [])
    check(networks, "no networks in document")
    for net in networks:
        name = net.get("name", "?")
        cached = net["one_to_all"]["cached"]
        check(cached["hits"] > 0, f"{name}: cached phase recorded no hits: {cached}")
        check(cached["hit_rate"] > 0, f"{name}: cached hit rate is zero: {cached}")
        feed = net["feed"]
        check(feed["events"] > 0, f"{name}: feed phase ran no events: {feed}")
        check(feed["events_per_sec"] > 0, f"{name}: feed events/sec is zero: {feed}")
        check(
            0 < feed["generation_bumps"] <= feed["feeds"],
            f"{name}: {feed['generation_bumps']} bumps for {feed['feeds']} feeds",
        )
        check(
            feed["routes_repatched"] + feed["routes_refit"] <= feed["routes_touched"],
            f"{name}: a route was rewritten twice: {feed}",
        )
        check(
            feed["post_feed_cache_hit_rate"] > 0,
            f"{name}: post-feed replay never hit: {feed}",
        )
        s2s = net["s2s"]
        check(
            s2s["batch_speedup_vs_cold"] >= 0.95,
            f"{name}: s2s batch slower than cold queries: "
            f"speedup {s2s['batch_speedup_vs_cold']:.3f} < 0.95",
        )
        kernel = net["kernel"]
        check(kernel["queries"] > 0, f"{name}: kernel phase ran no queries: {kernel}")
        check(
            kernel["scalar_qps"] > 0 and kernel["soa_qps"] > 0,
            f"{name}: kernel phase recorded no throughput: {kernel}",
        )
        check(
            kernel["bucket_phases"] > 0 and kernel["lane_chunks"] > 0,
            f"{name}: SoA kernel counters are dead (did the forced-Soa "
            f"path really run?): {kernel}",
        )
        if net["stations"] >= MIN_KERNEL_STATIONS:
            check(
                kernel["soa_speedup"] >= 0.95,
                f"{name}: SoA kernel slower than scalar on a large network: "
                f"speedup {kernel['soa_speedup']:.3f} < 0.95",
            )
            check(
                0 < kernel["merge_ratio"] <= 1.10,
                f"{name}: SoA master-merge did not hold its ground: "
                f"merge_ratio {kernel['merge_ratio']:.3f}",
            )

    shard = doc.get("shard")
    check(shard is not None, "shard phase missing from document")
    if shard is not None:
        check(shard["shards"] >= 2, f"shard phase needs >= 2 shards: {shard}")
        check(shard["queries"] > 0 and shard["qps"] > 0, f"no routed queries: {shard}")
        check(
            shard["hit_rate"] > 0 and shard["replay_qps"] > 0,
            f"striped-cache replay never hit: {shard}",
        )
        check(shard["shard_balance"] >= 1.0, f"impossible shard balance: {shard}")
        check(
            shard["events"] > 0 and shard["events_per_sec"] > 0,
            f"no mixed feed events: {shard}",
        )
        check(
            shard["generation_bumps"] <= shard["feeds"] * shard["shards"],
            f"more than one bump per shard per feed: {shard}",
        )

    conc = doc.get("concurrent")
    check(conc is not None, "concurrent phase missing from document")
    if conc is not None:
        check(conc["clients"] >= 2, f"concurrent phase needs >= 2 clients: {conc}")
        check(
            conc["queries"] > 0 and conc["queries_per_sec"] > 0,
            f"concurrent phase ran no queries: {conc}",
        )
        check(
            conc["single_thread_qps"] > 0 and conc["speedup_vs_single_thread"] > 0,
            f"missing single-thread reference: {conc}",
        )
        check(
            conc["feed_events"] > 0 and conc["publishes"] >= 1,
            f"the writer never published mid-flight: {conc}",
        )

    pool = doc.get("pool")
    check(pool is not None, "pool counters missing from document")
    if pool is not None:
        check(
            0 <= pool["stolen"] <= pool["executed"],
            f"impossible pool counters (stolen > executed): {pool}",
        )
    return errors


def config_of(doc):
    return {
        "scale": doc.get("scale"),
        "queries": doc["networks"][0]["one_to_all"]["queries"] if doc.get("networks") else 0,
        "threads": doc.get("threads"),
        "networks": [n["name"] for n in doc.get("networks", [])],
    }


def metrics_of(doc):
    """The gated metrics, flat `name -> value`."""
    out = {}
    for net in doc.get("networks", []):
        name = net["name"]
        out[f"{name}.feed.events_per_sec"] = net["feed"]["events_per_sec"]
        out[f"{name}.cached.hit_rate"] = net["one_to_all"]["cached"]["hit_rate"]
        out[f"{name}.kernel.soa_queries_per_sec"] = net["kernel"]["soa_qps"]
    shard = doc.get("shard")
    if shard is not None:
        out["shard.events_per_sec"] = shard["events_per_sec"]
        out["shard.hit_rate"] = shard["hit_rate"]
    conc = doc.get("concurrent")
    if conc is not None:
        out["concurrent.queries_per_sec"] = conc["queries_per_sec"]
    return out


def compare(current, baseline):
    """Prints the trend table; returns error strings for gated drops."""
    errors = []
    base_metrics = baseline["metrics"]
    cur_metrics = metrics_of(current)
    print(f"\n{'metric':<32} {'baseline':>12} {'current':>12} {'ratio':>7}  status")
    for key in sorted(set(base_metrics) | set(cur_metrics)):
        base = base_metrics.get(key)
        cur = cur_metrics.get(key)
        if base is None:
            print(f"{key:<32} {'—':>12} {cur:>12.3g} {'—':>7}  new (not gated)")
            continue
        if cur is None:
            errors.append(f"metric {key} disappeared from the current run")
            print(f"{key:<32} {base:>12.3g} {'—':>12} {'—':>7}  GONE")
            continue
        ratio = cur / base if base else float("inf")
        ok = cur >= base * DROP_TOLERANCE
        print(f"{key:<32} {base:>12.3g} {cur:>12.3g} {ratio:>7.2f}  {'ok' if ok else 'DROP'}")
        if not ok:
            errors.append(
                f"{key} dropped more than {100 * (1 - DROP_TOLERANCE):.0f}%: "
                f"baseline {base:.6g}, current {cur:.6g}"
            )
    print()
    return errors


def write_baseline(current, path, headroom):
    metrics = metrics_of(current)
    for key in metrics:
        if key.endswith(THROUGHPUT_SUFFIXES):
            metrics[key] = round(metrics[key] * headroom, 3)
    doc = {
        "note": (
            "conservative floors for ci/check_bench.py — throughput metrics are "
            "recorded at --headroom of the measured value; regenerate with "
            "`python3 ci/check_bench.py --update-baseline BENCH_spcs.json "
            "BENCH_baseline.json` after an intentional perf change"
        ),
        "headroom": headroom,
        "config": config_of(current),
        "metrics": metrics,
    }
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"wrote baseline {path} (headroom {headroom})")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", help="BENCH_spcs.json from the throughput run")
    ap.add_argument("baseline", nargs="?", help="committed BENCH_baseline.json")
    ap.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the baseline from the current run instead of gating",
    )
    ap.add_argument(
        "--headroom",
        type=float,
        default=0.5,
        help="fraction of measured throughput recorded as the baseline floor",
    )
    args = ap.parse_args()

    with open(args.current) as f:
        current = json.load(f)

    errors = validate(current)
    if errors:
        fail(errors)
    print(
        f"structure ok: {len(current['networks'])} network(s) + shard, "
        "concurrent and pool phases"
    )
    for name, value in metrics_of(current).items():
        print(f"  {name} = {value:.6g}")

    if args.update_baseline:
        if not args.baseline:
            ap.error("--update-baseline needs a BASELINE path")
        write_baseline(current, args.baseline, args.headroom)
        return

    if args.baseline:
        with open(args.baseline) as f:
            baseline = json.load(f)
        if baseline.get("config") != config_of(current):
            print(
                "baseline config differs from the current run "
                f"({baseline.get('config')} vs {config_of(current)}) — "
                "regression gate skipped; regenerate the baseline to re-arm it",
                file=sys.stderr,
            )
            return
        errors = compare(current, baseline)
        if errors:
            fail(errors)
        print("regression gate ok: no metric dropped more than "
              f"{100 * (1 - DROP_TOLERANCE):.0f}% below its baseline floor")


if __name__ == "__main__":
    main()
