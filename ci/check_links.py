#!/usr/bin/env python3
"""Check that relative markdown links in the repo's docs resolve.

Scans README.md, CHANGES.md, ROADMAP.md and docs/**/*.md for inline
markdown links/images (``[text](target)``) and verifies that every
*relative* target exists on disk, anchors stripped. External links
(http/https/mailto) are skipped — the build environment has no network
and their liveness is not this gate's business. Bare intra-page anchors
(``#section``) are skipped too.

Exit status is non-zero iff at least one relative link is broken, with
one ``file:line: target`` diagnostic per offender — the same contract as
check_bench.py, so CI wires it in as a plain step.

Usage::

    python3 ci/check_links.py [repo-root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline links/images. Deliberately simple: no nested parens in targets
# (none of our docs use them), reference-style links are out of scope.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def md_files(root: Path) -> list[Path]:
    files = []
    for name in ("README.md", "CHANGES.md", "ROADMAP.md", "PAPER.md"):
        p = root / name
        if p.is_file():
            files.append(p)
    docs = root / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.rglob("*.md")))
    return files


def in_code_fence(lines_before: list[str]) -> bool:
    """True if an odd number of ``` fences precede this line."""
    fences = sum(1 for ln in lines_before if ln.lstrip().startswith("```"))
    return fences % 2 == 1


def check_file(path: Path, root: Path) -> list[str]:
    errors = []
    lines = path.read_text(encoding="utf-8").splitlines()
    for i, line in enumerate(lines):
        if in_code_fence(lines[:i]):
            continue
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            base = root if rel.startswith("/") else path.parent
            resolved = (base / rel.lstrip("/")).resolve()
            if not resolved.exists():
                errors.append(f"{path.relative_to(root)}:{i + 1}: broken link {target!r}")
    return errors


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path(__file__).resolve().parent.parent
    files = md_files(root)
    if not files:
        print(f"check_links: no markdown files found under {root}", file=sys.stderr)
        return 1
    errors = []
    checked = 0
    for path in files:
        errors.extend(check_file(path, root))
        checked += 1
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"check_links: {len(errors)} broken link(s) in {checked} file(s)", file=sys.stderr)
        return 1
    print(f"check_links: OK — all relative links in {checked} markdown file(s) resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
