//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The workspace derives serde traits on its data model so that a future
//! PR can turn on real (de)serialization, but nothing currently calls the
//! trait methods. These derives therefore emit marker impls only, which
//! lets the whole workspace build offline without the real `serde`.

use proc_macro::TokenStream;

/// Extracts the identifier the derive is attached to and the generics tail
/// so we can emit `impl<...> Trait for Name<...>`.
///
/// Handles `struct Name { .. }`, `struct Name(..);`, `enum Name { .. }`,
/// including simple generic parameter lists (no defaults stripping needed
/// for this workspace's plain-old-data types).
fn item_name_and_generics(input: &str) -> Option<(String, String)> {
    let mut rest = input;
    // Skip attributes and doc comments that precede the item keyword.
    let kw_pos =
        ["struct ", "enum "].iter().filter_map(|kw| rest.find(kw).map(|p| p + kw.len())).min()?;
    rest = &rest[kw_pos..];
    let name_end = rest.find(|c: char| !(c.is_alphanumeric() || c == '_')).unwrap_or(rest.len());
    let name = rest[..name_end].trim().to_string();
    if name.is_empty() {
        return None;
    }
    let after = rest[name_end..].trim_start();
    let generics = if let Some(stripped) = after.strip_prefix('<') {
        let close = stripped.find('>')?;
        format!("<{}>", &stripped[..close])
    } else {
        String::new()
    };
    Some((name, generics))
}

fn marker_impl(input: TokenStream, trait_path: &str) -> TokenStream {
    let text = input.to_string();
    match item_name_and_generics(&text) {
        // Generic types would need bound propagation; the workspace's serde
        // derives are all on plain-old-data types, so skip the marker there.
        Some((name, generics)) if generics.is_empty() => if trait_path.contains("Deserialize") {
            format!("impl<'de> {trait_path}<'de> for {name} {{}}")
        } else {
            format!("impl {trait_path} for {name} {{}}")
        }
        .parse()
        .unwrap_or_default(),
        _ => TokenStream::new(),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Deserialize")
}
