//! Offline stand-in for the `arc-swap` crate: an atomic slot holding an
//! `Arc<T>` whose **read path is wait-free** — `load_full` is one
//! `fetch_add`, one `Arc::clone`, one `fetch_add`, and never loops, locks,
//! or waits on writers, no matter how fast publishes arrive.
//!
//! The real crate uses hazard-pointer-style debt tracking; this subset
//! uses a two-slot generation-counting scheme that needs no thread-local
//! state and no epoch GC, at the cost of making *writers* wait for the
//! readers that entered the slot being overwritten (writers already
//! serialize among themselves, so that is the cheap side here):
//!
//! * `state` packs the active slot index (bit 63) with a count of reader
//!   entries into that slot during its current tenure (low 63 bits). A
//!   reader's single `fetch_add(1)` both picks the slot and registers the
//!   entry, atomically — there is no window where a writer can miss it.
//! * `exits[s]` counts readers that finished cloning out of slot `s`,
//!   cumulative over all tenures.
//! * A writer (serialized by the internal mutex) targets the *inactive*
//!   slot: it waits until every reader that ever entered that slot has
//!   exited (`exits == entries_total`, both cumulative), overwrites the
//!   slot — now provably unreferenced — and flips `state` to it in one
//!   `swap`, folding the displaced tenure's entry count into the totals.
//!
//! Orderings: the reader's entry `fetch_add(Acquire)` pairs with the
//! writer's `swap(Release)` so the slot write is visible before the slot
//! becomes active; the reader's exit `fetch_add(Release)` pairs with the
//! writer's drain `load(Acquire)` so the overwrite happens strictly after
//! every drained reader's clone.

#![forbid(unsafe_op_in_unsafe_fn)]

use std::cell::UnsafeCell;
use std::hint;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const SLOT_BIT: u64 = 1 << 63;
const COUNT_MASK: u64 = SLOT_BIT - 1;

/// An atomic `Arc<T>` slot: readers `load_full` without ever blocking,
/// writers `store`/`swap` serialized among themselves.
pub struct ArcSwap<T> {
    /// bit 63: index of the active slot; low 63 bits: reader entries into
    /// the active slot during its current tenure.
    state: AtomicU64,
    /// Cumulative reader exits per slot (over all tenures).
    exits: [AtomicU64; 2],
    slots: [UnsafeCell<Arc<T>>; 2],
    /// Serializes writers; holds the cumulative reader *entries* per slot
    /// (folded in from displaced tenure counts at each swap).
    writer: Mutex<[u64; 2]>,
}

// Readers clone `Arc<T>` (handing `T` across threads by reference) and the
// writer moves `Arc<T>` values in and out, so both bounds are required —
// the same bounds under which `Arc<T>` itself is `Send + Sync`.
unsafe impl<T: Send + Sync> Send for ArcSwap<T> {}
unsafe impl<T: Send + Sync> Sync for ArcSwap<T> {}

impl<T> ArcSwap<T> {
    /// Creates a slot holding `value`.
    pub fn new(value: Arc<T>) -> Self {
        ArcSwap {
            state: AtomicU64::new(0),
            exits: [AtomicU64::new(0), AtomicU64::new(0)],
            slots: [UnsafeCell::new(value.clone()), UnsafeCell::new(value)],
            writer: Mutex::new([0, 0]),
        }
    }

    /// Returns a clone of the current value. Wait-free: a bounded number
    /// of atomic ops, no locks, no retry loop.
    pub fn load_full(&self) -> Arc<T> {
        let entered = self.state.fetch_add(1, Ordering::Acquire);
        let slot = (entered >> 63) as usize;
        // Safety: `fetch_add` registered this reader in `slot`'s tenure
        // count before this dereference; any writer targeting `slot` first
        // drains `exits[slot]` up to the cumulative entry total (which
        // includes us) and we only bump `exits` after the clone completes,
        // so no `&mut` aliases the slot while we read it.
        let value = unsafe { (*self.slots[slot].get()).clone() };
        self.exits[slot].fetch_add(1, Ordering::Release);
        value
    }

    /// Alias for [`load_full`](Self::load_full) (the real crate returns a
    /// guard here; this subset always materializes the `Arc`).
    pub fn load(&self) -> Arc<T> {
        self.load_full()
    }

    /// Replaces the value, returning the previous one.
    pub fn swap(&self, new: Arc<T>) -> Arc<T> {
        let mut entries_total = self.writer.lock().unwrap();
        let active = (self.state.load(Ordering::Acquire) >> 63) as usize;
        let target = active ^ 1;
        // Drain: wait for every reader that ever entered `target` to exit.
        // No new reader can enter it (`state` points at `active`, and we
        // hold the writer lock so nobody flips it under us).
        let mut spins = 0u32;
        while self.exits[target].load(Ordering::Acquire) != entries_total[target] {
            spins += 1;
            if spins < 64 {
                hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        // The value being displaced is the *active* slot's; what sits in
        // `target` is the stale value from the publish before last (the
        // two-slot scheme keeps exactly one superseded value alive until
        // the next swap reclaims it here).
        // Safety: readers only clone out of slots through `&Arc` (atomic
        // refcount), never mutate, so a shared read of the active slot is
        // fine; and `target` is drained + unreachable, so this writer
        // holds the only reference to it for the overwrite.
        let previous = unsafe { (*self.slots[active].get()).clone() };
        unsafe { *self.slots[target].get() = new };
        let displaced = self.state.swap((target as u64) << 63, Ordering::AcqRel);
        entries_total[active] += displaced & COUNT_MASK;
        debug_assert_eq!(displaced >> 63, active as u64);
        previous
    }

    /// Replaces the value, dropping the previous one.
    pub fn store(&self, new: Arc<T>) {
        drop(self.swap(new));
    }

    /// Consumes the slot, returning the current value.
    pub fn into_inner(self) -> Arc<T> {
        let [a, b] = self.slots;
        let active = (self.state.into_inner() >> 63) as usize;
        let (a, b) = (a.into_inner(), b.into_inner());
        if active == 0 {
            a
        } else {
            b
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ArcSwap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ArcSwap").field(&self.load_full()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn store_then_load_round_trips() {
        let slot = ArcSwap::new(Arc::new(1u32));
        assert_eq!(*slot.load_full(), 1);
        slot.store(Arc::new(2));
        assert_eq!(*slot.load_full(), 2);
        let prev = slot.swap(Arc::new(3));
        assert_eq!(*prev, 2);
        assert_eq!(*slot.load(), 3);
        assert_eq!(*slot.into_inner(), 3);
    }

    #[test]
    fn dropped_values_release_their_refcount() {
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Counted {
            fn new() -> Self {
                LIVE.fetch_add(1, Ordering::SeqCst);
                Counted
            }
        }
        impl Drop for Counted {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let slot = ArcSwap::new(Arc::new(Counted::new()));
        for _ in 0..10 {
            slot.store(Arc::new(Counted::new()));
        }
        // Bounded retention: the active value plus the one superseded
        // value parked in the inactive slot until the next publish.
        assert_eq!(LIVE.load(Ordering::SeqCst), 2, "unbounded value retention");
        drop(slot);
        assert_eq!(LIVE.load(Ordering::SeqCst), 0);
    }

    /// Readers under a publish storm always observe some published value,
    /// and never a torn or stale-beyond-the-swap one: values are published
    /// in increasing order and each reader's sequence must be monotone.
    #[test]
    fn concurrent_loads_see_monotone_published_values() {
        let slot = Arc::new(ArcSwap::new(Arc::new(0u64)));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let slot = Arc::clone(&slot);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..2000 {
                        let v = *slot.load_full();
                        assert!(v >= last, "went backwards: {v} after {last}");
                        last = v;
                    }
                })
            })
            .collect();
        for i in 1..=2000u64 {
            slot.store(Arc::new(i));
        }
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(*slot.load_full(), 2000);
    }

    /// Writer drain terminates even when readers enter continuously — the
    /// classic RwLock writer-starvation shape this slot exists to avoid on
    /// the *read* side must not deadlock the write side either.
    #[test]
    fn publish_storm_with_constant_readers_makes_progress() {
        let slot = Arc::new(ArcSwap::new(Arc::new(0u64)));
        let stop = Arc::new(AtomicU64::new(0));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let slot = Arc::clone(&slot);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while stop.load(Ordering::Relaxed) == 0 {
                        let _ = slot.load_full();
                    }
                })
            })
            .collect();
        let writers: Vec<_> = (0..2)
            .map(|w| {
                let slot = Arc::clone(&slot);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        slot.store(Arc::new(w * 1000 + i));
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        stop.store(1, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
    }
}
