//! A small, dependency-free subset of `proptest`, vendored so the
//! workspace's property tests run without network access.
//!
//! Implemented surface (exactly what the workspace tests use):
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map` / `boxed`,
//! * range strategies over integers and floats, tuple strategies,
//!   [`strategy::Just`], weighted [`prop_oneof!`],
//! * [`collection::vec`] with exact, half-open or inclusive size ranges,
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//!   [`prop_assert!`] / [`prop_assert_eq!`], [`test_runner::TestCaseError`].
//!
//! Differences from real proptest: no shrinking (a failing case prints its
//! inputs instead of a minimised counterexample) and no persistence files.
//! Generation is deterministic per test (seeded from the test name), so
//! failures reproduce across runs.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod test_runner {
    use std::fmt;

    /// Failure carrier for property bodies (`Result<(), TestCaseError>`).
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Runner configuration; only `cases` is honoured by the shim.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256, max_shrink_iters: 0 }
        }
    }
}

pub use test_runner::{Config as ProptestConfig, TestCaseError};

/// Deterministic RNG handed to strategies by the [`proptest!`] runner.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeded from the test name: deterministic, but decorrelated between
    /// tests.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

pub mod strategy {
    use super::TestRng;
    use rand::Rng;

    /// A generator of values; the shim's stand-in for proptest's `Strategy`.
    ///
    /// Object-safe: combinators carry `where Self: Sized` so boxed
    /// strategies (needed by `prop_oneof!`) work.
    pub trait Strategy {
        type Value;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> T {
            (**self).gen_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).gen_value(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn gen_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.gen_value(rng))
        }
    }

    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.gen_value(rng)).gen_value(rng)
        }
    }

    /// Weighted choice between boxed strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            let total = options.iter().map(|&(w, _)| w as u64).sum();
            assert!(total > 0, "prop_oneof! weights must not all be zero");
            Union { options, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.rng().gen_range(0..self.total);
            for (w, s) in &self.options {
                if pick < *w as u64 {
                    return s.gen_value(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.gen_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Inclusive size bounds for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)` — vectors of generated
    /// elements with a sampled length.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng().gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec` resolves after a prelude
/// glob import, as with real proptest.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof!($(1 => $strat),+)
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = ($config:expr); $(
        #[test]
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let strategies = ( $($strat,)+ );
            for __case in 0..config.cases {
                #[allow(non_snake_case)]
                let ( $($arg,)+ ) = $crate::strategy::Strategy::gen_value(&strategies, &mut __rng);
                let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match __result {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at case {}/{}:\n{}\n(no shrinking in offline shim; rerun reproduces deterministically)",
                            stringify!($name), __case + 1, config.cases, msg
                        );
                    }
                }
            }
        }
    )*};
}
