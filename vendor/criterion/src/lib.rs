//! A tiny, dependency-free subset of `criterion`, vendored so the
//! workspace's benches build (and run) without network access.
//!
//! Supported surface: [`Criterion::benchmark_group`] /
//! [`Criterion::bench_function`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical sampling, each benchmark does a
//! short warm-up followed by a fixed batch of timed iterations and prints
//! `name  median  (min .. max)` per-iteration wall time. Good enough to
//! compare orders of magnitude; not a replacement for real criterion.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group (`new("cs", 4)` → `cs/4`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs the measured closure; collected by [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
}

impl Bencher {
    fn new(iters_per_sample: u32) -> Self {
        Bencher { samples: Vec::new(), iters_per_sample }
    }

    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: one untimed call.
        black_box(f());
        for _ in 0..self.iters_per_sample {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let max = *self.samples.last().unwrap();
        println!("{name:<40} {median:>12.2?}  ({min:.2?} .. {max:.2?})");
    }
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: u32,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u32).max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level handle passed to every registered bench function.
pub struct Criterion {
    default_sample_size: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut b = Bencher::new(self.default_sample_size);
        f(&mut b);
        b.report(&name);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
