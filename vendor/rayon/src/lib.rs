//! A tiny, dependency-free subset of `rayon`, vendored so the workspace
//! builds without network access.
//!
//! Two layers:
//!
//! * [`ThreadPool`] — a **persistent, reusable scoped worker pool with work
//!   stealing**. Workers are spawned once and live for the pool's lifetime;
//!   every [`ThreadPool::scope`] call dispatches borrowed closures onto them
//!   (rayon's `scope`/`spawn` pattern) without per-call thread spawning.
//!   Each worker owns a deque: the owner pushes and pops at the back (LIFO,
//!   cache-warm), idle peers steal from the front (FIFO, oldest first).
//!   Threads that are not workers submit through a shared injector queue.
//!   Waiting threads *help* drain jobs, so nested scopes cannot deadlock on
//!   a saturated pool. [`ThreadPool::stats`] exposes cumulative
//!   executed/stolen counters ([`PoolStats`]) in the same spirit as the
//!   engines' `grow_events` observability.
//! * `par_iter()` over a slice (or anything that derefs to one), `.map(...)`,
//!   `.collect()` — executed on the [`global`] pool with one chunk per
//!   worker, preserving input order.
//!
//! ```
//! use rayon::prelude::*;
//! let squares: Vec<u64> = [1u64, 2, 3].par_iter().map(|&x| x * x).collect();
//! assert_eq!(squares, vec![1, 4, 9]);
//! ```

use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// A type-erased job. Jobs are queued with their borrow lifetimes erased;
/// soundness is guaranteed by [`ThreadPool::scope`], which never returns
/// (even on unwind) before every job spawned in it has finished.
type Job = Box<dyn FnOnce() + Send>;

/// Cumulative execution counters of a pool; see [`ThreadPool::stats`].
///
/// `stolen` counts jobs taken from *another worker's* deque (injector
/// submissions are plain executions, not steals), so `stolen <= executed`
/// always holds — benches report the pair as a steal-rate sanity check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Jobs run to completion on this pool (by workers or helping waiters).
    pub executed: u64,
    /// Jobs that were stolen from a peer worker's deque before running.
    pub stolen: u64,
}

/// State shared between a pool's workers and every thread using the pool.
struct Shared {
    /// Jobs submitted by threads that are not workers of this pool.
    injector: Mutex<VecDeque<Job>>,
    /// One deque per worker. The owning worker pushes/pops at the back;
    /// thieves (peers and helping waiters) steal from the front.
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Shutdown flag; the mutex the condvar pairs with.
    sync: Mutex<bool>,
    /// Signalled when a job is queued, a job completes, or shutdown starts.
    cond: Condvar,
    executed: AtomicU64,
    stolen: AtomicU64,
}

thread_local! {
    /// `(Shared address, worker index)` of the pool this thread works for;
    /// `usize::MAX` marks "not a pool worker".
    static WORKER: Cell<(usize, usize)> = const { Cell::new((0, usize::MAX)) };
}

/// This thread's worker index in `shared`'s pool, if it is one of its
/// workers (a worker of a *different* pool routes through the injector).
fn worker_index(shared: &Shared) -> Option<usize> {
    let (addr, ix) = WORKER.with(Cell::get);
    (ix != usize::MAX && addr == shared as *const Shared as usize).then_some(ix)
}

impl Shared {
    /// Next job for a thread with worker index `ix` (or an outside helper):
    /// own deque back first (LIFO), then the injector, then steal from peer
    /// deques front (FIFO), scanning round-robin from the next index.
    fn find_job(&self, ix: Option<usize>) -> Option<Job> {
        if let Some(ix) = ix {
            if let Some(job) = self.deques[ix].lock().unwrap().pop_back() {
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            return Some(job);
        }
        let n = self.deques.len();
        let start = ix.map_or(0, |i| i + 1);
        for off in 0..n {
            let victim = (start + off) % n;
            if Some(victim) == ix {
                continue;
            }
            if let Some(job) = self.deques[victim].lock().unwrap().pop_front() {
                self.stolen.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    /// Runs a job, counting it.
    fn run(&self, job: Job) {
        self.executed.fetch_add(1, Ordering::Relaxed);
        job();
    }

    /// Queues a job: a worker of this pool pushes onto its own deque, any
    /// other thread goes through the injector.
    fn push(&self, job: Job) {
        match worker_index(self) {
            Some(ix) => self.deques[ix].lock().unwrap().push_back(job),
            None => self.injector.lock().unwrap().push_back(job),
        }
        self.cond.notify_one();
    }
}

/// A persistent worker pool with a scoped spawn API and per-worker
/// work-stealing deques.
///
/// Workers are OS threads spawned once in [`ThreadPool::new`] and reused by
/// every subsequent [`ThreadPool::scope`] call — the pool amortizes thread
/// creation across queries, which is the point of keeping one alive for the
/// lifetime of an engine.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("threads", &self.handles.len()).finish()
    }
}

impl ThreadPool {
    /// Spawns a pool with `threads` persistent workers (at least one).
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            sync: Mutex::new(false),
            cond: Condvar::new(),
            executed: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool { shared, handles }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Cumulative executed/stolen job counters since pool creation.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            executed: self.shared.executed.load(Ordering::Relaxed),
            stolen: self.shared.stolen.load(Ordering::Relaxed),
        }
    }

    /// Runs `f` with a [`Scope`] on which borrowed closures can be spawned
    /// onto the pool. Blocks until every spawned closure has finished; the
    /// calling thread helps execute queued jobs while it waits, so scopes
    /// may nest freely (a worker waiting on an inner scope drains its deque
    /// and steals instead of deadlocking). The first panic of any spawned
    /// closure is resumed on the caller after all jobs completed.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'env>) -> R,
    {
        let state = Arc::new(ScopeState::default());
        let scope = Scope {
            shared: Arc::clone(&self.shared),
            state: Arc::clone(&state),
            _env: PhantomData,
        };

        /// Waits in `Drop` so spawned jobs (borrowing `'env` data) finish
        /// even when the scope body itself unwinds.
        struct WaitGuard<'a> {
            shared: &'a Shared,
            state: &'a ScopeState,
        }
        impl Drop for WaitGuard<'_> {
            fn drop(&mut self) {
                help_until_done(self.shared, self.state);
            }
        }

        let out = {
            let _guard = WaitGuard { shared: &self.shared, state: &state };
            f(&scope)
        };
        if let Some(payload) = state.panic.lock().unwrap().take() {
            resume_unwind(payload);
        }
        out
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        *self.shared.sync.lock().unwrap() = true;
        self.shared.cond.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Per-scope completion tracking.
#[derive(Default)]
struct ScopeState {
    /// Jobs spawned but not yet finished.
    pending: AtomicUsize,
    /// First panic payload from a spawned job.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Handle for spawning borrowed closures onto a pool; see
/// [`ThreadPool::scope`].
pub struct Scope<'env> {
    shared: Arc<Shared>,
    state: Arc<ScopeState>,
    /// Invariant over `'env`, like `std::thread::Scope`.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env> {
    /// Queues `f` for execution on the pool. `f` may borrow anything that
    /// outlives the enclosing [`ThreadPool::scope`] call. Spawns from a
    /// worker thread land on that worker's own deque (stolen by idle
    /// peers); spawns from outside the pool go through the injector.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        let state = Arc::clone(&self.state);
        let shared = Arc::clone(&self.shared);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = state.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            state.pending.fetch_sub(1, Ordering::SeqCst);
            // Take the sync lock before notifying so a waiter cannot check
            // `pending` and block between our decrement and our notify.
            let _sync = shared.sync.lock().unwrap();
            shared.cond.notify_all();
        });
        // SAFETY: `ThreadPool::scope` does not return — even on unwind, via
        // `WaitGuard` — until `pending` reaches zero, i.e. until this job has
        // run to completion. Every `'env` borrow captured by `f` therefore
        // strictly outlives the job's execution, so erasing the lifetime of
        // the boxed closure (identical layout, fat pointer to the same
        // vtable) cannot create a dangling reference.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(job)
        };
        self.shared.push(job);
    }
}

/// Worker main loop: run own/injected/stolen jobs or sleep; exit on
/// shutdown (scopes drain their jobs before the pool can be dropped, so no
/// work is abandoned).
fn worker_loop(shared: &Arc<Shared>, index: usize) {
    WORKER.with(|w| w.set((Arc::as_ptr(shared) as usize, index)));
    loop {
        match shared.find_job(Some(index)) {
            Some(job) => shared.run(job),
            None => {
                let guard = shared.sync.lock().unwrap();
                if *guard {
                    return;
                }
                // Timeout is belt-and-braces against the unsynchronized gap
                // between scanning the deques and blocking here.
                let _ = shared.cond.wait_timeout(guard, Duration::from_millis(1)).unwrap();
            }
        }
    }
}

/// Blocks until `state.pending` reaches zero, executing queued jobs (from
/// any scope of the same pool) while waiting.
fn help_until_done(shared: &Shared, state: &ScopeState) {
    let ix = worker_index(shared);
    loop {
        if state.pending.load(Ordering::SeqCst) == 0 {
            return;
        }
        match shared.find_job(ix) {
            Some(job) => shared.run(job),
            None => {
                let guard = shared.sync.lock().unwrap();
                if state.pending.load(Ordering::SeqCst) == 0 {
                    return;
                }
                // Timeout is belt-and-braces against a missed wakeup.
                let _ = shared.cond.wait_timeout(guard, Duration::from_millis(1)).unwrap();
            }
        }
    }
}

/// The process-wide shared pool used by `par_iter`, sized to the available
/// parallelism. Created on first use, never torn down.
pub fn global() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        ThreadPool::new(std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1))
    })
}

/// [`ThreadPool::scope`] on the [`global`] pool, mirroring `rayon::scope`.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
{
    global().scope(f)
}

/// `.par_iter()` — entry point, mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    type Item: Sync + 'data;

    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { data: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { data: self.as_slice() }
    }
}

/// Borrowed parallel iterator over a slice.
pub struct ParIter<'data, T> {
    data: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        ParMap { data: self.data, f }
    }
}

/// The result of `.par_iter().map(f)`; terminal op is `.collect()`.
pub struct ParMap<'data, T, F> {
    data: &'data [T],
    f: F,
}

impl<'data, T, F, R> ParMap<'data, T, F>
where
    T: Sync,
    F: Fn(&'data T) -> R + Sync,
    R: Send,
{
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let n = self.data.len();
        let pool = global();
        let chunks = pool.threads().min(n);
        if chunks <= 1 {
            return self.data.iter().map(&self.f).collect::<Vec<R>>().into();
        }
        let chunk = n.div_ceil(chunks);
        let f = &self.f;
        let parts: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(chunks));
        pool.scope(|scope| {
            for (i, c) in self.data.chunks(chunk).enumerate() {
                let parts = &parts;
                scope.spawn(move || {
                    let part: Vec<R> = c.iter().map(f).collect();
                    parts.lock().unwrap().push((i, part));
                });
            }
        });
        let mut parts = parts.into_inner().unwrap();
        parts.sort_unstable_by_key(|&(i, _)| i);
        let mut out = Vec::with_capacity(n);
        for (_, part) in parts {
            out.extend(part);
        }
        out.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn preserves_order() {
        let input: Vec<u32> = (0..10_000).collect();
        let doubled: Vec<u32> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let input: [u32; 0] = [];
        let out: Vec<u32> = input.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn scope_runs_borrowed_jobs() {
        let pool = ThreadPool::new(4);
        let data: Vec<u64> = (0..100).collect();
        let mut partial = [0u64; 4];
        pool.scope(|s| {
            for (i, out) in partial.iter_mut().enumerate() {
                let data = &data;
                s.spawn(move || *out = data.iter().skip(i).step_by(4).sum());
            }
        });
        assert_eq!(partial.iter().sum::<u64>(), (0..100).sum());
    }

    #[test]
    fn pool_is_reusable_across_scopes() {
        let pool = ThreadPool::new(2);
        let counter = AtomicU64::new(0);
        for _ in 0..50 {
            pool.scope(|s| {
                for _ in 0..8 {
                    let counter = &counter;
                    s.spawn(move || {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        // More outer jobs than workers, each outer job opening its own
        // scope: only possible because waiting threads help execute jobs.
        let pool = ThreadPool::new(2);
        let total = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..6 {
                let total = &total;
                let pool = &pool;
                s.spawn(move || {
                    pool.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(move || {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 24);
    }

    #[test]
    fn scope_propagates_panics() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom"));
            });
        }));
        assert!(result.is_err());
        // The pool survives a panicking job.
        let ok = AtomicU64::new(0);
        pool.scope(|s| {
            let ok = &ok;
            s.spawn(move || {
                ok.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(ok.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn scope_returns_body_value() {
        let pool = ThreadPool::new(1);
        let x = pool.scope(|_| 42);
        assert_eq!(x, 42);
    }

    #[test]
    fn stats_count_every_job_and_steals_stay_sane() {
        let pool = ThreadPool::new(4);
        let before = pool.stats();
        let total = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..64 {
                let total = &total;
                s.spawn(move || {
                    total.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
        let after = pool.stats();
        assert!(after.executed >= before.executed + 64);
        assert!(after.stolen <= after.executed, "a steal is always also an execution");
    }

    #[test]
    fn peers_steal_from_a_flooded_worker_deque() {
        // One outer job (via the injector) lands on some worker; the jobs it
        // spawns go onto that worker's own deque. With 3 idle peers polling
        // and every inner job sleeping, peers must steal to finish. The
        // spin-wait pins the main thread in the scope body until a *worker*
        // has the outer job — if main helped first and grabbed it, the inner
        // spawns would route through the injector and need no stealing.
        let pool = ThreadPool::new(4);
        let before = pool.stats();
        let total = AtomicU64::new(0);
        let started = std::sync::atomic::AtomicBool::new(false);
        pool.scope(|s| {
            let pool = &pool;
            let total = &total;
            let started = &started;
            s.spawn(move || {
                started.store(true, Ordering::Relaxed);
                pool.scope(|inner| {
                    for _ in 0..32 {
                        inner.spawn(move || {
                            std::thread::sleep(Duration::from_millis(2));
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            });
            while !started.load(Ordering::Relaxed) {
                std::thread::yield_now();
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 32);
        let after = pool.stats();
        assert!(after.stolen > before.stolen, "idle peers must have stolen work");
    }
}
