//! A tiny, dependency-free subset of `rayon`, vendored so the workspace
//! builds without network access.
//!
//! Supports the data-parallel pattern the workspace uses:
//!
//! ```
//! use rayon::prelude::*;
//! let squares: Vec<u64> = [1u64, 2, 3].par_iter().map(|&x| x * x).collect();
//! assert_eq!(squares, vec![1, 4, 9]);
//! ```
//!
//! `par_iter()` over a slice (or anything that derefs to one), `.map(...)`,
//! `.collect()` — executed on `std::thread::scope` with one chunk per
//! available core, preserving input order. This is genuine parallelism,
//! just without rayon's work stealing.

pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// `.par_iter()` — entry point, mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    type Item: Sync + 'data;

    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { data: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { data: self.as_slice() }
    }
}

/// Borrowed parallel iterator over a slice.
pub struct ParIter<'data, T> {
    data: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        ParMap { data: self.data, f }
    }
}

/// The result of `.par_iter().map(f)`; terminal op is `.collect()`.
pub struct ParMap<'data, T, F> {
    data: &'data [T],
    f: F,
}

impl<'data, T, F, R> ParMap<'data, T, F>
where
    T: Sync,
    F: Fn(&'data T) -> R + Sync,
    R: Send,
{
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let n = self.data.len();
        let threads =
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(n.max(1));
        if threads <= 1 {
            return self.data.iter().map(&self.f).collect::<Vec<R>>().into();
        }
        let chunk = n.div_ceil(threads);
        let f = &self.f;
        let mut out: Vec<R> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .data
                .chunks(chunk)
                .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
                .collect();
            for h in handles {
                out.extend(h.join().expect("rayon-shim worker panicked"));
            }
        });
        out.into()
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn preserves_order() {
        let input: Vec<u32> = (0..10_000).collect();
        let doubled: Vec<u32> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let input: [u32; 0] = [];
        let out: Vec<u32> = input.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
