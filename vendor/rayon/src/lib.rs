//! A tiny, dependency-free subset of `rayon`, vendored so the workspace
//! builds without network access.
//!
//! Two layers:
//!
//! * [`ThreadPool`] — a **persistent, reusable scoped worker pool**. Workers
//!   are spawned once and live for the pool's lifetime; every
//!   [`ThreadPool::scope`] call dispatches borrowed closures onto them
//!   (rayon's `scope`/`spawn` pattern) without per-call thread spawning.
//!   Waiting threads *help* drain the job queue, so nested scopes cannot
//!   deadlock on a saturated pool.
//! * `par_iter()` over a slice (or anything that derefs to one), `.map(...)`,
//!   `.collect()` — executed on the [`global`] pool with one chunk per
//!   worker, preserving input order.
//!
//! ```
//! use rayon::prelude::*;
//! let squares: Vec<u64> = [1u64, 2, 3].par_iter().map(|&x| x * x).collect();
//! assert_eq!(squares, vec![1, 4, 9]);
//! ```
//!
//! This is genuine parallelism, just without rayon's work stealing.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// A type-erased job. Jobs are queued with their borrow lifetimes erased;
/// soundness is guaranteed by [`ThreadPool::scope`], which never returns
/// (even on unwind) before every job spawned in it has finished.
type Job = Box<dyn FnOnce() + Send>;

/// State shared between a pool's workers and every thread using the pool.
struct Shared {
    /// FIFO job queue plus the shutdown flag.
    queue: Mutex<(VecDeque<Job>, bool)>,
    /// Signalled when a job is queued, a job completes, or shutdown starts.
    cond: Condvar,
}

/// A persistent worker pool with a scoped spawn API.
///
/// Workers are OS threads spawned once in [`ThreadPool::new`] and reused by
/// every subsequent [`ThreadPool::scope`] call — the pool amortizes thread
/// creation across queries, which is the point of keeping one alive for the
/// lifetime of an engine.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("threads", &self.handles.len()).finish()
    }
}

impl ThreadPool {
    /// Spawns a pool with `threads` persistent workers (at least one).
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let shared =
            Arc::new(Shared { queue: Mutex::new((VecDeque::new(), false)), cond: Condvar::new() });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool { shared, handles }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Runs `f` with a [`Scope`] on which borrowed closures can be spawned
    /// onto the pool. Blocks until every spawned closure has finished; the
    /// calling thread helps execute queued jobs while it waits, so scopes
    /// may nest freely (a worker waiting on an inner scope drains the queue
    /// instead of deadlocking). The first panic of any spawned closure is
    /// resumed on the caller after all jobs completed.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'env>) -> R,
    {
        let state = Arc::new(ScopeState::default());
        let scope = Scope {
            shared: Arc::clone(&self.shared),
            state: Arc::clone(&state),
            _env: PhantomData,
        };

        /// Waits in `Drop` so spawned jobs (borrowing `'env` data) finish
        /// even when the scope body itself unwinds.
        struct WaitGuard<'a> {
            shared: &'a Shared,
            state: &'a ScopeState,
        }
        impl Drop for WaitGuard<'_> {
            fn drop(&mut self) {
                help_until_done(self.shared, self.state);
            }
        }

        let out = {
            let _guard = WaitGuard { shared: &self.shared, state: &state };
            f(&scope)
        };
        if let Some(payload) = state.panic.lock().unwrap().take() {
            resume_unwind(payload);
        }
        out
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.queue.lock().unwrap().1 = true;
        self.shared.cond.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Per-scope completion tracking.
#[derive(Default)]
struct ScopeState {
    /// Jobs spawned but not yet finished.
    pending: AtomicUsize,
    /// First panic payload from a spawned job.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Handle for spawning borrowed closures onto a pool; see
/// [`ThreadPool::scope`].
pub struct Scope<'env> {
    shared: Arc<Shared>,
    state: Arc<ScopeState>,
    /// Invariant over `'env`, like `std::thread::Scope`.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env> {
    /// Queues `f` for execution on the pool. `f` may borrow anything that
    /// outlives the enclosing [`ThreadPool::scope`] call.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        let state = Arc::clone(&self.state);
        let shared = Arc::clone(&self.shared);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = state.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            state.pending.fetch_sub(1, Ordering::SeqCst);
            // Take the queue lock before notifying so a waiter cannot check
            // `pending` and block between our decrement and our notify.
            let _queue = shared.queue.lock().unwrap();
            shared.cond.notify_all();
        });
        // SAFETY: `ThreadPool::scope` does not return — even on unwind, via
        // `WaitGuard` — until `pending` reaches zero, i.e. until this job has
        // run to completion. Every `'env` borrow captured by `f` therefore
        // strictly outlives the job's execution, so erasing the lifetime of
        // the boxed closure (identical layout, fat pointer to the same
        // vtable) cannot create a dangling reference.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(job)
        };
        let mut queue = self.shared.queue.lock().unwrap();
        queue.0.push_back(job);
        drop(queue);
        self.shared.cond.notify_one();
    }
}

/// Worker main loop: pop a job or sleep; exit on shutdown with empty queue.
fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut guard = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = guard.0.pop_front() {
                    break Some(job);
                }
                if guard.1 {
                    break None;
                }
                guard = shared.cond.wait(guard).unwrap();
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

/// Blocks until `state.pending` reaches zero, executing queued jobs (from
/// any scope of the same pool) while waiting.
fn help_until_done(shared: &Shared, state: &ScopeState) {
    loop {
        if state.pending.load(Ordering::SeqCst) == 0 {
            return;
        }
        let job = shared.queue.lock().unwrap().0.pop_front();
        match job {
            Some(job) => job(),
            None => {
                let guard = shared.queue.lock().unwrap();
                if state.pending.load(Ordering::SeqCst) == 0 || !guard.0.is_empty() {
                    continue;
                }
                // Timeout is belt-and-braces against a missed wakeup.
                let _ = shared.cond.wait_timeout(guard, Duration::from_millis(1)).unwrap();
            }
        }
    }
}

/// The process-wide shared pool used by `par_iter`, sized to the available
/// parallelism. Created on first use, never torn down.
pub fn global() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        ThreadPool::new(std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1))
    })
}

/// [`ThreadPool::scope`] on the [`global`] pool, mirroring `rayon::scope`.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
{
    global().scope(f)
}

/// `.par_iter()` — entry point, mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    type Item: Sync + 'data;

    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { data: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { data: self.as_slice() }
    }
}

/// Borrowed parallel iterator over a slice.
pub struct ParIter<'data, T> {
    data: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        ParMap { data: self.data, f }
    }
}

/// The result of `.par_iter().map(f)`; terminal op is `.collect()`.
pub struct ParMap<'data, T, F> {
    data: &'data [T],
    f: F,
}

impl<'data, T, F, R> ParMap<'data, T, F>
where
    T: Sync,
    F: Fn(&'data T) -> R + Sync,
    R: Send,
{
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let n = self.data.len();
        let pool = global();
        let chunks = pool.threads().min(n);
        if chunks <= 1 {
            return self.data.iter().map(&self.f).collect::<Vec<R>>().into();
        }
        let chunk = n.div_ceil(chunks);
        let f = &self.f;
        let parts: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(chunks));
        pool.scope(|scope| {
            for (i, c) in self.data.chunks(chunk).enumerate() {
                let parts = &parts;
                scope.spawn(move || {
                    let part: Vec<R> = c.iter().map(f).collect();
                    parts.lock().unwrap().push((i, part));
                });
            }
        });
        let mut parts = parts.into_inner().unwrap();
        parts.sort_unstable_by_key(|&(i, _)| i);
        let mut out = Vec::with_capacity(n);
        for (_, part) in parts {
            out.extend(part);
        }
        out.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn preserves_order() {
        let input: Vec<u32> = (0..10_000).collect();
        let doubled: Vec<u32> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let input: [u32; 0] = [];
        let out: Vec<u32> = input.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn scope_runs_borrowed_jobs() {
        let pool = ThreadPool::new(4);
        let data: Vec<u64> = (0..100).collect();
        let mut partial = [0u64; 4];
        pool.scope(|s| {
            for (i, out) in partial.iter_mut().enumerate() {
                let data = &data;
                s.spawn(move || *out = data.iter().skip(i).step_by(4).sum());
            }
        });
        assert_eq!(partial.iter().sum::<u64>(), (0..100).sum());
    }

    #[test]
    fn pool_is_reusable_across_scopes() {
        let pool = ThreadPool::new(2);
        let counter = AtomicU64::new(0);
        for _ in 0..50 {
            pool.scope(|s| {
                for _ in 0..8 {
                    let counter = &counter;
                    s.spawn(move || {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        // More outer jobs than workers, each outer job opening its own
        // scope: only possible because waiting threads help execute jobs.
        let pool = ThreadPool::new(2);
        let total = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..6 {
                let total = &total;
                let pool = &pool;
                s.spawn(move || {
                    pool.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(move || {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 24);
    }

    #[test]
    fn scope_propagates_panics() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom"));
            });
        }));
        assert!(result.is_err());
        // The pool survives a panicking job.
        let ok = AtomicU64::new(0);
        pool.scope(|s| {
            let ok = &ok;
            s.spawn(move || {
                ok.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(ok.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn scope_returns_body_value() {
        let pool = ThreadPool::new(1);
        let x = pool.scope(|_| 42);
        assert_eq!(x, 42);
    }
}
