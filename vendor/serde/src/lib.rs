//! Offline stub for `serde`: marker traits plus no-op derive macros.
//!
//! The workspace's data model derives `Serialize`/`Deserialize` so a later
//! PR can flip on real serialization without touching every type again.
//! Nothing currently serializes, so marker impls are all that is needed to
//! build without network access. The `derive` feature exists (as a no-op)
//! so manifests can keep the conventional `features = ["derive"]` shape.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
