//! A tiny, dependency-free, API-compatible subset of the `rand` crate
//! (v0.8 surface), vendored so the workspace builds without network access.
//!
//! Only what the workspace actually uses is provided:
//!
//! * [`rngs::StdRng`] with [`SeedableRng::seed_from_u64`] — deterministic,
//!   seeded generation (the synthetic network generators and the bench
//!   harness rely on reproducible streams),
//! * [`Rng::gen_range`] over integer and float ranges (half-open and
//!   inclusive),
//! * [`Rng::gen_bool`] and [`Rng::gen`].
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — high quality,
//! stable across platforms, and entirely `std`-free in spirit.

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, matching `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — deterministic stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A type samplable uniformly from a range (subset of `rand`'s
/// `SampleUniform` machinery, merged into one trait for simplicity).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, bound)` via Lemire-style rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the result exactly uniform.
    let zone = bound.wrapping_neg() % bound;
    loop {
        let v = rng.next_u64();
        if v >= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits → uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty inclusive range in gen_range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * unit_f64(rng) as f32
    }
}

/// Types samplable from the "standard" distribution (`rng.gen()`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The user-facing sampling trait, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        unit_f64(self) < p
    }

    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3u8..=5);
            assert!((3..=5).contains(&w));
            let f = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let p: f64 = rng.gen();
            assert!((0.0..1.0).contains(&p));
        }
    }
}
