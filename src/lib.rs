//! **best-connections** — a Rust reproduction of
//! *Delling, Katz, Pajor: Parallel Computation of Best Connections in Public
//! Transportation Networks* (IPPS 2010).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`core`] — time arithmetic, piecewise-linear travel-time
//!   functions, arrival profiles and connection reduction,
//! * [`timetable`] — the periodic timetable model, GTFS-subset
//!   I/O and synthetic network generators,
//! * [`graph`] — the realistic time-dependent graph model and the
//!   station graph,
//! * [`heap`] — indexed d-ary priority queues,
//! * [`spcs`] — the search algorithms: time-queries, the
//!   label-correcting profile baseline, sequential and parallel self-pruning
//!   connection-setting (SPCS), the station-to-station engine with
//!   distance-table pruning, the workspace/pool/batch execution layers, and
//!   the sharded multi-network router (`ShardedService`) with its
//!   cross-shard border gateway,
//! * [`feed`] — realtime feed ingestion: the recorded GTFS-RT-style wire
//!   decoder with malformed-input quarantine, and the polling `FeedDriver`
//!   with bounded-queue backpressure and retry-with-backoff.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs`; in short:
//!
//! ```
//! use best_connections::prelude::*;
//!
//! // Build a two-station toy timetable.
//! let mut b = TimetableBuilder::new(Period::DAY);
//! let a = b.add_named_station("A", Dur::minutes(2));
//! let t = b.add_named_station("B", Dur::minutes(2));
//! b.add_simple_trip(&[a, t], Time::hm(8, 0), &[Dur::minutes(30)], Dur::ZERO).unwrap();
//! let tt = b.build().unwrap();
//!
//! // One-to-all profile search from A (the engine is network-free and
//! // shareable: queries take `&self`, workspaces come from an internal
//! // pool, and the optional result cache persists across queries and
//! // across delay updates).
//! let mut network = Network::build(&tt);
//! let engine = ProfileEngine::new().with_cache(64);
//! let profiles = engine.one_to_all(&network, a);
//! let arr = profiles.profile(t).eval_arr(Time::hm(7, 0), Period::DAY);
//! assert_eq!(arr, Time::hm(8, 30));
//!
//! // The fully dynamic scenario: patch a delay in place and re-query.
//! network.apply_delay(TrainId(0), 0, Dur::minutes(15), Recovery::None);
//! let delayed = engine.one_to_all(&network, a);
//! assert_eq!(delayed.profile(t).eval_arr(Time::hm(7, 0), Period::DAY), Time::hm(8, 45));
//! ```

#![warn(missing_docs)]

pub use pt_core as core;
pub use pt_feed as feed;
pub use pt_graph as graph;
pub use pt_heap as heap;
pub use pt_spcs as spcs;
pub use pt_timetable as timetable;

/// The most commonly used items in one import.
pub mod prelude {
    pub use pt_core::{
        ConnId, Dur, NodeId, Period, Plf, PlfPoint, Profile, ProfilePoint, RouteId, StationId,
        Time, TrainId, INFINITY,
    };
    pub use pt_feed::{
        FeedDecoder, FeedDriver, FeedDriverConfig, FeedSource, FeedStats, RecordedFeed, WireEvent,
    };
    pub use pt_graph::{StationGraph, TdGraph};
    pub use pt_spcs::{
        BorderSpec, CacheStats, ConcurrentNetwork, DelayUpdate, DistanceTable, FeedSummary,
        GatewayStats, KernelMode, Network, NetworkSnapshot, PartitionStrategy, ProfileEngine,
        PublishOutcome, QueryStats, Routed, RouterError, S2sCache, S2sEngine, ShardFeedOutcome,
        ShardId, ShardedFeedSummary, ShardedService, StaleTable, TransferSelection,
    };
    pub use pt_timetable::{
        Date, DelayEvent, Recovery, ServiceCalendar, ServicePattern, Station, Timetable,
        TimetableBuilder, TripStop, Weekday,
    };
}
