//! Property tests over *arbitrary* small timetables (not the generators):
//! random trips with random times, dwell times and transfer times —
//! including midnight wraps and disconnected pieces — must satisfy every
//! cross-algorithm equivalence.

use proptest::prelude::*;

use best_connections::prelude::*;
use best_connections::spcs::{label_correcting, time_query};

/// A random trip: station path (indices into 0..n), start minute, leg
/// durations in minutes, dwell minutes.
#[derive(Debug, Clone)]
struct TripSpec {
    path: Vec<u8>,
    start_min: u32,
    leg_min: Vec<u16>,
    dwell_min: u8,
}

fn trip_strategy(n: u8) -> impl Strategy<Value = TripSpec> {
    (2usize..=5)
        .prop_flat_map(move |len| {
            (
                prop::collection::vec(0..n, len),
                0u32..(24 * 60),
                prop::collection::vec(1u16..=130, len - 1),
                0u8..=5,
            )
        })
        .prop_map(|(path, start_min, leg_min, dwell_min)| TripSpec {
            path,
            start_min,
            leg_min,
            dwell_min,
        })
}

/// Builds a timetable from specs; consecutive duplicate stations in a path
/// are skipped (the builder rejects self-loops).
fn build(n: u8, transfer_min: Vec<u8>, trips: Vec<TripSpec>) -> Option<Timetable> {
    let mut b = TimetableBuilder::new(Period::DAY);
    for (i, &tm) in transfer_min.iter().enumerate() {
        b.add_named_station(format!("S{i}"), Dur::minutes(tm as u32));
    }
    let _ = n;
    let mut added = 0;
    for t in trips {
        let mut path: Vec<StationId> = Vec::new();
        for &p in &t.path {
            let s = StationId(p as u32);
            if path.last() != Some(&s) {
                path.push(s);
            }
        }
        if path.len() < 2 {
            continue;
        }
        let legs: Vec<Dur> =
            t.leg_min.iter().take(path.len() - 1).map(|&m| Dur::minutes(m as u32)).collect();
        b.add_simple_trip(&path, Time(t.start_min * 60), &legs, Dur::minutes(t.dwell_min as u32))
            .ok()?;
        added += 1;
    }
    if added == 0 {
        return None;
    }
    b.build().ok()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    #[test]
    fn cs_equals_lc_on_random_timetables(
        transfer_min in prop::collection::vec(0u8..=8, 3..=6),
        trips in prop::collection::vec(trip_strategy(6), 1..=10),
    ) {
        let n = transfer_min.len() as u8;
        let Some(tt) = build(n, transfer_min, trips) else { return Ok(()) };
        let net = Network::new(tt);
        for s in net.station_ids() {
            let cs = ProfileEngine::new().one_to_all(&net, s);
            let lc = label_correcting::profile_search(&net, s);
            prop_assert_eq!(&lc.profiles, &*cs, "source {}", s);
            // Parallel equivalence on a nontrivial thread count.
            let par = ProfileEngine::new().threads(3).one_to_all(&net, s);
            prop_assert_eq!(&par, &cs, "parallel from {}", s);
        }
    }

    #[test]
    fn profile_eval_equals_time_query(
        transfer_min in prop::collection::vec(0u8..=8, 3..=6),
        trips in prop::collection::vec(trip_strategy(6), 1..=10),
        dep_mins in prop::collection::vec(0u32..(24 * 60), 1..=6),
    ) {
        let n = transfer_min.len() as u8;
        let Some(tt) = build(n, transfer_min, trips) else { return Ok(()) };
        let net = Network::new(tt);
        let source = StationId(0);
        let set = ProfileEngine::new().threads(2).one_to_all(&net, source);
        for &m in &dep_mins {
            let dep = Time(m * 60);
            let truth = time_query::earliest_arrivals(&net, source, dep);
            for s in net.station_ids() {
                if s == source {
                    continue; // source-profile convention, see ProfileSet::profile
                }
                prop_assert_eq!(
                    set.profile(s).eval_arr(dep, Period::DAY),
                    truth.arrival_at(s),
                    "station {} dep {}", s, dep
                );
            }
        }
    }

    #[test]
    fn s2s_with_tables_equals_one_to_all(
        transfer_min in prop::collection::vec(0u8..=8, 4..=6),
        trips in prop::collection::vec(trip_strategy(6), 2..=10),
        frac in 0.2f64..0.8,
    ) {
        let n = transfer_min.len() as u8;
        let Some(tt) = build(n, transfer_min, trips) else { return Ok(()) };
        let net = Network::new(tt);
        let table = DistanceTable::build(&net, &TransferSelection::Fraction(frac));
        let engine = S2sEngine::new().threads(2).with_table(&table);
        let plain = S2sEngine::new();
        for s in net.station_ids() {
            let want = ProfileEngine::new().one_to_all(&net, s);
            for t in net.station_ids() {
                if s == t { continue; }
                let got = engine.query(&net, s, t);
                prop_assert_eq!(
                    &got.profile, want.profile(t),
                    "{} → {} kind {:?}", s, t, got.kind
                );
                let got_plain = plain.query(&net, s, t);
                prop_assert_eq!(
                    &got_plain.profile, want.profile(t),
                    "{} → {} stopping-only", s, t
                );
            }
        }
    }
}
