//! Fast-mode cross-algorithm check, wired into tier-1 (`cargo test`).
//!
//! Scaled-down versions of all five evaluation networks, a couple of
//! sources each: sequential SPCS must agree with the label-correcting
//! baseline, with parallel SPCS under all three partition strategies, with
//! the `self_pruning(false)` ablation path (sequential and parallel), with
//! the batch APIs (`ProfileEngine::many_to_all`, `S2sEngine::batch`), and
//! with the label-setting time-query ground truth. The full-size version
//! is `cargo run --release --bin conncheck`.

use pt_bench::conncheck::{
    cross_check, cross_check_after_delays, cross_check_after_feed, standard_departures, STRATEGIES,
};
use pt_spcs::Network;
use pt_timetable::synthetic::presets;

#[test]
fn all_presets_cross_check_clean_in_fast_mode() {
    assert_eq!(STRATEGIES.len(), 3, "every partition strategy must be covered");
    let departures = standard_departures();
    for preset in presets::all_presets(0.05) {
        let name = preset.name;
        let net = Network::new(preset.timetable);
        let sources = pt_bench::random_stations(net.num_stations(), 2, 2010);
        let outcome = cross_check(name, &net, &sources, &[2, 3], &departures);
        assert!(outcome.is_clean(), "cross-check mismatches on {name}: {:#?}", outcome.mismatches);
        assert!(outcome.comparisons > 0);
    }
}

#[test]
fn fed_presets_cross_check_clean_in_fast_mode() {
    // The batched dynamic path: random feeds (delays + cancellations)
    // through Network::apply_feed, one generation bump per feed, the
    // incremental distance-table refresh compared entry-for-entry against a
    // from-scratch build, then the full static battery on the fed network.
    let departures = standard_departures();
    for preset in presets::all_presets(0.05) {
        let name = preset.name;
        let net = Network::new(preset.timetable);
        let sources = pt_bench::random_stations(net.num_stations(), 2, 2010);
        let (outcome, stats) =
            cross_check_after_feed(name, &net, &sources, &[2], &departures, 2, 6, 2010);
        assert!(
            outcome.is_clean(),
            "feed cross-check mismatches on {name}: {:#?}",
            outcome.mismatches
        );
        assert!(outcome.comparisons > 0);
        assert_eq!(stats.events, 12, "every feed event must have been applied on {name}");
    }
}

#[test]
fn delayed_presets_cross_check_clean_in_fast_mode() {
    // The dynamic-update path inherits the zero-mismatch guarantee: after a
    // burst of incremental delay patches, the patched network must agree
    // with a full rebuild and pass the whole static battery.
    let departures = standard_departures();
    for preset in presets::all_presets(0.05) {
        let name = preset.name;
        let net = Network::new(preset.timetable);
        let sources = pt_bench::random_stations(net.num_stations(), 2, 2010);
        let (outcome, _, _) =
            cross_check_after_delays(name, &net, &sources, &[2], &departures, 6, 2010);
        assert!(
            outcome.is_clean(),
            "delay cross-check mismatches on {name}: {:#?}",
            outcome.mismatches
        );
        assert!(outcome.comparisons > 0);
    }
}
